// dagperf command-line tool: simulate and estimate the library's named
// workflows, export traces, run parallelism sweeps, and tune jobs — without
// writing C++.
//
// Usage:
//   dagperf list
//   dagperf export   --flow NAME [--out FILE.json]
//   dagperf simulate --flow NAME|--spec FILE.json [--scale S] [--nodes N]
//                    [--seed K] [--json FILE] [--csv FILE] [--chrome FILE]
//   dagperf estimate --flow NAME|--spec FILE.json [--scale S] [--nodes N]
//                    [--variant boe|mean|median|normal] [--deadline-seconds D]
//   dagperf explain  --flow NAME|--spec FILE.json [--scale S] [--nodes N]
//                    [--json FILE] [--deadline-seconds D]
//   dagperf compare  --flow NAME|--spec FILE.json [--scale S] [--nodes N]
//   dagperf sweep    --job WC|TS|TSC|TS2R|TS3R [--input-gb G] [--baseline R]
//   dagperf sweep    --job J --reducers 8,16,32 [--threads N] [--json FILE]
//   dagperf sweep    --flow NAME|--spec FILE.json --nodes-list 2,4,8,16
//                    [--scale S] [--deadline-s D] [--threads N] [--json FILE]
//                    [--deadline-seconds D]
//   dagperf tune     --job WC|TS|TSC|TS2R|TS3R [--input-gb G]
//   dagperf serve    [--stdio | --port P] [--scale S] [--nodes N]
//                    [--threads N] [--queue-depth D] [--deadline-seconds D]
//                    [--grace-seconds G] [--watchdog-multiple M]
//                    [--breaker-threshold K] [--read-idle-seconds I]
//                    [--metrics-port P] [--slo-p99-ms MS] [--slo-availability F]
//                    [--flight-out FILE.json] [--shard-id ID] [--port-file F]
//   dagperf route    --shards N [--port P] [--dir DIR] [--scale S]
//                    [--vnodes V] [--probe-interval-ms I] [--readmit-quorum Q]
//                    [--max-in-flight K] [--port-file F] [--flight-out F]
//   dagperf metrics  [--port P] [--prom]
//   dagperf top      --port P [--interval-ms I] [--iterations N]
//
// `serve` runs the estimation service (src/service/): the named workflow
// suite is pre-registered and requests arrive as newline-delimited JSON
// (service/protocol.h; docs/api.md has the full contract) on stdin
// (--stdio, the default) or a localhost TCP port (--port, 0 picks a free
// one and prints it to stderr). --deadline-seconds becomes the service's
// default per-request deadline. The loop ends on EOF or a `drain` request;
// the TCP server additionally shuts down gracefully on SIGTERM/SIGINT
// (docs/robustness.md): the listener closes, in-flight requests get
// --grace-seconds to finish, stragglers are cancelled with
// UNAVAILABLE{retryable}, and the process exits 0. --breaker-threshold K
// opens a per-cluster circuit breaker after K consecutive serving failures
// (0 disables; default 8); --watchdog-multiple M cancels any request
// running past M x its deadline.
//
// `route` runs a multi-process fleet (src/router/): N child `dagperf serve`
// shards behind a consistent-hash router on one TCP port. Requests route by
// (cluster, workflow) so each shard's memo stays hot for its key range;
// crashed shards are restarted from their per-shard snapshot dir and
// readmitted after a health-check quorum (docs/robustness.md "Shard
// fleets"). --dir holds per-shard state (snapshots, port files, logs).
// SIGTERM drains the whole fleet gracefully: every shard saves its final
// snapshot before exiting.
//
// --deadline-seconds bounds the wall-clock the estimator may spend; on
// expiry the command exits 3 (sweeps print whatever candidates finished).
// Exit codes: 0 ok, 1 output trouble, 2 invalid input, 3 deadline/cancelled,
// 4 internal error. Diagnostics go to stderr; stdout carries only results.
//
// Workflow NAMEs are the Table III suite names (TS-Q1..TS-Q22, WC-Q1..,
// WC-TS, WC-KM, ...) plus "web-analytics"; --spec loads a JSON workflow
// file (author one by editing `dagperf export` output).
//
// Observability (any command): --metrics-json FILE dumps the metrics
// registry after the run; --trace-out FILE enables span tracing and writes
// the recorded Chrome-trace timeline (open in Perfetto). `explain` and
// `estimate` additionally append the *modeled* state timeline to the trace.
// Both files are written on error exits too (2/3/4 included) — a failed run
// is exactly when the telemetry matters.
//
// Serving observability (docs/observability.md): `serve --metrics-port P`
// exposes Prometheus text on http://127.0.0.1:P/metrics; --slo-p99-ms /
// --slo-availability arm SLO objectives (windowed burn rates via the `slo`
// verb and slo.* gauges); --flight-out FILE dumps the request flight
// recorder on exit, SIGTERM drain included. Any of these flags arms request
// recording. `dagperf metrics --port P` fetches a running server's registry
// over the `metrics` verb (--prom prints Prometheus text); without --port it
// prints this process's own registry. `dagperf top --port P` subscribes via
// the `watch` verb and renders live RPS / p50 / p99 / error rate / cache
// hit rate / breaker states, one line per frame.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/cancel.h"
#include "common/json.h"
#include "common/stats.h"
#include "common/table.h"
#include "dag/spec_io.h"
#include "exp/single_job.h"
#include "model/explain.h"
#include "model/state_estimator.h"
#include "model/sweep.h"
#include "model/task_time_source.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/trace.h"
#include "router/router.h"
#include "service/line_client.h"
#include "service/metrics_http.h"
#include "service/server.h"
#include "service/service.h"
#include "sim/simulator.h"
#include "sim/trace_writer.h"
#include "tuner/tuner.h"
#include "workloads/micro.h"
#include "workloads/suite.h"
#include "workloads/web_analytics.h"

namespace dagperf {
namespace {

/// Exit codes of the CLI, stable for scripting:
///   0 success, 1 output/runtime trouble (e.g. unwritable --json file),
///   2 invalid input (bad usage, malformed spec, unknown flow),
///   3 deadline exceeded or cancelled (partial results may have printed),
///   4 internal error (a library bug — please report).
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitInvalid = 2;
constexpr int kExitDeadline = 3;
constexpr int kExitInternal = 4;

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kOk:
      return kExitOk;
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kNotFound:
    case ErrorCode::kFailedPrecondition:
      return kExitInvalid;
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kCancelled:
      return kExitDeadline;
    case ErrorCode::kResourceExhausted:
    case ErrorCode::kUnavailable:
      // Transient (the service shed the request / peer not reachable);
      // retryable, so runtime trouble rather than invalid input.
      return kExitRuntime;
    case ErrorCode::kInternal:
      return kExitInternal;
  }
  return kExitInternal;
}

/// Prints the diagnostic to stderr (never stdout — stdout is for results,
/// so piped output stays parseable) and maps the status to an exit code.
int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

/// Thrown by flag accessors on unparseable values; caught in Main and
/// reported as invalid input (exit 2), never an uncaught-exception abort.
struct FlagError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
      size_t used = 0;
      const double value = std::stod(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(it->second);
      return value;
    } catch (const std::exception&) {
      throw FlagError("--" + key + ": not a number: " + it->second);
    }
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
      size_t used = 0;
      const int value = std::stoi(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(it->second);
      return value;
    } catch (const std::exception&) {
      throw FlagError("--" + key + ": not an integer: " + it->second);
    }
  }

  /// --deadline-seconds D as a wall-clock budget (absent or <= 0 = none).
  Deadline GetDeadline() const {
    const double seconds = GetDouble("deadline-seconds", 0.0);
    return seconds > 0 ? Deadline::AfterSeconds(seconds) : Deadline::Never();
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: dagperf <list|export|simulate|estimate|explain|compare|"
               "sweep|tune|serve|route|metrics|top> "
               "[--flow NAME | --spec FILE.json] [--job WC|TS|TSC|TS2R|TS3R] "
               "[--scale S] [--nodes N] [--seed K] [--input-gb G] [--baseline R] "
               "[--reducers 8,16,32] [--nodes-list 2,4,8] [--threads N] "
               "[--deadline-s D] [--deadline-seconds D] "
               "[--variant boe|mean|median|normal] [--out F] "
               "[--json F] [--csv F] [--chrome F] "
               "[--metrics-json F] [--trace-out F] "
               "[--stdio] [--port P] [--queue-depth D] [--grace-seconds G] "
               "[--watchdog-multiple M] [--breaker-threshold K] "
               "[--read-idle-seconds I] "
               "[--overload-target-ms T] [--snapshot-dir DIR] "
               "[--snapshot-interval-seconds S] "
               "[--shard-id ID] [--port-file F] [--shards N] [--dir DIR] "
               "[--vnodes V] [--probe-interval-ms I] [--readmit-quorum Q] "
               "[--max-in-flight K] "
               "[--metrics-port P] [--slo-p99-ms MS] [--slo-availability F] "
               "[--flight-out F] [--prom] [--interval-ms I] [--iterations N]\n");
  return 2;
}

Result<DagWorkflow> LoadFlow(const Args& args) {
  const std::string spec_path = args.Get("spec", "");
  if (!spec_path.empty()) return LoadWorkflow(spec_path);
  const std::string name = args.Get("flow", "");
  if (name.empty()) {
    return Status::InvalidArgument("--flow NAME or --spec FILE is required");
  }
  const double scale = args.GetDouble("scale", 1.0);
  if (name == "web-analytics") {
    return WebAnalyticsFlow(Bytes::FromGB(100.0 * scale));
  }
  Result<NamedFlow> named = TableThreeFlow(name, scale);
  if (!named.ok()) return named.status();
  return std::move(named).value().flow;
}

int CmdExport(const Args& args) {
  Result<DagWorkflow> flow = LoadFlow(args);
  if (!flow.ok()) return Fail(flow.status());
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::printf("%s", WorkflowToJson(*flow).Dump().c_str());
    return 0;
  }
  const Status st = SaveWorkflow(*flow, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

ClusterSpec LoadCluster(const Args& args) {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.num_nodes = args.GetInt("nodes", cluster.num_nodes);
  return cluster;
}

Result<JobSpec> LoadJob(const Args& args) {
  const std::string job = args.Get("job", "");
  const Bytes input = Bytes::FromGB(args.GetDouble("input-gb", 100.0));
  if (job == "WC") return WordCountSpec(input);
  if (job == "TS") return TsSpec(input);
  if (job == "TSC") return TscSpec(input);
  if (job == "TS2R") return Ts2rSpec(input);
  if (job == "TS3R") return Ts3rSpec(input);
  return Status::InvalidArgument("--job must be WC, TS, TSC, TS2R or TS3R");
}

int CmdList() {
  std::printf("named workflows (--flow):\n  web-analytics\n");
  const auto suite = TableThreeSuite(0.01);
  if (suite.ok()) {
    int col = 0;
    for (const auto& nf : *suite) {
      std::printf("  %-10s", nf.name.c_str());
      if (++col % 6 == 0) std::printf("\n");
    }
    if (col % 6 != 0) std::printf("\n");
  }
  std::printf("micro jobs (--job): WC TS TSC TS2R TS3R\n");
  return 0;
}

int CmdSimulate(const Args& args) {
  Result<DagWorkflow> flow = LoadFlow(args);
  if (!flow.ok()) return Fail(flow.status());
  const ClusterSpec cluster = LoadCluster(args);
  SimOptions options;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const Simulator sim(cluster, SchedulerConfig{}, options);
  Result<SimResult> result = sim.Run(*flow);
  if (!result.ok()) return Fail(result.status());
  std::printf("%s on %d nodes: makespan %.1f s, %zu tasks, %zu states\n",
              flow->name().c_str(), cluster.num_nodes, result->makespan().seconds(),
              result->tasks().size(), result->states().size());
  TextTable table({"stage", "start (s)", "end (s)", "tasks", "median task (s)"});
  for (const auto& s : result->stages()) {
    const auto durations = result->TaskDurations(s.job, s.stage);
    table.AddRow({flow->job(s.job).name + "/" + StageKindName(s.stage),
                  TextTable::Cell(s.start, 1), TextTable::Cell(s.end, 1),
                  std::to_string(durations.size()),
                  TextTable::Cell(ComputeStats(durations).median, 1)});
  }
  std::printf("%s", table.ToString().c_str());

  const auto dump = [&](const std::string& key, auto writer) {
    const std::string path = args.Get(key, "");
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    writer(*flow, *result, out);
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  if (!dump("json", WriteJson)) return 1;
  if (!dump("csv", WriteTaskCsv)) return 1;
  if (!dump("chrome", WriteChromeTrace)) return 1;
  return 0;
}

Result<DagEstimate> RunEstimate(const DagWorkflow& flow, const ClusterSpec& cluster,
                                const std::string& variant,
                                const SimResult* profile_run,
                                const Deadline& deadline = Deadline::Never()) {
  const SchedulerConfig sched;
  EstimatorOptions options;
  options.budget.deadline = deadline;
  if (variant == "boe") {
    const BoeModel boe(cluster.node);
    const BoeTaskTimeSource source(boe, Duration::Seconds(1));
    return StateBasedEstimator(cluster, sched, options).Estimate(flow, source);
  }
  if (profile_run == nullptr) {
    return Status::InvalidArgument(
        "profile-driven variants need a simulated profiling run");
  }
  ProfileStatistic stat = ProfileStatistic::kMean;
  if (variant == "median") stat = ProfileStatistic::kMedian;
  if (variant == "normal") options.skew_aware = true;
  Result<ProfileTaskTimeSource> source =
      ProfileTaskTimeSource::FromSimulation(flow, *profile_run, stat);
  if (!source.ok()) return source.status();
  return StateBasedEstimator(cluster, sched, options).Estimate(flow, *source);
}

int CmdEstimate(const Args& args) {
  Result<DagWorkflow> flow = LoadFlow(args);
  if (!flow.ok()) return Fail(flow.status());
  const ClusterSpec cluster = LoadCluster(args);
  const std::string variant = args.Get("variant", "boe");
  std::optional<SimResult> profile_run;
  if (variant != "boe") {
    Result<SimResult> run =
        Simulator(cluster, SchedulerConfig{}, SimOptions{}).Run(*flow);
    if (!run.ok()) return Fail(run.status());
    profile_run = std::move(run).value();
  }
  Result<DagEstimate> estimate =
      RunEstimate(*flow, cluster, variant, profile_run ? &*profile_run : nullptr,
                  args.GetDeadline());
  if (!estimate.ok()) return Fail(estimate.status());
  std::printf("%s (%s estimate): makespan %.1f s, %zu states\n",
              flow->name().c_str(), variant.c_str(), estimate->makespan.seconds(),
              estimate->states.size());
  TextTable table({"state", "start (s)", "duration (s)", "running (delta)"});
  for (const auto& st : estimate->states) {
    std::string running;
    for (const auto& r : estimate->running(st)) {
      if (!running.empty()) running += ", ";
      running += flow->job(r.job).name + "/" + StageKindName(r.kind) + "(" +
                 std::to_string(r.parallelism) + ")";
    }
    table.AddRow({std::to_string(st.index), TextTable::Cell(st.start, 1),
                  TextTable::Cell(st.duration, 1), running});
  }
  std::printf("%s", table.ToString().c_str());
  if (obs::TraceRecorder::Default().enabled()) {
    std::vector<obs::ChromeTraceEvent> events;
    AppendEstimateTraceEvents(*flow, *estimate, events);
    for (auto& event : events) obs::TraceRecorder::Default().Add(std::move(event));
  }
  return 0;
}

/// Bottleneck-attribution report: estimates with the BOE source and prints
/// the critical path plus per-state bottleneck resources (model/explain.h).
int CmdExplain(const Args& args) {
  Result<DagWorkflow> flow = LoadFlow(args);
  if (!flow.ok()) return Fail(flow.status());
  const ClusterSpec cluster = LoadCluster(args);
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  EstimatorOptions options;
  options.budget.deadline = args.GetDeadline();
  Result<ExplainReport> report =
      Explain(*flow, cluster, SchedulerConfig{}, source, options);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", ExplainToText(*flow, *report).c_str());

  const std::string json_path = args.Get("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << ExplainToJson(*flow, *report).Dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (obs::TraceRecorder::Default().enabled()) {
    std::vector<obs::ChromeTraceEvent> events;
    AppendEstimateTraceEvents(*flow, report->estimate, events);
    for (auto& event : events) obs::TraceRecorder::Default().Add(std::move(event));
  }
  return 0;
}

int CmdCompare(const Args& args) {
  Result<DagWorkflow> flow = LoadFlow(args);
  if (!flow.ok()) return Fail(flow.status());
  const ClusterSpec cluster = LoadCluster(args);
  Result<SimResult> truth =
      Simulator(cluster, SchedulerConfig{}, SimOptions{}).Run(*flow);
  if (!truth.ok()) return Fail(truth.status());
  std::printf("%s simulated: %.1f s\n", flow->name().c_str(),
              truth->makespan().seconds());
  TextTable table({"variant", "estimate (s)", "accuracy"});
  for (const char* variant : {"boe", "mean", "median", "normal"}) {
    Result<DagEstimate> estimate = RunEstimate(*flow, cluster, variant, &*truth);
    if (!estimate.ok()) {
      std::fprintf(stderr, "%s: %s\n", variant, estimate.status().ToString().c_str());
      continue;
    }
    table.AddRow({variant, TextTable::Cell(estimate->makespan.seconds(), 1),
                  TextTable::Cell(RelativeAccuracy(estimate->makespan.seconds(),
                                                   truth->makespan().seconds()),
                                  4)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

/// Parses a comma-separated integer list ("8,16,32").
Result<std::vector<int>> ParseIntList(const std::string& text) {
  std::vector<int> values;
  std::string token;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      if (token.empty()) return Status::InvalidArgument("empty list entry");
      try {
        size_t used = 0;
        const int value = std::stoi(token, &used);
        if (used != token.size()) throw std::invalid_argument(token);
        values.push_back(value);
      } catch (const std::exception&) {
        return Status::InvalidArgument("not an integer: " + token);
      }
      token.clear();
    } else {
      token += text[i];
    }
  }
  if (values.empty()) return Status::InvalidArgument("empty list");
  return values;
}

/// Shared tail of the what-if sweeps: print the candidate table and cache
/// stats, optionally dump the JSON table. Failed candidates go to stderr and
/// the survivors still print — a sweep cut short by --deadline-seconds shows
/// its partial results. Exit code: 0 all completed, 3 if the budget fired,
/// otherwise the first failure's code.
int ReportSweep(const std::string& knob_name, const std::vector<int>& knobs,
                const SweepResult& sweep, const Args& args) {
  TextTable table({knob_name, "predicted (s)", "states"});
  Json rows = Json::MakeArray();
  Status first_failure = Status::Ok();
  for (size_t i = 0; i < knobs.size(); ++i) {
    if (!sweep.estimates[i].ok()) {
      std::fprintf(stderr, "%s=%d: %s\n", knob_name.c_str(), knobs[i],
                   sweep.estimates[i].status().ToString().c_str());
      if (first_failure.ok()) first_failure = sweep.estimates[i].status();
      continue;
    }
    const DagEstimate& estimate = *sweep.estimates[i];
    table.AddRow({std::to_string(knobs[i]),
                  TextTable::Cell(estimate.makespan.seconds(), 1),
                  std::to_string(estimate.states.size())});
    Json row = Json::MakeObject();
    row.Set(knob_name, Json::MakeNumber(knobs[i]));
    row.Set("predicted_s", Json::MakeNumber(estimate.makespan.seconds()));
    rows.Append(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  if (sweep.stats.completed < sweep.stats.candidates) {
    std::fprintf(stderr,
                 "%d/%d candidates completed (%d cancelled, %d deadline, "
                 "%d failed, %d retries)\n",
                 sweep.stats.completed, sweep.stats.candidates,
                 sweep.stats.cancelled, sweep.stats.deadline_exceeded,
                 sweep.stats.failures, sweep.stats.retries);
  }
  if (sweep.stats.best_index >= 0) {
    std::printf("best: %s=%d -> %.1f s\n", knob_name.c_str(),
                knobs[static_cast<size_t>(sweep.stats.best_index)],
                sweep.stats.best_makespan.seconds());
  } else {
    std::fprintf(stderr, "no candidate completed\n");
  }
  std::printf("cache: %.1f%% hit rate (%llu hits, %llu misses)\n",
              100.0 * sweep.stats.cache_hit_rate,
              static_cast<unsigned long long>(sweep.stats.cache_hits),
              static_cast<unsigned long long>(sweep.stats.cache_misses));
  std::printf(
      "incremental: %llu prefix hits, %llu misses, %llu states resumed\n",
      static_cast<unsigned long long>(sweep.stats.prefix_hits),
      static_cast<unsigned long long>(sweep.stats.prefix_misses),
      static_cast<unsigned long long>(sweep.stats.resumed_states));

  const std::string json_path = args.Get("json", "");
  if (!json_path.empty()) {
    Json doc = Json::MakeObject();
    doc.Set("knob", Json::MakeString(knob_name));
    doc.Set("candidates", std::move(rows));
    if (sweep.stats.best_index >= 0) {
      doc.Set("best_" + knob_name,
              Json::MakeNumber(knobs[static_cast<size_t>(sweep.stats.best_index)]));
      doc.Set("best_predicted_s",
              Json::MakeNumber(sweep.stats.best_makespan.seconds()));
    }
    // Same batch statistics bench_sweep_throughput records in
    // BENCH_sweep.json, so the CLI and the benchmark agree field-for-field.
    doc.Set("num_candidates", Json::MakeNumber(sweep.stats.candidates));
    doc.Set("completed", Json::MakeNumber(sweep.stats.completed));
    doc.Set("failures", Json::MakeNumber(sweep.stats.failures));
    doc.Set("cancelled", Json::MakeNumber(sweep.stats.cancelled));
    doc.Set("deadline_exceeded", Json::MakeNumber(sweep.stats.deadline_exceeded));
    doc.Set("retries", Json::MakeNumber(sweep.stats.retries));
    doc.Set("cache_hits",
            Json::MakeNumber(static_cast<double>(sweep.stats.cache_hits)));
    doc.Set("cache_misses",
            Json::MakeNumber(static_cast<double>(sweep.stats.cache_misses)));
    doc.Set("cache_hit_rate", Json::MakeNumber(sweep.stats.cache_hit_rate));
    Json incremental = Json::MakeObject();
    incremental.Set("prefix_hits",
                    Json::MakeNumber(static_cast<double>(sweep.stats.prefix_hits)));
    incremental.Set(
        "prefix_misses",
        Json::MakeNumber(static_cast<double>(sweep.stats.prefix_misses)));
    incremental.Set(
        "resumed_states",
        Json::MakeNumber(static_cast<double>(sweep.stats.resumed_states)));
    incremental.Set(
        "checkpoints_stored",
        Json::MakeNumber(static_cast<double>(sweep.stats.checkpoints_stored)));
    doc.Set("incremental", std::move(incremental));
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return kExitRuntime;
    }
    out << doc.Dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (sweep.stats.cancelled > 0 || sweep.stats.deadline_exceeded > 0) {
    return kExitDeadline;
  }
  if (!first_failure.ok()) return ExitCodeFor(first_failure);
  return kExitOk;
}

/// Reducer-count what-if grid for a micro job, priced by the sweep engine.
int CmdReducerSweep(const Args& args) {
  Result<JobSpec> job = LoadJob(args);
  if (!job.ok()) return Fail(job.status());
  Result<std::vector<int>> grid = ParseIntList(args.Get("reducers", ""));
  if (!grid.ok()) {
    std::fprintf(stderr, "--reducers: ");
    return Fail(grid.status());
  }
  Result<std::vector<DagWorkflow>> flows = BuildReducerCandidates(*job, *grid);
  if (!flows.ok()) return Fail(flows.status());
  const ClusterSpec cluster = LoadCluster(args);
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<SweepCandidate> requests;
  for (const DagWorkflow& flow : *flows) requests.push_back({&flow, cluster, ""});
  SweepOptions options;
  options.threads = args.GetInt("threads", 0);
  options.budget.deadline = args.GetDeadline();
  const SweepResult sweep = EstimateBatch(requests, SchedulerConfig{}, source, options);
  std::printf("reducer sweep for %s on %d nodes (%d candidates, %d threads):\n",
              job->name.c_str(), cluster.num_nodes, sweep.stats.candidates,
              options.threads);
  return ReportSweep("reducers", *grid, sweep, args);
}

/// Cluster-size what-if grid for a workflow (capacity planning).
int CmdNodesSweep(const Args& args) {
  Result<DagWorkflow> flow = LoadFlow(args);
  if (!flow.ok()) return Fail(flow.status());
  Result<std::vector<int>> grid = ParseIntList(args.Get("nodes-list", ""));
  if (!grid.ok()) {
    std::fprintf(stderr, "--nodes-list: ");
    return Fail(grid.status());
  }
  const ClusterSpec base = LoadCluster(args);
  const BoeModel boe(base.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<SweepCandidate> requests;
  for (int nodes : *grid) {
    ClusterSpec cluster = base;
    cluster.num_nodes = nodes;
    requests.push_back({&*flow, cluster, ""});
  }
  SweepOptions options;
  options.threads = args.GetInt("threads", 0);
  options.budget.deadline = args.GetDeadline();
  const SweepResult sweep = EstimateBatch(requests, SchedulerConfig{}, source, options);
  std::printf("cluster-size sweep for %s (%d candidates, %d threads):\n",
              flow->name().c_str(), sweep.stats.candidates, options.threads);
  const double deadline = args.GetDouble("deadline-s", 0.0);
  if (deadline > 0) {
    int smallest = -1;
    for (size_t i = 0; i < grid->size(); ++i) {
      if (sweep.estimates[i].ok() &&
          sweep.estimates[i]->makespan.seconds() <= deadline &&
          (smallest < 0 || (*grid)[i] < smallest)) {
        smallest = (*grid)[i];
      }
    }
    if (smallest > 0) {
      std::printf("smallest size within %.0f s deadline: %d nodes\n", deadline,
                  smallest);
    } else {
      std::printf("no listed size meets the %.0f s deadline\n", deadline);
    }
  }
  return ReportSweep("nodes", *grid, sweep, args);
}

int CmdSweep(const Args& args) {
  // Grid modes run on the sweep engine; the bare --job form keeps the
  // original single-job parallelism sweep (paper Fig. 6 methodology).
  if (args.options.count("reducers") > 0) return CmdReducerSweep(args);
  if (args.options.count("nodes-list") > 0) return CmdNodesSweep(args);
  Result<JobSpec> job = LoadJob(args);
  if (!job.ok()) return Fail(job.status());
  SingleJobSweepConfig config;
  config.baseline_reference = args.GetInt("baseline", 2);
  Result<SingleJobSweepResult> sweep = RunSingleJobSweep(*job, config);
  if (!sweep.ok()) return Fail(sweep.status());
  TextTable table({"delta", "map truth", "map BOE", "shuffle truth",
                   "shuffle BOE", "reduce truth", "reduce BOE"});
  for (const auto& p : sweep->points) {
    table.AddRow({std::to_string(p.tasks_per_node), TextTable::Cell(p.truth.map_s, 1),
                  TextTable::Cell(p.boe.map_s, 1),
                  TextTable::Cell(p.truth.shuffle_s, 1),
                  TextTable::Cell(p.boe.shuffle_s, 1),
                  TextTable::Cell(p.truth.reduce_s, 1),
                  TextTable::Cell(p.boe.reduce_s, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  const SweepAccuracy acc = BoeSweepAccuracy(*sweep);
  std::printf("BOE mean accuracy: map %.1f%% shuffle %.1f%% reduce %.1f%%\n",
              100 * acc.map, 100 * acc.shuffle, 100 * acc.reduce);
  return 0;
}

int CmdTune(const Args& args) {
  Result<JobSpec> job = LoadJob(args);
  if (!job.ok()) return Fail(job.status());
  const ClusterSpec cluster = LoadCluster(args);
  Result<ReducerTuning> reducers = TuneReducers(*job, cluster, SchedulerConfig{});
  if (reducers.ok()) {
    std::printf("reducer tuning for %s:\n", job->name.c_str());
    TextTable table({"reducers", "predicted (s)"});
    for (const auto& c : reducers->explored) {
      table.AddRow({std::to_string(c.knob), TextTable::Cell(c.predicted.seconds(), 1)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("best: %d reducers -> %.1f s\n", reducers->best_reducers,
                reducers->best_time.seconds());
  }
  Result<CompressionDecision> compression =
      DecideCompression(*job, cluster, SchedulerConfig{});
  if (compression.ok()) {
    std::printf("compression: with %.1f s, without %.1f s -> %s\n",
                compression->with_compression.seconds(),
                compression->without_compression.seconds(),
                compression->compress ? "COMPRESS" : "DO NOT COMPRESS");
  }
  return 0;
}

/// The TCP server's stop signal: SIGTERM/SIGINT fire this token. Cancel()
/// is one lock-free atomic store — async-signal-safe. Leaked so the handler
/// never races static teardown.
CancelToken& ServeStopToken() {
  static CancelToken* token = new CancelToken(CancelToken::Cancellable());
  return *token;
}

void HandleServeSignal(int) { ServeStopToken().Cancel(); }

/// Long-lived estimation service over the NDJSON protocol. Diagnostics (what
/// was registered, where the server listens) go to stderr; stdout carries
/// only protocol responses so a pipe peer parses every line.
int CmdServe(const Args& args) {
  ServiceOptions options;
  options.threads = args.GetInt("threads", 0);
  options.max_queue_depth = args.GetInt("queue-depth", 256);
  options.default_deadline_seconds = args.GetDouble("deadline-seconds", 0.0);
  options.watchdog_multiple = args.GetDouble("watchdog-multiple", 0.0);
  // Serving default: breakers ON (library default is off) — a cluster whose
  // estimation path keeps failing should shed fast, not grind.
  options.breaker_failure_threshold = args.GetInt("breaker-threshold", 8);
  if (options.max_queue_depth < 1) {
    return Fail(Status::InvalidArgument("--queue-depth must be >= 1"));
  }
  // Overload protection: --overload-target-ms T arms the CoDel-style
  // controller (brownout ladder, cost-aware shedding); 0/absent leaves it
  // off so a plain serve behaves exactly as before.
  options.overload_target_sojourn_ms = args.GetDouble("overload-target-ms", 0.0);
  if (options.overload_target_sojourn_ms < 0) {
    return Fail(Status::InvalidArgument("--overload-target-ms must be >= 0"));
  }
  // Warm-state persistence: snapshots land in --snapshot-dir on drain /
  // shutdown and every --snapshot-interval-seconds, and are restored at boot.
  const std::string snapshot_dir = args.Get("snapshot-dir", "");
  if (!snapshot_dir.empty()) {
    options.snapshot_path = snapshot_dir + "/warm.snapshot";
  }
  const double snapshot_interval =
      args.GetDouble("snapshot-interval-seconds", 30.0);
  // Shard mode (router/router.h): --shard-id is echoed in stats for fleet
  // attribution; --port-file publishes the bound port for the supervisor
  // (written atomically, so a reader never sees a torn value).
  options.shard_id = args.Get("shard-id", "");
  const std::string port_file = args.Get("port-file", "");
  options.slo.p99_ms = args.GetDouble("slo-p99-ms", 0.0);
  options.slo.availability = args.GetDouble("slo-availability", 0.0);
  if (options.slo.availability >= 1.0 || options.slo.availability < 0.0) {
    return Fail(Status::InvalidArgument(
        "--slo-availability must be a fraction in [0, 1), e.g. 0.999"));
  }
  const bool has_metrics_port = args.options.count("metrics-port") > 0;
  const std::string flight_path = args.Get("flight-out", "");
  if (has_metrics_port || !flight_path.empty() || options.slo.latency_enabled() ||
      options.slo.availability_enabled()) {
    // Any serving-observability flag arms collection: request records, SLO
    // windows, and the metric registry all gate on the same switch.
    obs::SetMetricsEnabled(true);
  }
  EstimationService service(options);

  const int nodes = args.GetInt("nodes", 0);
  if (nodes != 0) {
    ClusterSpec cluster = ClusterSpec::PaperCluster();
    cluster.num_nodes = nodes;
    if (Status st = service.RegisterCluster("default", cluster); !st.ok()) {
      return Fail(st);
    }
  }

  // Pre-register the named suite at --scale, same names `dagperf list`
  // prints; clients can still send inline "flow" documents.
  const double scale = args.GetDouble("scale", 1.0);
  Result<std::vector<NamedFlow>> suite = TableThreeSuite(scale);
  if (!suite.ok()) return Fail(suite.status());
  for (NamedFlow& named : suite.value()) {
    if (Status st = service.RegisterWorkflow(named.name, std::move(named.flow));
        !st.ok()) {
      return Fail(st);
    }
  }
  Result<DagWorkflow> web = WebAnalyticsFlow(Bytes::FromGB(100.0 * scale));
  if (!web.ok()) return Fail(web.status());
  if (Status st = service.RegisterWorkflow("web-analytics", std::move(web).value());
      !st.ok()) {
    return Fail(st);
  }
  std::fprintf(stderr, "dagperf serve: %zu workflows registered (scale %g)\n",
               service.WorkflowNames().size(), scale);

  // Restore warmth from the previous run before the first request lands. A
  // missing file is a normal first boot; a corrupt or stale one is rejected
  // by the loader and the service simply starts cold.
  if (!options.snapshot_path.empty()) {
    const Status restored = service.LoadSnapshot(options.snapshot_path);
    if (restored.ok()) {
      std::fprintf(stderr, "warm snapshot restored from %s\n",
                   options.snapshot_path.c_str());
    } else if (restored.code() != ErrorCode::kNotFound) {
      std::fprintf(stderr, "warm snapshot rejected (starting cold): %s\n",
                   restored.ToString().c_str());
    }
  }

  // Periodic snapshot saves so a crash loses at most one interval of
  // warmth; the drain/shutdown path saves once more, authoritatively.
  CancelToken snapshot_stop = CancelToken::Cancellable();
  std::thread snapshot_thread;
  if (!options.snapshot_path.empty() && snapshot_interval > 0) {
    snapshot_thread = std::thread([&service, snapshot_stop, snapshot_interval,
                                   path = options.snapshot_path] {
      for (;;) {
        double remaining_s = snapshot_interval;
        while (remaining_s > 0 && !snapshot_stop.cancelled()) {
          const double slice_s = std::min(remaining_s, 0.05);
          std::this_thread::sleep_for(std::chrono::duration<double>(slice_s));
          remaining_s -= slice_s;
        }
        if (snapshot_stop.cancelled()) return;
        (void)service.SaveSnapshot(path);
      }
    });
  }

  // The Prometheus scrape endpoint runs beside either transport on its own
  // thread; it is stopped and joined after the serve loop ends.
  CancelToken metrics_stop = CancelToken::Cancellable();
  std::thread metrics_thread;
  if (has_metrics_port) {
    MetricsHttpOptions http;
    http.port = args.GetInt("metrics-port", 0);
    http.stop = metrics_stop;
    http.before_scrape = [&service] {
      service.slo_tracker().PublishGauges(service.slo_tracker().Snapshot());
    };
    http.on_listen = [](int port) {
      std::fprintf(stderr, "metrics on http://127.0.0.1:%d/metrics\n", port);
    };
    metrics_thread = std::thread([http] {
      Result<MetricsHttpSummary> served = ServeMetricsHttp(http);
      if (!served.ok()) {
        std::fprintf(stderr, "metrics endpoint: %s\n",
                     served.status().ToString().c_str());
      }
    });
  }

  const int rc = [&]() -> int {
    if (args.options.count("port") > 0) {
      TcpServerOptions tcp;
      tcp.port = args.GetInt("port", 0);
      tcp.max_connections = args.GetInt("max-connections", 0);
      tcp.drain_grace_seconds = args.GetDouble("grace-seconds", 5.0);
      tcp.read_idle_timeout_seconds = args.GetDouble("read-idle-seconds", 30.0);
      tcp.stop = ServeStopToken();
      tcp.on_listen = [&port_file](int port) {
        std::fprintf(stderr, "listening on 127.0.0.1:%d\n", port);
        if (!port_file.empty()) {
          const std::string tmp = port_file + ".tmp";
          std::ofstream out(tmp);
          if (out) {
            out << port << "\n";
            out.close();
            if (::rename(tmp.c_str(), port_file.c_str()) != 0) {
              std::fprintf(stderr, "cannot publish %s: %s\n",
                           port_file.c_str(), std::strerror(errno));
            }
          } else {
            std::fprintf(stderr, "cannot open %s\n", tmp.c_str());
          }
        }
      };
      std::signal(SIGTERM, HandleServeSignal);
      std::signal(SIGINT, HandleServeSignal);
      Result<TcpServeSummary> served = ServeTcp(service, tcp);
      std::signal(SIGTERM, SIG_DFL);
      std::signal(SIGINT, SIG_DFL);
      if (!served.ok()) return Fail(served.status());
      const TcpServeSummary& summary = served.value();
      std::fprintf(stderr, "served %llu requests over %llu connections (%s)\n",
                   static_cast<unsigned long long>(summary.requests),
                   static_cast<unsigned long long>(summary.connections),
                   summary.stopped   ? "stopped by signal"
                   : summary.drained ? "drained"
                                     : "connection limit");
      if (summary.stopped) {
        std::fprintf(stderr,
                     "shutdown: %d in flight, %d cancelled, graceful=%s, "
                     "waited %.3fs\n",
                     summary.shutdown.inflight_at_shutdown,
                     summary.shutdown.cancelled,
                     summary.shutdown.graceful ? "yes" : "no",
                     summary.shutdown.waited_seconds);
      }
      return kExitOk;
    }

    const ServeSummary summary = ServeLines(service, std::cin, std::cout);
    std::fprintf(stderr, "served %llu requests (%s)\n",
                 static_cast<unsigned long long>(summary.requests),
                 summary.drained ? "drained" : "stdin closed");
    return kExitOk;
  }();

  snapshot_stop.Cancel();
  if (snapshot_thread.joinable()) snapshot_thread.join();
  metrics_stop.Cancel();
  if (metrics_thread.joinable()) metrics_thread.join();

  if (!options.snapshot_path.empty()) {
    // The guaranteed final save: every serve exit path — EOF, drain verb,
    // SIGTERM, connection limit — lands here before the process exits, with
    // no dependency on the --snapshot-interval-seconds timer having fired.
    // Drain() saves exactly once before resetting warm state (a SIGTERM
    // path that already drained inside ServeTcp is a no-op here), which
    // also means the save's flight event is recorded before the --flight-out
    // dump below instead of being lost in the destructor.
    (void)service.Drain();
    std::fprintf(stderr, "final warm snapshot at %s\n",
                 options.snapshot_path.c_str());
  }

  if (!flight_path.empty()) {
    // Dumped on every exit path -- EOF, drain verb, SIGTERM shutdown -- so
    // the last-N request records survive the process. Confirmation goes to
    // stderr; stdout stays protocol-only.
    std::ofstream out(flight_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flight_path.c_str());
      return rc == kExitOk ? kExitRuntime : rc;
    }
    out << service.flight_recorder().ToJson() << "\n";
    std::fprintf(stderr, "wrote %s\n", flight_path.c_str());
  }
  return rc;
}

/// The dagperf binary to exec shard children with: $DAGPERF_BIN when set
/// (tests point it at the built CLI), else this very binary via
/// /proc/self/exe.
std::string SelfBinaryPath() {
  if (const char* env = std::getenv("DAGPERF_BIN");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return "dagperf";
}

/// Multi-process shard fleet: a consistent-hash router fronting N child
/// `dagperf serve` shards (router/router.h). Shard state lives under
/// --dir: per-shard snapshot dirs (warm restarts), port files, and logs.
int CmdRoute(const Args& args) {
  const int shards = args.GetInt("shards", 3);
  if (shards < 1) {
    return Fail(Status::InvalidArgument("--shards must be >= 1"));
  }
  const std::string dir = args.Get("dir", ".dagperf-fleet");
  ::mkdir(dir.c_str(), 0755);

  const std::string binary = SelfBinaryPath();
  const double scale = args.GetDouble("scale", 1.0);
  const int threads = args.GetInt("threads", 0);
  const double snapshot_interval =
      args.GetDouble("snapshot-interval-seconds", 5.0);

  std::vector<router::ShardSpec> specs;
  for (int i = 0; i < shards; ++i) {
    const std::string shard_id = "shard-" + std::to_string(i);
    const std::string shard_dir = dir + "/" + shard_id;
    ::mkdir(shard_dir.c_str(), 0755);
    router::ShardSpec spec;
    spec.shard_id = shard_id;
    spec.port_file = dir + "/" + shard_id + ".port";
    spec.stderr_file = dir + "/" + shard_id + ".log";
    spec.command = {binary,
                    "serve",
                    "--port",
                    "0",
                    "--port-file",
                    spec.port_file,
                    "--shard-id",
                    shard_id,
                    "--snapshot-dir",
                    shard_dir,
                    "--scale",
                    std::to_string(scale),
                    "--snapshot-interval-seconds",
                    std::to_string(snapshot_interval)};
    if (threads > 0) {
      spec.command.push_back("--threads");
      spec.command.push_back(std::to_string(threads));
    }
    specs.push_back(std::move(spec));
  }

  router::RouterOptions options;
  options.port = args.GetInt("port", 0);
  options.vnodes = args.GetInt("vnodes", 128);
  options.max_in_flight_per_shard = args.GetInt("max-in-flight", 64);
  options.probe_interval_seconds =
      args.GetDouble("probe-interval-ms", 50.0) / 1000.0;
  options.readmit_quorum = args.GetInt("readmit-quorum", 2);
  options.drain_grace_seconds = args.GetDouble("grace-seconds", 5.0);
  options.stop = ServeStopToken();
  const std::string port_file = args.Get("port-file", "");
  options.on_listen = [&port_file](int port) {
    std::fprintf(stderr, "router listening on 127.0.0.1:%d\n", port);
    if (!port_file.empty()) {
      const std::string tmp = port_file + ".tmp";
      std::ofstream out(tmp);
      if (out) {
        out << port << "\n";
        out.close();
        (void)::rename(tmp.c_str(), port_file.c_str());
      }
    }
  };

  obs::SetMetricsEnabled(true);
  std::fprintf(stderr, "dagperf route: %d shards under %s (scale %g)\n",
               shards, dir.c_str(), scale);

  router::Router fleet(std::move(specs), options);
  std::signal(SIGTERM, HandleServeSignal);
  std::signal(SIGINT, HandleServeSignal);
  Result<router::RouterSummary> served = fleet.Serve();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  const std::string flight_path = args.Get("flight-out", "");
  if (!flight_path.empty()) {
    std::ofstream out(flight_path);
    if (out) {
      out << fleet.flight_recorder().ToJson() << "\n";
      std::fprintf(stderr, "wrote %s\n", flight_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", flight_path.c_str());
    }
  }

  if (!served.ok()) return Fail(served.status());
  const router::RouterSummary& summary = served.value();
  std::fprintf(stderr,
               "routed %llu requests over %llu connections "
               "(%llu reroutes, %llu restarts, %llu sheds; %s)\n",
               static_cast<unsigned long long>(summary.requests),
               static_cast<unsigned long long>(summary.connections),
               static_cast<unsigned long long>(summary.reroutes),
               static_cast<unsigned long long>(summary.restarts),
               static_cast<unsigned long long>(summary.sheds),
               summary.stopped ? "stopped by signal" : "drained");
  return kExitOk;
}

/// Connects to a local `dagperf serve --port` server, sends one request
/// line, and invokes `on_line` per response line until it returns false or
/// the peer closes. Used by `metrics` (one response) and `top` (a stream of
/// watch frames).
Status QueryServer(int port, const std::string& request,
                   const std::function<bool(const std::string&)>& on_line) {
  protocol::LineClient client;
  if (Status connected = client.Connect(port); !connected.ok()) {
    return Status::Unavailable(connected.message() +
                               " (is `dagperf serve --port` running?)");
  }
  if (Status sent = client.SendLine(request); !sent.ok()) return sent;
  for (;;) {
    // `top` subscriptions stream frames indefinitely; the deadline only
    // bounds one poll slice, so a quiet watch stream keeps waiting.
    Result<protocol::LineClient::LineOrClose> got = client.RecvLine(3600.0);
    if (!got.ok()) {
      if (got.status().code() == ErrorCode::kDeadlineExceeded) continue;
      return got.status();
    }
    if (got.value().closed) return Status::Ok();
    if (!got.value().line.empty() && !on_line(got.value().line)) {
      return Status::Ok();
    }
  }
}

/// Prints a server's metric registry (or, without --port, this process's
/// own) as JSON or Prometheus text.
int CmdMetrics(const Args& args) {
  const bool prom = args.options.count("prom") > 0;
  if (args.options.count("port") == 0) {
    // Local mode: the current process's registry — an empty-but-armed
    // registry is still useful for eyeballing the exposition format.
    obs::SetMetricsEnabled(true);
    if (prom) {
      std::printf("%s", obs::WritePrometheusText().c_str());
    } else {
      std::printf("%s\n", obs::MetricsRegistry::Default().ToJson().c_str());
    }
    return kExitOk;
  }
  const int port = args.GetInt("port", 0);
  const std::string request =
      prom ? R"({"op":"metrics","format":"prom","id":1})"
           : R"({"op":"metrics","id":1})";
  int rc = kExitRuntime;
  const Status status =
      QueryServer(port, request, [&](const std::string& line) {
        Result<Json> parsed = Json::Parse(line);
        if (!parsed.ok()) return false;
        if (!parsed->GetBool("ok", false)) {
          std::fprintf(stderr, "server error: %s\n", line.c_str());
          return false;
        }
        const Json* result = parsed->Get("result");
        if (result == nullptr) return false;
        if (prom) {
          std::printf("%s", result->GetString("text", "").c_str());
        } else {
          std::printf("%s\n", result->Dump().c_str());
        }
        rc = kExitOk;
        return false;  // One response; done.
      });
  if (!status.ok()) return Fail(status);
  return rc;
}

/// Live serving dashboard: subscribes to a server's `watch` stream and
/// renders one line per frame — RPS, latency quantiles, error and cache hit
/// rates, queue depth, breaker states — until the stream ends (server
/// drained, --iterations reached, or connection lost).
int CmdTop(const Args& args) {
  if (args.options.count("port") == 0) {
    return Fail(Status::InvalidArgument(
        "top needs --port P of a running `dagperf serve --port`"));
  }
  const int port = args.GetInt("port", 0);
  const int interval_ms = args.GetInt("interval-ms", 1000);
  const int iterations = args.GetInt("iterations", 0);
  const std::string request = "{\"op\":\"watch\",\"interval_ms\":" +
                              std::to_string(interval_ms) +
                              ",\"count\":" + std::to_string(iterations) +
                              ",\"id\":1}";
  std::printf("%8s %9s %9s %7s %7s %6s %6s  %s\n", "rps", "p50(ms)",
              "p99(ms)", "err%", "dl-hit%", "hit%", "queue", "breakers");
  int rc = kExitRuntime;
  int frames = 0;
  const Status status =
      QueryServer(port, request, [&](const std::string& line) {
        Result<Json> parsed = Json::Parse(line);
        if (!parsed.ok()) return true;  // Tolerate a torn line.
        if (!parsed->GetBool("ok", false)) {
          std::fprintf(stderr, "server error: %s\n", line.c_str());
          return false;
        }
        const Json* result = parsed->Get("result");
        const Json* slo = result ? result->Get("slo_10s") : nullptr;
        const Json* stats = result ? result->Get("stats") : nullptr;
        if (slo == nullptr || stats == nullptr) return false;
        const Json* cache = stats->Get("cache");
        std::string breakers;
        if (const Json* b = result->Get("breakers");
            b != nullptr && b->type() == Json::Type::kObject) {
          for (const auto& [name, value] : b->AsObject()) {
            // "resilience.breaker_state[.cluster]" -> cluster name.
            std::string cluster = name.size() > 24 ? name.substr(25) : "default";
            const int state = static_cast<int>(value.AsNumber());
            if (!breakers.empty()) breakers += " ";
            breakers += cluster + ":" +
                        (state == 0 ? "closed"
                                    : state == 1 ? "open" : "half-open");
          }
        }
        if (breakers.empty()) breakers = "-";
        std::printf("%8.1f %9.2f %9.2f %6.1f%% %6.1f%% %5.0f%% %6.0f  %s\n",
                    slo->GetNumber("rps", 0.0), slo->GetNumber("p50_ms", 0.0),
                    slo->GetNumber("p99_ms", 0.0),
                    100.0 * slo->GetNumber("error_rate", 0.0),
                    100.0 * slo->GetNumber("deadline_hit_rate", 1.0),
                    100.0 * (cache ? cache->GetNumber("hit_rate", 0.0) : 0.0),
                    stats->GetNumber("queue_depth", 0.0), breakers.c_str());
        std::fflush(stdout);
        rc = kExitOk;
        // The server stops sending after `count` frames but leaves the
        // connection open for the next request; stop reading client-side.
        return iterations == 0 || ++frames < iterations;
      });
  if (!status.ok()) return Fail(status);
  return rc;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) return Usage();
    const std::string key = arg + 2;
    // Valueless switches; everything else is a --key VALUE pair.
    if (key == "stdio" || key == "prom") {
      args.options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) return Usage();
    args.options[key] = argv[++i];
  }
  // Observability flags apply to every command: enable collection before
  // dispatch, dump after. This is the library's own obs layer observing the
  // run — commands need no per-command wiring beyond what they trace.
  const std::string metrics_path = args.Get("metrics-json", "");
  const std::string trace_path = args.Get("trace-out", "");
  if (!metrics_path.empty()) obs::SetMetricsEnabled(true);
  if (!trace_path.empty()) obs::TraceRecorder::Default().SetEnabled(true);

  // Writes the observability dumps. Runs on EVERY exit path through Main —
  // error exits (2/3/4) and the FlagError catch included — because a failed
  // run is exactly when the collected telemetry matters. Returns the exit
  // code to use: `rc` normally, kExitRuntime when a dump itself failed on
  // an otherwise-clean run (a command's own error always wins).
  const auto dump_observability = [&](int rc) -> int {
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
        if (rc == kExitOk) rc = kExitRuntime;
      } else {
        out << obs::MetricsRegistry::Default().ToJson() << "\n";
        std::printf("wrote %s\n", metrics_path.c_str());
      }
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
        if (rc == kExitOk) rc = kExitRuntime;
      } else {
        obs::TraceRecorder::Default().Write(out);
        std::printf("wrote %s\n", trace_path.c_str());
      }
    }
    return rc;
  };

  int rc;
  try {
    if (args.command == "list") {
      rc = CmdList();
    } else if (args.command == "export") {
      rc = CmdExport(args);
    } else if (args.command == "simulate") {
      rc = CmdSimulate(args);
    } else if (args.command == "estimate") {
      rc = CmdEstimate(args);
    } else if (args.command == "explain") {
      rc = CmdExplain(args);
    } else if (args.command == "compare") {
      rc = CmdCompare(args);
    } else if (args.command == "sweep") {
      rc = CmdSweep(args);
    } else if (args.command == "tune") {
      rc = CmdTune(args);
    } else if (args.command == "serve") {
      rc = CmdServe(args);
    } else if (args.command == "route") {
      rc = CmdRoute(args);
    } else if (args.command == "metrics") {
      rc = CmdMetrics(args);
    } else if (args.command == "top") {
      rc = CmdTop(args);
    } else {
      return Usage();
    }
  } catch (const FlagError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return dump_observability(kExitInvalid);
  }
  return dump_observability(rc);
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) { return dagperf::Main(argc, argv); }
