// Capacity planning with the cost models (the paper's motivating
// application, §I: "capacity planning on the cloud"): find the smallest
// cluster that finishes a nightly analytics DAG within its deadline. The
// estimator evaluates each candidate size in well under a millisecond, so
// the search is effectively free; the chosen size is then validated against
// the simulator.
//
// Build & run:  ./build/examples/capacity_planner

#include <cstdio>

#include "common/stats.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "sim/simulator.h"
#include "workloads/micro.h"
#include "workloads/tpch.h"

namespace {

using namespace dagperf;

DagWorkflow NightlyBatch() {
  DagBuilder b("nightly-batch");
  b.AddJob(TsSpec(Bytes::FromGB(100)));  // Log re-sort.
  AppendTpchQuery(b, 5);                 // Revenue report.
  AppendTpchQuery(b, 1);                 // Pricing summary.
  return std::move(b).Build().value();
}

double EstimateSeconds(const DagWorkflow& flow, int nodes) {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.num_nodes = nodes;
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  return estimator.Estimate(flow, source).value().makespan.seconds();
}

}  // namespace

int main() {
  const DagWorkflow flow = NightlyBatch();
  const double deadline_s = 300.0;
  std::printf("workflow '%s' (%d jobs), deadline %.0f s\n", flow.name().c_str(),
              flow.num_jobs(), deadline_s);

  int chosen = -1;
  for (int nodes = 2; nodes <= 64; ++nodes) {
    const double est = EstimateSeconds(flow, nodes);
    if (nodes <= 8 || nodes % 8 == 0 || (est <= deadline_s && chosen < 0)) {
      std::printf("  %2d nodes -> estimated %7.1f s%s\n", nodes, est,
                  est <= deadline_s ? "  <= deadline" : "");
    }
    if (est <= deadline_s) {
      chosen = nodes;
      break;
    }
  }
  if (chosen < 0) {
    std::printf("no cluster size up to 64 nodes meets the deadline\n");
    return 1;
  }

  // Validate the pick against the simulator.
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.num_nodes = chosen;
  const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
  const double truth = sim.Run(flow).value().makespan().seconds();
  std::printf("\nchosen size: %d nodes; simulated makespan %.1f s (%s deadline)\n",
              chosen, truth, truth <= deadline_s ? "meets" : "misses");
  return 0;
}
