// Capacity planning with the cost models (the paper's motivating
// application, §I: "capacity planning on the cloud"): find the smallest
// cluster that finishes a nightly analytics DAG within its deadline. All
// candidate sizes are priced in a single EstimateBatch call — the sweep
// engine fans the candidates across a worker pool and shares task-time work
// through the memo cache — and the chosen size is then validated against
// the simulator.
//
// Build & run:  ./build/examples/capacity_planner

#include <cstdio>

#include <dagperf/dagperf.h>

namespace {

using namespace dagperf;

DagWorkflow NightlyBatch() {
  DagBuilder b("nightly-batch");
  b.AddJob(TsSpec(Bytes::FromGB(100)));  // Log re-sort.
  AppendTpchQuery(b, 5);                 // Revenue report.
  AppendTpchQuery(b, 1);                 // Pricing summary.
  return std::move(b).Build().value();
}

}  // namespace

int main() {
  const DagWorkflow flow = NightlyBatch();
  const double deadline_s = 300.0;
  std::printf("workflow '%s' (%d jobs), deadline %.0f s\n", flow.name().c_str(),
              flow.num_jobs(), deadline_s);

  // One what-if request per candidate size, priced as a single batch.
  const BoeModel boe(ClusterSpec::PaperCluster().node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  std::vector<SweepCandidate> requests;
  for (int nodes = 2; nodes <= 64; ++nodes) {
    ClusterSpec cluster = ClusterSpec::PaperCluster();
    cluster.num_nodes = nodes;
    requests.push_back({&flow, cluster, std::to_string(nodes) + " nodes"});
  }
  const SweepResult sweep = EstimateBatch(requests, SchedulerConfig{}, source);

  int chosen = -1;
  for (size_t i = 0; i < requests.size(); ++i) {
    const int nodes = requests[i].cluster.num_nodes;
    if (!sweep.estimates[i].ok()) {
      std::fprintf(stderr, "%d nodes: %s\n", nodes,
                   sweep.estimates[i].status().ToString().c_str());
      return 1;
    }
    const double est = sweep.estimates[i]->makespan.seconds();
    const bool meets = est <= deadline_s;
    if (nodes <= 8 || nodes % 8 == 0 || (meets && chosen < 0)) {
      std::printf("  %2d nodes -> estimated %7.1f s%s\n", nodes, est,
                  meets ? "  <= deadline" : "");
    }
    if (meets && chosen < 0) chosen = nodes;
  }
  std::printf("sweep: %d candidates, task-time cache hit rate %.0f%%\n",
              sweep.stats.candidates, 100.0 * sweep.stats.cache_hit_rate);
  if (chosen < 0) {
    std::printf("no cluster size up to 64 nodes meets the deadline\n");
    return 1;
  }

  // Validate the pick against the simulator.
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  cluster.num_nodes = chosen;
  const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
  const double truth = sim.Run(flow).value().makespan().seconds();
  std::printf("\nchosen size: %d nodes; simulated makespan %.1f s (%s deadline)\n",
              chosen, truth, truth <= deadline_s ? "meets" : "misses");
  return 0;
}
