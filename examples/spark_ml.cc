// Modelling a Spark-style application: an iterative ML training job whose
// stage DAG (narrow cache reads, wide model-update shuffles) compiles into
// the library's MapReduce DAG — exercising the paper's claim that the cost
// models extend to Spark/Tez. Shows the value of RDD caching as a
// model-predicted what-if, validated against the simulator.
//
// Build & run:  ./build/examples/spark_ml

#include <cstdio>

#include <dagperf/dagperf.h>

namespace {

using namespace dagperf;

double Predict(const DagWorkflow& flow, const ClusterSpec& cluster) {
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  return estimator.Estimate(flow, source).value().makespan.seconds();
}

}  // namespace

int main() {
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const SparkAppSpec cached_app = IterativeMlApp(Bytes::FromGB(50), 5);
  SparkAppSpec uncached_app = cached_app;
  uncached_app.stages[0].cache_output = false;
  uncached_app.name = "iterative-ml-nocache";

  const DagWorkflow cached = CompileSparkApp(cached_app).value();
  const DagWorkflow uncached = CompileSparkApp(uncached_app).value();
  std::printf("stage DAG compiled to %d MapReduce jobs\n", cached.num_jobs());
  for (JobId id = 0; id < cached.num_jobs(); ++id) {
    const JobSpec& spec = cached.job(id).spec;
    std::printf("  %-12s input %-8s cache %.0f%% %s\n", spec.name.c_str(),
                spec.input.ToString().c_str(), 100 * spec.input_cache_fraction,
                cached.job(id).has_reduce() ? "(shuffles)" : "(map-only)");
  }

  const double t_cached = Predict(cached, cluster);
  const double t_uncached = Predict(uncached, cluster);
  std::printf("\npredicted training time with RDD cache:    %7.1f s\n", t_cached);
  std::printf("predicted training time without the cache: %7.1f s (%.2fx slower)\n",
              t_uncached, t_uncached / t_cached);

  // Validate the cached prediction against the simulator.
  const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
  const double truth = sim.Run(cached)->makespan().seconds();
  std::printf("simulated with cache: %.1f s (prediction accuracy %.1f%%)\n", truth,
              100 * RelativeAccuracy(t_cached, truth));
  return 0;
}
