// Progress indication for a running DAG — the ParaTimer application the
// paper cites. The estimated plan drives a progress readout while the
// simulator plays the role of the live cluster; when a stage completes at a
// different time than planned, the indicator re-anchors the remaining plan.
//
// Build & run:  ./build/examples/progress_monitor

#include <algorithm>
#include <cstdio>

#include <dagperf/dagperf.h>

int main() {
  using namespace dagperf;

  const DagWorkflow flow = TpchQueryFlow(5).value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();

  // Plan before launch.
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  ProgressIndicator progress(estimator.Estimate(flow, source).value());
  std::printf("planned makespan for %s: %.1f s\n", flow.name().c_str(),
              progress.plan().makespan.seconds());

  // "Run" the query (simulated stand-in for the cluster).
  const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
  const SimResult actual = sim.Run(flow).value();

  // Periodic progress readout, re-anchoring on each observed stage end.
  std::printf("\n%-8s %-9s %-10s %s\n", "t (s)", "done", "remaining", "running");
  size_t next_observation = 0;
  auto stages_by_end = actual.stages();
  std::sort(stages_by_end.begin(), stages_by_end.end(),
            [](const StageRecord& a, const StageRecord& b) { return a.end < b.end; });
  const double total = actual.makespan().seconds();
  for (double t = 0; t < total; t += total / 8) {
    while (next_observation < stages_by_end.size() &&
           stages_by_end[next_observation].end <= t) {
      const StageRecord& s = stages_by_end[next_observation++];
      (void)progress.ObserveStageCompletion(s.job, s.stage, Duration(s.end));
    }
    std::string running;
    for (const auto& r : progress.RunningAt(Duration(t))) {
      if (!running.empty()) running += ", ";
      running += flow.job(r.job).name + "/" + StageKindName(r.kind);
    }
    std::printf("%-8.1f %-9.1f%% %-10.1f %s\n", t,
                100 * progress.CompletionAt(Duration(t)),
                progress.RemainingAt(Duration(t)).seconds(),
                running.empty() ? "(draining)" : running.c_str());
  }
  std::printf("\nfinal plan after observations: %.1f s (actual %.1f s)\n",
              progress.plan().makespan.seconds(), total);
  return 0;
}
