// What-if analysis for a hybrid workload: TPC-H Q5 sharing the cluster with
// a 100 GB WordCount. The cost models answer, in microseconds, questions
// that would take cluster-hours to measure: how much slower does Q5 get
// next to WordCount, and what does doubling the cluster buy?
//
// One configuration is cross-checked against the simulator to show the
// estimates are trustworthy.
//
// Build & run:  ./build/examples/tpch_whatif

#include <cstdio>

#include <dagperf/dagperf.h>

namespace {

using namespace dagperf;

double EstimateSeconds(const DagWorkflow& flow, const ClusterSpec& cluster) {
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  return estimator.Estimate(flow, source).value().makespan.seconds();
}

DagWorkflow QueryAlone() {
  DagBuilder b("Q5-alone");
  AppendTpchQuery(b, 5);
  return std::move(b).Build().value();
}

DagWorkflow QueryWithWordCount() {
  DagBuilder b("Q5+WC");
  b.AddJob(WordCountSpec());
  AppendTpchQuery(b, 5);
  return std::move(b).Build().value();
}

}  // namespace

int main() {
  const ClusterSpec cluster11 = ClusterSpec::PaperCluster();
  ClusterSpec cluster22 = cluster11;
  cluster22.num_nodes = 22;

  const DagWorkflow alone = QueryAlone();
  const DagWorkflow hybrid = QueryWithWordCount();

  const double q5_alone_11 = EstimateSeconds(alone, cluster11);
  const double hybrid_11 = EstimateSeconds(hybrid, cluster11);
  const double hybrid_22 = EstimateSeconds(hybrid, cluster22);

  std::printf("Q5 alone,        11 nodes: %7.1f s\n", q5_alone_11);
  std::printf("Q5 + WC (100 GB), 11 nodes: %7.1f s  (contention cost: +%.0f%%)\n",
              hybrid_11, 100 * (hybrid_11 / q5_alone_11 - 1.0));
  std::printf("Q5 + WC (100 GB), 22 nodes: %7.1f s  (scale-out speedup: %.2fx)\n",
              hybrid_22, hybrid_11 / hybrid_22);

  // Cross-check the 11-node hybrid estimate against the simulator.
  const Simulator sim(cluster11, SchedulerConfig{}, SimOptions{});
  const double truth = sim.Run(hybrid).value().makespan().seconds();
  std::printf("\nsimulated Q5 + WC on 11 nodes: %.1f s  (estimate accuracy %.1f%%)\n",
              truth, 100 * RelativeAccuracy(hybrid_11, truth));
  return 0;
}
