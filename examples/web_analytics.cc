// The paper's Fig. 1 scenario end to end: a four-job web-analytics DAG whose
// parallel jobs (page-view counting and duration sorting) contend for
// cluster resources, making the same map task run at different speeds in
// different workflow states. The example simulates the DAG, prints the
// observed execution plan, and shows the state-based estimate tracking it.
//
// Build & run:  ./build/examples/web_analytics

#include <cstdio>

#include <dagperf/dagperf.h>

int main() {
  using namespace dagperf;

  const DagWorkflow flow = WebAnalyticsFlow(Bytes::FromGB(100)).value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  std::printf("workflow '%s': %d jobs, %d stages\n", flow.name().c_str(),
              flow.num_jobs(), flow.TotalStages());
  for (JobId id = 0; id < flow.num_jobs(); ++id) {
    std::printf("  %-14s input %-8s parents:", flow.job(id).name.c_str(),
                flow.job(id).spec.input.ToString().c_str());
    for (JobId p : flow.parents(id)) std::printf(" %s", flow.job(p).name.c_str());
    std::printf("\n");
  }

  // Ground truth execution.
  const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
  const SimResult truth = sim.Run(flow).value();
  std::printf("\nsimulated makespan: %.1f s, %zu workflow states\n",
              truth.makespan().seconds(), truth.states().size());

  // The phenomenon from the paper's introduction: the map-task time of the
  // page-view job varies across states as the sort job's demands shift.
  std::printf("\nj2-pageviews map-task time by workflow state:\n");
  for (const auto& state : truth.states()) {
    const std::vector<double> durations =
        truth.TaskDurationsInState(1, StageKind::kMap, state.index);
    if (durations.empty()) continue;
    std::string co;
    for (const auto& [job, kind] : state.running) {
      if (job == 1 && kind == StageKind::kMap) continue;
      if (!co.empty()) co += ", ";
      co += flow.job(job).name + "/" + StageKindName(kind);
    }
    std::printf("  state %d: median %5.1f s  (co-running: %s)\n", state.index,
                ComputeStats(durations).median, co.empty() ? "none" : co.c_str());
  }

  // Model-side prediction without observing the run: BOE task times inside
  // the state-based estimator.
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  const DagEstimate estimate = estimator.Estimate(flow, source).value();
  std::printf("\nestimated makespan: %.1f s (accuracy %.1f%%)\n",
              estimate.makespan.seconds(),
              100 * RelativeAccuracy(estimate.makespan.seconds(),
                                     truth.makespan().seconds()));
  return 0;
}
