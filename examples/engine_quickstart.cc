// End-to-end loop from real execution to analytical prediction:
//
//   1. generate a synthetic text corpus,
//   2. run a REAL WordCount on the in-process MapReduce engine,
//   3. extract a measured job profile (selectivities, throughputs),
//   4. scale it to cluster size and predict with BOE + the state-based
//      estimator — the workflow a Starfish-style self-tuning system runs.
//
// Build & run:  ./build/examples/engine_quickstart

#include <cstdio>

#include <dagperf/dagperf.h>

int main() {
  using namespace dagperf;

  // 1. A 2 MB Zipf-distributed corpus (profiling runs are small).
  LocalStore store;
  GenerateText(store, "corpus", Bytes::FromMB(2), /*vocabulary=*/20000,
               /*zipf_s=*/1.05);
  std::printf("generated corpus: %zu bytes, %zu records\n",
              store.SizeBytes("corpus"), store.Read("corpus").value()->size());

  // 2. Execute WordCount for real.
  MapReduceEngine engine(&store);
  const EngineJobConfig job = WordCountJob("corpus", "counts");
  const JobMetrics metrics = engine.Run(job).value();
  std::printf("wordcount ran in %.3f s: %zu words in, %zu distinct words out\n",
              metrics.wall_seconds, metrics.map.records_in,
              metrics.reduce.records_out);
  std::printf("combiner shrank the shuffle to %.1f%% of the input\n",
              100.0 * metrics.shuffle_bytes / metrics.map.bytes_in);

  // 3. Turn the measurements into a model-ready JobSpec, scaled to 100 GB.
  ProfilingOptions options;
  options.input_scale = Bytes::FromGB(100).value() / metrics.map.bytes_in;
  options.defaults.compress_map_output = true;
  options.defaults.replicas = 3;
  const JobSpec spec = SpecFromMetrics(metrics, options).value();
  std::printf(
      "\nprofiled spec: input %s, map selectivity %.3f, reduce selectivity "
      "%.3f,\n  map compute %s/core, reduce compute %s/core\n",
      spec.input.ToString().c_str(), spec.map_selectivity, spec.reduce_selectivity,
      spec.map_compute.ToString().c_str(), spec.reduce_compute.ToString().c_str());

  // 4. Ask the analytical models about the scaled job on the paper cluster.
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const JobProfile profile = CompileJob(spec).value();
  const BoeModel boe(cluster.node);
  for (double delta : {1.0, 6.0, 12.0}) {
    const TaskEstimate est = boe.EstimateTask(profile.map, delta);
    std::printf("map task @ %4.1f tasks/node: %6.1f s (bottleneck %s)\n", delta,
                est.duration.seconds(), ResourceName(est.bottleneck));
  }
  DagBuilder builder("profiled-wordcount");
  builder.AddJob(spec);
  const DagWorkflow flow = std::move(builder).Build().value();
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  const DagEstimate estimate = estimator.Estimate(flow, source).value();
  std::printf("\npredicted 100 GB wordcount makespan on the paper cluster: %.1f s\n",
              estimate.makespan.seconds());
  return 0;
}
