// Quickstart: estimate task- and workflow-level execution times for a
// MapReduce job with the BOE model and the state-based estimator.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include <dagperf/dagperf.h>

int main() {
  using namespace dagperf;

  // 1. Describe the cluster (the paper's 11-node testbed ships as a preset).
  const ClusterSpec cluster = ClusterSpec::PaperCluster();

  // 2. Describe the job: data volumes, selectivities, per-core function
  //    throughputs. This is what a profiling run measures.
  JobSpec job;
  job.name = "log-scan";
  job.input = Bytes::FromGB(50);
  job.map_compute = Rate::MBps(40);   // Map function speed per core.
  job.map_selectivity = 0.2;          // Map output / input.
  job.compress_map_output = true;
  job.num_reduce_tasks = 64;
  job.reduce_compute = Rate::MBps(80);
  job.reduce_selectivity = 0.1;
  job.replicas = 3;

  // 3. Compile to per-sub-stage resource demands.
  const JobProfile profile = CompileJob(job).value();
  std::printf("%s: %d map tasks, %d reduce tasks\n", job.name.c_str(),
              profile.map.num_tasks, profile.reduce->num_tasks);

  // 4. Task-level BOE estimates at different degrees of parallelism: watch
  //    the bottleneck move as parallelism rises.
  const BoeModel boe(cluster.node);
  for (double tasks_per_node : {1.0, 6.0, 12.0}) {
    const TaskEstimate est = boe.EstimateTask(profile.map, tasks_per_node);
    std::printf("map task @ %4.1f tasks/node: %6.1f s  (bottleneck: %s)\n",
                tasks_per_node, est.duration.seconds(),
                ResourceName(est.bottleneck));
  }

  // 5. Workflow-level estimate via the state-based approach (Algorithm 1)
  //    with BOE-supplied task times.
  DagBuilder builder("quickstart-flow");
  builder.AddJob(job);
  const DagWorkflow flow = std::move(builder).Build().value();

  const BoeTaskTimeSource source(boe);
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  const DagEstimate estimate = estimator.Estimate(flow, source).value();
  std::printf("\nestimated workflow makespan: %.1f s across %zu states\n",
              estimate.makespan.seconds(), estimate.states.size());
  for (const auto& state : estimate.states) {
    std::printf("  state %d: %6.1f s, %zu running stage(s)\n", state.index,
                state.duration, estimate.running(state).size());
  }
  return 0;
}
