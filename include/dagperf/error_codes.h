#ifndef DAGPERF_ERROR_CODES_H_
#define DAGPERF_ERROR_CODES_H_

/// Stable error vocabulary, shared by the C++ API (Status/Result in
/// common/status.h) and the NDJSON wire protocol (error.code /
/// error.retryable in service/protocol.h). Declared once here so the two
/// surfaces cannot drift: a new code is added to this enum, named in
/// ErrorCodeName, and classified in IsRetryable — nowhere else.
///
/// Compatibility contract (see docs/api.md): existing enumerators keep their
/// numeric values and wire names across minor releases; new codes may be
/// appended. Clients should treat unknown wire names as non-retryable unless
/// error.retryable says otherwise.

namespace dagperf {

/// Error vocabulary for fallible library operations. The library does not
/// throw across its public API; construction helpers and algorithms that can
/// fail return Status or Result<T>.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  /// The caller-supplied Deadline expired before the operation finished.
  /// Partial results (e.g. a sweep's already-evaluated candidates) are still
  /// returned by APIs that document it.
  kDeadlineExceeded,
  /// A CancelToken observed by the operation was cancelled.
  kCancelled,
  /// A bounded resource (the estimation service's admission queue) is full
  /// and the request was shed instead of queued. Retry later — backing off —
  /// with the same inputs.
  kResourceExhausted,
  /// The serving path is temporarily refusing work: the service is shutting
  /// down mid-request, or a circuit breaker opened after repeated failures.
  /// Retryable — the same request succeeds against a healthy (or restarted)
  /// server.
  kUnavailable,
};

/// Stable upper-snake-case name of a code ("INVALID_ARGUMENT", ...), the
/// vocabulary used by Status::ToString and the service wire protocol.
const char* ErrorCodeName(ErrorCode code);

/// Whether a failed operation is worth retrying with the same inputs.
/// kInternal failures (iteration guards, transient limits) may succeed on a
/// retry with adjusted limits; invalid input and expired budgets will not.
bool IsRetryable(ErrorCode code);

}  // namespace dagperf

#endif  // DAGPERF_ERROR_CODES_H_
