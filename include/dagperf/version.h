#ifndef DAGPERF_VERSION_H_
#define DAGPERF_VERSION_H_

/// Version of the dagperf public API (the <dagperf/dagperf.h> facade and the
/// serve wire protocol). Pre-1.0 semantics: a MINOR bump may change or
/// remove any surface that is not listed as stable in docs/api.md; MAJOR
/// stays 0 until the first stability promise. Compare numerically:
///
///   #if DAGPERF_VERSION_MAJOR == 0 && DAGPERF_VERSION_MINOR >= 9
///     // sharded fleet serving: router::Router consistent-hash front-end,
///     // protocol::LineClient, scoped snapshot import (warm handoff)
///   #endif
#define DAGPERF_VERSION_MAJOR 0
#define DAGPERF_VERSION_MINOR 9

/// "MAJOR.MINOR" as a string literal.
#define DAGPERF_VERSION_STRING "0.9"

#endif  // DAGPERF_VERSION_H_
