#ifndef DAGPERF_DAGPERF_H_
#define DAGPERF_DAGPERF_H_

/// The dagperf public facade: the one header downstream code includes.
///
///   #include <dagperf/dagperf.h>
///
/// Everything reachable from here is the supported API surface, versioned by
/// <dagperf/version.h> and documented in docs/api.md (which also spells out
/// the stability tiers — reaching into "src/..." headers directly works but
/// carries no compatibility promise). The examples/ directory compiles
/// against this header alone; CI enforces that.

#include <dagperf/version.h>

// Stable error-code vocabulary, shared by the C++ API and the wire protocol.
#include <dagperf/error_codes.h>

// Vocabulary: units, errors, Result<T>, budgets (cancellation + deadlines).
#include "common/cancel.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/arena.h"
#include "common/units.h"
#include "common/validation.h"

// Describing work and hardware: job specs, DAG workflows, cluster shapes.
#include "cluster/cluster_spec.h"
#include "dag/dag_workflow.h"
#include "dag/spec_io.h"
#include "dag/validate.h"
#include "workload/job_profile.h"
#include "workload/job_spec.h"

// The models: BOE task costs, DRF scheduling, the state-based estimator,
// what-if sweeps, explain reports, the discrete-event simulator baseline.
#include "boe/boe_model.h"
#include "model/explain.h"
#include "model/incremental.h"
#include "model/progress.h"
#include "model/snapshot.h"
#include "model/state_estimator.h"
#include "model/sweep.h"
#include "model/task_time_cache.h"
#include "model/task_time_source.h"
#include "scheduler/drf.h"
#include "sim/simulator.h"

// Resilience: client-side retry with jittered backoff, circuit breakers,
// the request watchdog, the CoDel-style overload/brownout controller, and
// the deterministic fault injector chaos tests drive (docs/robustness.md).
#include "resilience/circuit_breaker.h"
#include "resilience/fault.h"
#include "resilience/overload.h"
#include "resilience/retry.h"
#include "resilience/watchdog.h"

// The estimation service: long-lived serving entry point + NDJSON protocol,
// per-tenant DRF fair-share admission, plus the loopback /metrics HTTP
// endpoint for Prometheus scrapes. protocol::LineClient is the client-side
// framing shared by the router, benches, and the CLI.
#include "service/line_client.h"
#include "service/metrics_http.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"
#include "service/tenancy.h"

// Fleet serving (0.9): a consistent-hash router fronting N `dagperf serve`
// shards — supervision, health-checked readmission, warm-snapshot rejoin
// (docs/architecture.md, docs/robustness.md).
#include "router/health.h"
#include "router/ring.h"
#include "router/router.h"
#include "router/supervisor.h"

// Ready-made workloads: paper micro jobs, the Table III suite, TPC-H,
// Spark-ML shapes, the web-analytics running example.
#include "workloads/micro.h"
#include "workloads/spark.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"
#include "workloads/web_analytics.h"

// Execution engine (toy MapReduce used for ground-truth validation runs).
#include "engine/builtin.h"
#include "engine/datagen.h"
#include "engine/profiling.h"

// Observability: metrics registry, trace spans, per-request records +
// flight recorder, SLO sliding windows, Prometheus text rendering
// (docs/observability.md).
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/request_record.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "obs/window.h"

#endif  // DAGPERF_DAGPERF_H_
