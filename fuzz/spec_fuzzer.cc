// libFuzzer harness over the spec-ingestion surface. Build with
// -DDAGPERF_BUILD_FUZZERS=ON under clang; run as
//   ./spec_fuzzer fuzz/corpus -max_total_time=60
// Crashes reproduce with ./spec_fuzzer <crash-file>; minimised inputs
// belong in fuzz/corpus/ so the replay test pins the fix.

#include <cstddef>
#include <cstdint>

#include "spec_ingestion.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return dagperf::RunSpecIngestion(data, size);
}
