#ifndef DAGPERF_FUZZ_PROTOCOL_INGESTION_H_
#define DAGPERF_FUZZ_PROTOCOL_INGESTION_H_

#include <cstddef>
#include <cstdint>

namespace dagperf {

/// Shared fuzz entry point for the NDJSON serving surface: treats `data` as
/// a whole client session (any mix of torn lines, oversized frames, CRLF,
/// NUL bytes, valid and malformed requests) and pumps it through ServeLines
/// against a real single-threaded EstimationService with a small line cap so
/// the framing limits are actually reachable. Any input must produce one
/// response line per request line and a clean return — never an abort, an
/// uncaught exception, or UB.
///
/// Used by both the libFuzzer harness (protocol_fuzzer.cc) and the
/// checked-in corpus replay test (corpus_replay for corpus_protocol/), so
/// every corpus file doubles as a regression test in plain ctest runs.
/// Always returns 0 (the libFuzzer convention for "input consumed").
int RunProtocolIngestion(const uint8_t* data, size_t size);

}  // namespace dagperf

#endif  // DAGPERF_FUZZ_PROTOCOL_INGESTION_H_
