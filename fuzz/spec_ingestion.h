#ifndef DAGPERF_FUZZ_SPEC_INGESTION_H_
#define DAGPERF_FUZZ_SPEC_INGESTION_H_

#include <cstddef>
#include <cstdint>

namespace dagperf {

/// Shared fuzz entry point for the spec-ingestion surface: treats `data` as
/// JSON text and drives it through Json::Parse, WorkflowFromJson, and
/// JobSpecFromJson. Any input must produce either a workflow or a clean
/// Status — never a DAGPERF_CHECK abort, an uncaught exception, or UB.
///
/// Used by both the libFuzzer harness (spec_fuzzer.cc) and the checked-in
/// corpus replay test (corpus_replay.cc), so every corpus file doubles as a
/// regression test in plain ctest runs. Always returns 0 (the libFuzzer
/// convention for "input consumed").
int RunSpecIngestion(const uint8_t* data, size_t size);

}  // namespace dagperf

#endif  // DAGPERF_FUZZ_SPEC_INGESTION_H_
