// libFuzzer harness over the NDJSON serving surface. Build with
// -DDAGPERF_BUILD_FUZZERS=ON under clang; run as
//   ./protocol_fuzzer fuzz/corpus_protocol -max_total_time=60
// Crashes reproduce with ./protocol_fuzzer <crash-file>; minimised inputs
// belong in fuzz/corpus_protocol/ so the replay test pins the fix.

#include <cstddef>
#include <cstdint>

#include "protocol_ingestion.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return dagperf::RunProtocolIngestion(data, size);
}
