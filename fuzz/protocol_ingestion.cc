#include "protocol_ingestion.h"

#include <sstream>
#include <string>

#include "service/server.h"
#include "service/service.h"
#include "workloads/suite.h"

namespace dagperf {

namespace {

/// A small line cap so corpus inputs can actually cross the limit without
/// being megabytes on disk.
constexpr std::size_t kFuzzMaxLineBytes = 512;

Result<DagWorkflow> FuzzFlow() {
  Result<NamedFlow> named = TableThreeFlow("TS-Q6", 0.01);
  if (!named.ok()) return named.status();
  return std::move(named).value().flow;
}

}  // namespace

int RunProtocolIngestion(const uint8_t* data, size_t size) {
  // A fresh service per input: a drain verb in the stream flips the service
  // into draining for good, which must not leak into the next input.
  ServiceOptions options;
  options.threads = 1;
  options.max_queue_depth = 8;
  EstimationService service(options);
  Result<DagWorkflow> flow = FuzzFlow();
  if (flow.ok()) {
    (void)service.RegisterWorkflow("q6", *flow);
  }

  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  std::ostringstream out;
  const ServeSummary summary =
      ServeLines(service, in, out, kFuzzMaxLineBytes);
  // Cheap self-checks the sanitizers can't do: every response line the pump
  // produced is itself one line of valid JSON.
  const std::string responses = out.str();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < responses.size()) {
    std::size_t end = responses.find('\n', start);
    if (end == std::string::npos) end = responses.size();
    ++lines;
    start = end + 1;
  }
  // One response per handled request (oversized/garbage lines included —
  // they get error responses, they are not swallowed).
  if (lines < summary.requests) __builtin_trap();
  return 0;
}

}  // namespace dagperf
