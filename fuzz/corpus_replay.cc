// Replays every file under the corpus directories given on the command line
// through a fuzz entry point, as an ordinary ctest. This keeps the corpora
// (including minimised crash inputs from past fuzz runs) exercised on every
// build, without requiring a fuzzer-enabled toolchain.
//
// Directories are replayed through the spec-ingestion entry point by
// default; a directory preceded by --protocol goes through the NDJSON
// protocol entry point instead:
//   corpus_replay fuzz/corpus --protocol fuzz/corpus_protocol

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "protocol_ingestion.h"
#include "spec_ingestion.h"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: corpus_replay [--spec|--protocol] CORPUS_DIR...\n");
    return 2;
  }
  int replayed = 0;
  int (*entry)(const std::uint8_t*, std::size_t) = dagperf::RunSpecIngestion;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0) {
      entry = dagperf::RunSpecIngestion;
      continue;
    }
    if (std::strcmp(argv[i], "--protocol") == 0) {
      entry = dagperf::RunProtocolIngestion;
      continue;
    }
    const fs::path root(argv[i]);
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "not a directory: %s\n", argv[i]);
      return 2;
    }
    for (const auto& file : fs::recursive_directory_iterator(root)) {
      if (!file.is_regular_file()) continue;
      std::ifstream in(file.path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", file.path().c_str());
        return 1;
      }
      const std::string bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      // Any abort, sanitizer report, or uncaught exception fails the test by
      // killing the process; a normal return is a pass.
      entry(reinterpret_cast<const std::uint8_t*>(bytes.data()),
            bytes.size());
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "corpus is empty\n");
    return 1;
  }
  std::printf("replayed %d corpus inputs\n", replayed);
  return 0;
}
