// Replays every file under the corpus directories given on the command line
// through the fuzz entry point, as an ordinary ctest. This keeps the corpus
// (including minimised crash inputs from past fuzz runs) exercised on every
// build, without requiring a fuzzer-enabled toolchain.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "spec_ingestion.h"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: corpus_replay CORPUS_DIR...\n");
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "not a directory: %s\n", argv[i]);
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", entry.path().c_str());
        return 1;
      }
      const std::string bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      // Any abort, sanitizer report, or uncaught exception fails the test by
      // killing the process; a normal return is a pass.
      dagperf::RunSpecIngestion(
          reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "corpus is empty\n");
    return 1;
  }
  std::printf("replayed %d corpus inputs\n", replayed);
  return 0;
}
