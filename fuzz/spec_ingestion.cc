#include "spec_ingestion.h"

#include <string>

#include "common/json.h"
#include "dag/spec_io.h"

namespace dagperf {

int RunSpecIngestion(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const Result<Json> doc = Json::Parse(text);
  if (!doc.ok()) return 0;
  // Statuses are intentionally dropped: the property under test is that the
  // ingestion path terminates normally on arbitrary parseable documents,
  // not what it decides about them.
  (void)WorkflowFromJson(*doc);
  (void)JobSpecFromJson(*doc);
  return 0;
}

}  // namespace dagperf
