// E8 (§V-C "Execution time"): the latency of computing the cost models —
// the property that makes them usable inside runtime optimisers. google-
// benchmark microbenchmarks of (1) one BOE task estimate, (2) the fair-share
// rate solver, (3) DRF allocation, and (4) the full state-based estimation
// of representative DAG workflows. The paper's bound is < 1 s per workflow.
//
// The custom main additionally measures the observability layer's cost on
// the estimator hot path — throughput with metrics disabled vs enabled vs
// span tracing on — and writes BENCH_overhead.json. The disabled overhead is
// number the obs layer's "off ~= free" contract is judged by (budget: <= 2%).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "boe/boe_model.h"
#include "cluster/rate_solver.h"
#include "common/json.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scheduler/drf.h"
#include "workloads/micro.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

void BM_BoeEstimateTask(benchmark::State& state) {
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel model(cluster.node);
  const JobProfile profile = CompileJob(TsSpec()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EstimateTask(profile.map, 12.0));
  }
}
BENCHMARK(BM_BoeEstimateTask);

void BM_RateSolver(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  ResourceVector caps = ClusterSpec::PaperCluster().node.Capacities();
  std::vector<Flow> population;
  for (int i = 0; i < flows; ++i) {
    Flow f;
    f.population = 1 + i % 3;
    f.demand[Resource::kDiskRead] = 1e6 * (1 + i % 7);
    f.demand[Resource::kNetwork] = 1e6 * (1 + i % 5);
    f.demand[Resource::kCpu] = 0.1 * (1 + i % 4);
    f.per_task_cap[Resource::kCpu] = 1.0;
    population.push_back(f);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveRates(caps, population));
  }
}
BENCHMARK(BM_RateSolver)->Arg(4)->Arg(16)->Arg(64);

void BM_DrfAllocate(benchmark::State& state) {
  const DrfAllocator allocator(ClusterSpec::PaperCluster(), SchedulerConfig{});
  std::vector<StageDemand> demands(4);
  for (auto& d : demands) d.remaining_tasks = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.Allocate(demands));
  }
}
BENCHMARK(BM_DrfAllocate);

void BM_EstimateWorkflow(benchmark::State& state, const std::string& name) {
  const NamedFlow nf = TableThreeFlow(name).value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(nf.flow, source));
  }
}
BENCHMARK_CAPTURE(BM_EstimateWorkflow, wc_ts, std::string("WC-TS"));
BENCHMARK_CAPTURE(BM_EstimateWorkflow, ts_q5, std::string("TS-Q5"));
BENCHMARK_CAPTURE(BM_EstimateWorkflow, wc_q21, std::string("WC-Q21"));  // 10 jobs.
BENCHMARK_CAPTURE(BM_EstimateWorkflow, ts_pr, std::string("TS-PR"));

/// Estimates per second over a fixed repetition count under the current
/// obs configuration.
double EstimateRate(const DagWorkflow& flow, const StateBasedEstimator& estimator,
                    const BoeTaskTimeSource& source, int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    benchmark::DoNotOptimize(estimator.Estimate(flow, source));
    // Bound trace memory: each estimate records O(states) spans.
    if (i % 64 == 0) obs::TraceRecorder::Default().Clear();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return reps / seconds;
}

/// Measures estimator throughput metrics-off / metrics-on / tracing-on and
/// writes BENCH_overhead.json with the relative overheads. (BENCH_obs.json
/// is bench_obs's request-observability artifact.)
void WriteObsOverhead() {
  const NamedFlow nf = TableThreeFlow("WC-TS").value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});

  // Size reps so the disabled pass takes a few hundred milliseconds.
  const double probe = EstimateRate(nf.flow, estimator, source, 50);
  const int reps = std::max(200, static_cast<int>(probe * 0.3));

  EstimateRate(nf.flow, estimator, source, reps / 4);  // Warm-up.
  const double rate_off = EstimateRate(nf.flow, estimator, source, reps);

  obs::SetMetricsEnabled(true);
  const double rate_metrics = EstimateRate(nf.flow, estimator, source, reps);
  obs::TraceRecorder::Default().SetEnabled(true);
  const double rate_trace = EstimateRate(nf.flow, estimator, source, reps);
  obs::TraceRecorder::Default().SetEnabled(false);
  obs::TraceRecorder::Default().Clear();
  obs::SetMetricsEnabled(false);

  const auto overhead_pct = [&](double rate) {
    return rate > 0 ? (rate_off / rate - 1.0) * 100.0 : 0.0;
  };
  Json doc = Json::MakeObject();
  doc.Set("bench", Json::MakeString("obs_overhead"));
  doc.Set("workflow", Json::MakeString("WC-TS"));
  doc.Set("reps", Json::MakeNumber(reps));
  doc.Set("estimates_per_s_disabled", Json::MakeNumber(rate_off));
  doc.Set("estimates_per_s_metrics", Json::MakeNumber(rate_metrics));
  doc.Set("estimates_per_s_tracing", Json::MakeNumber(rate_trace));
  doc.Set("metrics_overhead_pct", Json::MakeNumber(overhead_pct(rate_metrics)));
  doc.Set("tracing_overhead_pct", Json::MakeNumber(overhead_pct(rate_trace)));
  std::ofstream out("BENCH_overhead.json");
  out << doc.Dump() << "\n";
  std::printf(
      "obs overhead on %s: disabled %.0f est/s, metrics %.0f est/s (%.2f%%), "
      "tracing %.0f est/s (%.2f%%)\nwrote BENCH_overhead.json\n",
      "WC-TS", rate_off, rate_metrics, overhead_pct(rate_metrics), rate_trace,
      overhead_pct(rate_trace));
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dagperf::WriteObsOverhead();
  return 0;
}
