// E8 (§V-C "Execution time"): the latency of computing the cost models —
// the property that makes them usable inside runtime optimisers. google-
// benchmark microbenchmarks of (1) one BOE task estimate, (2) the fair-share
// rate solver, (3) DRF allocation, and (4) the full state-based estimation
// of representative DAG workflows. The paper's bound is < 1 s per workflow.

#include <benchmark/benchmark.h>

#include "boe/boe_model.h"
#include "cluster/rate_solver.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "scheduler/drf.h"
#include "workloads/micro.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

void BM_BoeEstimateTask(benchmark::State& state) {
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel model(cluster.node);
  const JobProfile profile = CompileJob(TsSpec()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EstimateTask(profile.map, 12.0));
  }
}
BENCHMARK(BM_BoeEstimateTask);

void BM_RateSolver(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  ResourceVector caps = ClusterSpec::PaperCluster().node.Capacities();
  std::vector<Flow> population;
  for (int i = 0; i < flows; ++i) {
    Flow f;
    f.population = 1 + i % 3;
    f.demand[Resource::kDiskRead] = 1e6 * (1 + i % 7);
    f.demand[Resource::kNetwork] = 1e6 * (1 + i % 5);
    f.demand[Resource::kCpu] = 0.1 * (1 + i % 4);
    f.per_task_cap[Resource::kCpu] = 1.0;
    population.push_back(f);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveRates(caps, population));
  }
}
BENCHMARK(BM_RateSolver)->Arg(4)->Arg(16)->Arg(64);

void BM_DrfAllocate(benchmark::State& state) {
  const DrfAllocator allocator(ClusterSpec::PaperCluster(), SchedulerConfig{});
  std::vector<StageDemand> demands(4);
  for (auto& d : demands) d.remaining_tasks = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.Allocate(demands));
  }
}
BENCHMARK(BM_DrfAllocate);

void BM_EstimateWorkflow(benchmark::State& state, const std::string& name) {
  const NamedFlow nf = TableThreeFlow(name).value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, SchedulerConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(nf.flow, source));
  }
}
BENCHMARK_CAPTURE(BM_EstimateWorkflow, wc_ts, std::string("WC-TS"));
BENCHMARK_CAPTURE(BM_EstimateWorkflow, ts_q5, std::string("TS-Q5"));
BENCHMARK_CAPTURE(BM_EstimateWorkflow, wc_q21, std::string("WC-Q21"));  // 10 jobs.
BENCHMARK_CAPTURE(BM_EstimateWorkflow, ts_pr, std::string("TS-PR"));

}  // namespace
}  // namespace dagperf

BENCHMARK_MAIN();
