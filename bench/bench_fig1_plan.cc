// Reproduces the task execution plan of paper Fig. 1: the four-job
// web-analytics DAG, executed on the simulator, with the per-state task
// times of each running stage. The paper's motivating observation is that
// job 2's map-task time falls across consecutive workflow states (27 s ->
// 24 s -> 20 s in their trace) as job 3's shuffle stops contending for
// shared resources — the same qualitative drop must appear here.

#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "sim/simulator.h"
#include "workloads/web_analytics.h"

namespace dagperf {
namespace {

void Run() {
  const DagWorkflow flow = WebAnalyticsFlow().value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const SchedulerConfig sched;
  const SimOptions sim_options;
  const Simulator sim(cluster, sched, sim_options);
  const SimResult truth = sim.Run(flow).value();

  std::printf("=== Fig. 1: web-analytics DAG execution plan (simulated) ===\n");
  TextTable table({"state", "interval (s)", "running stages",
                   "median task times (s)"});
  for (const auto& state : truth.states()) {
    std::string running;
    std::string times;
    for (const auto& [job, kind] : state.running) {
      if (!running.empty()) {
        running += ", ";
        times += ", ";
      }
      running += flow.job(job).name + "/" + StageKindName(kind);
      const std::vector<double> durations =
          truth.TaskDurationsInState(job, kind, state.index);
      times += durations.empty() ? std::string("-")
                                 : TextTable::Cell(ComputeStats(durations).median, 1);
    }
    char interval[64];
    std::snprintf(interval, sizeof(interval), "%.0f-%.0f", state.start, state.end);
    table.AddRow({TextTable::Cell(state.index, 0), interval, running, times});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("workflow makespan: %.1f s (%zu states)\n\n",
              truth.makespan().seconds(), truth.states().size());

  // The model-side view: estimated states and task times (BOE source).
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration(sim_options.task_startup_seconds));
  const StateBasedEstimator estimator(cluster, sched);
  const DagEstimate est = estimator.Estimate(flow, source).value();
  std::printf("--- state-based estimate (BOE task times) ---\n");
  TextTable est_table({"state", "duration (s)", "running", "delta", "task time (s)"});
  for (const auto& state : est.states) {
    std::string running;
    std::string deltas;
    std::string times;
    for (const auto& r : est.running(state)) {
      if (!running.empty()) {
        running += ", ";
        deltas += ", ";
        times += ", ";
      }
      running += flow.job(r.job).name + "/" + StageKindName(r.kind);
      deltas += TextTable::Cell(r.parallelism, 0);
      times += TextTable::Cell(r.task_time_s, 1);
    }
    est_table.AddRow({TextTable::Cell(state.index, 0),
                      TextTable::Cell(state.duration, 1), running, deltas, times});
  }
  std::printf("%s", est_table.ToString().c_str());
  std::printf("estimated makespan: %.1f s (truth %.1f s, accuracy %.1f%%)\n",
              est.makespan.seconds(), truth.makespan().seconds(),
              100 * RelativeAccuracy(est.makespan.seconds(),
                                     truth.makespan().seconds()));
}

}  // namespace
}  // namespace dagperf

int main() {
  dagperf::Run();
  return 0;
}
