// Reproduces the BOE walkthrough of paper Fig. 4: one sub-stage task
// (read 10000 MB, transfer 10000 MB, compute at 50 MB/s per core) on a node
// with 500 MB/s disk and 100 MB/s network, at degrees of parallelism 1 and 5.
// Expected: 200 s CPU-bound alone; 500 s network-bound at parallelism 5,
// with disk utilisation 10% -> 20% and network 50% -> 100%.

#include <cstdio>

#include "boe/boe_model.h"
#include "common/table.h"

namespace dagperf {
namespace {

void Run() {
  NodeSpec node;
  node.cores = 6;
  node.disk_read_bw = Rate::MBps(500);
  node.disk_write_bw = Rate::MBps(500);
  node.network_bw = Rate::MBps(100);

  StageProfile stage;
  stage.name = "fig4/task";
  stage.num_tasks = 5;
  SubStageProfile ss;
  ss.name = "pipeline";
  ss.demand[Resource::kDiskRead] = Bytes::FromMB(10000).value();
  ss.demand[Resource::kNetwork] = Bytes::FromMB(10000).value();
  ss.demand[Resource::kCpu] = Bytes::FromMB(10000).value() / Rate::MBps(50).bytes_per_sec();
  stage.substages.push_back(ss);

  const BoeModel model(node);
  TextTable table({"parallelism", "task time (s)", "bottleneck", "disk util",
                   "network util", "cpu util"});
  for (double delta : {1.0, 5.0}) {
    const TaskEstimate est = model.EstimateTask(stage, delta);
    double disk = 0, net = 0, cpu = 0;
    for (const auto& op : est.substages[0].ops) {
      if (op.resource == Resource::kDiskRead) disk = op.utilization;
      if (op.resource == Resource::kNetwork) net = op.utilization;
      if (op.resource == Resource::kCpu) cpu = op.utilization;
    }
    table.AddRow({TextTable::Cell(delta, 0), TextTable::Cell(est.duration.seconds(), 1),
                  ResourceName(est.bottleneck), TextTable::Cell(disk, 2),
                  TextTable::Cell(net, 2), TextTable::Cell(cpu, 2)});
  }
  std::printf("=== Fig. 4: BOE model example ===\n%s\n", table.ToString().c_str());
  std::printf(
      "Paper values: 200 s CPU-bound at parallelism 1 (disk 10%%, network 50%%);\n"
      "500 s network-bound at parallelism 5 (disk 20%%, network 100%%).\n");
}

}  // namespace
}  // namespace dagperf

int main() {
  dagperf::Run();
  return 0;
}
