// Request-observability cost: what do the serving-grade telemetry hooks
// (RequestRecord capture into the flight recorder, windowed SLO histograms)
// cost when armed, and do they really vanish when disarmed?
//
//   micro   — tight loops over the three per-request hooks in both states:
//             FlightRecorder::Record (a struct copy + seqlock publish when
//             armed; one relaxed load disarmed), WindowedHistogram::Record
//             (an epoch-tagged bucket increment), and
//             SloTracker::RecordOutcome (op-class fan-out over windows).
//   baseline— the warm serving path with observability disarmed: req/s,
//             p50, p99.
//   armed   — the same workload with metrics on, SLO objectives set, and
//             the flight recorder capturing every request.
//
// The armed run's measured per-request hook cost (micro ns x hooks/request)
// is reported as a percentage of baseline p50 — the calibrated gate CI
// enforces (enabled <= 1%, disarmed ~ 0), immune to shared-runner noise in
// the A/B wall-clock numbers, which are reported for context only.
//
// Reports to stdout and BENCH_obs.json.
//
// Build & run:  ./build/bench/bench_obs [clients] [requests-per-client]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/request_record.h"
#include "obs/slo.h"
#include "obs/window.h"
#include "service/service.h"
#include "workloads/suite.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

struct RunResult {
  std::vector<double> latencies;
  double wall_seconds = 0.0;
  std::uint64_t failed = 0;

  double Rps() const {
    return wall_seconds > 0
               ? static_cast<double>(latencies.size()) / wall_seconds
               : 0.0;
  }
  double QuantileMs(double q) {
    if (latencies.empty()) return 0.0;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t i = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[i] * 1e3;
  }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RunResult DriveClients(EstimationService& service, int clients, int per_client,
                       const std::vector<std::string>& names) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> threads;
  const double start = Now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        ServiceRequest request;
        request.workflow = names[(c + i) % names.size()];
        const double begin = Now();
        if (!service.Submit(std::move(request)).get().ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        latencies[c].push_back(Now() - begin);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  RunResult result;
  result.wall_seconds = Now() - start;
  result.failed = failed.load();
  for (std::vector<double>& per_thread : latencies) {
    result.latencies.insert(result.latencies.end(), per_thread.begin(),
                            per_thread.end());
  }
  return result;
}

Json RunJson(RunResult& run) {
  Json doc = Json::MakeObject();
  doc.Set("requests_per_sec", Json::MakeNumber(run.Rps()));
  doc.Set("p50_ms", Json::MakeNumber(run.QuantileMs(0.50)));
  doc.Set("p99_ms", Json::MakeNumber(run.QuantileMs(0.99)));
  doc.Set("failed", Json::MakeNumber(static_cast<double>(run.failed)));
  return doc;
}

/// ns/op of `op` over `iters` iterations (op must not be optimised away —
/// every hook below mutates shared atomics or a sink the compiler can't
/// prove dead).
template <typename Op>
double MeasureNs(long long iters, Op&& op) {
  const double start = Now();
  for (long long i = 0; i < iters; ++i) op(i);
  return iters > 0 ? (Now() - start) * 1e9 / static_cast<double>(iters) : 0.0;
}

int Main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 200;
  const long long micro_iters = argc > 3 ? std::atoll(argv[3]) : 5'000'000;

  const bool was_enabled = obs::MetricsEnabled();

  // --- micro: the three per-request hooks, disarmed then armed.
  obs::FlightRecorder flight;
  obs::WindowedHistogram window;
  obs::SloTracker slo({.p99_ms = 50.0, .availability = 0.999});
  obs::RequestRecord record;
  record.id = 1;
  record.set_op("estimate");
  record.set_workflow("bench");
  record.set_cluster("default");
  record.submit_us = 1.0;
  record.start_us = 2.0;
  record.ok = true;

  // Latencies cycle through a bounded, non-monotonic range so the exemplar
  // floor behaves as in production: most records lose to the pinned slowest
  // set and never take the exemplar mutex. (A monotonically increasing
  // latency would beat the floor every time — a pathological input, not the
  // hot path.)
  const auto end_us_for = [](long long i) {
    return 10.0 + static_cast<double>((i * 37) % 1000);
  };

  obs::SetMetricsEnabled(false);
  const double flight_disarmed_ns = MeasureNs(micro_iters, [&](long long i) {
    record.end_us = end_us_for(i);
    flight.Record(record);
  });
  const double window_disarmed_ns = MeasureNs(micro_iters, [&](long long i) {
    window.Record(1.0, static_cast<double>(i));
  });
  const double slo_disarmed_ns = MeasureNs(micro_iters, [&](long long i) {
    slo.RecordOutcome(obs::OpClass::kEstimate, 2.0, true, false, true,
                      static_cast<double>(i % 1000000));
  });

  obs::SetMetricsEnabled(true);
  const double flight_armed_ns = MeasureNs(micro_iters, [&](long long i) {
    record.end_us = end_us_for(i);
    flight.Record(record);
  });
  const double window_armed_ns = MeasureNs(micro_iters, [&](long long i) {
    window.Record(1.0, static_cast<double>(i % 1000000));
  });
  // Calibration input mirrors the macro workload below (no per-request
  // deadline); the deadline-carrying variant pays two extra windowed
  // counters and is reported separately.
  const double slo_armed_ns = MeasureNs(micro_iters, [&](long long i) {
    slo.RecordOutcome(obs::OpClass::kEstimate, 2.0, true, false, true,
                      static_cast<double>(i % 1000000));
  });
  const double slo_deadline_armed_ns = MeasureNs(micro_iters, [&](long long i) {
    slo.RecordOutcome(obs::OpClass::kEstimate, 2.0, true, true, true,
                      static_cast<double>(i % 1000000));
  });
  obs::SetMetricsEnabled(false);

  std::printf("bench_obs: %d clients x %d requests, %lld micro iterations\n",
              clients, per_client, micro_iters);
  std::printf("hook            disarmed      armed\n");
  std::printf("flight.Record   %7.2f ns  %7.2f ns\n", flight_disarmed_ns,
              flight_armed_ns);
  std::printf("window.Record   %7.2f ns  %7.2f ns\n", window_disarmed_ns,
              window_armed_ns);
  std::printf("slo.Outcome     %7.2f ns  %7.2f ns\n", slo_disarmed_ns,
              slo_armed_ns);
  std::printf("slo.Outcome+ddl              %7.2f ns\n", slo_deadline_armed_ns);

  // --- the serving workload (bench_serve's warm-stack shape).
  Result<std::vector<NamedFlow>> suite = TableThreeSuite(0.5);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }
  const std::size_t distinct = std::min<std::size_t>(4, suite->size());
  std::vector<std::string> names;
  for (std::size_t i = 0; i < distinct; ++i) names.push_back((*suite)[i].name);

  const auto build_service = [&](bool armed) {
    ServiceOptions options;
    if (armed) {
      options.slo.p99_ms = 50.0;
      options.slo.availability = 0.999;
    }
    auto service = std::make_unique<EstimationService>(options);
    for (std::size_t i = 0; i < distinct; ++i) {
      if (Status st =
              service->RegisterWorkflow((*suite)[i].name, (*suite)[i].flow);
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
    return service;
  };

  // --- baseline: observability disarmed (the library default).
  RunResult baseline;
  {
    std::unique_ptr<EstimationService> service = build_service(false);
    (void)DriveClients(*service, clients, per_client / 4 + 1, names);
    baseline = DriveClients(*service, clients, per_client, names);
  }
  std::printf("baseline (disarmed): %8.1f req/s  p50 %6.3f ms  p99 %6.3f ms\n",
              baseline.Rps(), baseline.QuantileMs(0.50),
              baseline.QuantileMs(0.99));

  // --- armed: metrics on, SLO objectives set, every request recorded.
  RunResult armed;
  std::uint64_t recorded = 0;
  {
    obs::SetMetricsEnabled(true);
    std::unique_ptr<EstimationService> service = build_service(true);
    (void)DriveClients(*service, clients, per_client / 4 + 1, names);
    armed = DriveClients(*service, clients, per_client, names);
    recorded = service->flight_recorder().total_recorded();
    obs::SetMetricsEnabled(false);
  }
  std::printf("armed (full obs):    %8.1f req/s  p50 %6.3f ms  p99 %6.3f ms  "
              "(%llu records)\n",
              armed.Rps(), armed.QuantileMs(0.50), armed.QuantileMs(0.99),
              static_cast<unsigned long long>(recorded));
  if (recorded == 0) {
    std::fprintf(stderr, "armed run captured no RequestRecords\n");
    return 1;
  }

  // --- calibrated gates. Per request the service pays one flight record
  // and one SLO outcome; RecordOutcome itself drives the windowed
  // histograms, so window.Record is a component above, not an extra term.
  const double p50_ms = baseline.QuantileMs(0.50);
  const double armed_request_ns = flight_armed_ns + slo_armed_ns;
  const double disarmed_request_ns = flight_disarmed_ns + slo_disarmed_ns;
  const double enabled_overhead_percent =
      p50_ms > 0 ? 100.0 * (armed_request_ns * 1e-6) / p50_ms : 0.0;
  const double disarmed_overhead_percent =
      p50_ms > 0 ? 100.0 * (disarmed_request_ns * 1e-6) / p50_ms : 0.0;
  std::printf(
      "enabled overhead:  %.1f ns/request = %.4f%% of p50 (target <= 1%%)\n",
      armed_request_ns, enabled_overhead_percent);
  // The disarmed gate is absolute: the promise is "a few relaxed loads",
  // which must not depend on how warm the denominator workload happens to
  // be on a given runner.
  std::printf(
      "disarmed overhead: %.1f ns/request (target <= 10 ns; %.4f%% of p50)\n",
      disarmed_request_ns, disarmed_overhead_percent);

  Json micro = Json::MakeObject();
  micro.Set("flight_record_disarmed_ns", Json::MakeNumber(flight_disarmed_ns));
  micro.Set("flight_record_armed_ns", Json::MakeNumber(flight_armed_ns));
  micro.Set("window_record_disarmed_ns", Json::MakeNumber(window_disarmed_ns));
  micro.Set("window_record_armed_ns", Json::MakeNumber(window_armed_ns));
  micro.Set("slo_outcome_disarmed_ns", Json::MakeNumber(slo_disarmed_ns));
  micro.Set("slo_outcome_armed_ns", Json::MakeNumber(slo_armed_ns));
  micro.Set("slo_outcome_with_deadline_armed_ns",
            Json::MakeNumber(slo_deadline_armed_ns));

  Json doc = Json::MakeObject();
  doc.Set("clients", Json::MakeNumber(clients));
  doc.Set("requests_per_client", Json::MakeNumber(per_client));
  doc.Set("micro", std::move(micro));
  doc.Set("baseline_disarmed", RunJson(baseline));
  doc.Set("armed", RunJson(armed));
  doc.Set("flight_records_captured",
          Json::MakeNumber(static_cast<double>(recorded)));
  doc.Set("enabled_overhead_percent_of_p50",
          Json::MakeNumber(enabled_overhead_percent));
  doc.Set("enabled_overhead_target_percent", Json::MakeNumber(1.0));
  doc.Set("disarmed_overhead_percent_of_p50",
          Json::MakeNumber(disarmed_overhead_percent));
  doc.Set("disarmed_request_ns", Json::MakeNumber(disarmed_request_ns));
  doc.Set("disarmed_request_target_ns", Json::MakeNumber(10.0));
  std::ofstream out("BENCH_obs.json");
  out << doc.Dump() << "\n";
  std::printf("wrote BENCH_obs.json\n");

  obs::SetMetricsEnabled(was_enabled);
  return enabled_overhead_percent <= 1.0 && disarmed_request_ns <= 10.0 ? 0
                                                                        : 1;
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) { return dagperf::Main(argc, argv); }
