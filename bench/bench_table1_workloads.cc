// Reproduces paper Table I: the workload matrix with compression, replica
// count, and the bottleneck resource the BOE model identifies for each stage
// at a saturating degree of parallelism (12 tasks per node). The identified
// bottlenecks should match the table: WC CPU; TSC CPU; TS CPU/Disk;
// TS3R CPU/Network.

#include <cstdio>

#include "boe/boe_model.h"
#include "common/table.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

std::string StageBottlenecks(const BoeModel& model, const StageProfile& stage,
                             double tasks_per_node) {
  const TaskEstimate est = model.EstimateTask(stage, tasks_per_node);
  std::string out;
  for (const auto& ss : est.substages) {
    if (!out.empty()) out += ", ";
    out += ss.name;
    out += ":";
    out += ResourceName(ss.bottleneck);
  }
  return out;
}

void Run() {
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel model(cluster.node);
  const double delta = 12.0;

  std::printf("=== Table I: workloads and BOE-identified bottlenecks (delta=12) ===\n");
  TextTable table({"workload", "C", "R", "map bottlenecks", "reduce bottlenecks",
                   "stage bottleneck"});
  for (const JobSpec& spec :
       {WordCountSpec(), TscSpec(), TsSpec(), Ts2rSpec(), Ts3rSpec()}) {
    const JobProfile profile = CompileJob(spec).value();
    const TaskEstimate map_est = model.EstimateTask(profile.map, delta);
    std::string overall = std::string("map:") + ResourceName(map_est.bottleneck);
    std::string reduce_b = "-";
    if (profile.has_reduce()) {
      const TaskEstimate red_est = model.EstimateTask(*profile.reduce, delta);
      overall += std::string(" reduce:") + ResourceName(red_est.bottleneck);
      reduce_b = StageBottlenecks(model, *profile.reduce, delta);
    }
    table.AddRow({spec.name, spec.compress_map_output ? "Y" : "N",
                  std::to_string(spec.replicas),
                  StageBottlenecks(model, profile.map, delta), reduce_b, overall});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper Table I bottlenecks: WC=CPU, TSC=CPU, TS=CPU+Disk, TS3R=CPU+Network.\n");
}

}  // namespace
}  // namespace dagperf

int main() {
  dagperf::Run();
  return 0;
}
