// Validates the BOE CPU-contention model against REAL execution: the
// in-process MapReduce engine runs a compute-heavy WordCount with 1..2x
// hardware-thread map slots, and the measured mean map-task time is
// compared with BOE's prediction for a CPU-only node with the same core
// count (per-core throughput calibrated from the single-slot run).
//
// Only the CPU axis is validated here — the engine has no disks or NICs;
// disk/network contention is validated against the cluster simulator
// (bench_fig6_single_job). Numbers vary with the host machine; the shape
// (flat until core saturation, then linear growth) is the claim.

#include <cstdio>
#include <set>
#include <thread>

#include "boe/boe_model.h"
#include "common/table.h"
#include "engine/builtin.h"
#include "engine/datagen.h"

namespace dagperf {
namespace {

void Run() {
  const int cores = std::max(2u, std::thread::hardware_concurrency());
  LocalStore store;
  GenerateText(store, "corpus", Bytes::FromMB(8), 20000, 1.05);
  const size_t input_bytes = store.SizeBytes("corpus");
  // Enough splits that every slot count divides the work evenly-ish.
  EngineJobConfig job = WordCountJob("corpus", "out");
  job.split_records = store.Read("corpus").value()->size() / (4 * cores) + 1;

  // Calibrate per-core throughput from a single-slot run and the host's
  // *effective* parallel capacity from a saturating run (VMs and SMT often
  // deliver fewer than the nominal hardware threads of real compute).
  EngineOptions single;
  single.map_slots = 1;
  const JobMetrics base = MapReduceEngine(&store, single).Run(job).value();
  const double per_core_bps = input_bytes / base.map.total_task_seconds;
  const double base_task_s = base.map.total_task_seconds / base.map.tasks;

  EngineOptions saturating;
  saturating.map_slots = 2 * cores;
  const JobMetrics sat = MapReduceEngine(&store, saturating).Run(job).value();
  const double effective_cores = std::max(
      1.0, (input_bytes / sat.map_wall_seconds) / per_core_bps);

  // The modelled "node": CPU is the only constrained resource.
  NodeSpec node;
  node.cores = std::max(1, static_cast<int>(effective_cores + 0.5));
  node.disk_read_bw = Rate::GBps(100);
  node.disk_write_bw = Rate::GBps(100);
  node.network_bw = Rate::GBps(100);
  const BoeModel model(node);
  StageProfile stage;
  stage.name = "wordcount/map";
  SubStageProfile ss;
  ss.name = "map";
  ss.demand[Resource::kCpu] =
      static_cast<double>(input_bytes) / base.map.tasks / per_core_bps;
  stage.substages.push_back(ss);

  std::printf(
      "=== Engine validation: measured vs BOE map-task time (host: %d nominal "
      "cores, %.2f effective, calibrated %.1f MB/s/core) ===\n",
      cores, effective_cores, per_core_bps / 1e6);
  TextTable table({"map slots", "measured mean task (s)", "BOE predicted (s)",
                   "accuracy"});
  std::set<int> slot_counts = {1, cores / 2, cores, 2 * cores};
  for (int slots : slot_counts) {
    if (slots < 1) continue;
    EngineOptions options;
    options.map_slots = slots;
    const JobMetrics metrics = MapReduceEngine(&store, options).Run(job).value();
    const double measured = metrics.map.total_task_seconds / metrics.map.tasks;
    const double predicted =
        model.EstimateTask(stage, static_cast<double>(slots)).duration.seconds();
    const double accuracy =
        1.0 - std::abs(predicted - measured) / std::max(measured, 1e-12);
    table.AddRow({std::to_string(slots), TextTable::Cell(measured, 3),
                  TextTable::Cell(predicted, 3), TextTable::Cell(accuracy, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "(baseline single-slot task: %.3f s; expectation: flat to ~%d slots, then "
      "~linear growth)\n",
      base_task_s, cores);
}

}  // namespace
}  // namespace dagperf

int main() {
  dagperf::Run();
  return 0;
}
