// Estimation-service throughput: N concurrent clients issue a recurring
// stream of estimate requests (the paper's §I serving scenario — the same
// self-tuning / capacity queries arriving again and again) against two
// stacks:
//
//   cold — the pre-service per-request path: every request constructs its
//          own BOE model, task-time source and estimator, no cache;
//   warm — one long-lived EstimationService: shared pool, admission queue,
//          and the persistent cross-request task-time memo.
//
// Reports requests/sec, p50/p99 latency and the memo hit rate to stdout and
// BENCH_serve.json. The warm stack must beat cold on throughput — that gap
// is the service layer's reason to exist.
//
// Build & run:  ./build/bench/bench_serve [clients] [requests-per-client]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "service/service.h"
#include "workloads/suite.h"

namespace dagperf {
namespace {

/// Latencies (seconds) of one measured run plus its wall-clock.
struct RunResult {
  std::vector<double> latencies;
  double wall_seconds = 0.0;

  double Rps() const {
    return wall_seconds > 0 ? static_cast<double>(latencies.size()) / wall_seconds
                            : 0.0;
  }
  double QuantileMs(double q) {
    if (latencies.empty()) return 0.0;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t i = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[i] * 1e3;
  }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `clients` threads, each issuing `per_client` sequential requests
/// round-robin over the workflow names, and collects per-request latencies.
template <typename PerRequest>
RunResult DriveClients(int clients, int per_client,
                       const std::vector<std::string>& names,
                       const PerRequest& request_fn) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  const double start = Now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        const std::string& name = names[(c + i) % names.size()];
        const double begin = Now();
        if (!request_fn(name)) {
          std::fprintf(stderr, "request for %s failed\n", name.c_str());
          std::exit(1);
        }
        latencies[c].push_back(Now() - begin);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  RunResult result;
  result.wall_seconds = Now() - start;
  for (std::vector<double>& per_thread : latencies) {
    result.latencies.insert(result.latencies.end(), per_thread.begin(),
                            per_thread.end());
  }
  return result;
}

int Main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 64;

  Result<std::vector<NamedFlow>> suite = TableThreeSuite(0.5);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }
  // A small recurring set — the serving pattern the persistent memo targets.
  const std::size_t distinct = std::min<std::size_t>(4, suite->size());
  std::vector<std::string> names;
  std::vector<DagWorkflow> flows;
  for (std::size_t i = 0; i < distinct; ++i) {
    names.push_back((*suite)[i].name);
    flows.push_back((*suite)[i].flow);
  }
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  std::printf("bench_serve: %d clients x %d requests over %zu workflows\n",
              clients, per_client, names.size());

  // Cold: the per-request stack, same client concurrency, no shared state.
  RunResult cold = DriveClients(clients, per_client, names, [&](const std::string&
                                                                    name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] != name) continue;
      const BoeModel model(cluster.node);
      const BoeTaskTimeSource source(model, Duration::Seconds(1));
      const StateBasedEstimator estimator(cluster, SchedulerConfig{});
      return estimator.Estimate(flows[i], source).ok();
    }
    return false;
  });

  // Warm: one service, registered once, shared memo across every request.
  EstimationService service;
  for (std::size_t i = 0; i < distinct; ++i) {
    if (Status st = service.RegisterWorkflow(names[i], std::move(flows[i]));
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  RunResult warm =
      DriveClients(clients, per_client, names, [&](const std::string& name) {
        ServiceRequest request;
        request.workflow = name;
        return service.Submit(std::move(request)).get().ok();
      });
  const TaskTimeMemo::Stats cache = service.Stats().cache;

  const double cold_rps = cold.Rps();
  const double warm_rps = warm.Rps();
  const double speedup = cold_rps > 0 ? warm_rps / cold_rps : 0.0;
  const double cold_p50 = cold.QuantileMs(0.50), cold_p99 = cold.QuantileMs(0.99);
  const double warm_p50 = warm.QuantileMs(0.50), warm_p99 = warm.QuantileMs(0.99);
  std::printf("cold (per-request stack): %8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n",
              cold_rps, cold_p50, cold_p99);
  std::printf("warm (service + memo):    %8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n",
              warm_rps, warm_p50, warm_p99);
  std::printf("speedup %.2fx, cache hit rate %.1f%% (%llu hits, %llu misses)\n",
              speedup, 100.0 * cache.hit_rate(),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));

  Json doc = Json::MakeObject();
  doc.Set("clients", Json::MakeNumber(clients));
  doc.Set("requests_per_client", Json::MakeNumber(per_client));
  doc.Set("distinct_workflows", Json::MakeNumber(static_cast<double>(distinct)));
  Json cold_json = Json::MakeObject();
  cold_json.Set("requests_per_sec", Json::MakeNumber(cold_rps));
  cold_json.Set("p50_ms", Json::MakeNumber(cold_p50));
  cold_json.Set("p99_ms", Json::MakeNumber(cold_p99));
  doc.Set("cold", std::move(cold_json));
  Json warm_json = Json::MakeObject();
  warm_json.Set("requests_per_sec", Json::MakeNumber(warm_rps));
  warm_json.Set("p50_ms", Json::MakeNumber(warm_p50));
  warm_json.Set("p99_ms", Json::MakeNumber(warm_p99));
  doc.Set("warm", std::move(warm_json));
  doc.Set("warm_vs_cold_speedup", Json::MakeNumber(speedup));
  doc.Set("cache_hit_rate", Json::MakeNumber(cache.hit_rate()));
  doc.Set("cache_hits", Json::MakeNumber(static_cast<double>(cache.hits)));
  doc.Set("cache_misses", Json::MakeNumber(static_cast<double>(cache.misses)));
  std::ofstream out("BENCH_serve.json");
  out << doc.Dump();
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) { return dagperf::Main(argc, argv); }
