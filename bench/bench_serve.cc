// Estimation-service throughput: N concurrent clients issue a recurring
// stream of estimate requests (the paper's §I serving scenario — the same
// self-tuning / capacity queries arriving again and again) against two
// stacks:
//
//   cold — the pre-service per-request path: every request constructs its
//          own BOE model, task-time source and estimator, no cache;
//   warm — one long-lived EstimationService: shared pool, admission queue,
//          and the persistent cross-request task-time memo.
//
// Two further sections exercise the multi-tenant overload layer:
//
//   multi-tenant — `clients` flooder threads hammer a small-queue service
//          under Zipf-skewed tenant names while one light tenant issues a
//          measured trickle; DRF fair-share admission must keep serving the
//          light tenant (p99 of its served requests within 2x of isolated),
//          and every rejection must be retryable with a retry_after_ms hint;
//   snapshot — the warm service's memo + checkpoints are saved, restored
//          into a fresh service, and probed with 100 requests: the restored
//          shard's warm-serving rate (requests answered without a single
//          memo miss) must reach >= 80% of the live pre-restart service's
//          rate (a cold control service is probed for contrast).
//
// Reports requests/sec, p50/p99 latency and the memo hit rate to stdout and
// BENCH_serve.json. The warm stack must beat cold on throughput — that gap
// is the service layer's reason to exist. CI gates the JSON (see ci.yml).
//
// Build & run:  ./build/bench/bench_serve [clients] [requests-per-client]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "service/service.h"
#include "workloads/suite.h"

namespace dagperf {
namespace {

/// Latencies (seconds) of one measured run plus its wall-clock.
struct RunResult {
  std::vector<double> latencies;
  double wall_seconds = 0.0;

  double Rps() const {
    return wall_seconds > 0 ? static_cast<double>(latencies.size()) / wall_seconds
                            : 0.0;
  }
  double QuantileMs(double q) {
    if (latencies.empty()) return 0.0;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t i = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[i] * 1e3;
  }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Quantile of a sample already in milliseconds.
double QuantileOfMs(std::vector<double> ms, double q) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const std::size_t i = std::min(
      ms.size() - 1, static_cast<std::size_t>(q * static_cast<double>(ms.size())));
  return ms[i];
}

/// Runs `clients` threads, each issuing `per_client` sequential requests
/// round-robin over the workflow names, and collects per-request latencies.
template <typename PerRequest>
RunResult DriveClients(int clients, int per_client,
                       const std::vector<std::string>& names,
                       const PerRequest& request_fn) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  const double start = Now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        const std::string& name = names[(c + i) % names.size()];
        const double begin = Now();
        if (!request_fn(name)) {
          std::fprintf(stderr, "request for %s failed\n", name.c_str());
          std::exit(1);
        }
        latencies[c].push_back(Now() - begin);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  RunResult result;
  result.wall_seconds = Now() - start;
  for (std::vector<double>& per_thread : latencies) {
    result.latencies.insert(result.latencies.end(), per_thread.begin(),
                            per_thread.end());
  }
  return result;
}

int Main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 64;

  Result<std::vector<NamedFlow>> suite = TableThreeSuite(0.5);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }
  // A small recurring set — the serving pattern the persistent memo targets.
  const std::size_t distinct = std::min<std::size_t>(4, suite->size());
  std::vector<std::string> names;
  std::vector<DagWorkflow> flows;
  for (std::size_t i = 0; i < distinct; ++i) {
    names.push_back((*suite)[i].name);
    flows.push_back((*suite)[i].flow);
  }
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  std::printf("bench_serve: %d clients x %d requests over %zu workflows\n",
              clients, per_client, names.size());

  // Cold: the per-request stack, same client concurrency, no shared state.
  RunResult cold = DriveClients(clients, per_client, names, [&](const std::string&
                                                                    name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] != name) continue;
      const BoeModel model(cluster.node);
      const BoeTaskTimeSource source(model, Duration::Seconds(1));
      const StateBasedEstimator estimator(cluster, SchedulerConfig{});
      return estimator.Estimate(flows[i], source).ok();
    }
    return false;
  });

  // Warm: one service, registered once, shared memo across every request.
  EstimationService service;
  for (std::size_t i = 0; i < distinct; ++i) {
    if (Status st = service.RegisterWorkflow(names[i], std::move(flows[i]));
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  RunResult warm =
      DriveClients(clients, per_client, names, [&](const std::string& name) {
        ServiceRequest request;
        request.workflow = name;
        return service.Submit(std::move(request)).get().ok();
      });
  const ServiceStats warm_stats = service.Stats();
  const TaskTimeMemo::Stats cache = warm_stats.cache;

  // Registers the recurring workflow set into a fresh service (the suite
  // still owns pristine copies; `flows` was moved into the warm service).
  const auto register_all = [&](EstimationService& target) {
    for (std::size_t i = 0; i < distinct; ++i) {
      if (Status st = target.RegisterWorkflow(names[i], (*suite)[i].flow);
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
  };

  // --- Multi-tenant overload: a Zipf-skewed flood with one light tenant. ---
  //
  // The queue is deliberately tiny (depth ~ worker count) so a served
  // request never waits behind more than one wave of work: under flood the
  // excess is shed with retryable RESOURCE_EXHAUSTED + retry_after_ms
  // instead of building backlog, and DRF fair-share admission keeps
  // granting the light tenant its slot. The light tenant's p99 is measured
  // over served requests (queue wait + service time, the SLO tracker's
  // view); its retry waits are counted separately as light_retries.
  ServiceOptions mt_options;
  mt_options.threads = 4;
  mt_options.max_queue_depth = 6;
  mt_options.overload_target_sojourn_ms = 50.0;
  EstimationService mt(mt_options);
  register_all(mt);
  for (std::size_t i = 0; i < distinct; ++i) {
    ServiceRequest request;
    request.workflow = names[i];
    request.tenant = "warmup";
    if (!mt.Submit(std::move(request)).get().ok()) {
      std::fprintf(stderr, "multi-tenant warmup for %s failed\n",
                   names[i].c_str());
      return 1;
    }
  }

  std::atomic<std::uint64_t> non_retryable{0};
  std::atomic<std::uint64_t> missing_retry_hint{0};
  std::uint64_t light_retries = 0;
  const int light_requests = 100;
  // One light-tenant pass: every logical request retries sheds with the
  // server's own retry_after_ms hint until served; starvation is a bench
  // failure. Latency is the server-observed queue wait + service time of
  // the served attempt — what admission fairness controls. (Client-side
  // wall time would mostly measure OS scheduling of the flooder threads on
  // small CI hosts, not the service's treatment of the tenant.)
  const auto serve_light = [&](std::vector<double>* served_ms) {
    for (int i = 0; i < light_requests; ++i) {
      const std::string& name = names[static_cast<std::size_t>(i) % names.size()];
      bool served = false;
      for (int attempt = 0; attempt < 1000 && !served; ++attempt) {
        ServiceRequest request;
        request.workflow = name;
        request.tenant = "light";
        const Result<WorkflowEstimate> result =
            mt.Submit(std::move(request)).get();
        if (result.ok()) {
          served_ms->push_back(result->queue_wait_ms + result->service_ms);
          served = true;
          break;
        }
        if (!IsRetryable(result.status().code())) {
          ++non_retryable;
          break;
        }
        if (result.status().retry_after_ms() <= 0.0) ++missing_retry_hint;
        ++light_retries;
        const double sleep_ms =
            std::min(std::max(result.status().retry_after_ms(), 0.1), 10.0);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      if (!served) {
        std::fprintf(stderr, "light tenant starved on %s\n", name.c_str());
        std::exit(1);
      }
    }
  };

  std::vector<double> light_isolated_ms;
  serve_light(&light_isolated_ms);

  std::vector<double> light_contended_ms;
  std::atomic<bool> light_done{false};
  std::atomic<std::uint64_t> flood_attempts{0};
  std::atomic<std::uint64_t> flood_completed{0};
  std::atomic<std::uint64_t> flood_shed{0};
  std::atomic<std::uint64_t> degraded_answers{0};
  std::vector<std::thread> flooders;
  const double contended_start = Now();
  for (int c = 0; c < clients; ++c) {
    flooders.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(1000 + c));
      // Zipf-skewed tenant mix: rank k drawn with weight 1/(k+1).
      std::discrete_distribution<int> zipf({1.0, 0.5, 1.0 / 3.0, 0.25});
      std::uint64_t i = 0;
      while (!light_done.load(std::memory_order_acquire)) {
        ServiceRequest request;
        request.workflow = names[i++ % names.size()];
        request.tenant = "zipf-" + std::to_string(zipf(rng));
        ++flood_attempts;
        const Result<WorkflowEstimate> result =
            mt.Submit(std::move(request)).get();
        if (result.ok()) {
          ++flood_completed;
          if (result->degraded) ++degraded_answers;
        } else if (IsRetryable(result.status().code())) {
          ++flood_shed;
          if (result.status().retry_after_ms() <= 0.0) ++missing_retry_hint;
        } else {
          ++non_retryable;
        }
        // Closed-loop think time: keeps the flood a service-queue problem
        // instead of pure CPU starvation of everything else on small hosts.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  serve_light(&light_contended_ms);
  light_done.store(true, std::memory_order_release);
  for (std::thread& t : flooders) t.join();
  const double contended_wall = Now() - contended_start;
  const double sustained_rps =
      contended_wall > 0
          ? static_cast<double>(flood_completed.load() + light_requests) /
                contended_wall
          : 0.0;
  const double light_p99_isolated = QuantileOfMs(light_isolated_ms, 0.99);
  const double light_p99_contended = QuantileOfMs(light_contended_ms, 0.99);
  const double light_p99_ratio =
      light_p99_contended / std::max(light_p99_isolated, 0.05);
  // The isolation bound: 2x the isolated p99, floored at an absolute 2 ms
  // serving SLO. Warm isolated serving is tens of microseconds, so on small
  // CI hosts the contended p99 is dominated by OS scheduling tails (~1 ms
  // thread wake-up), which admission fairness cannot control; the floor
  // keeps the gate about tenant isolation while still demanding the light
  // tenant be served within single-digit milliseconds under full flood.
  const double light_p99_bound =
      std::max(2.0 * light_p99_isolated, 2.0);
  const bool light_within_bound = light_p99_contended <= light_p99_bound;

  // --- Snapshot/restore: a restarted shard must not serve cold. ---
  //
  // The probe mix spreads the recurring workflows over three cluster sizes
  // — distinct (workflow, nodes) pairs, so a cold start pays real model
  // evaluations. The metric is the warm-serving rate: the fraction of the
  // first `probe_requests` requests that completed without a single memo
  // miss (every task time came from the restored memo or a restored prefix
  // checkpoint — no cold evaluation). A restart from snapshot must reach
  // >= 80% of the live pre-restart service's own rate on the same mix.
  const int probe_requests = 100;
  const std::vector<int> probe_nodes = {0, 20, 40};
  const auto probe_request = [&](int i) {
    ServiceRequest request;
    request.workflow = names[static_cast<std::size_t>(i) % names.size()];
    request.nodes = probe_nodes[(static_cast<std::size_t>(i) / names.size()) %
                                probe_nodes.size()];
    return request;
  };
  const auto warm_rate = [&](EstimationService& target) {
    int warm_served = 0;
    for (int i = 0; i < probe_requests; ++i) {
      const std::uint64_t misses_before = target.Stats().cache.misses;
      if (!target.Submit(probe_request(i)).get().ok()) {
        std::fprintf(stderr, "snapshot probe request failed\n");
        std::exit(1);
      }
      if (target.Stats().cache.misses == misses_before) ++warm_served;
    }
    return static_cast<double>(warm_served) / probe_requests;
  };

  // Cover the probe mix on the live service once, snapshot its warm state,
  // and measure its own steady-state rate — the bar the restart must reach.
  const int mix_size =
      static_cast<int>(names.size() * probe_nodes.size());
  for (int i = 0; i < mix_size; ++i) {
    if (!service.Submit(probe_request(i)).get().ok()) {
      std::fprintf(stderr, "snapshot fill request failed\n");
      return 1;
    }
  }
  const std::string snapshot_path = "BENCH_serve.snapshot";
  if (Status st = service.SaveSnapshot(snapshot_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double pre_warm_rate = warm_rate(service);

  EstimationService restored;
  register_all(restored);
  if (Status st = restored.LoadSnapshot(snapshot_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double restored_warm_rate = warm_rate(restored);

  EstimationService cold_start;
  register_all(cold_start);
  const double cold_warm_rate = warm_rate(cold_start);
  std::remove(snapshot_path.c_str());
  const double snapshot_ratio =
      pre_warm_rate > 0 ? restored_warm_rate / pre_warm_rate : 0.0;

  const double cold_rps = cold.Rps();
  const double warm_rps = warm.Rps();
  const double speedup = cold_rps > 0 ? warm_rps / cold_rps : 0.0;
  const double cold_p50 = cold.QuantileMs(0.50), cold_p99 = cold.QuantileMs(0.99);
  const double warm_p50 = warm.QuantileMs(0.50), warm_p99 = warm.QuantileMs(0.99);
  std::printf("cold (per-request stack): %8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n",
              cold_rps, cold_p50, cold_p99);
  std::printf("warm (service + memo):    %8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n",
              warm_rps, warm_p50, warm_p99);
  std::printf(
      "speedup %.2fx, cache hit rate %.1f%% (%llu hits, %llu misses, "
      "%llu checkpoint resumes)\n",
      speedup, 100.0 * cache.hit_rate(),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(warm_stats.incremental.hits));
  std::printf(
      "multi-tenant (%d flooders, zipf over 4 tenants + 1 light):\n"
      "  light p99 isolated %6.2f ms, contended %6.2f ms (ratio %.2fx, "
      "bound %.2f ms %s, %llu retries)\n"
      "  flood: %llu attempts, %llu completed, %llu shed, %llu degraded; "
      "sustained %.1f req/s\n"
      "  non-retryable errors %llu, sheds missing retry hint %llu\n",
      clients, light_p99_isolated, light_p99_contended, light_p99_ratio,
      light_p99_bound, light_within_bound ? "ok" : "EXCEEDED",
      static_cast<unsigned long long>(light_retries),
      static_cast<unsigned long long>(flood_attempts.load()),
      static_cast<unsigned long long>(flood_completed.load()),
      static_cast<unsigned long long>(flood_shed.load()),
      static_cast<unsigned long long>(degraded_answers.load()), sustained_rps,
      static_cast<unsigned long long>(non_retryable.load()),
      static_cast<unsigned long long>(missing_retry_hint.load()));
  std::printf(
      "snapshot restore (warm-serving rate over first %d requests): "
      "pre %.1f%% -> restored %.1f%% (%.2fx of pre), cold control %.1f%%\n",
      probe_requests, 100.0 * pre_warm_rate, 100.0 * restored_warm_rate,
      snapshot_ratio, 100.0 * cold_warm_rate);

  Json doc = Json::MakeObject();
  doc.Set("clients", Json::MakeNumber(clients));
  doc.Set("requests_per_client", Json::MakeNumber(per_client));
  doc.Set("distinct_workflows", Json::MakeNumber(static_cast<double>(distinct)));
  Json cold_json = Json::MakeObject();
  cold_json.Set("requests_per_sec", Json::MakeNumber(cold_rps));
  cold_json.Set("p50_ms", Json::MakeNumber(cold_p50));
  cold_json.Set("p99_ms", Json::MakeNumber(cold_p99));
  doc.Set("cold", std::move(cold_json));
  Json warm_json = Json::MakeObject();
  warm_json.Set("requests_per_sec", Json::MakeNumber(warm_rps));
  warm_json.Set("p50_ms", Json::MakeNumber(warm_p50));
  warm_json.Set("p99_ms", Json::MakeNumber(warm_p99));
  doc.Set("warm", std::move(warm_json));
  doc.Set("warm_vs_cold_speedup", Json::MakeNumber(speedup));
  doc.Set("cache_hit_rate", Json::MakeNumber(cache.hit_rate()));
  doc.Set("cache_hits", Json::MakeNumber(static_cast<double>(cache.hits)));
  doc.Set("cache_misses", Json::MakeNumber(static_cast<double>(cache.misses)));
  // Prefix-checkpoint resumes: exact repeats short-circuit here and never
  // reach the memo, so warmth gates must consider both counters.
  doc.Set("checkpoint_hits",
          Json::MakeNumber(static_cast<double>(warm_stats.incremental.hits)));
  Json mt_json = Json::MakeObject();
  mt_json.Set("flood_clients", Json::MakeNumber(clients));
  mt_json.Set("zipf_tenants", Json::MakeNumber(4));
  mt_json.Set("light_requests", Json::MakeNumber(light_requests));
  mt_json.Set("light_p99_isolated_ms", Json::MakeNumber(light_p99_isolated));
  mt_json.Set("light_p99_contended_ms", Json::MakeNumber(light_p99_contended));
  mt_json.Set("light_p99_ratio", Json::MakeNumber(light_p99_ratio));
  mt_json.Set("light_p99_bound_ms", Json::MakeNumber(light_p99_bound));
  mt_json.Set("light_p99_within_bound", Json::MakeBool(light_within_bound));
  mt_json.Set("light_retries",
              Json::MakeNumber(static_cast<double>(light_retries)));
  mt_json.Set("flood_attempts",
              Json::MakeNumber(static_cast<double>(flood_attempts.load())));
  mt_json.Set("flood_completed",
              Json::MakeNumber(static_cast<double>(flood_completed.load())));
  mt_json.Set("flood_shed",
              Json::MakeNumber(static_cast<double>(flood_shed.load())));
  mt_json.Set("degraded_answers",
              Json::MakeNumber(static_cast<double>(degraded_answers.load())));
  mt_json.Set("sustained_rps", Json::MakeNumber(sustained_rps));
  mt_json.Set("non_retryable_errors",
              Json::MakeNumber(static_cast<double>(non_retryable.load())));
  mt_json.Set("sheds_missing_retry_hint",
              Json::MakeNumber(static_cast<double>(missing_retry_hint.load())));
  doc.Set("multi_tenant", std::move(mt_json));
  Json snap_json = Json::MakeObject();
  snap_json.Set("probe_requests", Json::MakeNumber(probe_requests));
  snap_json.Set("pre_restart_warm_rate", Json::MakeNumber(pre_warm_rate));
  snap_json.Set("restored_warm_rate", Json::MakeNumber(restored_warm_rate));
  snap_json.Set("restored_vs_pre_ratio", Json::MakeNumber(snapshot_ratio));
  snap_json.Set("cold_start_warm_rate", Json::MakeNumber(cold_warm_rate));
  doc.Set("snapshot", std::move(snap_json));
  std::ofstream out("BENCH_serve.json");
  out << doc.Dump();
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) { return dagperf::Main(argc, argv); }
