// Estimation-service throughput: N concurrent clients issue a recurring
// stream of estimate requests (the paper's §I serving scenario — the same
// self-tuning / capacity queries arriving again and again) against two
// stacks:
//
//   cold — the pre-service per-request path: every request constructs its
//          own BOE model, task-time source and estimator, no cache;
//   warm — one long-lived EstimationService: shared pool, admission queue,
//          and the persistent cross-request task-time memo.
//
// Two further sections exercise the multi-tenant overload layer:
//
//   multi-tenant — `clients` flooder threads hammer a small-queue service
//          under Zipf-skewed tenant names while one light tenant issues a
//          measured trickle; DRF fair-share admission must keep serving the
//          light tenant (p99 of its served requests within 2x of isolated),
//          and every rejection must be retryable with a retry_after_ms hint;
//   snapshot — the warm service's memo + checkpoints are saved, restored
//          into a fresh service, and probed with 100 requests: the restored
//          shard's warm-serving rate (requests answered without a single
//          memo miss) must reach >= 80% of the live pre-restart service's
//          rate (a cold control service is probed for contrast).
//
// Two 0.8 sections exercise in-flight coalescing and hedged sweeps:
//
//   coalesce — 64 clients burst the *same* request at a cold workflow;
//          the first submission computes, the rest attach to the in-flight
//          leader. Gate: actual computations (completed minus attached)
//          stay within 10% of requests;
//   hedged sweep — a reducer sweep with ~5% of candidates hit by injected
//          50x stragglers, run unhedged and hedged. Gate: hedging cuts the
//          candidate p99 by >= 20% while wasting < 15% of its launches.
//
// Reports requests/sec, p50/p99 latency and the memo hit rate to stdout and
// BENCH_serve.json. The warm stack must beat cold on throughput — that gap
// is the service layer's reason to exist. CI gates the JSON (see ci.yml).
//
// Build & run:  ./build/bench/bench_serve [clients] [requests-per-client]

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/parallel.h"
#include "model/sweep.h"
#include "resilience/fault.h"
#include "router/router.h"
#include "service/line_client.h"
#include "service/service.h"
#include "workloads/micro.h"
#include "workloads/suite.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

/// Latencies (seconds) of one measured run plus its wall-clock.
struct RunResult {
  std::vector<double> latencies;
  double wall_seconds = 0.0;

  double Rps() const {
    return wall_seconds > 0 ? static_cast<double>(latencies.size()) / wall_seconds
                            : 0.0;
  }
  double QuantileMs(double q) {
    if (latencies.empty()) return 0.0;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t i = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[i] * 1e3;
  }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Quantile of a sample already in milliseconds.
double QuantileOfMs(std::vector<double> ms, double q) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const std::size_t i = std::min(
      ms.size() - 1, static_cast<std::size_t>(q * static_cast<double>(ms.size())));
  return ms[i];
}

/// Runs `clients` threads, each issuing `per_client` sequential requests
/// round-robin over the workflow names, and collects per-request latencies.
template <typename PerRequest>
RunResult DriveClients(int clients, int per_client,
                       const std::vector<std::string>& names,
                       const PerRequest& request_fn) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  const double start = Now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        const std::string& name = names[(c + i) % names.size()];
        const double begin = Now();
        if (!request_fn(name)) {
          std::fprintf(stderr, "request for %s failed\n", name.c_str());
          std::exit(1);
        }
        latencies[c].push_back(Now() - begin);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  RunResult result;
  result.wall_seconds = Now() - start;
  for (std::vector<double>& per_thread : latencies) {
    result.latencies.insert(result.latencies.end(), per_thread.begin(),
                            per_thread.end());
  }
  return result;
}

int Main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 64;

  Result<std::vector<NamedFlow>> suite = TableThreeSuite(0.5);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }
  // A small recurring set — the serving pattern the persistent memo targets.
  const std::size_t distinct = std::min<std::size_t>(4, suite->size());
  std::vector<std::string> names;
  std::vector<DagWorkflow> flows;
  for (std::size_t i = 0; i < distinct; ++i) {
    names.push_back((*suite)[i].name);
    flows.push_back((*suite)[i].flow);
  }
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  std::printf("bench_serve: %d clients x %d requests over %zu workflows\n",
              clients, per_client, names.size());

  // Cold: the per-request stack, same client concurrency, no shared state.
  RunResult cold = DriveClients(clients, per_client, names, [&](const std::string&
                                                                    name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] != name) continue;
      const BoeModel model(cluster.node);
      const BoeTaskTimeSource source(model, Duration::Seconds(1));
      const StateBasedEstimator estimator(cluster, SchedulerConfig{});
      return estimator.Estimate(flows[i], source).ok();
    }
    return false;
  });

  // Warm: one service, registered once, shared memo across every request.
  EstimationService service;
  for (std::size_t i = 0; i < distinct; ++i) {
    if (Status st = service.RegisterWorkflow(names[i], std::move(flows[i]));
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  RunResult warm =
      DriveClients(clients, per_client, names, [&](const std::string& name) {
        ServiceRequest request;
        request.workflow = name;
        return service.Submit(std::move(request)).get().ok();
      });
  const ServiceStats warm_stats = service.Stats();
  const TaskTimeMemo::Stats cache = warm_stats.cache;

  // Registers the recurring workflow set into a fresh service (the suite
  // still owns pristine copies; `flows` was moved into the warm service).
  const auto register_all = [&](EstimationService& target) {
    for (std::size_t i = 0; i < distinct; ++i) {
      if (Status st = target.RegisterWorkflow(names[i], (*suite)[i].flow);
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
  };

  // --- Multi-tenant overload: a Zipf-skewed flood with one light tenant. ---
  //
  // The queue is deliberately tiny (depth ~ worker count) so a served
  // request never waits behind more than one wave of work: under flood the
  // excess is shed with retryable RESOURCE_EXHAUSTED + retry_after_ms
  // instead of building backlog, and DRF fair-share admission keeps
  // granting the light tenant its slot. The light tenant's p99 is measured
  // over served requests (queue wait + service time, the SLO tracker's
  // view); its retry waits are counted separately as light_retries.
  ServiceOptions mt_options;
  mt_options.threads = 4;
  mt_options.max_queue_depth = 6;
  mt_options.overload_target_sojourn_ms = 50.0;
  EstimationService mt(mt_options);
  register_all(mt);
  for (std::size_t i = 0; i < distinct; ++i) {
    ServiceRequest request;
    request.workflow = names[i];
    request.tenant = "warmup";
    if (!mt.Submit(std::move(request)).get().ok()) {
      std::fprintf(stderr, "multi-tenant warmup for %s failed\n",
                   names[i].c_str());
      return 1;
    }
  }

  std::atomic<std::uint64_t> non_retryable{0};
  std::atomic<std::uint64_t> missing_retry_hint{0};
  std::uint64_t light_retries = 0;
  const int light_requests = 100;
  // One light-tenant pass: every logical request retries sheds with the
  // server's own retry_after_ms hint until served; starvation is a bench
  // failure. Latency is the server-observed queue wait + service time of
  // the served attempt — what admission fairness controls. (Client-side
  // wall time would mostly measure OS scheduling of the flooder threads on
  // small CI hosts, not the service's treatment of the tenant.)
  const auto serve_light = [&](std::vector<double>* served_ms) {
    for (int i = 0; i < light_requests; ++i) {
      const std::string& name = names[static_cast<std::size_t>(i) % names.size()];
      bool served = false;
      for (int attempt = 0; attempt < 1000 && !served; ++attempt) {
        ServiceRequest request;
        request.workflow = name;
        request.tenant = "light";
        const Result<WorkflowEstimate> result =
            mt.Submit(std::move(request)).get();
        if (result.ok()) {
          served_ms->push_back(result->queue_wait_ms + result->service_ms);
          served = true;
          break;
        }
        if (!IsRetryable(result.status().code())) {
          ++non_retryable;
          break;
        }
        if (result.status().retry_after_ms() <= 0.0) ++missing_retry_hint;
        ++light_retries;
        const double sleep_ms =
            std::min(std::max(result.status().retry_after_ms(), 0.1), 10.0);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      if (!served) {
        std::fprintf(stderr, "light tenant starved on %s\n", name.c_str());
        std::exit(1);
      }
    }
  };

  std::vector<double> light_isolated_ms;
  serve_light(&light_isolated_ms);

  std::vector<double> light_contended_ms;
  std::atomic<bool> light_done{false};
  std::atomic<std::uint64_t> flood_attempts{0};
  std::atomic<std::uint64_t> flood_completed{0};
  std::atomic<std::uint64_t> flood_shed{0};
  std::atomic<std::uint64_t> degraded_answers{0};
  std::vector<std::thread> flooders;
  const double contended_start = Now();
  for (int c = 0; c < clients; ++c) {
    flooders.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(1000 + c));
      // Zipf-skewed tenant mix: rank k drawn with weight 1/(k+1).
      std::discrete_distribution<int> zipf({1.0, 0.5, 1.0 / 3.0, 0.25});
      std::uint64_t i = 0;
      while (!light_done.load(std::memory_order_acquire)) {
        ServiceRequest request;
        request.workflow = names[i++ % names.size()];
        request.tenant = "zipf-" + std::to_string(zipf(rng));
        ++flood_attempts;
        const Result<WorkflowEstimate> result =
            mt.Submit(std::move(request)).get();
        if (result.ok()) {
          ++flood_completed;
          if (result->degraded) ++degraded_answers;
        } else if (IsRetryable(result.status().code())) {
          ++flood_shed;
          if (result.status().retry_after_ms() <= 0.0) ++missing_retry_hint;
        } else {
          ++non_retryable;
        }
        // Closed-loop think time: keeps the flood a service-queue problem
        // instead of pure CPU starvation of everything else on small hosts.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  serve_light(&light_contended_ms);
  light_done.store(true, std::memory_order_release);
  for (std::thread& t : flooders) t.join();
  const double contended_wall = Now() - contended_start;
  const double sustained_rps =
      contended_wall > 0
          ? static_cast<double>(flood_completed.load() + light_requests) /
                contended_wall
          : 0.0;
  const double light_p99_isolated = QuantileOfMs(light_isolated_ms, 0.99);
  const double light_p99_contended = QuantileOfMs(light_contended_ms, 0.99);
  const double light_p99_ratio =
      light_p99_contended / std::max(light_p99_isolated, 0.05);
  // The isolation bound: 2x the isolated p99, floored at an absolute 2 ms
  // serving SLO. Warm isolated serving is tens of microseconds, so on small
  // CI hosts the contended p99 is dominated by OS scheduling tails (~1 ms
  // thread wake-up), which admission fairness cannot control; the floor
  // keeps the gate about tenant isolation while still demanding the light
  // tenant be served within single-digit milliseconds under full flood.
  const double light_p99_bound =
      std::max(2.0 * light_p99_isolated, 2.0);
  const bool light_within_bound = light_p99_contended <= light_p99_bound;

  // --- Snapshot/restore: a restarted shard must not serve cold. ---
  //
  // The probe mix spreads the recurring workflows over three cluster sizes
  // — distinct (workflow, nodes) pairs, so a cold start pays real model
  // evaluations. The metric is the warm-serving rate: the fraction of the
  // first `probe_requests` requests that completed without a single memo
  // miss (every task time came from the restored memo or a restored prefix
  // checkpoint — no cold evaluation). A restart from snapshot must reach
  // >= 80% of the live pre-restart service's own rate on the same mix.
  const int probe_requests = 100;
  const std::vector<int> probe_nodes = {0, 20, 40};
  const auto probe_request = [&](int i) {
    ServiceRequest request;
    request.workflow = names[static_cast<std::size_t>(i) % names.size()];
    request.nodes = probe_nodes[(static_cast<std::size_t>(i) / names.size()) %
                                probe_nodes.size()];
    return request;
  };
  const auto warm_rate = [&](EstimationService& target) {
    int warm_served = 0;
    for (int i = 0; i < probe_requests; ++i) {
      const std::uint64_t misses_before = target.Stats().cache.misses;
      if (!target.Submit(probe_request(i)).get().ok()) {
        std::fprintf(stderr, "snapshot probe request failed\n");
        std::exit(1);
      }
      if (target.Stats().cache.misses == misses_before) ++warm_served;
    }
    return static_cast<double>(warm_served) / probe_requests;
  };

  // Cover the probe mix on the live service once, snapshot its warm state,
  // and measure its own steady-state rate — the bar the restart must reach.
  const int mix_size =
      static_cast<int>(names.size() * probe_nodes.size());
  for (int i = 0; i < mix_size; ++i) {
    if (!service.Submit(probe_request(i)).get().ok()) {
      std::fprintf(stderr, "snapshot fill request failed\n");
      return 1;
    }
  }
  const std::string snapshot_path = "BENCH_serve.snapshot";
  if (Status st = service.SaveSnapshot(snapshot_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double pre_warm_rate = warm_rate(service);

  EstimationService restored;
  register_all(restored);
  if (Status st = restored.LoadSnapshot(snapshot_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double restored_warm_rate = warm_rate(restored);

  EstimationService cold_start;
  register_all(cold_start);
  const double cold_warm_rate = warm_rate(cold_start);
  std::remove(snapshot_path.c_str());
  const double snapshot_ratio =
      pre_warm_rate > 0 ? restored_warm_rate / pre_warm_rate : 0.0;

  // --- Coalescing: a 64-client burst of identical in-flight requests. ---
  //
  // The dashboard-refresh pattern: every client asks for the same workflow
  // at the same moment. The first submission becomes the in-flight leader
  // and actually computes; the rest attach to it and are fulfilled from the
  // leader's bits. Each round bursts the clients at a workflow this service
  // has never estimated, with the leader's first memo-miss compute stalled
  // 60 ms through the chaos seam — on a one-core CI host the burst threads
  // are still being spawned while the leader runs, and the stall keeps the
  // in-flight window open until every submission has attached. The gate is
  // the point of coalescing: actual computations (completed minus attached)
  // stay within 10% of requests.
  ServiceOptions burst_options;
  burst_options.threads = 2;
  EstimationService burst_service(burst_options);
  register_all(burst_service);
  const int burst_clients = 64;
  const int burst_rounds = static_cast<int>(names.size());
  std::vector<double> burst_ms;
  burst_ms.reserve(static_cast<std::size_t>(burst_clients * burst_rounds));
  resilience::FaultInjector& injector = resilience::FaultInjector::Default();
  for (int round = 0; round < burst_rounds; ++round) {
    resilience::FaultPlan stall;
    stall.probability = 1.0;
    stall.latency_ms = 60.0;
    stall.max_fires = 1;
    if (Status st = injector.Configure("model.task_time", stall); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    injector.Arm(static_cast<std::uint64_t>(round) + 1);
    const std::string& name = names[static_cast<std::size_t>(round)];
    std::vector<double> round_ms(burst_clients, 0.0);
    std::vector<std::thread> burst;
    burst.reserve(burst_clients);
    for (int c = 0; c < burst_clients; ++c) {
      burst.emplace_back([&, c] {
        ServiceRequest request;
        request.workflow = name;
        const double begin = Now();
        if (!burst_service.Submit(std::move(request)).get().ok()) {
          std::fprintf(stderr, "burst request for %s failed\n", name.c_str());
          std::exit(1);
        }
        round_ms[c] = (Now() - begin) * 1e3;
      });
    }
    for (std::thread& t : burst) t.join();
    injector.Disarm();
    burst_ms.insert(burst_ms.end(), round_ms.begin(), round_ms.end());
  }
  injector.ResetAll();
  const ServiceStats burst_stats = burst_service.Stats();
  const double burst_requests =
      static_cast<double>(burst_clients) * burst_rounds;
  const double burst_computations = static_cast<double>(
      burst_stats.completed - burst_stats.coalesce_attached);
  const double computation_fraction = burst_computations / burst_requests;
  const double burst_p50 = QuantileOfMs(burst_ms, 0.50);
  const double burst_p99 = QuantileOfMs(burst_ms, 0.99);

  // --- Hedged sweeps: stragglers raced against delayed duplicates. ---
  //
  // A reducer sweep with ~5% of candidates hit by a 50x straggler, injected
  // at the model.task_time seam — the sleep lands inside a pool worker's
  // compute, exactly where a wedged node or a cold page cache would. The
  // hedged run duplicates any candidate that overstays a pinned delay and
  // takes whichever copy finishes first; both copies compute identical
  // bits, so hedging is invisible in the output and must show up only in
  // the tail. Gates: hedged p99 at least 20% under unhedged p99, and
  // wasted hedges (the loser ran to completion — duplicate work for
  // nothing) under 15% of launches.
  std::vector<int> reducer_counts;
  for (int r = 4; r <= 192; r += 4) reducer_counts.push_back(r);
  const Result<std::vector<DagWorkflow>> hedge_flows = BuildReducerCandidates(
      WordCountSpec(Bytes::FromGB(20)), reducer_counts);
  if (!hedge_flows.ok()) {
    std::fprintf(stderr, "%s\n", hedge_flows.status().ToString().c_str());
    return 1;
  }
  std::vector<SweepCandidate> sweep_candidates;
  for (const DagWorkflow& flow : *hedge_flows) {
    sweep_candidates.push_back({&flow, cluster, flow.name()});
  }
  const SchedulerConfig sweep_sched;
  const BoeModel sweep_model(cluster.node);
  const BoeTaskTimeSource sweep_source(sweep_model, Duration::Seconds(1));
  // An explicit pool: a dedicated pool sized by `threads` is clamped to the
  // hardware, and a one-core CI machine would degrade to the serial loop
  // where hedging never arms. A caller-owned pool is taken as-is.
  ThreadPool sweep_pool(4);
  SweepOptions sweep_base;
  sweep_base.pool = &sweep_pool;

  // Clean calibration: the per-candidate p50 under this host's contention
  // (the run also fills the process-wide latency window hedging draws its
  // delay from). Stragglers sleep 50x this p50; the hedge delay is pinned
  // well above the clean tail and well below the straggler.
  const SweepResult calibration =
      EstimateBatch(sweep_candidates, sweep_sched, sweep_source, sweep_base);
  for (const Result<DagEstimate>& estimate : calibration.estimates) {
    if (!estimate.ok()) {
      std::fprintf(stderr, "%s\n", estimate.status().ToString().c_str());
      return 1;
    }
  }
  const double sweep_p50_ms =
      std::max(0.4, QuantileOfMs(calibration.candidate_latency_ms, 0.5));
  const double straggler_ms = 50.0 * sweep_p50_ms;
  const double hedge_delay_ms = std::max(1.0, 8.0 * sweep_p50_ms);

  // The injector fires per memo-miss compute and a candidate issues many,
  // so a naive 5% per call would straggle nearly every candidate: measure
  // calls-per-candidate with a never-firing armed plan, then solve for the
  // per-call probability that leaves ~5% of *candidates* straggling.
  resilience::FaultPoint& task_time_point =
      injector.GetPoint("model.task_time");
  resilience::FaultPlan probe;
  probe.probability = 1e-12;
  if (Status st = injector.Configure("model.task_time", probe); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  injector.Arm(7);
  const std::uint64_t evals_before = task_time_point.evaluations();
  EstimateBatch(sweep_candidates, sweep_sched, sweep_source, sweep_base);
  const double calls_per_candidate = std::max(
      1.0, static_cast<double>(task_time_point.evaluations() - evals_before) /
               static_cast<double>(sweep_candidates.size()));
  injector.Disarm();
  const double per_call_probability =
      1.0 - std::pow(0.95, 1.0 / calls_per_candidate);

  resilience::FaultPlan straggle;
  straggle.probability = per_call_probability;
  straggle.latency_ms = straggler_ms;
  const int sweep_rounds = 8;
  const auto run_sweeps = [&](const SweepOptions& options, std::uint64_t seed,
                              SweepStats* totals) {
    std::vector<double> latencies_ms;
    latencies_ms.reserve(sweep_candidates.size() * sweep_rounds);
    if (Status st = injector.Configure("model.task_time", straggle); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      std::exit(1);
    }
    injector.Arm(seed);
    for (int round = 0; round < sweep_rounds; ++round) {
      const SweepResult result =
          EstimateBatch(sweep_candidates, sweep_sched, sweep_source, options);
      for (const Result<DagEstimate>& estimate : result.estimates) {
        if (!estimate.ok()) {
          std::fprintf(stderr, "sweep candidate failed: %s\n",
                       estimate.status().ToString().c_str());
          std::exit(1);
        }
      }
      latencies_ms.insert(latencies_ms.end(),
                          result.candidate_latency_ms.begin(),
                          result.candidate_latency_ms.end());
      if (totals != nullptr) {
        totals->hedges_launched += result.stats.hedges_launched;
        totals->hedges_won += result.stats.hedges_won;
        totals->hedges_wasted += result.stats.hedges_wasted;
      }
    }
    injector.Disarm();
    return latencies_ms;
  };

  const std::vector<double> unhedged_ms = run_sweeps(sweep_base, 11, nullptr);

  SweepOptions sweep_hedged = sweep_base;
  sweep_hedged.hedge.enabled = true;
  sweep_hedged.hedge.min_samples = 1;
  // Pin the delay (min == max): the gate should measure the race mechanism,
  // not drift in the shared window's quantile as straggler latencies land
  // in it between rounds.
  sweep_hedged.hedge.min_delay_ms = hedge_delay_ms;
  sweep_hedged.hedge.max_delay_ms = hedge_delay_ms;
  SweepStats hedge_totals;
  const std::vector<double> hedged_ms =
      run_sweeps(sweep_hedged, 11, &hedge_totals);
  injector.ResetAll();

  const double p99_unhedged = QuantileOfMs(unhedged_ms, 0.99);
  const double p99_hedged = QuantileOfMs(hedged_ms, 0.99);
  const double p99_improvement =
      p99_unhedged > 0 ? 1.0 - p99_hedged / p99_unhedged : 0.0;
  const double wasted_fraction =
      static_cast<double>(hedge_totals.hedges_wasted) /
      std::max(1.0, static_cast<double>(hedge_totals.hedges_launched));

  // --- Fleet: router overhead vs a direct shard + failover recovery. -------
  //
  // Both stacks answer the same 64 globally distinct (workflow, nodes)
  // estimates cold over real loopback TCP: "direct" speaks straight to one
  // `dagperf serve` child, "router" goes through a 3-shard consistent-hash
  // fleet. Distinct pairs force full model compute per request, so the
  // overhead ratio compares the proxy hop against genuine work rather than
  // against sub-millisecond memo hits. CI gates router p50 <= 1.2x direct
  // p50. Afterwards the shard owning names[0]'s arc is SIGKILLed under a
  // trickle of load; failover_recovery_ms is the time until the
  // supervisor's restarted child passes its readmission quorum, and every
  // error the trickle client sees must be retryable.
  std::string dagperf_bin;
  if (const char* env = std::getenv("DAGPERF_BIN");
      env != nullptr && env[0] != '\0') {
    dagperf_bin = env;
  }
#ifdef DAGPERF_CLI_PATH
  if (dagperf_bin.empty()) dagperf_bin = DAGPERF_CLI_PATH;
#endif
  if (dagperf_bin.empty()) {
    std::fprintf(stderr, "fleet: no dagperf binary (set DAGPERF_BIN)\n");
    return 1;
  }
  const std::string fleet_dir = "BENCH_serve_fleet";
  std::error_code fleet_dir_ec;
  std::filesystem::remove_all(fleet_dir, fleet_dir_ec);
  std::filesystem::create_directories(fleet_dir, fleet_dir_ec);
  const auto make_spec = [&](const std::string& id) {
    router::ShardSpec spec;
    spec.shard_id = id;
    spec.port_file = fleet_dir + "/" + id + ".port";
    spec.stderr_file = fleet_dir + "/" + id + ".log";
    std::filesystem::create_directories(fleet_dir + "/" + id, fleet_dir_ec);
    spec.command = {dagperf_bin,
                    "serve",
                    "--port",
                    "0",
                    "--port-file",
                    spec.port_file,
                    "--shard-id",
                    id,
                    "--snapshot-dir",
                    fleet_dir + "/" + id,
                    "--scale",
                    "0.1",
                    "--threads",
                    "2"};
    return spec;
  };
  constexpr int kFleetShards = 3;
  // A latency-overhead comparison wants the proxy hop, not scheduler
  // noise: keep client concurrency low (this box may be a single core —
  // the router run alone adds a whole process of threads) and warm the
  // router->shard connection pools before measuring.
  constexpr int kFleetClients = 2;
  constexpr int kFleetPerClient = 32;
  constexpr int kFleetRequests = kFleetClients * kFleetPerClient;
  // Each measured request is a 16-candidate capacity sweep (the paper's
  // what-if serving workload) over a window of node counts neither stack
  // has seen: (workflow, nodes) pairs stay globally distinct within each
  // stack, so every candidate pays full model compute and the overhead
  // ratio compares the proxy hop against real work, not sub-millisecond
  // memo hits. Both stacks are up at once and each client issues every
  // sweep to BOTH back-to-back in alternating order — paired samples, so
  // ambient scheduler noise (this may be a one-core box) hits the two
  // stacks equally instead of whichever run it coincided with.
  constexpr int kFleetSweepWidth = 16;
  const auto fleet_line = [&](int g) {
    const int window = g / static_cast<int>(names.size());
    const int base = 10 + window * kFleetSweepWidth;
    std::string nodes_list;
    for (int k = 0; k < kFleetSweepWidth; ++k) {
      if (k > 0) nodes_list += ",";
      nodes_list += std::to_string(base + k);
    }
    return "{\"op\":\"sweep\",\"id\":" + std::to_string(g) +
           ",\"workflow\":\"" +
           names[static_cast<std::size_t>(g) % names.size()] +
           "\",\"nodes_list\":[" + nodes_list + "]}";
  };
  const auto drive_paired = [&](int direct_port, int router_port,
                                std::vector<double>* direct_out,
                                std::vector<double>* router_out) {
    std::vector<std::vector<double>> direct_samples(
        static_cast<std::size_t>(kFleetClients));
    std::vector<std::vector<double>> router_samples(
        static_cast<std::size_t>(kFleetClients));
    std::vector<std::thread> workers;
    std::atomic<bool> drove{true};
    for (int c = 0; c < kFleetClients; ++c) {
      workers.emplace_back([&, c] {
        protocol::LineClient to_direct;
        protocol::LineClient to_router;
        if (!to_direct.Connect(direct_port).ok() ||
            !to_router.Connect(router_port).ok()) {
          drove = false;
          return;
        }
        const auto timed = [&](protocol::LineClient& client,
                               const std::string& line,
                               std::vector<double>* out) {
          const double begin = Now();
          const Result<std::string> response = client.Call(line, 60.0);
          if (!response.ok()) return false;
          const Result<Json> parsed = Json::Parse(response.value());
          if (!parsed.ok() || !parsed.value().GetBool("ok", false)) {
            return false;
          }
          out->push_back((Now() - begin) * 1e3);
          return true;
        };
        // Warmup: repeat-key requests (memo hits, near-zero compute) that
        // open every pooled connection and fault in both stacks' code
        // paths before the measured loop.
        for (std::size_t w = 0; w < 2 * names.size(); ++w) {
          const std::string warm =
              "{\"op\":\"estimate\",\"id\":0,\"workflow\":\"" +
              names[w % names.size()] + "\"}";
          if (!to_direct.Call(warm, 60.0).ok() ||
              !to_router.Call(warm, 60.0).ok()) {
            drove = false;
            return;
          }
        }
        std::vector<double>& mine_direct =
            direct_samples[static_cast<std::size_t>(c)];
        std::vector<double>& mine_router =
            router_samples[static_cast<std::size_t>(c)];
        for (int i = 0; i < kFleetPerClient; ++i) {
          const int g = c * kFleetPerClient + i;
          const std::string line = fleet_line(g);
          const bool paired =
              g % 2 == 0 ? (timed(to_direct, line, &mine_direct) &&
                            timed(to_router, line, &mine_router))
                         : (timed(to_router, line, &mine_router) &&
                            timed(to_direct, line, &mine_direct));
          if (!paired) {
            drove = false;
            return;
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (const std::vector<double>& sample : direct_samples) {
      direct_out->insert(direct_out->end(), sample.begin(), sample.end());
    }
    for (const std::vector<double>& sample : router_samples) {
      router_out->insert(router_out->end(), sample.begin(), sample.end());
    }
    return drove.load();
  };

  std::vector<double> fleet_direct_ms;
  std::vector<double> fleet_router_ms;
  double failover_recovery_ms = 0.0;
  std::uint64_t trickle_served = 0;
  std::uint64_t trickle_retryable = 0;
  std::uint64_t trickle_non_retryable = 0;
  router::RouterSummary fleet_summary;
  {
    router::ShardSpec direct_spec = make_spec("direct");
    router::ShardProcessOptions direct_options;
    direct_options.shard_id = direct_spec.shard_id;
    direct_options.command = direct_spec.command;
    direct_options.port_file = direct_spec.port_file;
    direct_options.stderr_file = direct_spec.stderr_file;
    router::ShardProcess direct(std::move(direct_options));
    if (Status st = direct.Start(); !st.ok()) {
      std::fprintf(stderr, "fleet: direct shard failed to start: %s\n",
                   st.ToString().c_str());
      return 1;
    }

    std::vector<router::ShardSpec> specs;
    for (int i = 0; i < kFleetShards; ++i) {
      specs.push_back(make_spec("shard-" + std::to_string(i)));
    }
    router::RouterOptions options;
    options.probe_interval_seconds = 0.02;
    options.restart_backoff_initial_seconds = 0.02;
    const CancelToken stop = CancelToken::Cancellable();
    options.stop = stop;
    auto port_promise = std::make_shared<std::promise<int>>();
    options.on_listen = [port_promise](int port) {
      try {
        port_promise->set_value(port);
      } catch (const std::future_error&) {
      }
    };
    router::Router fleet(std::move(specs), std::move(options));
    std::atomic<bool> serve_ok{false};
    std::thread serve_thread([&] {
      const Result<router::RouterSummary> served = fleet.Serve();
      if (served.ok()) {
        fleet_summary = served.value();
        serve_ok = true;
      } else {
        std::fprintf(stderr, "fleet: router serve failed: %s\n",
                     served.status().ToString().c_str());
      }
      try {
        port_promise->set_value(-1);
      } catch (const std::future_error&) {
      }
    });
    const int router_port = port_promise->get_future().get();
    if (router_port <= 0) {
      serve_thread.join();
      std::fprintf(stderr, "fleet: router failed to listen\n");
      return 1;
    }
    const bool drove = drive_paired(direct.port(), router_port,
                                    &fleet_direct_ms, &fleet_router_ms);
    direct.Terminate();
    direct.WaitExit(10.0);
    if (!drove) {
      stop.Cancel();
      serve_thread.join();
      std::fprintf(stderr, "fleet: paired measurement failed\n");
      return 1;
    }

    // Failover: kill the owner of names[0]'s arc under a trickle of load
    // and time the readmission (launches bump + back to kUp).
    const std::string victim =
        fleet.OwnerOf(router::Router::RouteKey("default", names[0]));
    pid_t victim_pid = -1;
    std::uint64_t launches_pre = 0;
    for (const router::ShardInfo& info : fleet.Shards()) {
      if (info.shard_id == victim) {
        victim_pid = info.pid;
        launches_pre = info.launches;
      }
    }
    std::atomic<bool> trickle_stop{false};
    std::thread trickle([&] {
      protocol::LineClient client;
      int id = 1 << 20;
      while (!trickle_stop.load()) {
        if (!client.connected() && !client.Connect(router_port).ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        const std::string line =
            "{\"op\":\"estimate\",\"id\":" + std::to_string(id++) +
            ",\"workflow\":\"" + names[0] + "\"}";
        const Result<std::string> response = client.Call(line, 10.0);
        if (!response.ok()) {
          client.Close();  // shard died mid-flight; reconnect and retry
          continue;
        }
        const Result<Json> parsed = Json::Parse(response.value());
        if (!parsed.ok()) continue;
        if (parsed.value().GetBool("ok", false)) {
          ++trickle_served;
        } else {
          const Json* error = parsed.value().Get("error");
          if (error != nullptr && error->GetBool("retryable", false)) {
            ++trickle_retryable;
          } else {
            ++trickle_non_retryable;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    const double kill_start = Now();
    if (victim_pid > 0) ::kill(victim_pid, SIGKILL);
    bool recovered = false;
    while (!recovered && Now() - kill_start < 60.0) {
      for (const router::ShardInfo& info : fleet.Shards()) {
        if (info.shard_id == victim &&
            info.state == router::ShardState::kUp &&
            info.launches > launches_pre) {
          recovered = true;
        }
      }
      if (!recovered) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    failover_recovery_ms = (Now() - kill_start) * 1e3;
    trickle_stop = true;
    trickle.join();
    stop.Cancel();
    serve_thread.join();
    if (!recovered || !serve_ok.load()) {
      std::fprintf(stderr, "fleet: failover recovery failed\n");
      return 1;
    }
    if (trickle_non_retryable > 0) {
      std::fprintf(stderr,
                   "fleet: %llu non-retryable errors during failover\n",
                   static_cast<unsigned long long>(trickle_non_retryable));
      return 1;
    }
  }
  std::filesystem::remove_all(fleet_dir, fleet_dir_ec);
  const double fleet_direct_p50 = QuantileOfMs(fleet_direct_ms, 0.50);
  const double fleet_direct_p99 = QuantileOfMs(fleet_direct_ms, 0.99);
  const double fleet_router_p50 = QuantileOfMs(fleet_router_ms, 0.50);
  const double fleet_router_p99 = QuantileOfMs(fleet_router_ms, 0.99);
  // The gated p50 overhead is the median of per-pair ratios: each sweep
  // was sent to both stacks back-to-back, so the pairwise estimator
  // cancels the scheduler noise that a ratio of independent medians keeps.
  std::vector<double> fleet_pair_overhead;
  for (std::size_t i = 0;
       i < std::min(fleet_direct_ms.size(), fleet_router_ms.size()); ++i) {
    if (fleet_direct_ms[i] > 0) {
      fleet_pair_overhead.push_back(fleet_router_ms[i] / fleet_direct_ms[i] -
                                    1.0);
    }
  }
  const double fleet_p50_overhead = QuantileOfMs(fleet_pair_overhead, 0.50);
  const double fleet_p99_overhead =
      fleet_direct_p99 > 0 ? fleet_router_p99 / fleet_direct_p99 - 1.0 : 0.0;

  const double cold_rps = cold.Rps();
  const double warm_rps = warm.Rps();
  const double speedup = cold_rps > 0 ? warm_rps / cold_rps : 0.0;
  const double cold_p50 = cold.QuantileMs(0.50), cold_p99 = cold.QuantileMs(0.99);
  const double warm_p50 = warm.QuantileMs(0.50), warm_p99 = warm.QuantileMs(0.99);
  std::printf("cold (per-request stack): %8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n",
              cold_rps, cold_p50, cold_p99);
  std::printf("warm (service + memo):    %8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n",
              warm_rps, warm_p50, warm_p99);
  std::printf(
      "speedup %.2fx, cache hit rate %.1f%% (%llu hits, %llu misses, "
      "%llu checkpoint resumes)\n",
      speedup, 100.0 * cache.hit_rate(),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(warm_stats.incremental.hits));
  std::printf(
      "multi-tenant (%d flooders, zipf over 4 tenants + 1 light):\n"
      "  light p99 isolated %6.2f ms, contended %6.2f ms (ratio %.2fx, "
      "bound %.2f ms %s, %llu retries)\n"
      "  flood: %llu attempts, %llu completed, %llu shed, %llu degraded; "
      "sustained %.1f req/s\n"
      "  non-retryable errors %llu, sheds missing retry hint %llu\n",
      clients, light_p99_isolated, light_p99_contended, light_p99_ratio,
      light_p99_bound, light_within_bound ? "ok" : "EXCEEDED",
      static_cast<unsigned long long>(light_retries),
      static_cast<unsigned long long>(flood_attempts.load()),
      static_cast<unsigned long long>(flood_completed.load()),
      static_cast<unsigned long long>(flood_shed.load()),
      static_cast<unsigned long long>(degraded_answers.load()), sustained_rps,
      static_cast<unsigned long long>(non_retryable.load()),
      static_cast<unsigned long long>(missing_retry_hint.load()));
  std::printf(
      "snapshot restore (warm-serving rate over first %d requests): "
      "pre %.1f%% -> restored %.1f%% (%.2fx of pre), cold control %.1f%%\n",
      probe_requests, 100.0 * pre_warm_rate, 100.0 * restored_warm_rate,
      snapshot_ratio, 100.0 * cold_warm_rate);
  std::printf(
      "coalesce (%d identical clients x %d rounds): %.0f requests, "
      "%.0f computations (%.1f%%), %llu attached, %llu leaders, "
      "p50 %6.2f ms  p99 %6.2f ms\n",
      burst_clients, burst_rounds, burst_requests, burst_computations,
      100.0 * computation_fraction,
      static_cast<unsigned long long>(burst_stats.coalesce_attached),
      static_cast<unsigned long long>(burst_stats.coalesce_leaders), burst_p50,
      burst_p99);
  std::printf(
      "hedged sweep (%zu candidates x %d rounds, ~5%% stragglers at "
      "%.1f ms, hedge delay %.2f ms):\n"
      "  p99 unhedged %7.2f ms -> hedged %7.2f ms (%.0f%% better); "
      "hedges: %llu launched, %llu won, %llu wasted (%.1f%% of launches)\n",
      sweep_candidates.size(), sweep_rounds, straggler_ms, hedge_delay_ms,
      p99_unhedged, p99_hedged, 100.0 * p99_improvement,
      static_cast<unsigned long long>(hedge_totals.hedges_launched),
      static_cast<unsigned long long>(hedge_totals.hedges_won),
      static_cast<unsigned long long>(hedge_totals.hedges_wasted),
      100.0 * wasted_fraction);
  std::printf(
      "fleet (%d shards, %d clients, %d sweeps paired direct+router over "
      "TCP):\n"
      "  direct p50 %6.2f ms p99 %6.2f ms; router p50 %6.2f ms p99 %6.2f ms "
      "(paired p50 overhead %+.1f%%, bound +20%% %s)\n"
      "  failover: recovery %.0f ms, %llu router restarts, %llu reroutes; "
      "trickle %llu served, %llu retryable, %llu non-retryable\n",
      kFleetShards, kFleetClients, kFleetRequests, fleet_direct_p50,
      fleet_direct_p99, fleet_router_p50, fleet_router_p99,
      100.0 * fleet_p50_overhead,
      fleet_p50_overhead <= 0.20 ? "ok" : "EXCEEDED", failover_recovery_ms,
      static_cast<unsigned long long>(fleet_summary.restarts),
      static_cast<unsigned long long>(fleet_summary.reroutes),
      static_cast<unsigned long long>(trickle_served),
      static_cast<unsigned long long>(trickle_retryable),
      static_cast<unsigned long long>(trickle_non_retryable));

  Json doc = Json::MakeObject();
  doc.Set("clients", Json::MakeNumber(clients));
  doc.Set("requests_per_client", Json::MakeNumber(per_client));
  doc.Set("distinct_workflows", Json::MakeNumber(static_cast<double>(distinct)));
  Json cold_json = Json::MakeObject();
  cold_json.Set("requests_per_sec", Json::MakeNumber(cold_rps));
  cold_json.Set("p50_ms", Json::MakeNumber(cold_p50));
  cold_json.Set("p99_ms", Json::MakeNumber(cold_p99));
  doc.Set("cold", std::move(cold_json));
  Json warm_json = Json::MakeObject();
  warm_json.Set("requests_per_sec", Json::MakeNumber(warm_rps));
  warm_json.Set("p50_ms", Json::MakeNumber(warm_p50));
  warm_json.Set("p99_ms", Json::MakeNumber(warm_p99));
  doc.Set("warm", std::move(warm_json));
  doc.Set("warm_vs_cold_speedup", Json::MakeNumber(speedup));
  doc.Set("cache_hit_rate", Json::MakeNumber(cache.hit_rate()));
  doc.Set("cache_hits", Json::MakeNumber(static_cast<double>(cache.hits)));
  doc.Set("cache_misses", Json::MakeNumber(static_cast<double>(cache.misses)));
  // Prefix-checkpoint resumes: exact repeats short-circuit here and never
  // reach the memo. Since 0.8, an exact repeat that is still *in flight*
  // attaches to the leader instead and runs zero estimator states — warmth
  // gates must consider all three counters.
  doc.Set("checkpoint_hits",
          Json::MakeNumber(static_cast<double>(warm_stats.incremental.hits)));
  doc.Set("warm_coalesced",
          Json::MakeNumber(static_cast<double>(warm_stats.coalesce_attached)));
  Json mt_json = Json::MakeObject();
  mt_json.Set("flood_clients", Json::MakeNumber(clients));
  mt_json.Set("zipf_tenants", Json::MakeNumber(4));
  mt_json.Set("light_requests", Json::MakeNumber(light_requests));
  mt_json.Set("light_p99_isolated_ms", Json::MakeNumber(light_p99_isolated));
  mt_json.Set("light_p99_contended_ms", Json::MakeNumber(light_p99_contended));
  mt_json.Set("light_p99_ratio", Json::MakeNumber(light_p99_ratio));
  mt_json.Set("light_p99_bound_ms", Json::MakeNumber(light_p99_bound));
  mt_json.Set("light_p99_within_bound", Json::MakeBool(light_within_bound));
  mt_json.Set("light_retries",
              Json::MakeNumber(static_cast<double>(light_retries)));
  mt_json.Set("flood_attempts",
              Json::MakeNumber(static_cast<double>(flood_attempts.load())));
  mt_json.Set("flood_completed",
              Json::MakeNumber(static_cast<double>(flood_completed.load())));
  mt_json.Set("flood_shed",
              Json::MakeNumber(static_cast<double>(flood_shed.load())));
  mt_json.Set("degraded_answers",
              Json::MakeNumber(static_cast<double>(degraded_answers.load())));
  mt_json.Set("sustained_rps", Json::MakeNumber(sustained_rps));
  mt_json.Set("non_retryable_errors",
              Json::MakeNumber(static_cast<double>(non_retryable.load())));
  mt_json.Set("sheds_missing_retry_hint",
              Json::MakeNumber(static_cast<double>(missing_retry_hint.load())));
  doc.Set("multi_tenant", std::move(mt_json));
  Json snap_json = Json::MakeObject();
  snap_json.Set("probe_requests", Json::MakeNumber(probe_requests));
  snap_json.Set("pre_restart_warm_rate", Json::MakeNumber(pre_warm_rate));
  snap_json.Set("restored_warm_rate", Json::MakeNumber(restored_warm_rate));
  snap_json.Set("restored_vs_pre_ratio", Json::MakeNumber(snapshot_ratio));
  snap_json.Set("cold_start_warm_rate", Json::MakeNumber(cold_warm_rate));
  doc.Set("snapshot", std::move(snap_json));
  Json coalesce_json = Json::MakeObject();
  coalesce_json.Set("burst_clients", Json::MakeNumber(burst_clients));
  coalesce_json.Set("burst_rounds", Json::MakeNumber(burst_rounds));
  coalesce_json.Set("requests", Json::MakeNumber(burst_requests));
  coalesce_json.Set("computations", Json::MakeNumber(burst_computations));
  coalesce_json.Set("computation_fraction",
                    Json::MakeNumber(computation_fraction));
  coalesce_json.Set(
      "coalesce_attached",
      Json::MakeNumber(static_cast<double>(burst_stats.coalesce_attached)));
  coalesce_json.Set(
      "coalesce_leaders",
      Json::MakeNumber(static_cast<double>(burst_stats.coalesce_leaders)));
  coalesce_json.Set("p50_ms", Json::MakeNumber(burst_p50));
  coalesce_json.Set("p99_ms", Json::MakeNumber(burst_p99));
  doc.Set("coalesce", std::move(coalesce_json));
  Json hedge_json = Json::MakeObject();
  hedge_json.Set("candidates",
                 Json::MakeNumber(static_cast<double>(sweep_candidates.size())));
  hedge_json.Set("rounds", Json::MakeNumber(sweep_rounds));
  hedge_json.Set("calls_per_candidate", Json::MakeNumber(calls_per_candidate));
  hedge_json.Set("straggler_latency_ms", Json::MakeNumber(straggler_ms));
  hedge_json.Set("per_call_probability",
                 Json::MakeNumber(per_call_probability));
  hedge_json.Set("hedge_delay_ms", Json::MakeNumber(hedge_delay_ms));
  hedge_json.Set("p99_unhedged_ms", Json::MakeNumber(p99_unhedged));
  hedge_json.Set("p99_hedged_ms", Json::MakeNumber(p99_hedged));
  hedge_json.Set("p99_improvement", Json::MakeNumber(p99_improvement));
  hedge_json.Set(
      "hedges_launched",
      Json::MakeNumber(static_cast<double>(hedge_totals.hedges_launched)));
  hedge_json.Set("hedges_won", Json::MakeNumber(
                                   static_cast<double>(hedge_totals.hedges_won)));
  hedge_json.Set(
      "hedges_wasted",
      Json::MakeNumber(static_cast<double>(hedge_totals.hedges_wasted)));
  hedge_json.Set("wasted_fraction", Json::MakeNumber(wasted_fraction));
  doc.Set("hedged_sweep", std::move(hedge_json));
  Json fleet_json = Json::MakeObject();
  fleet_json.Set("shards", Json::MakeNumber(kFleetShards));
  fleet_json.Set("clients", Json::MakeNumber(kFleetClients));
  fleet_json.Set("requests", Json::MakeNumber(kFleetRequests));
  Json fleet_direct_json = Json::MakeObject();
  fleet_direct_json.Set("p50_ms", Json::MakeNumber(fleet_direct_p50));
  fleet_direct_json.Set("p99_ms", Json::MakeNumber(fleet_direct_p99));
  fleet_json.Set("direct", std::move(fleet_direct_json));
  Json fleet_router_json = Json::MakeObject();
  fleet_router_json.Set("p50_ms", Json::MakeNumber(fleet_router_p50));
  fleet_router_json.Set("p99_ms", Json::MakeNumber(fleet_router_p99));
  fleet_json.Set("router", std::move(fleet_router_json));
  fleet_json.Set("p50_overhead", Json::MakeNumber(fleet_p50_overhead));
  fleet_json.Set("p99_overhead", Json::MakeNumber(fleet_p99_overhead));
  fleet_json.Set("failover_recovery_ms",
                 Json::MakeNumber(failover_recovery_ms));
  fleet_json.Set("router_requests",
                 Json::MakeNumber(static_cast<double>(fleet_summary.requests)));
  fleet_json.Set("router_restarts",
                 Json::MakeNumber(static_cast<double>(fleet_summary.restarts)));
  fleet_json.Set("router_reroutes",
                 Json::MakeNumber(static_cast<double>(fleet_summary.reroutes)));
  fleet_json.Set("trickle_served",
                 Json::MakeNumber(static_cast<double>(trickle_served)));
  fleet_json.Set("trickle_retryable",
                 Json::MakeNumber(static_cast<double>(trickle_retryable)));
  fleet_json.Set(
      "trickle_non_retryable",
      Json::MakeNumber(static_cast<double>(trickle_non_retryable)));
  doc.Set("fleet", std::move(fleet_json));
  std::ofstream out("BENCH_serve.json");
  out << doc.Dump();
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) { return dagperf::Main(argc, argv); }
