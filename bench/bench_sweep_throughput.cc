// Sweep-engine throughput: the what-if workload the paper motivates (§I,
// job self-tuning / capacity planning) is hundreds of Estimate() calls over
// candidate knobs. This bench prices a 64-candidate reducer sweep three
// ways — the serial uncached baseline (the pre-sweep-engine hot path),
// serial with the shared task-time memo, and the full parallel + cached
// sweep engine — checks the three produce bit-identical estimates, and
// reports estimates/sec, speedups and cache hit rate to stdout and
// BENCH_sweep.json.
//
// Build & run:  ./build/bench/bench_sweep_throughput [reps]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "model/sweep.h"
#include "workloads/micro.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

constexpr int kCandidates = 64;
constexpr int kThreads = 8;

/// One reducer-sweep candidate: the nightly DAG (TeraSort feeding two
/// TPC-H reports) with the TeraSort reducer count set to `reducers`. Only
/// one stage of the DAG changes between candidates — the situation the
/// cross-candidate cache is built for.
DagWorkflow NightlyCandidate(int reducers) {
  JobSpec ts = TsSpec(Bytes::FromGB(100));
  ts.num_reduce_tasks = reducers;
  DagBuilder b("nightly-r" + std::to_string(reducers));
  b.AddJob(ts);
  AppendTpchQuery(b, 5);
  AppendTpchQuery(b, 1);
  return std::move(b).Build().value();
}

struct Timed {
  double seconds = 0.0;
  SweepResult result;
};

Timed Run(const std::vector<EstimateRequest>& requests,
          const TaskTimeSource& source, const SweepOptions& options, int reps) {
  Timed best;
  best.seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    SweepResult result = EstimateBatch(requests, SchedulerConfig{}, source, options);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed < best.seconds) {
      best.seconds = elapsed;
      best.result = std::move(result);
    }
  }
  return best;
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) {
  using namespace dagperf;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  std::vector<DagWorkflow> flows;
  flows.reserve(kCandidates);
  for (int r = 1; r <= kCandidates; ++r) flows.push_back(NightlyCandidate(4 * r));

  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  std::vector<EstimateRequest> requests;
  requests.reserve(flows.size());
  for (const DagWorkflow& flow : flows) {
    requests.push_back({&flow, cluster, flow.name()});
  }
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));

  SweepOptions serial_uncached;
  serial_uncached.threads = 1;
  serial_uncached.memoize = false;

  SweepOptions serial_cached;
  serial_cached.threads = 1;

  SweepOptions parallel_cached;
  parallel_cached.threads = kThreads;

  const Timed baseline = Run(requests, source, serial_uncached, reps);
  const Timed cached = Run(requests, source, serial_cached, reps);
  const Timed engine = Run(requests, source, parallel_cached, reps);

  // The determinism contract: cached and parallel results must be
  // bit-identical to the serial uncached loop.
  bool identical = true;
  for (int i = 0; i < kCandidates; ++i) {
    const double want = baseline.result.estimates[i]->makespan.seconds();
    if (cached.result.estimates[i]->makespan.seconds() != want ||
        engine.result.estimates[i]->makespan.seconds() != want) {
      identical = false;
    }
  }

  const double base_rate = kCandidates / baseline.seconds;
  const double engine_rate = kCandidates / engine.seconds;
  const double speedup = baseline.seconds / engine.seconds;
  const double cached_speedup = baseline.seconds / cached.seconds;

  std::printf("64-candidate reducer sweep (nightly DAG, %d jobs/candidate)\n",
              flows.front().num_jobs());
  std::printf("  serial uncached : %8.1f est/s  (%.3f s)\n", base_rate,
              baseline.seconds);
  std::printf("  serial + cache  : %8.1f est/s  (%.3f s, %.2fx)\n",
              kCandidates / cached.seconds, cached.seconds, cached_speedup);
  std::printf("  %d threads+cache: %8.1f est/s  (%.3f s, %.2fx)\n", kThreads,
              engine_rate, engine.seconds, speedup);
  std::printf("  cache hit rate  : %.1f%% (%llu hits / %llu misses)\n",
              100.0 * engine.result.stats.cache_hit_rate,
              static_cast<unsigned long long>(engine.result.stats.cache_hits),
              static_cast<unsigned long long>(engine.result.stats.cache_misses));
  std::printf("  bit-identical   : %s\n", identical ? "yes" : "NO (BUG)");

  Json doc = Json::MakeObject();
  doc.Set("bench", Json::MakeString("sweep_throughput"));
  doc.Set("candidates", Json::MakeNumber(kCandidates));
  doc.Set("threads", Json::MakeNumber(kThreads));
  doc.Set("reps", Json::MakeNumber(reps));
  doc.Set("serial_uncached_s", Json::MakeNumber(baseline.seconds));
  doc.Set("serial_cached_s", Json::MakeNumber(cached.seconds));
  doc.Set("parallel_cached_s", Json::MakeNumber(engine.seconds));
  doc.Set("serial_estimates_per_s", Json::MakeNumber(base_rate));
  doc.Set("parallel_estimates_per_s", Json::MakeNumber(engine_rate));
  doc.Set("speedup_parallel_cached_vs_serial", Json::MakeNumber(speedup));
  doc.Set("speedup_serial_cached_vs_serial", Json::MakeNumber(cached_speedup));
  doc.Set("cache_hit_rate", Json::MakeNumber(engine.result.stats.cache_hit_rate));
  doc.Set("cache_hits", Json::MakeNumber(
                            static_cast<double>(engine.result.stats.cache_hits)));
  doc.Set("cache_misses", Json::MakeNumber(static_cast<double>(
                              engine.result.stats.cache_misses)));
  doc.Set("failures", Json::MakeNumber(engine.result.stats.failures));
  doc.Set("bit_identical", Json::MakeBool(identical));
  std::ofstream out("BENCH_sweep.json");
  out << doc.Dump() << "\n";
  std::printf("wrote BENCH_sweep.json\n");

  return identical ? 0 : 1;
}
