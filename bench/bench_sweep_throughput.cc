// Sweep-engine throughput: the what-if workload the paper motivates (§I,
// job self-tuning / capacity planning) is hundreds of Estimate() calls over
// candidate knobs. This bench prices two candidate sets:
//
//  * the 64-candidate nightly reducer sweep (three jobs per candidate),
//    four ways — serial uncached, serial + memo, parallel + memo, and the
//    full engine with incremental prefix-resume on — and
//  * a dense tuner neighborhood (a long ETL chain whose LAST job carries
//    the swept knob over 32 candidates), re-swept warm the way a tuning
//    service sees it: the memo and checkpoint store are service-lifetime,
//    so each re-estimation resumes from checkpointed state instead of
//    replaying the shared prefix. This is where incremental re-estimation
//    pays off hardest.
//
// Every configuration is checked bit-identical against the serial uncached
// loop; results go to stdout and BENCH_sweep.json (gated in CI against the
// committed copy).
//
// Build & run:  ./build/bench/bench_sweep_throughput [reps]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "model/sweep.h"
#include "workloads/micro.h"
#include "workloads/tpch.h"

namespace dagperf {
namespace {

constexpr int kCandidates = 64;
constexpr int kThreads = 8;
constexpr int kDenseChainJobs = 48;
constexpr int kDenseCandidates = 64;

/// One reducer-sweep candidate: the nightly DAG (TeraSort feeding two
/// TPC-H reports) with the TeraSort reducer count set to `reducers`. Only
/// one stage of the DAG changes between candidates — the situation the
/// cross-candidate cache is built for.
DagWorkflow NightlyCandidate(int reducers) {
  JobSpec ts = TsSpec(Bytes::FromGB(100));
  ts.num_reduce_tasks = reducers;
  DagBuilder b("nightly-r" + std::to_string(reducers));
  b.AddJob(ts);
  AppendTpchQuery(b, 5);
  AppendTpchQuery(b, 1);
  return std::move(b).Build().value();
}

/// One dense-neighborhood candidate: a kDenseChainJobs-long ETL pipeline
/// whose final (small aggregation) job carries the swept reducer count.
/// Candidates share everything up to the last job's activation, so a
/// resuming estimate skips the heavy ETL prefix and replays only the
/// two-job tail.
DagWorkflow DenseCandidate(int reducers) {
  DagBuilder b("dense-r" + std::to_string(reducers));
  JobId prev = b.AddJob(TsSpec(Bytes::FromGB(50)));
  for (int i = 1; i < kDenseChainJobs - 2; ++i) {
    prev = b.AddJobAfter(prev, TsSpec(Bytes::FromGB(50)));
  }
  prev = b.AddJobAfter(prev, TsSpec(Bytes::FromGB(10)));
  JobSpec last = TsSpec(Bytes::FromGB(10));
  last.num_reduce_tasks = reducers;
  b.AddJobAfter(prev, last);
  return std::move(b).Build().value();
}

struct Timed {
  double seconds = 0.0;
  SweepResult result;
};

Timed Run(const std::vector<SweepCandidate>& requests,
          const TaskTimeSource& source, const SweepOptions& options, int reps) {
  Timed best;
  best.seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    SweepResult result = EstimateBatch(requests, SchedulerConfig{}, source, options);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed < best.seconds) {
      best.seconds = elapsed;
      best.result = std::move(result);
    }
  }
  return best;
}

bool BitIdentical(const SweepResult& got, const SweepResult& want) {
  if (got.estimates.size() != want.estimates.size()) return false;
  for (size_t i = 0; i < got.estimates.size(); ++i) {
    if (!got.estimates[i].ok() || !want.estimates[i].ok()) return false;
    if (got.estimates[i]->makespan.seconds() !=
        want.estimates[i]->makespan.seconds()) {
      return false;
    }
  }
  return true;
}

std::vector<SweepCandidate> RequestsFor(const std::vector<DagWorkflow>& flows,
                                         const ClusterSpec& cluster) {
  std::vector<SweepCandidate> requests;
  requests.reserve(flows.size());
  for (const DagWorkflow& flow : flows) {
    requests.push_back({&flow, cluster, flow.name()});
  }
  return requests;
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) {
  using namespace dagperf;
  const int reps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));

  // --- Section A: the nightly 64-candidate reducer sweep. ---
  std::vector<DagWorkflow> flows;
  flows.reserve(kCandidates);
  for (int r = 1; r <= kCandidates; ++r) flows.push_back(NightlyCandidate(4 * r));
  const std::vector<SweepCandidate> requests = RequestsFor(flows, cluster);

  SweepOptions serial_uncached;
  serial_uncached.threads = 1;
  serial_uncached.memoize = false;
  serial_uncached.incremental = false;

  SweepOptions serial_cached;
  serial_cached.threads = 1;
  serial_cached.incremental = false;

  SweepOptions parallel_cached;
  parallel_cached.threads = kThreads;
  parallel_cached.incremental = false;

  SweepOptions engine_serial = serial_cached;  // memo + prefix resume
  engine_serial.incremental = true;

  SweepOptions engine_parallel = parallel_cached;
  engine_parallel.incremental = true;

  const Timed baseline = Run(requests, source, serial_uncached, reps);
  const Timed cached = Run(requests, source, serial_cached, reps);
  const Timed parallel = Run(requests, source, parallel_cached, reps);
  const Timed incr_serial = Run(requests, source, engine_serial, reps);
  const Timed incr_parallel = Run(requests, source, engine_parallel, reps);

  // The determinism contract: every configuration must be bit-identical to
  // the serial uncached loop.
  const bool identical = BitIdentical(cached.result, baseline.result) &&
                         BitIdentical(parallel.result, baseline.result) &&
                         BitIdentical(incr_serial.result, baseline.result) &&
                         BitIdentical(incr_parallel.result, baseline.result);

  const double base_rate = kCandidates / baseline.seconds;
  const double cached_rate = kCandidates / cached.seconds;
  const double parallel_rate = kCandidates / parallel.seconds;
  const double incr_rate = kCandidates / incr_parallel.seconds;

  std::printf("%d-candidate reducer sweep (nightly DAG, %d jobs/candidate)\n",
              kCandidates, flows.front().num_jobs());
  std::printf("  serial uncached    : %8.1f est/s  (%.3f s)\n", base_rate,
              baseline.seconds);
  std::printf("  serial + memo      : %8.1f est/s  (%.3f s, %.2fx)\n",
              cached_rate, cached.seconds, baseline.seconds / cached.seconds);
  std::printf("  %d threads + memo   : %8.1f est/s  (%.3f s, %.2fx)\n", kThreads,
              parallel_rate, parallel.seconds, baseline.seconds / parallel.seconds);
  std::printf("  serial incremental : %8.1f est/s  (%.3f s, %.2fx)\n",
              kCandidates / incr_serial.seconds, incr_serial.seconds,
              baseline.seconds / incr_serial.seconds);
  std::printf("  full engine (%dt)   : %8.1f est/s  (%.3f s, %.2fx)\n", kThreads,
              incr_rate, incr_parallel.seconds,
              baseline.seconds / incr_parallel.seconds);
  std::printf("  cache hit rate     : %.1f%%   prefix hits: %llu  resumed states: %llu\n",
              100.0 * parallel.result.stats.cache_hit_rate,
              static_cast<unsigned long long>(incr_parallel.result.stats.prefix_hits),
              static_cast<unsigned long long>(
                  incr_parallel.result.stats.resumed_states));
  std::printf("  bit-identical      : %s\n", identical ? "yes" : "NO (BUG)");

  // --- Section B: the dense tuner neighborhood, re-swept warm. ---
  //
  // The scenario: a tuning service holds its memo and checkpoint store for
  // the session (exactly how DagPerfService wires them) and the user keeps
  // re-estimating the same dense knob neighborhood while iterating. Both
  // configurations get their service-lifetime cache primed by one untimed
  // pass; the timed reps then measure the steady-state re-sweep. The memo
  // baseline still replays every candidate's state machine (answering
  // task-time queries from cache); the incremental engine resumes each
  // candidate from its checkpointed trajectory.
  std::vector<DagWorkflow> dense_flows;
  dense_flows.reserve(kDenseCandidates);
  for (int r = 1; r <= kDenseCandidates; ++r) {
    dense_flows.push_back(DenseCandidate(4 * r));
  }
  const std::vector<SweepCandidate> dense_requests =
      RequestsFor(dense_flows, cluster);

  TaskTimeMemo dense_memo;        // Warm memo for the non-incremental path.
  TaskTimeMemo dense_engine_memo; // Warm memo + store for the engine.
  PrefixCheckpointStore dense_store;

  SweepOptions dense_serial_cached = serial_cached;
  dense_serial_cached.memo = &dense_memo;

  SweepOptions dense_engine_serial = engine_serial;
  dense_engine_serial.memo = &dense_engine_memo;
  dense_engine_serial.checkpoints = &dense_store;

  SweepOptions dense_engine_parallel = engine_parallel;
  dense_engine_parallel.memo = &dense_engine_memo;
  dense_engine_parallel.checkpoints = &dense_store;

  const Timed dense_base = Run(dense_requests, source, serial_uncached, reps);
  // Priming pass (untimed): the first sweep of the session pays full cost
  // and populates the service-lifetime caches.
  const auto prime_start = std::chrono::steady_clock::now();
  (void)EstimateBatch(dense_requests, SchedulerConfig{}, source,
                      dense_engine_serial);
  const double prime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    prime_start)
          .count();
  (void)EstimateBatch(dense_requests, SchedulerConfig{}, source,
                      dense_serial_cached);
  const Timed dense_cached = Run(dense_requests, source, dense_serial_cached, reps);
  const Timed dense_incr = Run(dense_requests, source, dense_engine_serial, reps);
  const Timed dense_incr_par =
      Run(dense_requests, source, dense_engine_parallel, reps);

  const bool dense_identical =
      BitIdentical(dense_cached.result, dense_base.result) &&
      BitIdentical(dense_incr.result, dense_base.result) &&
      BitIdentical(dense_incr_par.result, dense_base.result);
  const double dense_cached_rate = kDenseCandidates / dense_cached.seconds;
  const double dense_incr_rate = kDenseCandidates / dense_incr.seconds;
  const double dense_speedup = dense_cached.seconds / dense_incr.seconds;

  std::printf(
      "\ndense neighborhood, warm re-sweep (%d-job chain, last-job knob, %d "
      "candidates)\n",
      kDenseChainJobs, kDenseCandidates);
  std::printf("  priming pass       : %.3f s (cold first sweep, untimed)\n",
              prime_s);
  std::printf("  serial + memo      : %8.1f est/s  (%.3f s)\n", dense_cached_rate,
              dense_cached.seconds);
  std::printf("  serial incremental : %8.1f est/s  (%.3f s, %.2fx vs memo)\n",
              dense_incr_rate, dense_incr.seconds, dense_speedup);
  std::printf("  full engine (%dt)   : %8.1f est/s  (%.3f s)\n", kThreads,
              kDenseCandidates / dense_incr_par.seconds, dense_incr_par.seconds);
  std::printf("  prefix hits        : %llu   resumed states: %llu\n",
              static_cast<unsigned long long>(dense_incr.result.stats.prefix_hits),
              static_cast<unsigned long long>(
                  dense_incr.result.stats.resumed_states));
  std::printf("  bit-identical      : %s\n", dense_identical ? "yes" : "NO (BUG)");

  Json doc = Json::MakeObject();
  doc.Set("bench", Json::MakeString("sweep_throughput"));
  doc.Set("candidates", Json::MakeNumber(kCandidates));
  doc.Set("threads", Json::MakeNumber(kThreads));
  doc.Set("reps", Json::MakeNumber(reps));
  doc.Set("serial_uncached_s", Json::MakeNumber(baseline.seconds));
  doc.Set("serial_cached_s", Json::MakeNumber(cached.seconds));
  doc.Set("parallel_cached_s", Json::MakeNumber(parallel.seconds));
  doc.Set("incremental_serial_s", Json::MakeNumber(incr_serial.seconds));
  doc.Set("incremental_parallel_s", Json::MakeNumber(incr_parallel.seconds));
  doc.Set("serial_estimates_per_s", Json::MakeNumber(base_rate));
  doc.Set("serial_cached_estimates_per_s", Json::MakeNumber(cached_rate));
  doc.Set("parallel_estimates_per_s", Json::MakeNumber(parallel_rate));
  doc.Set("incremental_estimates_per_s", Json::MakeNumber(incr_rate));
  doc.Set("speedup_parallel_cached_vs_serial",
          Json::MakeNumber(baseline.seconds / parallel.seconds));
  doc.Set("speedup_serial_cached_vs_serial",
          Json::MakeNumber(baseline.seconds / cached.seconds));
  doc.Set("cache_hit_rate", Json::MakeNumber(parallel.result.stats.cache_hit_rate));
  doc.Set("cache_hits", Json::MakeNumber(
                            static_cast<double>(parallel.result.stats.cache_hits)));
  doc.Set("cache_misses", Json::MakeNumber(static_cast<double>(
                              parallel.result.stats.cache_misses)));
  doc.Set("prefix_hits",
          Json::MakeNumber(
              static_cast<double>(incr_parallel.result.stats.prefix_hits)));
  doc.Set("resumed_states",
          Json::MakeNumber(
              static_cast<double>(incr_parallel.result.stats.resumed_states)));
  doc.Set("failures", Json::MakeNumber(parallel.result.stats.failures));
  doc.Set("bit_identical", Json::MakeBool(identical));

  Json dense = Json::MakeObject();
  dense.Set("candidates", Json::MakeNumber(kDenseCandidates));
  dense.Set("jobs_per_candidate", Json::MakeNumber(kDenseChainJobs));
  dense.Set("prime_s", Json::MakeNumber(prime_s));
  dense.Set("serial_uncached_s", Json::MakeNumber(dense_base.seconds));
  dense.Set("serial_cached_s", Json::MakeNumber(dense_cached.seconds));
  dense.Set("incremental_s", Json::MakeNumber(dense_incr.seconds));
  dense.Set("incremental_parallel_s", Json::MakeNumber(dense_incr_par.seconds));
  dense.Set("serial_cached_estimates_per_s", Json::MakeNumber(dense_cached_rate));
  dense.Set("incremental_estimates_per_s", Json::MakeNumber(dense_incr_rate));
  dense.Set("speedup_incremental_vs_cached", Json::MakeNumber(dense_speedup));
  dense.Set("prefix_hits",
            Json::MakeNumber(
                static_cast<double>(dense_incr.result.stats.prefix_hits)));
  dense.Set("resumed_states",
            Json::MakeNumber(
                static_cast<double>(dense_incr.result.stats.resumed_states)));
  dense.Set("bit_identical", Json::MakeBool(dense_identical));
  doc.Set("dense", std::move(dense));

  std::ofstream out("BENCH_sweep.json");
  out << doc.Dump() << "\n";
  std::printf("wrote BENCH_sweep.json\n");

  return identical && dense_identical ? 0 : 1;
}
