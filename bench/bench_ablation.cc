// Ablations of the design choices DESIGN.md calls out:
//
//  A1  BOE contention counting: the paper's everyone-contends rule (Eq. 5)
//      versus the steady-state population refinement, scored against the
//      simulator across the Fig. 6 sweep.
//  A2  Wave model in the state-based estimator: discrete waves vs fluid.
//  A3  Skew awareness: Alg1-Mean vs Alg2-Normal as reduce-key skew grows.
//  A4  Single-job predictors on parallel-job DAGs: an Ernest-style model
//      (trained on the job running alone) vs the state-based approach.

#include <cstdio>
#include <vector>

#include "baselines/ernest.h"
#include "boe/boe_model.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/dag_suite.h"
#include "exp/phase_split.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"
#include "sim/simulator.h"
#include "workloads/micro.h"
#include "workloads/suite.h"

namespace dagperf {
namespace {

const ClusterSpec kCluster = ClusterSpec::PaperCluster();

DagWorkflow SingleJobFlow(const JobSpec& spec) {
  DagBuilder b(spec.name);
  b.AddJob(spec);
  return std::move(b).Build().value();
}

void ContentionModeAblation() {
  // Compares the three contention-counting rules on parallel jobs: the
  // paper's Eq. 5 (everyone contends everywhere), the steady-state spread,
  // and the wave-aligned default, scored against the simulated per-state
  // median task time of each job's map stage while both maps run (state 1).
  std::printf("=== A1: BOE contention mode on parallel maps (state s1) ===\n");
  BoeOptions paper_opts;
  paper_opts.mode = BoeOptions::ContentionMode::kPaper;
  BoeOptions steady_opts;
  steady_opts.mode = BoeOptions::ContentionMode::kSteadyState;
  BoeOptions aligned_opts;
  aligned_opts.mode = BoeOptions::ContentionMode::kAlignedSelf;
  const BoeModel paper_model(kCluster.node, paper_opts);
  const BoeModel steady_model(kCluster.node, steady_opts);
  const BoeModel aligned_model(kCluster.node, aligned_opts);

  DagBuilder builder("WC+TS");
  builder.AddJob(WordCountSpec());
  builder.AddJob(TsSpec());
  const DagWorkflow flow = std::move(builder).Build().value();
  const Simulator sim(kCluster, SchedulerConfig{}, SimOptions{});
  const SimResult truth_run = sim.Run(flow).value();

  std::vector<ParallelStage> stages;
  stages.push_back({&flow.job(0).map, 6.0});
  stages.push_back({&flow.job(1).map, 6.0});
  const auto paper_est = paper_model.EstimateParallel(stages);
  const auto steady_est = steady_model.EstimateParallel(stages);
  const auto aligned_est = aligned_model.EstimateParallel(stages);

  TextTable table({"job", "truth s1 (s)", "Eq.5", "steady", "aligned",
                   "acc Eq.5", "acc steady", "acc aligned"});
  for (size_t i = 0; i < stages.size(); ++i) {
    const std::vector<double> durations =
        truth_run.TaskDurationsInState(static_cast<JobId>(i), StageKind::kMap, 1);
    if (durations.empty()) continue;
    const double truth = ComputeStats(durations).median;
    const double t_paper = paper_est[i].duration.seconds() + 1.0;
    const double t_steady = steady_est[i].duration.seconds() + 1.0;
    const double t_aligned = aligned_est[i].duration.seconds() + 1.0;
    table.AddRow({flow.job(static_cast<JobId>(i)).name, TextTable::Cell(truth, 1),
                  TextTable::Cell(t_paper, 1), TextTable::Cell(t_steady, 1),
                  TextTable::Cell(t_aligned, 1),
                  TextTable::Cell(RelativeAccuracy(t_paper, truth), 3),
                  TextTable::Cell(RelativeAccuracy(t_steady, truth), 3),
                  TextTable::Cell(RelativeAccuracy(t_aligned, truth), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void WaveModelAblation() {
  std::printf("=== A2: wave model (discrete vs fluid) on suite workflows ===\n");
  TextTable table({"workflow", "truth (s)", "discrete acc", "fluid acc"});
  for (const char* name : {"WC-TS", "TS-Q1", "TS-Q5", "WC-Q12", "WC-KM"}) {
    const NamedFlow nf = TableThreeFlow(name).value();
    const Simulator sim(kCluster, SchedulerConfig{}, SimOptions{});
    const SimResult truth = sim.Run(nf.flow).value();
    const ProfileTaskTimeSource source =
        ProfileTaskTimeSource::FromSimulation(nf.flow, truth, ProfileStatistic::kMean)
            .value();
    EstimatorOptions discrete;
    EstimatorOptions fluid;
    fluid.wave_model = EstimatorOptions::WaveModel::kFluid;
    const double t_truth = truth.makespan().seconds();
    const double t_discrete = StateBasedEstimator(kCluster, SchedulerConfig{}, discrete)
                                  .Estimate(nf.flow, source)
                                  .value()
                                  .makespan.seconds();
    const double t_fluid = StateBasedEstimator(kCluster, SchedulerConfig{}, fluid)
                               .Estimate(nf.flow, source)
                               .value()
                               .makespan.seconds();
    table.AddRow({name, TextTable::Cell(t_truth, 0),
                  TextTable::Cell(RelativeAccuracy(t_discrete, t_truth), 4),
                  TextTable::Cell(RelativeAccuracy(t_fluid, t_truth), 4)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void SkewAblation() {
  std::printf("=== A3: skew awareness (Alg1-Mean vs Alg2-Normal) vs key skew ===\n");
  TextTable table({"reduce skew cv", "truth (s)", "Alg1-Mean acc", "Alg2-Normal acc"});
  for (double cv : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    JobSpec spec = TsSpec(Bytes::FromGB(100));
    spec.name = "TS-skew";
    spec.reduce_skew_cv = cv;
    const DagWorkflow flow = SingleJobFlow(spec);
    const Simulator sim(kCluster, SchedulerConfig{}, SimOptions{});
    const SimResult truth = sim.Run(flow).value();
    const ProfileTaskTimeSource source =
        ProfileTaskTimeSource::FromSimulation(flow, truth, ProfileStatistic::kMean)
            .value();
    EstimatorOptions alg1;
    EstimatorOptions alg2;
    alg2.skew_aware = true;
    const double t_truth = truth.makespan().seconds();
    const double t1 = StateBasedEstimator(kCluster, SchedulerConfig{}, alg1)
                          .Estimate(flow, source)
                          .value()
                          .makespan.seconds();
    const double t2 = StateBasedEstimator(kCluster, SchedulerConfig{}, alg2)
                          .Estimate(flow, source)
                          .value()
                          .makespan.seconds();
    table.AddRow({TextTable::Cell(cv, 1), TextTable::Cell(t_truth, 0),
                  TextTable::Cell(RelativeAccuracy(t1, t_truth), 4),
                  TextTable::Cell(RelativeAccuracy(t2, t_truth), 4)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void ErnestAblation() {
  std::printf("=== A4: single-job Ernest model vs state-based on parallel DAGs ===\n");
  // Train Ernest for WC alone: vary data scale and cluster size.
  std::vector<ErnestModel::TrainingPoint> points;
  for (double scale : {0.1, 0.25, 0.5, 1.0}) {
    for (int nodes : {3, 6, 11}) {
      ClusterSpec cluster = kCluster;
      cluster.num_nodes = nodes;
      const DagWorkflow flow = SingleJobFlow(WordCountSpec(Bytes::FromGB(100 * scale)));
      const Simulator sim(cluster, SchedulerConfig{}, SimOptions{});
      points.push_back({scale, static_cast<double>(nodes),
                        sim.Run(flow).value().makespan().seconds()});
    }
  }
  const ErnestModel ernest = ErnestModel::Fit(points).value();

  TextTable table({"scenario", "truth WC span (s)", "Ernest (s)", "state-based (s)",
                   "Ernest acc", "state acc"});
  for (const char* pair : {"WC-TS", "WC-TS3R", "WC-PR"}) {
    const NamedFlow nf = TableThreeFlow(pair).value();
    const Simulator sim(kCluster, SchedulerConfig{}, SimOptions{});
    const SimResult truth = sim.Run(nf.flow).value();
    // WC is job 0 in every pair flow; its true span under contention:
    const StageRecord map = truth.FindStage(0, StageKind::kMap).value();
    const StageRecord red = truth.FindStage(0, StageKind::kReduce).value();
    const double wc_truth = red.end - map.start;
    const double ernest_pred = ernest.Predict(1.0, kCluster.num_nodes);
    const ProfileTaskTimeSource source =
        ProfileTaskTimeSource::FromSimulation(nf.flow, truth, ProfileStatistic::kMean)
            .value();
    const DagEstimate est = StateBasedEstimator(kCluster, SchedulerConfig{})
                                .Estimate(nf.flow, source)
                                .value();
    const StageSpanEstimate est_map = est.FindStage(0, StageKind::kMap).value();
    const StageSpanEstimate est_red = est.FindStage(0, StageKind::kReduce).value();
    const double wc_est = est_red.end - est_map.start;
    table.AddRow({pair, TextTable::Cell(wc_truth, 0), TextTable::Cell(ernest_pred, 0),
                  TextTable::Cell(wc_est, 0),
                  TextTable::Cell(RelativeAccuracy(ernest_pred, wc_truth), 3),
                  TextTable::Cell(RelativeAccuracy(wc_est, wc_truth), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Ernest is trained on WC running alone, so it cannot see the co-running\n"
      "job's contention — the gap against the state-based estimate widens with\n"
      "the competitor's resource pressure.\n");
}

void HeterogeneityAblation() {
  // The models assume a homogeneous fleet (as the paper's testbed was).
  // Real clusters drift: this sweep injects per-node speed variance into
  // the simulator and reports how the (heterogeneity-blind) estimate
  // degrades, with and without speculative execution compensating.
  std::printf(
      "=== A5: node-speed variance vs estimator accuracy (models assume "
      "uniform nodes) ===\n");
  DagBuilder b("hetero");
  b.AddJob(TsSpec(Bytes::FromGB(50)));
  const DagWorkflow flow = std::move(b).Build().value();
  const BoeModel boe(kCluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const double estimate = StateBasedEstimator(kCluster, SchedulerConfig{})
                              .Estimate(flow, source)
                              .value()
                              .makespan.seconds();

  TextTable table({"node speed cv", "truth (s)", "truth+speculation (s)",
                   "acc plain", "acc w/ spec", "acc corrected"});
  for (double cv : {0.0, 0.2, 0.4, 0.7}) {
    // Heterogeneity-corrected estimate (EstimatorOptions::node_speed_cv).
    EstimatorOptions corrected_options;
    corrected_options.skew_aware = true;
    corrected_options.node_speed_cv = cv;
    const double corrected =
        StateBasedEstimator(kCluster, SchedulerConfig{}, corrected_options)
            .Estimate(flow, source)
            .value()
            .makespan.seconds();
    double plain = 0;
    double spec = 0;
    const int seeds = 5;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      SimOptions options;
      options.node_speed_cv = cv;
      options.seed = seed;
      plain += Simulator(kCluster, SchedulerConfig{}, options)
                   .Run(flow)
                   ->makespan()
                   .seconds();
      options.enable_speculation = true;
      options.speculation_threshold = 1.2;
      spec += Simulator(kCluster, SchedulerConfig{}, options)
                  .Run(flow)
                  ->makespan()
                  .seconds();
    }
    plain /= seeds;
    spec /= seeds;
    table.AddRow({TextTable::Cell(cv, 1), TextTable::Cell(plain, 0),
                  TextTable::Cell(spec, 0),
                  TextTable::Cell(RelativeAccuracy(estimate, plain), 3),
                  TextTable::Cell(RelativeAccuracy(estimate, spec), 3),
                  TextTable::Cell(RelativeAccuracy(corrected, plain), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Speculation claws back part of the straggler cost, pulling reality\n"
      "toward the homogeneous model's prediction.\n");
}

}  // namespace
}  // namespace dagperf

int main() {
  dagperf::ContentionModeAblation();
  dagperf::WaveModelAblation();
  dagperf::SkewAblation();
  dagperf::ErnestAblation();
  dagperf::HeterogeneityAblation();
  return 0;
}
