// Reproduces paper Table III and §V-C's overall DAG results: estimation
// accuracy of the state-based approach on the 51 hybrid DAG workflows
// (TS-Q1..Q22, WC-Q1..Q22, and the seven micro/analytics pairs), using
// task-time profiles captured at the identical degree of parallelism — the
// paper's methodology for isolating the state-machine's own error.
//
// Rows: Alg1-Mean (mean task-time statistic), Alg1-Mid (median),
// Alg2-Normal (skew-aware normal wave model). Paper averages: 95.00% /
// 93.50% / 96.38% with a minimum above 81%.

#include <cstdio>
#include <vector>

#include "common/table.h"
#include "exp/dag_suite.h"
#include "workloads/suite.h"

namespace dagperf {
namespace {

void Run() {
  const std::vector<NamedFlow> suite = TableThreeSuite(1.0).value();
  const ClusterSpec cluster = ClusterSpec::PaperCluster();
  const SchedulerConfig sched;
  const SimOptions sim_options;

  std::vector<DagAccuracyRow> rows;
  rows.reserve(suite.size());
  for (const auto& nf : suite) {
    Result<DagAccuracyRow> row = EvaluateDagWorkflow(nf, cluster, sched, sim_options);
    if (!row.ok()) {
      std::printf("%s FAILED: %s\n", nf.name.c_str(), row.status().ToString().c_str());
      continue;
    }
    rows.push_back(std::move(row).value());
  }

  std::printf("=== Table III: estimation accuracy for 51 DAG workflows ===\n");
  TextTable table({"workflow", "truth (s)", "Alg1-Mean", "Alg1-Mid", "Alg2-Normal",
                   "stage brk", "latency (ms)"});
  for (const auto& row : rows) {
    table.AddRow({row.name, TextTable::Cell(row.truth_s, 0),
                  TextTable::Cell(row.acc_mean, 4), TextTable::Cell(row.acc_median, 4),
                  TextTable::Cell(row.acc_normal, 4),
                  TextTable::Cell(row.stage_breakdown_acc, 4),
                  TextTable::Cell(row.estimate_latency_ms, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());

  const SuiteSummary summary = Summarize(rows);
  std::printf("average accuracy over %zu workflows:\n", rows.size());
  std::printf("  Alg1-Mean   %.2f%%   (paper: 95.00%%)\n", 100 * summary.mean_acc_mean);
  std::printf("  Alg1-Mid    %.2f%%   (paper: 93.50%%)\n",
              100 * summary.mean_acc_median);
  std::printf("  Alg2-Normal %.2f%%   (paper: 96.38%%)\n",
              100 * summary.mean_acc_normal);
  std::printf("  minimum accuracy across all cells: %.2f%% (paper: > 81.13%%)\n",
              100 * summary.min_acc);
  std::printf("  worst model-computation latency: %.2f ms (paper bound: < 1 s)\n",
              summary.max_latency_ms);
}

}  // namespace
}  // namespace dagperf

int main() {
  dagperf::Run();
  return 0;
}
