// Reproduces paper Fig. 6 (a)-(f): single-job task execution time estimation
// versus the degree of parallelism (1..12 tasks per node) for WordCount
// (compressed, 3 replicas) and TeraSort (uncompressed, 1 replica) at 100 GB,
// on the paper's 11-node cluster.
//
// For each phase (map / shuffle / reduce) the table shows the simulated
// ground truth (median task time), the BOE prediction, and the
// fixed-parallelism baseline (best case of Starfish/MRTuner: the profiling
// run's ground truth, independent of the actual parallelism). The last rows
// report mean accuracies and the error-reduction factor of BOE over the
// baseline at parallelism 12 — the paper's headline "factor of five".

#include <cmath>
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "exp/single_job.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

double ErrorFactor(double baseline_est, double boe_est, double truth) {
  const double base_err = std::fabs(baseline_est - truth);
  const double boe_err = std::fabs(boe_est - truth);
  if (boe_err < 1e-9) return base_err > 1e-9 ? 999.0 : 1.0;
  return base_err / boe_err;
}

void RunSweep(const JobSpec& spec, const char* figure) {
  SingleJobSweepConfig config;
  config.baseline_reference = 2;  // Starfish-like low-parallelism profiling run.
  const SingleJobSweepResult result = RunSingleJobSweep(spec, config).value();

  std::printf("=== Fig. 6 %s: %s, 100 GB, baseline profiled at %d tasks/node ===\n",
              figure, result.job_name.c_str(), result.baseline_reference);
  TextTable table({"delta", "map truth", "map BOE", "map base", "shuf truth",
                   "shuf BOE", "shuf base", "red truth", "red BOE", "red base"});
  for (const auto& p : result.points) {
    table.AddRow({TextTable::Cell(p.tasks_per_node, 0),
                  TextTable::Cell(p.truth.map_s, 1), TextTable::Cell(p.boe.map_s, 1),
                  TextTable::Cell(p.baseline.map_s, 1),
                  TextTable::Cell(p.truth.shuffle_s, 1),
                  TextTable::Cell(p.boe.shuffle_s, 1),
                  TextTable::Cell(p.baseline.shuffle_s, 1),
                  TextTable::Cell(p.truth.reduce_s, 1),
                  TextTable::Cell(p.boe.reduce_s, 1),
                  TextTable::Cell(p.baseline.reduce_s, 1)});
  }
  std::printf("%s", table.ToString().c_str());

  const SweepAccuracy boe = BoeSweepAccuracy(result);
  const SweepAccuracy base = BaselineSweepAccuracy(result);
  std::printf("BOE mean accuracy:      map %.1f%%  shuffle %.1f%%  reduce %.1f%%\n",
              100 * boe.map, 100 * boe.shuffle, 100 * boe.reduce);
  std::printf("baseline mean accuracy: map %.1f%%  shuffle %.1f%%  reduce %.1f%%\n",
              100 * base.map, 100 * base.shuffle, 100 * base.reduce);
  const auto& p12 = result.points.back();
  std::printf(
      "error-reduction factor of BOE at delta=12: map %.1fx  shuffle %.1fx  "
      "reduce %.1fx\n\n",
      ErrorFactor(p12.baseline.map_s, p12.boe.map_s, p12.truth.map_s),
      ErrorFactor(p12.baseline.shuffle_s, p12.boe.shuffle_s, p12.truth.shuffle_s),
      ErrorFactor(p12.baseline.reduce_s, p12.boe.reduce_s, p12.truth.reduce_s));
}

}  // namespace
}  // namespace dagperf

int main() {
  dagperf::RunSweep(dagperf::WordCountSpec(), "(a)-(c)");
  dagperf::RunSweep(dagperf::TsSpec(), "(d)-(f)");
  // Supplementary sweeps beyond the paper's figures: the compressed and
  // replicated TeraSort variants of Table I.
  dagperf::RunSweep(dagperf::TscSpec(), "[supplementary: TSC]");
  dagperf::RunSweep(dagperf::Ts3rSpec(), "[supplementary: TS3R]");
  return 0;
}
