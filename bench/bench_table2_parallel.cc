// Reproduces paper Table II: task-level BOE accuracy for parallel jobs.
// Two DAGs of two parallel 100 GB jobs each — WC+TS and WC+TS3R — run on
// the simulator; the state-based estimator with the BOE task-time source
// predicts per-state task times, scored against the simulated per-state
// median task durations. The paper reports accuracies per workflow state
// (s1..s4), high for the early parallel states.

#include <cstdio>
#include <map>

#include "common/table.h"
#include "dag/dag_workflow.h"
#include "exp/parallel_jobs.h"
#include "workloads/micro.h"

namespace dagperf {
namespace {

void RunPair(const JobSpec& a, const JobSpec& b) {
  DagBuilder builder(a.name + "+" + b.name);
  builder.AddJob(a);
  builder.AddJob(b);
  const DagWorkflow flow = std::move(builder).Build().value();

  const ParallelJobsResult result =
      RunParallelJobsExperiment(flow, ClusterSpec::PaperCluster(), SchedulerConfig{},
                                SimOptions{})
          .value();

  std::printf("=== Table II: %s (%d simulated states, %d estimated) ===\n",
              result.flow_name.c_str(), result.truth_states,
              result.estimated_states);
  TextTable table({"state", "job/stage", "truth (s)", "BOE (s)", "accuracy"});
  // Also aggregate per (job, state) average for the summary line.
  std::map<std::string, std::pair<double, int>> per_job;
  for (const auto& cell : result.cells) {
    const std::string stage_name =
        cell.job_name + "/" + StageKindName(cell.kind);
    table.AddRow({"s" + std::to_string(cell.state), stage_name,
                  TextTable::Cell(cell.truth_s, 1),
                  TextTable::Cell(cell.estimate_s, 1),
                  TextTable::Cell(cell.accuracy, 3)});
    auto& agg = per_job[cell.job_name];
    agg.first += cell.accuracy;
    agg.second += 1;
  }
  std::printf("%s", table.ToString().c_str());
  for (const auto& [job, agg] : per_job) {
    std::printf("%s average accuracy: %.1f%%\n", job.c_str(),
                100.0 * agg.first / agg.second);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dagperf

int main() {
  dagperf::RunPair(dagperf::WordCountSpec(), dagperf::TsSpec());
  dagperf::RunPair(dagperf::WordCountSpec(), dagperf::Ts3rSpec());
  return 0;
}
