// Resilience-layer cost: what do the compiled-in fault seams cost when
// disarmed (the always-on production configuration), and what does the
// serving path look like under a 10% fault schedule?
//
//   micro   — a tight loop over a disarmed FaultPoint::Evaluate(): the
//             advertised price is one relaxed atomic load per seam.
//   baseline— the warm serving path (one EstimationService, persistent
//             memo) with the injector disarmed: req/s, p50, p99.
//   faulted — the same workload with a seeded 10% fault schedule armed
//             (service.execute errors + model.task_time latency): req/s,
//             p50, p99 and the failure count. Failures are answered, not
//             dropped — the denominator never shrinks.
//
// The armed run counts seam evaluations, which calibrates the disarmed
// overhead estimate: seams/request x ns/disarmed-check, reported as a
// percentage of baseline p50 (target: <= 1%).
//
// Reports to stdout and BENCH_resilience.json.
//
// Build & run:  ./build/bench/bench_resilience [clients] [requests-per-client]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "resilience/fault.h"
#include "service/service.h"
#include "workloads/suite.h"

// Parts of this file exercise the pre-0.8 submission API on purpose
// (deprecated shims must keep working until removal); silence the
// migration warnings the rest of the build is expected to emit.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dagperf {
namespace {

struct RunResult {
  std::vector<double> latencies;
  double wall_seconds = 0.0;
  std::uint64_t failed = 0;

  double Rps() const {
    return wall_seconds > 0
               ? static_cast<double>(latencies.size()) / wall_seconds
               : 0.0;
  }
  double QuantileMs(double q) {
    if (latencies.empty()) return 0.0;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t i = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[i] * 1e3;
  }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Drives `clients` threads of `per_client` sequential requests against the
/// service; failed requests are counted, not fatal — under a fault schedule
/// they are the point.
RunResult DriveClients(EstimationService& service, int clients, int per_client,
                       const std::vector<std::string>& names) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> threads;
  const double start = Now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        ServiceRequest request;
        request.workflow = names[(c + i) % names.size()];
        const double begin = Now();
        if (!service.Submit(std::move(request)).get().ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        latencies[c].push_back(Now() - begin);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  RunResult result;
  result.wall_seconds = Now() - start;
  result.failed = failed.load();
  for (std::vector<double>& per_thread : latencies) {
    result.latencies.insert(result.latencies.end(), per_thread.begin(),
                            per_thread.end());
  }
  return result;
}

Json RunJson(RunResult& run) {
  Json doc = Json::MakeObject();
  doc.Set("requests_per_sec", Json::MakeNumber(run.Rps()));
  doc.Set("p50_ms", Json::MakeNumber(run.QuantileMs(0.50)));
  doc.Set("p99_ms", Json::MakeNumber(run.QuantileMs(0.99)));
  doc.Set("failed", Json::MakeNumber(static_cast<double>(run.failed)));
  return doc;
}

int Main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 200;
  const long long micro_iters = argc > 3 ? std::atoll(argv[3]) : 20'000'000;

  resilience::FaultInjector& injector = resilience::FaultInjector::Default();
  injector.ResetAll();

  // --- micro: the disarmed seam itself.
  resilience::FaultPoint& probe = injector.GetPoint("bench.micro");
  std::uint64_t fired = 0;
  const double micro_start = Now();
  for (long long i = 0; i < micro_iters; ++i) {
    fired += probe.Evaluate().fired ? 1u : 0u;
  }
  const double micro_seconds = Now() - micro_start;
  if (fired != 0) {
    std::fprintf(stderr, "disarmed point fired!?\n");
    return 1;
  }
  const double ns_per_check =
      micro_iters > 0 ? micro_seconds * 1e9 / static_cast<double>(micro_iters)
                      : 0.0;
  std::printf("bench_resilience: %d clients x %d requests\n", clients,
              per_client);
  std::printf("disarmed seam check: %.2f ns/op (%lld iterations)\n",
              ns_per_check, micro_iters);

  // --- the serving workload (same shape as bench_serve's warm stack).
  Result<std::vector<NamedFlow>> suite = TableThreeSuite(0.5);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }
  const std::size_t distinct = std::min<std::size_t>(4, suite->size());
  std::vector<std::string> names;
  EstimationService service;
  for (std::size_t i = 0; i < distinct; ++i) {
    names.push_back((*suite)[i].name);
    if (Status st =
            service.RegisterWorkflow((*suite)[i].name, (*suite)[i].flow);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Warm the memo so both measured runs see the steady serving state.
  (void)DriveClients(service, clients, per_client / 4 + 1, names);

  // --- baseline: seams compiled in, injector disarmed.
  RunResult baseline = DriveClients(service, clients, per_client, names);
  std::printf("baseline (disarmed):  %8.1f req/s  p50 %6.3f ms  p99 %6.3f ms\n",
              baseline.Rps(), baseline.QuantileMs(0.50),
              baseline.QuantileMs(0.99));

  // --- faulted: seeded 10% schedule — execute errors plus task-time latency.
  if (!injector
           .Configure("service.execute",
                      {.probability = 0.10, .error = ErrorCode::kInternal})
           .ok() ||
      !injector
           .Configure("model.task_time",
                      {.probability = 0.10, .latency_ms = 0.5})
           .ok() ||
      // Armed at a vanishing probability purely so their evaluation
      // counters run: the seams/request calibration must see every seam the
      // disarmed path crosses, not just the two that inject.
      !injector.Configure("service.admit", {.probability = 1e-12}).ok() ||
      !injector.Configure("pool.submit", {.probability = 1e-12}).ok() ||
      !injector.Configure("memo.insert", {.probability = 1e-12}).ok()) {
    std::fprintf(stderr, "fault configuration rejected\n");
    return 1;
  }
  injector.Arm(1);
  RunResult faulted = DriveClients(service, clients, per_client, names);
  // Seam evaluations are only counted while armed; the per-request count
  // calibrates what the disarmed run paid in atomic loads.
  std::uint64_t seam_evals = 0;
  for (const resilience::FaultInjector::PointStats& point : injector.Stats()) {
    seam_evals += point.evaluations;
  }
  injector.Disarm();
  injector.ResetAll();
  const double total_requests = static_cast<double>(clients) * per_client;
  const double seams_per_request =
      total_requests > 0 ? static_cast<double>(seam_evals) / total_requests
                         : 0.0;
  std::printf("faulted (10%% sched):  %8.1f req/s  p50 %6.3f ms  p99 %6.3f ms  "
              "(%llu failed)\n",
              faulted.Rps(), faulted.QuantileMs(0.50),
              faulted.QuantileMs(0.99),
              static_cast<unsigned long long>(faulted.failed));

  const double p50_baseline_ms = baseline.QuantileMs(0.50);
  const double disabled_overhead_percent =
      p50_baseline_ms > 0
          ? 100.0 * (seams_per_request * ns_per_check * 1e-6) / p50_baseline_ms
          : 0.0;
  std::printf(
      "disarmed overhead: %.2f seams/request x %.2f ns = %.4f%% of p50 "
      "(target <= 1%%)\n",
      seams_per_request, ns_per_check, disabled_overhead_percent);

  Json doc = Json::MakeObject();
  doc.Set("clients", Json::MakeNumber(clients));
  doc.Set("requests_per_client", Json::MakeNumber(per_client));
  doc.Set("disarmed_check_ns", Json::MakeNumber(ns_per_check));
  doc.Set("seam_evaluations_per_request", Json::MakeNumber(seams_per_request));
  doc.Set("disabled_overhead_percent_of_p50",
          Json::MakeNumber(disabled_overhead_percent));
  doc.Set("disabled_overhead_target_percent", Json::MakeNumber(1.0));
  doc.Set("baseline", RunJson(baseline));
  doc.Set("faulted_10pct", RunJson(faulted));
  std::ofstream out("BENCH_resilience.json");
  out << doc.Dump() << "\n";
  std::printf("wrote BENCH_resilience.json\n");
  return disabled_overhead_percent <= 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace dagperf

int main(int argc, char** argv) { return dagperf::Main(argc, argv); }
