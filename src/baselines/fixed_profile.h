#ifndef DAGPERF_BASELINES_FIXED_PROFILE_H_
#define DAGPERF_BASELINES_FIXED_PROFILE_H_

#include <string>

#include "cluster/cluster_spec.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "workload/job_profile.h"
#include "workload/job_spec.h"

namespace dagperf {

/// Profile-driven task-time predictor that assumes the degree of parallelism
/// observed during profiling — the paper's baseline for Figs. 6(a)–(f):
/// "the best cases of Starfish and MRTuner ... the ground truth execution
/// time when the degree of parallelism is equal to that in the profiling
/// stage" (§V-B). Starfish-like and MRTuner-like instances differ only in
/// the reference parallelism their profiling run used.
///
/// Predictions scale linearly with per-task data volume but are constant in
/// the actual degree of parallelism — the blind spot BOE removes.
class FixedProfileModel {
 public:
  /// Profiles `spec` by simulating it as a single-job workflow with
  /// `reference_tasks_per_node` concurrent tasks per node, capturing the
  /// median task time of each stage.
  static Result<FixedProfileModel> Calibrate(const JobSpec& spec,
                                             const ClusterSpec& cluster,
                                             int reference_tasks_per_node,
                                             const SimOptions& sim_options = {});

  /// Predicted task time for a stage of the profiled job. `data_scale`
  /// rescales per-task input relative to the profiled configuration;
  /// the actual degree of parallelism is deliberately not a parameter.
  Duration PredictTaskTime(StageKind kind, double data_scale = 1.0) const;

  int reference_tasks_per_node() const { return reference_tasks_per_node_; }
  const std::string& job_name() const { return job_name_; }

 private:
  FixedProfileModel() = default;

  std::string job_name_;
  int reference_tasks_per_node_ = 0;
  double map_task_s_ = 0.0;
  double reduce_task_s_ = 0.0;
  bool has_reduce_ = false;
};

}  // namespace dagperf

#endif  // DAGPERF_BASELINES_FIXED_PROFILE_H_
