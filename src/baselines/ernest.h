#ifndef DAGPERF_BASELINES_ERNEST_H_
#define DAGPERF_BASELINES_ERNEST_H_

#include <vector>

#include "common/status.h"

namespace dagperf {

/// Ernest-style job-level performance predictor (Venkataraman et al.,
/// NSDI'16): fits job completion time as a function of input scale s and
/// machine count m over a small set of training runs, with the feature set
///
///   t(s, m) = b0 + b1 * (s / m) + b2 * log(m) + b3 * m
///
/// capturing serial overhead, parallelisable work, tree-aggregation depth,
/// and per-machine fixed cost. The original uses non-negative least squares;
/// this implementation substitutes ridge-damped least squares with negative
/// coefficients clamped to zero afterwards — equivalent behaviour on the
/// well-conditioned training designs used here (documented in DESIGN.md).
///
/// Like Starfish/MRTuner, Ernest is a single-job model: it has no notion of
/// co-running jobs, which is why it degrades on parallel-job DAGs (see
/// bench_ablation).
class ErnestModel {
 public:
  struct TrainingPoint {
    double data_scale = 1.0;  // Input size relative to the target run.
    double machines = 1.0;
    double time_s = 0.0;
  };

  /// Fits the model; requires at least 4 training points.
  static Result<ErnestModel> Fit(const std::vector<TrainingPoint>& points);

  double Predict(double data_scale, double machines) const;

  const std::vector<double>& coefficients() const { return beta_; }

 private:
  explicit ErnestModel(std::vector<double> beta) : beta_(std::move(beta)) {}

  std::vector<double> beta_;
};

}  // namespace dagperf

#endif  // DAGPERF_BASELINES_ERNEST_H_
