#include "baselines/fixed_profile.h"

#include "common/check.h"
#include "common/stats.h"
#include "dag/dag_workflow.h"

namespace dagperf {

Result<FixedProfileModel> FixedProfileModel::Calibrate(
    const JobSpec& spec, const ClusterSpec& cluster, int reference_tasks_per_node,
    const SimOptions& sim_options) {
  if (reference_tasks_per_node <= 0) {
    return Status::InvalidArgument("reference parallelism must be positive");
  }
  DagBuilder builder(spec.name + "-profiling");
  builder.AddJob(spec);
  Result<DagWorkflow> flow = std::move(builder).Build();
  if (!flow.ok()) return flow.status();

  SchedulerConfig sched;
  sched.max_tasks_per_node = reference_tasks_per_node;
  const Simulator sim(cluster, sched, sim_options);
  Result<SimResult> result = sim.Run(*flow);
  if (!result.ok()) return result.status();

  FixedProfileModel model;
  model.job_name_ = spec.name;
  model.reference_tasks_per_node_ = reference_tasks_per_node;
  const std::vector<double> map_durations =
      result->TaskDurations(0, StageKind::kMap);
  DAGPERF_CHECK(!map_durations.empty());
  model.map_task_s_ = ComputeStats(map_durations).median;
  model.has_reduce_ = flow->job(0).has_reduce();
  if (model.has_reduce_) {
    const std::vector<double> reduce_durations =
        result->TaskDurations(0, StageKind::kReduce);
    DAGPERF_CHECK(!reduce_durations.empty());
    model.reduce_task_s_ = ComputeStats(reduce_durations).median;
  }
  return model;
}

Duration FixedProfileModel::PredictTaskTime(StageKind kind, double data_scale) const {
  DAGPERF_CHECK(data_scale > 0);
  if (kind == StageKind::kMap) return Duration(map_task_s_ * data_scale);
  DAGPERF_CHECK_MSG(has_reduce_, "profiled job has no reduce stage");
  return Duration(reduce_task_s_ * data_scale);
}

}  // namespace dagperf
