#include "baselines/ernest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace dagperf {

namespace {

void FillFeatures(double data_scale, double machines, double* row) {
  row[0] = 1.0;
  row[1] = data_scale / machines;
  row[2] = std::log(machines);
  row[3] = machines;
}

}  // namespace

Result<ErnestModel> ErnestModel::Fit(const std::vector<TrainingPoint>& points) {
  if (points.size() < 4) {
    return Status::InvalidArgument("Ernest fit needs at least 4 training points");
  }
  for (const auto& p : points) {
    if (p.data_scale <= 0 || p.machines <= 0 || p.time_s < 0) {
      return Status::InvalidArgument("Ernest training point out of range");
    }
  }
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(points.size() * 4);
  for (const auto& p : points) {
    double row[4];
    FillFeatures(p.data_scale, p.machines, row);
    x.insert(x.end(), row, row + 4);
    y.push_back(p.time_s);
  }
  std::vector<double> beta = LeastSquares(x, y, 4, /*ridge=*/1e-6);
  // NNLS substitute: clamp negative coefficients (all terms model costs).
  for (double& b : beta) b = std::max(0.0, b);
  return ErnestModel(std::move(beta));
}

double ErnestModel::Predict(double data_scale, double machines) const {
  DAGPERF_CHECK(data_scale > 0 && machines > 0);
  double row[4];
  FillFeatures(data_scale, machines, row);
  double out = 0.0;
  for (int i = 0; i < 4; ++i) out += beta_[i] * row[i];
  return out;
}

}  // namespace dagperf
