#ifndef DAGPERF_WORKLOADS_HIBENCH_H_
#define DAGPERF_WORKLOADS_HIBENCH_H_

#include <vector>

#include "common/status.h"
#include "dag/dag_workflow.h"

namespace dagperf {

/// HiBench-style iterative analytics DAGs (the paper's KMeans and PageRank
/// workloads, "huge" data profile). The builders append jobs to an existing
/// DagBuilder so the workloads can be composed into hybrid workflows (e.g.
/// WC running in parallel with KMeans, Table III's WC-KM), and return the
/// appended job ids in topological order.

/// KMeans clustering: `iterations` centroid-update jobs chained head-to-tail
/// (CPU-bound maps computing distances, tiny shuffles of partial centroid
/// sums) followed by one map-only classification job writing labelled
/// points.
std::vector<JobId> AppendKMeans(DagBuilder& builder,
                                Bytes input = Bytes::FromGB(100),
                                int iterations = 3);

/// PageRank: `iterations` chained iterations of two jobs each (contribution
/// join producing a full-size shuffle, then rank aggregation), preceded by
/// one graph-preparation job. Shuffle-heavy / network-bound.
std::vector<JobId> AppendPageRank(DagBuilder& builder,
                                  Bytes edges = Bytes::FromGB(90),
                                  int iterations = 3);

/// Convenience single-workload flows.
Result<DagWorkflow> KMeansFlow(Bytes input = Bytes::FromGB(100), int iterations = 3);
Result<DagWorkflow> PageRankFlow(Bytes edges = Bytes::FromGB(90), int iterations = 3);

}  // namespace dagperf

#endif  // DAGPERF_WORKLOADS_HIBENCH_H_
