#ifndef DAGPERF_WORKLOADS_TPCH_H_
#define DAGPERF_WORKLOADS_TPCH_H_

#include <vector>

#include "common/status.h"
#include "dag/dag_workflow.h"

namespace dagperf {

/// TPC-H base tables. Sizes follow the standard row-volume proportions of a
/// TPC-H scale factor, applied to the configured total data volume (the
/// paper generates 80 GB across the 8 tables).
enum class TpchTable {
  kLineitem,
  kOrders,
  kPartsupp,
  kCustomer,
  kPart,
  kSupplier,
  kNation,
  kRegion,
};

/// The on-disk size of one table when the whole dataset is `total` bytes.
Bytes TpchTableSize(TpchTable table, Bytes total = Bytes::FromGB(80));

/// Appends the MapReduce job DAG of TPC-H query `query` (1..22) to the
/// builder and returns the appended job ids in topological order.
///
/// The plans are synthetic-but-shaped: each query's job count, scan volumes,
/// join/aggregation chain, and selectivities are modelled after the
/// Hive-on-MapReduce physical plans (e.g. Q21 compiles to 9 jobs, matching
/// the paper's observation). DESIGN.md §2 documents this substitution; the
/// queries' role in the paper's evaluation is to supply 22 structurally
/// diverse multi-job DAGs with realistic data volumes.
std::vector<JobId> AppendTpchQuery(DagBuilder& builder, int query,
                                   Bytes total_data = Bytes::FromGB(80));

/// Number of MapReduce jobs query `query` compiles to.
int TpchQueryJobCount(int query);

/// Convenience: the query as a standalone workflow.
Result<DagWorkflow> TpchQueryFlow(int query, Bytes total_data = Bytes::FromGB(80));

}  // namespace dagperf

#endif  // DAGPERF_WORKLOADS_TPCH_H_
