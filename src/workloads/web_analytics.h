#ifndef DAGPERF_WORKLOADS_WEB_ANALYTICS_H_
#define DAGPERF_WORKLOADS_WEB_ANALYTICS_H_

#include "common/status.h"
#include "dag/dag_workflow.h"

namespace dagperf {

/// The four-job web-site-analytics DAG from Fig. 1 of the paper:
///
///   job1  pre-aggregates page-view events into (page, ip, duration)
///         records;
///   job2  counts views per page (WordCount-like, CPU-bound map) — runs in
///         parallel with
///   job3  sorts pages by visit duration (Sort-like, shuffle-heavy);
///   job4  joins both results into the final report.
///
/// This is the workflow whose task execution plan motivates the paper: the
/// map-task time of job2 drops across workflow states (27 s -> 24 s -> 20 s
/// in the paper's trace) as job3's shuffle stops contending and then
/// finishes. examples/web_analytics.cc and bench_fig1_plan reproduce that
/// state-by-state variation.
Result<DagWorkflow> WebAnalyticsFlow(Bytes input = Bytes::FromGB(100));

}  // namespace dagperf

#endif  // DAGPERF_WORKLOADS_WEB_ANALYTICS_H_
