#include "workloads/web_analytics.h"

#include "workload/job_profile.h"

namespace dagperf {

Result<DagWorkflow> WebAnalyticsFlow(Bytes input) {
  DagBuilder builder("web-analytics");

  // Job 1: pre-aggregate visit durations from the raw event log.
  JobSpec pre;
  pre.name = "j1-preagg";
  pre.input = input;
  pre.map_compute = Rate::MBps(80);
  pre.map_selectivity = 0.5;
  pre.compress_map_output = true;
  pre.reduce_compute = Rate::MBps(120);
  pre.reduce_selectivity = 0.4;  // (page, ip, duration) records.
  pre.replicas = 1;
  pre.num_reduce_tasks = kAutoReducers;
  const JobId j1 = builder.AddJob(pre);
  const Bytes records = JobOutput(pre);

  // Job 2: count views per page (WordCount-like): CPU-bound map. Small
  // splits give the stage several waves so it spans the workflow states in
  // which job 3 moves from map to shuffle to done — the paper's motivating
  // task-time drop (27 s -> 24 s -> 20 s in their trace).
  JobSpec count;
  count.name = "j2-pageviews";
  count.input = records;
  count.split_size = Bytes::FromMB(128);
  count.map_compute = Rate::MBps(12);
  count.map_selectivity = 0.1;
  count.compress_map_output = true;
  count.reduce_compute = Rate::MBps(60);
  count.reduce_selectivity = 0.5;
  count.replicas = 1;
  count.num_reduce_tasks = kAutoReducers;
  const JobId j2 = builder.AddJobAfter(j1, count);

  // Job 3: sort pages by duration (Sort-like): its map parses at a rate
  // that takes real CPU, and its reduce is shuffle-heavy — so job 2's CPU
  // share rises in two steps as job 3 progresses.
  JobSpec sort;
  sort.name = "j3-sort";
  sort.input = records;
  sort.map_compute = Rate::MBps(100);
  sort.map_selectivity = 1.0;
  sort.reduce_compute = Rate::MBps(40);
  sort.reduce_selectivity = 1.0;
  sort.replicas = 1;
  sort.num_reduce_tasks = 50;
  const JobId j3 = builder.AddJobAfter(j1, sort);

  // Job 4: final report of min/median/max duration per page.
  JobSpec report;
  report.name = "j4-report";
  report.input = JobOutput(count) + JobOutput(sort);
  report.map_compute = Rate::MBps(100);
  report.map_selectivity = 0.2;
  report.reduce_compute = Rate::MBps(100);
  report.reduce_selectivity = 0.1;
  report.replicas = 3;
  report.num_reduce_tasks = kAutoReducers;
  const JobId j4 = builder.AddJob(report);
  builder.AddEdge(j2, j4).AddEdge(j3, j4);

  return std::move(builder).Build();
}

}  // namespace dagperf
