#ifndef DAGPERF_WORKLOADS_MICRO_H_
#define DAGPERF_WORKLOADS_MICRO_H_

#include <string>

#include "workload/job_spec.h"

namespace dagperf {

/// Micro-benchmark job specs matching Table I of the paper. Parameter values
/// are calibrated against the paper cluster (6 cores, ~200 MB/s disk, 1 GbE)
/// so the expected bottlenecks match the table:
///
///   WC   (C=Y, R=3)  — CPU-bound map (slow tokenising map function, heavy
///                      combining); tiny compressed shuffle.
///   TSC  (C=Y, R=1)  — compression work makes the spill CPU-bound.
///   TS   (C=N, R=1)  — identity map: disk-bound map, network-bound shuffle,
///                      reduce CPU-bound at low parallelism and disk-bound
///                      at high parallelism.
///   TS2R (C=N, R=2)  — replication starts to load the network.
///   TS3R (C=N, R=3)  — reduce network-bound (replication pipeline).

/// HiBench-style WordCount over `input` bytes of text.
JobSpec WordCountSpec(Bytes input = Bytes::FromGB(100));

/// TeraSort over `input` bytes. `compress` toggles map-output compression
/// (Table I's TSC variant); `replicas` sets the HDFS replication of the
/// sorted output (TS=1, TS2R=2, TS3R=3). The job name encodes the variant.
JobSpec TeraSortSpec(Bytes input = Bytes::FromGB(100), bool compress = false,
                     int replicas = 1);

/// Canonical Table I variants.
inline JobSpec TsSpec(Bytes input = Bytes::FromGB(100)) {
  return TeraSortSpec(input, false, 1);
}
inline JobSpec TscSpec(Bytes input = Bytes::FromGB(100)) {
  return TeraSortSpec(input, true, 1);
}
inline JobSpec Ts2rSpec(Bytes input = Bytes::FromGB(100)) {
  return TeraSortSpec(input, false, 2);
}
inline JobSpec Ts3rSpec(Bytes input = Bytes::FromGB(100)) {
  return TeraSortSpec(input, false, 3);
}

}  // namespace dagperf

#endif  // DAGPERF_WORKLOADS_MICRO_H_
