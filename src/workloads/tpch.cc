#include "workloads/tpch.h"

#include <string>

#include "common/check.h"
#include "workload/job_profile.h"

namespace dagperf {

Bytes TpchTableSize(TpchTable table, Bytes total) {
  // Standard TPC-H storage proportions (lineitem dominates).
  double fraction = 0.0;
  switch (table) {
    case TpchTable::kLineitem:
      fraction = 0.685;
      break;
    case TpchTable::kOrders:
      fraction = 0.155;
      break;
    case TpchTable::kPartsupp:
      fraction = 0.108;
      break;
    case TpchTable::kCustomer:
      fraction = 0.0215;
      break;
    case TpchTable::kPart:
      fraction = 0.0215;
      break;
    case TpchTable::kSupplier:
      fraction = 0.0013;
      break;
    case TpchTable::kNation:
    case TpchTable::kRegion:
      fraction = 0.0001;
      break;
  }
  return total * fraction;
}

namespace {

/// One MapReduce job inside a query plan template.
struct PlanJob {
  const char* tag;
  std::vector<TpchTable> scans;  // Base tables read by the map stage.
  std::vector<int> deps;         // Plan-local indices of feeding jobs.
  double map_sel;                // Map output / map input.
  double red_sel;                // Reduce output / reduce input.
  double map_mbps = 120.0;       // Per-core map function throughput.
  double red_mbps = 100.0;
  bool map_only = false;
};

using Plan = std::vector<PlanJob>;

/// The per-query plan templates. Shapes (job counts, join chains) follow
/// Hive-on-MapReduce compilations of the 22 queries; selectivities model
/// each query's filters and aggregations coarsely.
Plan QueryPlan(int q) {
  using T = TpchTable;
  switch (q) {
    case 1:  // Pricing summary: scan+aggregate lineitem, then order.
      return {
          {"agg", {T::kLineitem}, {}, 0.05, 0.02, 140, 80},
          {"sort", {}, {0}, 1.0, 0.5},
      };
    case 2:  // Minimum-cost supplier: part/partsupp/supplier join chain.
      return {
          {"part-ps", {T::kPart, T::kPartsupp}, {}, 0.35, 0.4, 110, 90},
          {"supp-nat", {T::kSupplier, T::kNation, T::kRegion}, {}, 0.6, 0.6},
          {"join", {}, {0, 1}, 0.5, 0.35, 100, 90},
          {"mincost", {}, {2}, 0.4, 0.2},
          {"sort", {}, {3}, 1.0, 0.3},
      };
    case 3:  // Shipping priority.
      return {
          {"cust-ord", {T::kCustomer, T::kOrders}, {}, 0.3, 0.45, 110, 90},
          {"join-li", {T::kLineitem}, {0}, 0.35, 0.3, 120, 90},
          {"agg", {}, {1}, 0.25, 0.1},
          {"topk", {}, {2}, 1.0, 0.1},
      };
    case 4:  // Order priority checking (semi-join orders/lineitem).
      return {
          {"semijoin", {T::kOrders, T::kLineitem}, {}, 0.25, 0.15, 130, 90},
          {"count", {}, {0}, 0.2, 0.05},
          {"sort", {}, {1}, 1.0, 0.5},
      };
    case 5:  // Local supplier volume: 4-way join then aggregate.
      return {
          {"cust-ord", {T::kCustomer, T::kOrders}, {}, 0.3, 0.45, 110, 90},
          {"join-li", {T::kLineitem}, {0}, 0.4, 0.35, 120, 90},
          {"join-supp", {T::kSupplier}, {1}, 0.5, 0.4, 100, 90},
          {"join-nat", {T::kNation, T::kRegion}, {2}, 0.6, 0.4},
          {"agg", {}, {3}, 0.25, 0.08},
          {"sort", {}, {4}, 1.0, 0.3},
      };
    case 6:  // Forecast revenue change: single filtered scan.
      return {
          {"filter-sum", {T::kLineitem}, {}, 0.02, 0.01, 160, 80},
          {"final", {}, {0}, 1.0, 0.5},
      };
    case 7:  // Volume shipping: two nation-filtered join branches.
      return {
          {"supp-li", {T::kSupplier, T::kLineitem}, {}, 0.35, 0.4, 120, 90},
          {"ord-cust", {T::kOrders, T::kCustomer}, {}, 0.3, 0.4, 110, 90},
          {"join", {}, {0, 1}, 0.45, 0.3, 100, 90},
          {"join-nat", {T::kNation}, {2}, 0.6, 0.4},
          {"agg", {}, {3}, 0.2, 0.08},
          {"sort", {}, {4}, 1.0, 0.3},
      };
    case 8:  // National market share.
      return {
          {"part-li", {T::kPart, T::kLineitem}, {}, 0.25, 0.3, 120, 90},
          {"ord-cust", {T::kOrders, T::kCustomer}, {}, 0.3, 0.4, 110, 90},
          {"join", {}, {0, 1}, 0.4, 0.3, 100, 90},
          {"join-supp", {T::kSupplier}, {2}, 0.55, 0.4},
          {"join-nat", {T::kNation, T::kRegion}, {3}, 0.6, 0.4},
          {"agg", {}, {4}, 0.2, 0.06},
          {"sort", {}, {5}, 1.0, 0.4},
      };
    case 9:  // Product type profit (largest join footprint).
      return {
          {"part-li", {T::kPart, T::kLineitem}, {}, 0.35, 0.4, 120, 90},
          {"join-ps", {T::kPartsupp}, {0}, 0.5, 0.4, 100, 90},
          {"join-ord", {T::kOrders}, {1}, 0.5, 0.4, 100, 90},
          {"join-supp", {T::kSupplier}, {2}, 0.55, 0.4},
          {"join-nat", {T::kNation}, {3}, 0.65, 0.45},
          {"agg", {}, {4}, 0.2, 0.07},
          {"sort", {}, {5}, 1.0, 0.3},
      };
    case 10:  // Returned items.
      return {
          {"cust-ord", {T::kCustomer, T::kOrders}, {}, 0.3, 0.45, 110, 90},
          {"join-li", {T::kLineitem}, {0}, 0.3, 0.3, 120, 90},
          {"join-nat", {T::kNation}, {1}, 0.65, 0.5},
          {"agg", {}, {2}, 0.25, 0.1},
          {"topk", {}, {3}, 1.0, 0.1},
      };
    case 11:  // Important stock identification.
      return {
          {"ps-supp", {T::kPartsupp, T::kSupplier, T::kNation}, {}, 0.4, 0.4, 110, 90},
          {"value-agg", {}, {0}, 0.3, 0.15},
          {"threshold", {}, {1}, 0.8, 0.5},
          {"sort", {}, {2}, 1.0, 0.4},
      };
    case 12:  // Shipping mode / order priority.
      return {
          {"ord-li", {T::kOrders, T::kLineitem}, {}, 0.2, 0.15, 130, 90},
          {"agg", {}, {0}, 0.15, 0.05},
          {"sort", {}, {1}, 1.0, 0.5},
      };
    case 13:  // Customer distribution (left outer join).
      return {
          {"cust-ord", {T::kCustomer, T::kOrders}, {}, 0.35, 0.3, 110, 90},
          {"count", {}, {0}, 0.2, 0.08},
          {"hist", {}, {1}, 0.5, 0.3},
      };
    case 14:  // Promotion effect.
      return {
          {"li-part", {T::kLineitem, T::kPart}, {}, 0.15, 0.2, 130, 90},
          {"agg", {}, {0}, 0.1, 0.05},
          {"final", {}, {1}, 1.0, 0.5},
      };
    case 15:  // Top supplier (revenue view + max).
      return {
          {"revenue", {T::kLineitem}, {}, 0.08, 0.05, 140, 85},
          {"max", {}, {0}, 0.5, 0.2},
          {"join-supp", {T::kSupplier}, {1}, 0.7, 0.5},
          {"sort", {}, {2}, 1.0, 0.4},
      };
    case 16:  // Parts/supplier relationship (distinct aggregation).
      return {
          {"ps-part", {T::kPartsupp, T::kPart}, {}, 0.4, 0.35, 110, 90},
          {"antijoin-supp", {T::kSupplier}, {0}, 0.7, 0.6},
          {"distinct-count", {}, {1}, 0.3, 0.1},
          {"sort", {}, {2}, 1.0, 0.3},
      };
    case 17:  // Small-quantity-order revenue (correlated subquery).
      return {
          {"li-part", {T::kLineitem, T::kPart}, {}, 0.12, 0.2, 130, 90},
          {"avg-qty", {T::kLineitem}, {}, 0.04, 0.02, 150, 85},
          {"join", {}, {0, 1}, 0.4, 0.25, 100, 90},
          {"agg", {}, {2}, 0.2, 0.05},
          {"final", {}, {3}, 1.0, 0.5},
      };
    case 18:  // Large volume customers.
      return {
          {"li-groupby", {T::kLineitem}, {}, 0.1, 0.06, 140, 85},
          {"join-ord", {T::kOrders}, {0}, 0.3, 0.3, 110, 90},
          {"join-cust", {T::kCustomer}, {1}, 0.5, 0.4},
          {"join-li", {T::kLineitem}, {2}, 0.12, 0.15, 130, 90},
          {"agg", {}, {3}, 0.25, 0.1},
          {"topk", {}, {4}, 1.0, 0.1},
      };
    case 19:  // Discounted revenue (disjunctive join predicates).
      return {
          {"li-part", {T::kLineitem, T::kPart}, {}, 0.08, 0.1, 130, 90},
          {"agg", {}, {0}, 0.2, 0.05},
          {"final", {}, {1}, 1.0, 0.5},
      };
    case 20:  // Potential part promotion.
      return {
          {"ps-part", {T::kPartsupp, T::kPart}, {}, 0.35, 0.35, 110, 90},
          {"li-agg", {T::kLineitem}, {}, 0.06, 0.04, 145, 85},
          {"semijoin", {}, {0, 1}, 0.4, 0.3, 100, 90},
          {"join-supp", {T::kSupplier, T::kNation}, {2}, 0.6, 0.4},
          {"sort", {}, {3}, 1.0, 0.3},
      };
    case 21:  // Suppliers who kept orders waiting: 9 jobs (paper §V-C).
      return {
          {"li-l1", {T::kLineitem}, {}, 0.12, 0.1, 135, 90},
          {"li-l2", {T::kLineitem}, {}, 0.12, 0.1, 135, 90},
          {"li-l3", {T::kLineitem}, {}, 0.12, 0.1, 135, 90},
          {"join-l1l2", {}, {0, 1}, 0.45, 0.35, 100, 90},
          {"antijoin-l3", {}, {2, 3}, 0.45, 0.3, 100, 90},
          {"join-ord", {T::kOrders}, {4}, 0.3, 0.3, 110, 90},
          {"join-supp", {T::kSupplier, T::kNation}, {5}, 0.55, 0.4},
          {"group-count", {}, {6}, 0.25, 0.1},
          {"topk", {}, {7}, 1.0, 0.1},
      };
    case 22:  // Global sales opportunity.
      return {
          {"cust-avg", {T::kCustomer}, {}, 0.3, 0.15, 120, 90},
          {"antijoin-ord", {T::kOrders}, {0}, 0.25, 0.25, 120, 90},
          {"agg", {}, {1}, 0.3, 0.1},
          {"sort", {}, {2}, 1.0, 0.4},
      };
    default:
      DAGPERF_CHECK_MSG(false, "TPC-H query out of range");
      return {};
  }
}

}  // namespace

int TpchQueryJobCount(int query) {
  return static_cast<int>(QueryPlan(query).size());
}

std::vector<JobId> AppendTpchQuery(DagBuilder& builder, int query, Bytes total_data) {
  DAGPERF_CHECK_MSG(query >= 1 && query <= 22, "TPC-H query must be 1..22");
  const Plan plan = QueryPlan(query);
  std::vector<JobId> ids;
  std::vector<Bytes> outputs;
  ids.reserve(plan.size());
  outputs.reserve(plan.size());

  for (size_t i = 0; i < plan.size(); ++i) {
    const PlanJob& pj = plan[i];
    JobSpec spec;
    spec.name = "Q" + std::to_string(query) + "-" + pj.tag;
    Bytes input;
    for (TpchTable t : pj.scans) input += TpchTableSize(t, total_data);
    for (int dep : pj.deps) {
      DAGPERF_CHECK(dep >= 0 && dep < static_cast<int>(i));
      input += outputs[dep];
    }
    // Floor: even metadata-only jobs move at least one split of data.
    if (input < Bytes::FromMB(64)) input = Bytes::FromMB(64);
    spec.input = input;
    spec.map_selectivity = pj.map_sel;
    spec.reduce_selectivity = pj.red_sel;
    spec.map_compute = Rate::MBps(pj.map_mbps);
    spec.reduce_compute = Rate::MBps(pj.red_mbps);
    spec.compress_map_output = true;  // Hive enables intermediate compression.
    spec.num_reduce_tasks = pj.map_only ? 0 : kAutoReducers;
    const bool is_final = i + 1 == plan.size();
    spec.replicas = is_final ? 3 : 1;
    spec.reduce_skew_cv = pj.deps.empty() ? 0.1 : 0.15;  // Join keys skew mildly.

    const JobId id = builder.AddJob(spec);
    for (int dep : pj.deps) builder.AddEdge(ids[dep], id);
    ids.push_back(id);
    outputs.push_back(JobOutput(spec));
  }
  return ids;
}

Result<DagWorkflow> TpchQueryFlow(int query, Bytes total_data) {
  DagBuilder builder("TPCH-Q" + std::to_string(query));
  AppendTpchQuery(builder, query, total_data);
  return std::move(builder).Build();
}

}  // namespace dagperf
