#ifndef DAGPERF_WORKLOADS_SPARK_H_
#define DAGPERF_WORKLOADS_SPARK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dag/dag_workflow.h"

namespace dagperf {

/// Spark/Tez-style application descriptions compiled into the library's
/// MapReduce-job DAGs — exercising the paper's claim (§I, §II) that the
/// models "are easy to be extended to other cluster-based distributed
/// systems such as Spark and Tez, of which the key mechanisms ... are
/// similar".
///
/// A Spark app is a DAG of *stages*; edges are narrow (pipelined, no data
/// movement) or wide (shuffle boundaries). The compiler:
///  * contracts narrow chains (a stage pipelined behind a sole parent with
///    no other consumers merges into it, composing compute and ratios);
///  * maps each remaining stage to one MapReduce job: the stage computation
///    is the map side; a wide outgoing edge gives the job a shuffle+reduce
///    (identity merge) so children consume partitioned output;
///  * models `cached` stages by letting consumers read their output from
///    memory (JobSpec::input_cache_fraction = 1).

/// One Spark stage.
struct SparkStage {
  std::string name;
  /// Bytes read from storage by a source stage (0 for downstream stages —
  /// their input is their parents' output).
  Bytes input;
  /// Stage output bytes per input byte.
  double output_ratio = 1.0;
  /// Per-core throughput of the stage's fused operator pipeline.
  Rate compute = Rate::MBps(100);
  /// Whether the stage's output is cached in memory (consumers skip disk).
  bool cache_output = false;
};

struct SparkEdge {
  int from = 0;
  int to = 0;
  /// true = shuffle dependency; false = narrow (pipelined).
  bool wide = true;
};

struct SparkAppSpec {
  std::string name = "spark-app";
  std::vector<SparkStage> stages;
  std::vector<SparkEdge> edges;
  /// HDFS replication of terminal outputs.
  int output_replicas = 1;
};

/// Compiles the stage DAG into a DagWorkflow for the simulator and models.
/// Rejects cyclic graphs, out-of-range edges, non-source stages with
/// storage input, and narrow edges into stages with multiple parents.
Result<DagWorkflow> CompileSparkApp(const SparkAppSpec& app);

/// A ready-made iterative MLlib-style app: one scan-and-cache stage, then
/// `iterations` gradient-computation stages over the cached data, each
/// ending in a small aggregation shuffle.
SparkAppSpec IterativeMlApp(Bytes training_data = Bytes::FromGB(50),
                            int iterations = 5);

}  // namespace dagperf

#endif  // DAGPERF_WORKLOADS_SPARK_H_
