#ifndef DAGPERF_WORKLOADS_SUITE_H_
#define DAGPERF_WORKLOADS_SUITE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dag/dag_workflow.h"

namespace dagperf {

/// A workflow with the display name used in the paper's tables.
struct NamedFlow {
  std::string name;
  DagWorkflow flow;
};

/// Builds the 51 hybrid DAG workflows evaluated in Table III:
///
///   TS-Q1 .. TS-Q22   TeraSort running in parallel with each TPC-H query,
///   WC-Q1 .. WC-Q22   WordCount running in parallel with each query,
///   WC-TS, WC-TS2R, WC-TS3R, WC-KM, WC-PR, TS-KM, TS-PR.
///
/// `scale` multiplies every input volume (1.0 = the paper's 100 GB micro /
/// 80 GB TPC-H configuration); smaller scales keep test runtimes short.
Result<std::vector<NamedFlow>> TableThreeSuite(double scale = 1.0);

/// One suite entry by name (e.g. "TS-Q21"); NotFound for unknown names.
Result<NamedFlow> TableThreeFlow(const std::string& name, double scale = 1.0);

}  // namespace dagperf

#endif  // DAGPERF_WORKLOADS_SUITE_H_
