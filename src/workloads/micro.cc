#include "workloads/micro.h"

namespace dagperf {

JobSpec WordCountSpec(Bytes input) {
  JobSpec spec;
  spec.name = "WC";
  spec.input = input;
  spec.split_size = Bytes::FromMB(256);
  // Tokenising and combining text is slow per byte: the map stage is
  // CPU-bound at every degree of parallelism on the paper cluster.
  spec.map_compute = Rate::MBps(25);
  // The combiner collapses word counts per split but text still shuffles a
  // substantial fraction of the input.
  spec.map_selectivity = 0.4;
  spec.compress_map_output = true;
  spec.compression_ratio = 0.35;
  // Enough reducers to fill the cluster's slots (the Fig. 6 sweep varies
  // reduce-stage parallelism up to 12 per node).
  spec.num_reduce_tasks = 150;
  spec.reduce_compute = Rate::MBps(60);
  spec.reduce_selectivity = 0.5;
  spec.replicas = 3;
  spec.reduce_skew_cv = 0.15;  // Word frequencies are mildly skewed.
  return spec;
}

JobSpec TeraSortSpec(Bytes input, bool compress, int replicas) {
  JobSpec spec;
  spec.name = compress ? "TSC" : (replicas == 1 ? "TS" : "TS" + std::to_string(replicas) + "R");
  spec.input = input;
  spec.split_size = Bytes::FromMB(256);
  // The identity map only parses and partitions records: faster than the
  // disk can feed it, so reading dominates the first sub-stage.
  spec.map_compute = Rate::MBps(250);
  spec.map_selectivity = 1.0;
  spec.compress_map_output = compress;
  spec.compression_ratio = 0.3;
  spec.num_reduce_tasks = kAutoReducers;  // ~1 reducer per GB.
  spec.reduce_compute = Rate::MBps(120);
  spec.reduce_selectivity = 1.0;
  spec.replicas = replicas;
  spec.sort_compute = Rate::MBps(300);
  // Gzip-class compression runs at ~100 MB/s per 2.4 GHz core: with the
  // variant enabled the spill becomes CPU-bound (Table I's TSC row).
  spec.compress_compute = Rate::MBps(100);
  spec.reduce_skew_cv = 0.1;  // TeraGen keys are nearly uniform.
  return spec;
}

}  // namespace dagperf
