#include "workloads/suite.h"

#include "common/check.h"
#include "workloads/hibench.h"
#include "workloads/micro.h"
#include "workloads/tpch.h"

namespace dagperf {

namespace {

Result<NamedFlow> BuildMicroPlusQuery(const std::string& micro, int query,
                                      double scale) {
  const std::string name = micro + "-Q" + std::to_string(query);
  DagBuilder builder(name);
  if (micro == "TS") {
    builder.AddJob(TsSpec(Bytes::FromGB(100.0 * scale)));
  } else {
    builder.AddJob(WordCountSpec(Bytes::FromGB(100.0 * scale)));
  }
  AppendTpchQuery(builder, query, Bytes::FromGB(80.0 * scale));
  Result<DagWorkflow> flow = std::move(builder).Build();
  if (!flow.ok()) return flow.status();
  return NamedFlow{name, std::move(flow).value()};
}

Result<NamedFlow> BuildPair(const std::string& name, double scale) {
  const Bytes micro_input = Bytes::FromGB(100.0 * scale);
  DagBuilder builder(name);
  if (name == "WC-TS") {
    builder.AddJob(WordCountSpec(micro_input));
    builder.AddJob(TsSpec(micro_input));
  } else if (name == "WC-TS2R") {
    builder.AddJob(WordCountSpec(micro_input));
    builder.AddJob(Ts2rSpec(micro_input));
  } else if (name == "WC-TS3R") {
    builder.AddJob(WordCountSpec(micro_input));
    builder.AddJob(Ts3rSpec(micro_input));
  } else if (name == "WC-KM") {
    builder.AddJob(WordCountSpec(micro_input));
    AppendKMeans(builder, Bytes::FromGB(100.0 * scale));
  } else if (name == "WC-PR") {
    builder.AddJob(WordCountSpec(micro_input));
    AppendPageRank(builder, Bytes::FromGB(90.0 * scale));
  } else if (name == "TS-KM") {
    builder.AddJob(TsSpec(micro_input));
    AppendKMeans(builder, Bytes::FromGB(100.0 * scale));
  } else if (name == "TS-PR") {
    builder.AddJob(TsSpec(micro_input));
    AppendPageRank(builder, Bytes::FromGB(90.0 * scale));
  } else {
    return Status::NotFound("unknown suite pair: " + name);
  }
  Result<DagWorkflow> flow = std::move(builder).Build();
  if (!flow.ok()) return flow.status();
  return NamedFlow{name, std::move(flow).value()};
}

}  // namespace

Result<std::vector<NamedFlow>> TableThreeSuite(double scale) {
  DAGPERF_CHECK(scale > 0);
  std::vector<NamedFlow> suite;
  suite.reserve(51);
  for (const std::string micro : {"TS", "WC"}) {
    for (int q = 1; q <= 22; ++q) {
      Result<NamedFlow> flow = BuildMicroPlusQuery(micro, q, scale);
      if (!flow.ok()) return flow.status();
      suite.push_back(std::move(flow).value());
    }
  }
  for (const char* pair :
       {"WC-TS", "WC-TS2R", "WC-TS3R", "WC-KM", "WC-PR", "TS-KM", "TS-PR"}) {
    Result<NamedFlow> flow = BuildPair(pair, scale);
    if (!flow.ok()) return flow.status();
    suite.push_back(std::move(flow).value());
  }
  DAGPERF_CHECK(suite.size() == 51);
  return suite;
}

Result<NamedFlow> TableThreeFlow(const std::string& name, double scale) {
  // Micro-plus-query names: "<TS|WC>-Q<n>".
  for (const std::string micro : {"TS", "WC"}) {
    for (int q = 1; q <= 22; ++q) {
      if (name == micro + "-Q" + std::to_string(q)) {
        return BuildMicroPlusQuery(micro, q, scale);
      }
    }
  }
  return BuildPair(name, scale);
}

}  // namespace dagperf
