#include "workloads/spark.h"

#include <queue>

#include "common/check.h"
#include "workload/job_profile.h"

namespace dagperf {

namespace {

Status ValidateApp(const SparkAppSpec& app) {
  const int n = static_cast<int>(app.stages.size());
  if (n == 0) return Status::InvalidArgument(app.name + ": no stages");
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> children(n);
  for (const auto& e : app.edges) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      return Status::InvalidArgument(app.name + ": edge out of range");
    }
    if (e.from == e.to) return Status::InvalidArgument(app.name + ": self edge");
    ++indegree[e.to];
    children[e.from].push_back(e.to);
  }
  for (int i = 0; i < n; ++i) {
    if (indegree[i] > 0 && app.stages[i].input.value() > 0) {
      return Status::InvalidArgument(app.stages[i].name +
                                     ": non-source stage with storage input");
    }
    if (indegree[i] == 0 && app.stages[i].input.value() <= 0) {
      return Status::InvalidArgument(app.stages[i].name +
                                     ": source stage needs input bytes");
    }
  }
  // Cycle check.
  std::queue<int> ready;
  std::vector<int> deg = indegree;
  for (int i = 0; i < n; ++i) {
    if (deg[i] == 0) ready.push(i);
  }
  int visited = 0;
  while (!ready.empty()) {
    const int s = ready.front();
    ready.pop();
    ++visited;
    for (int c : children[s]) {
      if (--deg[c] == 0) ready.push(c);
    }
  }
  if (visited != n) return Status::InvalidArgument(app.name + ": cycle");
  return Status::Ok();
}

/// Composes two pipelined stages into one: input flows through `a`, then
/// `a`'s output through `b`, with no materialisation in between.
SparkStage Fuse(const SparkStage& a, const SparkStage& b) {
  SparkStage fused;
  fused.name = a.name + "+" + b.name;
  fused.input = a.input;
  fused.output_ratio = a.output_ratio * b.output_ratio;
  // Per input byte: 1/ca core-seconds in a, then output_ratio_a bytes
  // through b at 1/cb each.
  const double cost_per_byte = 1.0 / a.compute.bytes_per_sec() +
                               a.output_ratio / b.compute.bytes_per_sec();
  fused.compute = Rate(1.0 / cost_per_byte);
  fused.cache_output = b.cache_output;
  return fused;
}

}  // namespace

Result<DagWorkflow> CompileSparkApp(const SparkAppSpec& app) {
  Status st = ValidateApp(app);
  if (!st.ok()) return st;
  if (app.output_replicas < 1) {
    return Status::InvalidArgument(app.name + ": output_replicas >= 1");
  }

  // Working copies; contraction rewrites stages and edges.
  std::vector<SparkStage> stages = app.stages;
  std::vector<SparkEdge> edges = app.edges;
  std::vector<bool> alive(stages.size(), true);

  // Contract narrow chains: a narrow edge u->v where u has exactly one
  // child and v exactly one parent fuses v into u. Iterate to fixpoint.
  bool contracted = true;
  while (contracted) {
    contracted = false;
    std::vector<int> out_count(stages.size(), 0);
    std::vector<int> in_count(stages.size(), 0);
    for (const auto& e : edges) {
      ++out_count[e.from];
      ++in_count[e.to];
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      const SparkEdge e = edges[i];
      if (e.wide || out_count[e.from] != 1 || in_count[e.to] != 1) continue;
      // Fuse e.to into e.from.
      stages[e.from] = Fuse(stages[e.from], stages[e.to]);
      alive[e.to] = false;
      std::vector<SparkEdge> rewritten;
      for (const auto& other : edges) {
        if (other.from == e.from && other.to == e.to) continue;  // The edge.
        SparkEdge copy = other;
        if (copy.from == e.to) copy.from = e.from;
        rewritten.push_back(copy);
      }
      edges = std::move(rewritten);
      contracted = true;
      break;
    }
  }

  // Compact to the surviving stages.
  std::vector<int> compact(stages.size(), -1);
  std::vector<SparkStage> final_stages;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (alive[i]) {
      compact[i] = static_cast<int>(final_stages.size());
      final_stages.push_back(stages[i]);
    }
  }
  const int n = static_cast<int>(final_stages.size());
  std::vector<std::vector<int>> parents(n);
  std::vector<bool> has_wide_out(n, false);
  for (const auto& e : edges) {
    parents[compact[e.to]].push_back(compact[e.from]);
    if (e.wide) has_wide_out[compact[e.from]] = true;
  }

  // Emit one MapReduce job per stage, in topological order (stage order is
  // already topological after compaction when the input order was; compute
  // outputs via a topo pass to be safe).
  DagBuilder builder(app.name);
  std::vector<Bytes> outputs(n);
  std::vector<int> deg(n, 0);
  std::vector<std::vector<int>> children(n);
  for (const auto& e : edges) {
    ++deg[compact[e.to]];
    children[compact[e.from]].push_back(compact[e.to]);
  }
  std::queue<int> ready;
  for (int i = 0; i < n; ++i) {
    if (deg[i] == 0) ready.push(i);
  }
  std::vector<JobId> job_of(n, -1);
  while (!ready.empty()) {
    const int s = ready.front();
    ready.pop();
    const SparkStage& stage = final_stages[s];

    Bytes input = stage.input;
    double cached_input = 0.0;
    for (int p : parents[s]) {
      input += outputs[p];
      if (final_stages[p].cache_output) cached_input += outputs[p].value();
    }

    JobSpec spec;
    spec.name = stage.name;
    spec.input = input;
    spec.map_compute = stage.compute;
    spec.map_selectivity = stage.output_ratio;
    spec.input_cache_fraction =
        input.value() > 0 ? std::min(1.0, cached_input / input.value()) : 0.0;
    spec.remote_read_fraction = parents[s].empty() ? 0.05 : 0.0;
    if (has_wide_out[s]) {
      // Shuffle boundary: identity merge on the reduce side hands the
      // partitioned output to consumers.
      spec.num_reduce_tasks = kAutoReducers;
      spec.reduce_selectivity = 1.0;
      spec.reduce_compute = Rate::MBps(400);
      spec.replicas = 1;
    } else {
      spec.num_reduce_tasks = 0;  // Map-only: output written directly.
      spec.replicas = children[s].empty() ? app.output_replicas : 1;
    }
    job_of[s] = builder.AddJob(spec);
    outputs[s] = JobOutput(spec);
    for (int c : children[s]) {
      if (--deg[c] == 0) ready.push(c);
    }
  }
  for (const auto& e : edges) {
    builder.AddEdge(job_of[compact[e.from]], job_of[compact[e.to]]);
  }
  return std::move(builder).Build();
}

SparkAppSpec IterativeMlApp(Bytes training_data, int iterations) {
  DAGPERF_CHECK(iterations >= 1);
  SparkAppSpec app;
  app.name = "iterative-ml";
  // Stage 0: scan + parse + cache the training set.
  SparkStage scan;
  scan.name = "scan-cache";
  scan.input = training_data;
  scan.output_ratio = 1.0;
  scan.compute = Rate::MBps(120);
  scan.cache_output = true;
  app.stages.push_back(scan);

  int prev = -1;
  for (int i = 0; i < iterations; ++i) {
    SparkStage grad;
    grad.name = "gradient-" + std::to_string(i + 1);
    grad.output_ratio = 1e-4;  // Partial gradients only.
    grad.compute = Rate::MBps(80);  // Vectorised math: fast enough that I/O matters.
    app.stages.push_back(grad);
    const int self = static_cast<int>(app.stages.size()) - 1;
    app.edges.push_back({0, self, /*wide=*/false});  // Reads the cache.
    if (prev >= 0) {
      app.edges.push_back({prev, self, /*wide=*/true});  // Model update.
    }
    prev = self;
  }
  return app;
}

}  // namespace dagperf
