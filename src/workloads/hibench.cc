#include "workloads/hibench.h"

#include <string>

#include "common/check.h"
#include "workload/job_profile.h"

namespace dagperf {

std::vector<JobId> AppendKMeans(DagBuilder& builder, Bytes input, int iterations) {
  DAGPERF_CHECK(iterations >= 1);
  std::vector<JobId> jobs;
  JobId prev = -1;
  for (int it = 0; it < iterations; ++it) {
    JobSpec step;
    step.name = "KM-iter" + std::to_string(it + 1);
    step.input = input;  // Every iteration rescans the points.
    step.map_compute = Rate::MBps(15);  // Distance computation is CPU-heavy.
    step.map_selectivity = 1e-4;        // Partial centroid sums only.
    step.compress_map_output = false;
    step.num_reduce_tasks = 1;          // Centroid aggregation.
    step.reduce_compute = Rate::MBps(50);
    step.reduce_selectivity = 1.0;
    step.replicas = 1;
    const JobId id = prev < 0 ? builder.AddJob(step) : builder.AddJobAfter(prev, step);
    jobs.push_back(id);
    prev = id;
  }
  // Final classification pass: label every point with its cluster.
  JobSpec classify;
  classify.name = "KM-classify";
  classify.input = input;
  classify.map_compute = Rate::MBps(30);
  classify.map_selectivity = 0.2;  // Point id + label.
  classify.num_reduce_tasks = 0;   // Map-only, writes straight to HDFS.
  classify.replicas = 3;
  jobs.push_back(builder.AddJobAfter(prev, classify));
  return jobs;
}

std::vector<JobId> AppendPageRank(DagBuilder& builder, Bytes edges, int iterations) {
  DAGPERF_CHECK(iterations >= 1);
  std::vector<JobId> jobs;

  JobSpec prepare;
  prepare.name = "PR-prepare";
  prepare.input = edges;
  prepare.map_compute = Rate::MBps(120);
  prepare.map_selectivity = 1.0;  // Adjacency lists.
  prepare.compress_map_output = true;
  prepare.num_reduce_tasks = kAutoReducers;
  prepare.reduce_compute = Rate::MBps(120);
  prepare.reduce_selectivity = 0.8;
  prepare.replicas = 1;
  JobId prev = builder.AddJob(prepare);
  jobs.push_back(prev);
  const Bytes graph = JobOutput(prepare);

  for (int it = 0; it < iterations; ++it) {
    const std::string suffix = std::to_string(it + 1);
    // Join ranks with the adjacency lists and emit contributions: the
    // shuffle carries the whole graph — network-bound.
    JobSpec join;
    join.name = "PR-join" + suffix;
    join.input = graph;
    join.map_compute = Rate::MBps(150);
    join.map_selectivity = 1.0;
    join.num_reduce_tasks = kAutoReducers;
    join.reduce_compute = Rate::MBps(120);
    join.reduce_selectivity = 0.3;  // Contribution stream.
    join.replicas = 1;
    join.reduce_skew_cv = 0.3;  // Power-law in-degrees skew partitions.
    prev = builder.AddJobAfter(prev, join);
    jobs.push_back(prev);

    // Aggregate contributions into new ranks.
    JobSpec agg;
    agg.name = "PR-agg" + suffix;
    agg.input = JobOutput(join);
    agg.map_compute = Rate::MBps(150);
    agg.map_selectivity = 1.0;
    agg.num_reduce_tasks = kAutoReducers;
    agg.reduce_compute = Rate::MBps(100);
    agg.reduce_selectivity = 0.2;  // (vertex, rank) pairs.
    agg.replicas = it + 1 == iterations ? 3 : 1;
    agg.reduce_skew_cv = 0.3;
    prev = builder.AddJobAfter(prev, agg);
    jobs.push_back(prev);
  }
  return jobs;
}

Result<DagWorkflow> KMeansFlow(Bytes input, int iterations) {
  DagBuilder builder("KMeans");
  AppendKMeans(builder, input, iterations);
  return std::move(builder).Build();
}

Result<DagWorkflow> PageRankFlow(Bytes edges, int iterations) {
  DagBuilder builder("PageRank");
  AppendPageRank(builder, edges, iterations);
  return std::move(builder).Build();
}

}  // namespace dagperf
