#ifndef DAGPERF_WORKLOAD_JOB_PROFILE_H_
#define DAGPERF_WORKLOAD_JOB_PROFILE_H_

#include <optional>
#include <string>
#include <vector>

#include "cluster/resources.h"
#include "common/status.h"
#include "common/units.h"
#include "workload/job_spec.h"

namespace dagperf {

/// Which half of a MapReduce job a stage profile describes. The shuffle is
/// modelled, as in real MapReduce, as the first sub-stages of the reduce
/// task (copy + merge), so a job has at most two schedulable stages.
enum class StageKind { kMap, kReduce };

const char* StageKindName(StageKind kind);

/// One pipelined sub-stage of a task: a bundle of read/transfer/compute/write
/// operations executed tuple-by-tuple with bulk synchronisation at the end
/// (Fig. 3 of the paper). `demand` holds the per-(average-)task amounts in
/// resource units: bytes for I/O, core-seconds for CPU.
struct SubStageProfile {
  std::string name;
  ResourceVector demand;
};

/// The compiled profile of one stage (map or reduce) of a job.
struct StageProfile {
  std::string name;  // "<job>/map" or "<job>/reduce".
  StageKind kind = StageKind::kMap;
  int num_tasks = 0;
  std::vector<SubStageProfile> substages;
  SlotDemand slot;
  /// Coefficient of variation of per-task demand scale (key/split skew).
  double task_size_cv = 0.0;

  /// Sum of sub-stage demands for the average task.
  ResourceVector TotalDemand() const;
};

/// A job compiled into per-stage, per-sub-stage resource demands.
struct JobProfile {
  std::string name;
  JobSpec spec;
  StageProfile map;
  std::optional<StageProfile> reduce;

  bool has_reduce() const { return reduce.has_value(); }
  const StageProfile& stage(StageKind kind) const;
};

/// Compiles a JobSpec into a JobProfile by deriving the MapReduce data-flow:
///
///  map task (split B):
///    read+map   : disk-read (1-f_remote)B + network f_remote*B
///                 + cpu B/theta_map
///    spill      : cpu raw/theta_sort (+ raw/theta_compress if compressed)
///                 + disk-write raw*c
///    merge      : extra read+write+cpu pass when raw output > sort buffer
///
///  reduce task (raw partition P_raw, on-wire P = P_raw*c):
///    shuffle    : network P + disk-read (1-cache_hit)P (source reads, charged
///                 symmetrically) + disk-write P (materialise reduce input)
///                 + cpu decompress
///    merge      : read+write+cpu pass when P > reduce merge buffer
///    reduce+write: disk-read P + cpu P_raw/theta_reduce
///                 + disk-write R*out (local + symmetric incoming replicas)
///                 + network (R-1)*out (replication pipeline)
///
/// Remote replica writes and shuffle source reads are charged to the task's
/// own node under the homogeneous-cluster symmetry assumption (every node
/// simultaneously serves the equivalent remote traffic of its peers), which
/// keeps both the simulator and the models per-node decomposable. See
/// DESIGN.md §5.
///
/// Fails with InvalidArgument for non-physical specs (non-positive sizes,
/// ratios out of range, bad replica counts).
Result<JobProfile> CompileJob(const JobSpec& spec);

/// Raw (pre-compression) map output volume of the whole job.
Bytes RawMapOutput(const JobSpec& spec);

/// Job output volume written to HDFS (before replication).
Bytes JobOutput(const JobSpec& spec);

/// The effective number of reduce tasks after resolving kAutoReducers.
int ResolveReducers(const JobSpec& spec);

}  // namespace dagperf

#endif  // DAGPERF_WORKLOAD_JOB_PROFILE_H_
