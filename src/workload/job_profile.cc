#include "workload/job_profile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dagperf {

const char* StageKindName(StageKind kind) {
  return kind == StageKind::kMap ? "map" : "reduce";
}

ResourceVector StageProfile::TotalDemand() const {
  ResourceVector total;
  for (const auto& ss : substages) total = total + ss.demand;
  return total;
}

const StageProfile& JobProfile::stage(StageKind kind) const {
  if (kind == StageKind::kMap) return map;
  DAGPERF_CHECK_MSG(reduce.has_value(), "map-only job has no reduce stage");
  return *reduce;
}

Bytes RawMapOutput(const JobSpec& spec) { return spec.input * spec.map_selectivity; }

Bytes JobOutput(const JobSpec& spec) {
  if (spec.num_reduce_tasks == 0) {
    // Map-only job: map output goes straight to HDFS.
    return RawMapOutput(spec);
  }
  return RawMapOutput(spec) * spec.reduce_selectivity;
}

int ResolveReducers(const JobSpec& spec) {
  if (spec.num_reduce_tasks >= 0) return spec.num_reduce_tasks;
  const double raw_gb = RawMapOutput(spec).ToGB();
  return std::max(1, static_cast<int>(std::lround(std::ceil(raw_gb))));
}

namespace {

Status ValidateSpec(const JobSpec& spec) {
  if (spec.input.value() <= 0) {
    return Status::InvalidArgument(spec.name + ": input must be positive");
  }
  if (spec.split_size.value() <= 0) {
    return Status::InvalidArgument(spec.name + ": split_size must be positive");
  }
  if (spec.num_reduce_tasks < kAutoReducers) {
    return Status::InvalidArgument(spec.name + ": bad num_reduce_tasks");
  }
  if (spec.map_selectivity < 0 || spec.reduce_selectivity < 0) {
    return Status::InvalidArgument(spec.name + ": selectivities must be >= 0");
  }
  if (spec.compression_ratio <= 0 || spec.compression_ratio > 1) {
    return Status::InvalidArgument(spec.name + ": compression_ratio in (0, 1]");
  }
  if (spec.replicas < 1) {
    return Status::InvalidArgument(spec.name + ": replicas must be >= 1");
  }
  if (spec.map_compute.bytes_per_sec() <= 0 ||
      spec.reduce_compute.bytes_per_sec() <= 0 ||
      spec.sort_compute.bytes_per_sec() <= 0 ||
      spec.compress_compute.bytes_per_sec() <= 0) {
    return Status::InvalidArgument(spec.name + ": compute rates must be positive");
  }
  if (spec.remote_read_fraction < 0 || spec.remote_read_fraction > 1) {
    return Status::InvalidArgument(spec.name + ": remote_read_fraction in [0, 1]");
  }
  if (spec.input_cache_fraction < 0 || spec.input_cache_fraction > 1) {
    return Status::InvalidArgument(spec.name + ": input_cache_fraction in [0, 1]");
  }
  if (spec.shuffle_cache_hit < 0 || spec.shuffle_cache_hit > 1) {
    return Status::InvalidArgument(spec.name + ": shuffle_cache_hit in [0, 1]");
  }
  if (spec.reduce_skew_cv < 0) {
    return Status::InvalidArgument(spec.name + ": reduce_skew_cv must be >= 0");
  }
  return Status::Ok();
}

double CoreSeconds(Bytes data, Rate per_core) {
  return data.value() / per_core.bytes_per_sec();
}

StageProfile CompileMapStage(const JobSpec& spec, int num_maps, bool map_only) {
  StageProfile stage;
  stage.name = spec.name + "/map";
  stage.kind = StageKind::kMap;
  stage.num_tasks = num_maps;
  stage.slot = spec.map_slot;
  // Map splits are fixed-size blocks; only the tail split varies, so skew is
  // negligible at the stage level.
  stage.task_size_cv = 0.0;

  const Bytes split = spec.input / static_cast<double>(num_maps);
  const double c = spec.compress_map_output ? spec.compression_ratio : 1.0;
  const Bytes raw_out = split * spec.map_selectivity;
  const Bytes wire_out = raw_out * c;

  SubStageProfile read_map;
  read_map.name = "read+map";
  const double uncached = 1.0 - spec.input_cache_fraction;
  read_map.demand[Resource::kDiskRead] =
      split.value() * uncached * (1.0 - spec.remote_read_fraction);
  read_map.demand[Resource::kNetwork] =
      split.value() * uncached * spec.remote_read_fraction;
  read_map.demand[Resource::kCpu] = CoreSeconds(split, spec.map_compute);
  stage.substages.push_back(read_map);

  if (map_only) {
    // Map output is the job output: written straight to HDFS with replicas.
    if (raw_out.value() > 0) {
      SubStageProfile write;
      write.name = "hdfs-write";
      write.demand[Resource::kDiskWrite] =
          raw_out.value() * static_cast<double>(spec.replicas);
      write.demand[Resource::kNetwork] =
          raw_out.value() * static_cast<double>(spec.replicas - 1);
      stage.substages.push_back(write);
    }
    return stage;
  }

  if (raw_out.value() > 0) {
    SubStageProfile spill;
    spill.name = "spill";
    double cpu = CoreSeconds(raw_out, spec.sort_compute);
    if (spec.compress_map_output) cpu += CoreSeconds(raw_out, spec.compress_compute);
    spill.demand[Resource::kCpu] = cpu;
    spill.demand[Resource::kDiskWrite] = wire_out.value();
    stage.substages.push_back(spill);

    if (raw_out > spec.sort_buffer) {
      // Multiple spills: one extra on-disk merge pass over the map output.
      SubStageProfile merge;
      merge.name = "merge";
      merge.demand[Resource::kDiskRead] = wire_out.value();
      merge.demand[Resource::kDiskWrite] = wire_out.value();
      merge.demand[Resource::kCpu] = CoreSeconds(raw_out, spec.sort_compute) * 0.5;
      stage.substages.push_back(merge);
    }
  }
  return stage;
}

StageProfile CompileReduceStage(const JobSpec& spec, int num_reducers) {
  StageProfile stage;
  stage.name = spec.name + "/reduce";
  stage.kind = StageKind::kReduce;
  stage.num_tasks = num_reducers;
  stage.slot = spec.reduce_slot;
  stage.task_size_cv = spec.reduce_skew_cv;

  const double c = spec.compress_map_output ? spec.compression_ratio : 1.0;
  const Bytes raw_part = RawMapOutput(spec) / static_cast<double>(num_reducers);
  const Bytes wire_part = raw_part * c;
  const Bytes out = raw_part * spec.reduce_selectivity;

  SubStageProfile shuffle;
  shuffle.name = "shuffle";
  shuffle.demand[Resource::kNetwork] = wire_part.value();
  shuffle.demand[Resource::kDiskRead] =
      wire_part.value() * (1.0 - spec.shuffle_cache_hit);
  shuffle.demand[Resource::kDiskWrite] = wire_part.value();
  if (spec.compress_map_output) {
    // Decompression runs at ~2x the compression throughput.
    shuffle.demand[Resource::kCpu] =
        CoreSeconds(raw_part, spec.compress_compute) * 0.5;
  }
  stage.substages.push_back(shuffle);

  if (wire_part > spec.reduce_merge_buffer) {
    SubStageProfile merge;
    merge.name = "merge";
    merge.demand[Resource::kDiskRead] = wire_part.value();
    merge.demand[Resource::kDiskWrite] = wire_part.value();
    merge.demand[Resource::kCpu] = CoreSeconds(raw_part, spec.sort_compute) * 0.5;
    stage.substages.push_back(merge);
  }

  SubStageProfile apply;
  apply.name = "reduce+write";
  apply.demand[Resource::kDiskRead] = wire_part.value();
  apply.demand[Resource::kCpu] = CoreSeconds(raw_part, spec.reduce_compute);
  apply.demand[Resource::kDiskWrite] =
      out.value() * static_cast<double>(spec.replicas);
  apply.demand[Resource::kNetwork] =
      out.value() * static_cast<double>(spec.replicas - 1);
  stage.substages.push_back(apply);
  return stage;
}

}  // namespace

Result<JobProfile> CompileJob(const JobSpec& spec) {
  Status st = ValidateSpec(spec);
  if (!st.ok()) return st;

  JobProfile profile;
  profile.name = spec.name;
  profile.spec = spec;

  const int num_maps = std::max(
      1, static_cast<int>(std::ceil(spec.input.value() / spec.split_size.value())));
  const int num_reducers = ResolveReducers(spec);
  const bool map_only = num_reducers == 0;

  profile.map = CompileMapStage(spec, num_maps, map_only);
  if (!map_only) profile.reduce = CompileReduceStage(spec, num_reducers);
  return profile;
}

}  // namespace dagperf
