#ifndef DAGPERF_WORKLOAD_JOB_SPEC_H_
#define DAGPERF_WORKLOAD_JOB_SPEC_H_

#include <string>

#include "cluster/resources.h"
#include "common/units.h"

namespace dagperf {

/// Number-of-reducers sentinel: derive a reasonable reducer count from the
/// shuffle volume (one reducer per ~1 GB of raw map output).
inline constexpr int kAutoReducers = -1;

/// Declarative description of one MapReduce job: the data-flow ratios and
/// per-core function throughputs that the profile compiler turns into
/// sub-stage resource demands. This is the information Starfish/MRTuner-style
/// systems extract from a profiling run; here it is the authored ground truth
/// that both the simulator and the analytical models consume.
struct JobSpec {
  std::string name;

  /// Total job input (for root jobs: HDFS bytes; for downstream DAG jobs:
  /// the output volume of the parent jobs).
  Bytes input = Bytes::FromGB(100);

  /// Map input split size; determines the number of map tasks.
  Bytes split_size = Bytes::FromMB(256);

  /// Number of reduce tasks; 0 = map-only job, kAutoReducers = derive.
  int num_reduce_tasks = kAutoReducers;

  /// Raw (uncompressed) map output bytes per input byte.
  double map_selectivity = 1.0;

  /// Reduce output bytes per raw reduce-input byte (before replication).
  double reduce_selectivity = 1.0;

  /// Whether intermediate map output is compressed (Table I's "C" column).
  bool compress_map_output = false;

  /// Compressed bytes per raw byte when compression is on.
  double compression_ratio = 0.3;

  /// HDFS replica count for the job output (Table I's "R" column).
  int replicas = 3;

  /// Per-core throughput of the user map function (bytes of map input per
  /// core-second). Low values make the map stage CPU-bound.
  Rate map_compute = Rate::MBps(100);

  /// Per-core throughput of the user reduce function over raw reduce input.
  Rate reduce_compute = Rate::MBps(150);

  /// Per-core throughput of the framework's sort/spill/merge path.
  Rate sort_compute = Rate::MBps(300);

  /// Per-core throughput of compression (and, at 2x, decompression).
  Rate compress_compute = Rate::MBps(250);

  /// Fraction of map input read over the network (non-local scheduling).
  double remote_read_fraction = 0.05;

  /// Fraction of map input served from memory (Spark-style cached RDDs /
  /// OS page cache): that share of the read costs neither disk nor network.
  double input_cache_fraction = 0.0;

  /// Fraction of shuffle source reads served from the OS buffer cache
  /// (the paper notes shuffle "may read data from the OS buffer caches").
  double shuffle_cache_hit = 0.8;

  /// In-memory sort buffer; map outputs larger than this spill multiple
  /// times and pay an extra on-disk merge pass.
  Bytes sort_buffer = Bytes::FromMB(256);

  /// Reduce-side merge buffer; larger shuffle partitions pay a merge pass.
  Bytes reduce_merge_buffer = Bytes::FromMB(256);

  /// Coefficient of variation of reduce partition sizes (key skew). 0 means
  /// perfectly balanced partitions.
  double reduce_skew_cv = 0.0;

  /// Scheduling demand per task (YARN container request).
  SlotDemand map_slot;
  SlotDemand reduce_slot;

  bool operator==(const JobSpec&) const = default;
};

}  // namespace dagperf

#endif  // DAGPERF_WORKLOAD_JOB_SPEC_H_
