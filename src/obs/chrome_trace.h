#ifndef DAGPERF_OBS_CHROME_TRACE_H_
#define DAGPERF_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dagperf {
namespace obs {

/// One Chrome trace-event ("traceEvents" array element). The library uses
/// two phases:
///  * 'X' — a complete span [ts_us, ts_us + dur_us) on lane (pid, tid);
///  * 'C' — a counter sample: each num_arg becomes one series of the
///    counter track `name` (dur_us ignored).
/// Perfetto and chrome://tracing group lanes by pid and stack tid lanes
/// inside each process, so writers map "one lane per X" onto tid.
struct ChromeTraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  /// Extra payload shown in the viewer's args pane ('X') or plotted as
  /// counter series ('C').
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// Writes `events` as a Chrome trace-event JSON array. The one trace
/// emitter in the library: the simulator's task timelines
/// (sim/trace_writer.h), the estimator's state timelines (model/explain.h)
/// and the obs span recorder (obs/trace.h) all render through it, so every
/// export opens in Perfetto the same way. Also names optional process
/// labels: a metadata event is emitted for every entry of `process_names`
/// (pid -> label).
void WriteChromeTraceEvents(
    const std::vector<ChromeTraceEvent>& events, std::ostream& out,
    const std::vector<std::pair<std::int64_t, std::string>>& process_names = {});

}  // namespace obs
}  // namespace dagperf

#endif  // DAGPERF_OBS_CHROME_TRACE_H_
