#include "obs/slo.h"

#include <algorithm>

namespace dagperf {
namespace obs {

namespace {

/// Fraction of samples strictly above the bucket holding `threshold`.
/// Resolution is the log2 bucket width — good enough for burn alerts,
/// documented in docs/observability.md.
double FractionOver(const Histogram::Snapshot& snap, double threshold) {
  if (snap.count == 0) return 0.0;
  const int limit = Histogram::BucketIndex(threshold);
  std::uint64_t over = 0;
  for (int b = limit + 1; b < Histogram::kBuckets; ++b) {
    over += snap.buckets[static_cast<std::size_t>(b)];
  }
  return static_cast<double>(over) / static_cast<double>(snap.count);
}

struct RawWindow {
  Histogram::Snapshot latency;
  std::uint64_t total = 0;
  std::uint64_t errors = 0;
  std::uint64_t deadline_total = 0;
  std::uint64_t deadline_met = 0;

  void Accumulate(const RawWindow& other) {
    latency.count += other.latency.count;
    latency.sum += other.latency.sum;
    for (std::size_t b = 0; b < other.latency.buckets.size(); ++b) {
      latency.buckets[b] += other.latency.buckets[b];
    }
    total += other.total;
    errors += other.errors;
    deadline_total += other.deadline_total;
    deadline_met += other.deadline_met;
  }
};

}  // namespace

const char* OpClassName(OpClass op) {
  switch (op) {
    case OpClass::kEstimate: return "estimate";
    case OpClass::kExplain: return "explain";
    case OpClass::kSweep: return "sweep";
    case OpClass::kOther: break;
  }
  return "other";
}

OpClass OpClassFor(const std::string& op_name) {
  if (op_name == "estimate") return OpClass::kEstimate;
  if (op_name == "explain") return OpClass::kExplain;
  if (op_name == "sweep") return OpClass::kSweep;
  return OpClass::kOther;
}

SloTracker::SloTracker(SloObjectives objectives, WindowOptions window)
    : objectives_(objectives),
      window_(window),
      classes_{PerClass(window), PerClass(window), PerClass(window),
               PerClass(window)} {
  static_assert(kOpClassCount == 4, "keep the initializer list in sync");
}

void SloTracker::RecordOutcome(OpClass op, double latency_ms, bool ok,
                               bool had_deadline, bool deadline_met,
                               double now_us) {
  if (!internal::Enabled()) return;
  PerClass& c = classes_[static_cast<std::size_t>(op)];
  // The latency histogram's windowed count doubles as the request count —
  // one fewer windowed counter on the per-request hot path.
  c.latency_ms.Record(latency_ms, now_us);
  if (!ok) c.errors.Add(1, now_us);
  if (had_deadline) {
    c.deadline_total.Add(1, now_us);
    if (deadline_met) c.deadline_met.Add(1, now_us);
  }
}

namespace {

SloTracker::WindowReport FinishReport(const RawWindow& raw,
                                      double window_seconds,
                                      const SloObjectives& objectives) {
  SloTracker::WindowReport report;
  report.window_seconds = window_seconds;
  report.count = raw.total;
  report.errors = raw.errors;
  report.deadline_total = raw.deadline_total;
  report.deadline_met = raw.deadline_met;
  report.rps =
      window_seconds > 0.0 ? static_cast<double>(raw.total) / window_seconds
                           : 0.0;
  report.p50_ms = raw.latency.Quantile(0.5);
  report.p99_ms = raw.latency.Quantile(0.99);
  report.mean_ms = raw.latency.mean();
  if (raw.total > 0) {
    report.error_rate =
        static_cast<double>(raw.errors) / static_cast<double>(raw.total);
  }
  if (raw.deadline_total > 0) {
    report.deadline_hit_rate = static_cast<double>(raw.deadline_met) /
                               static_cast<double>(raw.deadline_total);
  }
  if (objectives.latency_enabled()) {
    report.frac_over_objective = FractionOver(raw.latency, objectives.p99_ms);
    report.latency_burn = report.frac_over_objective / 0.01;
  }
  if (objectives.availability_enabled() && raw.total > 0) {
    report.availability_burn =
        report.error_rate / (1.0 - objectives.availability);
  }
  return report;
}

}  // namespace

SloTracker::Report SloTracker::Snapshot(double now_us) const {
  Report report;
  report.objectives = objectives_;
  for (std::size_t w = 0; w < kSloWindowsSeconds.size(); ++w) {
    const double window_seconds = kSloWindowsSeconds[w];
    RawWindow total_raw;
    for (int c = 0; c < kOpClassCount; ++c) {
      const PerClass& pc = classes_[static_cast<std::size_t>(c)];
      RawWindow raw;
      raw.latency = pc.latency_ms.Snap(window_seconds, now_us);
      raw.total = raw.latency.count;
      raw.errors = pc.errors.Sum(window_seconds, now_us);
      raw.deadline_total = pc.deadline_total.Sum(window_seconds, now_us);
      raw.deadline_met = pc.deadline_met.Sum(window_seconds, now_us);
      report.by_class[static_cast<std::size_t>(c)].op = static_cast<OpClass>(c);
      report.by_class[static_cast<std::size_t>(c)].windows[w] =
          FinishReport(raw, window_seconds, objectives_);
      total_raw.Accumulate(raw);
    }
    report.total[w] = FinishReport(total_raw, window_seconds, objectives_);
  }
  return report;
}

void SloTracker::PublishGauges(const Report& report) const {
  if (!internal::Enabled()) return;
  auto& registry = MetricsRegistry::Default();
  // Index 1 == the 60 s window.
  const WindowReport& minute = report.total[1];
  registry.GetGauge("slo.p50_ms_1m").Set(minute.p50_ms);
  registry.GetGauge("slo.p99_ms_1m").Set(minute.p99_ms);
  registry.GetGauge("slo.rps_1m").Set(minute.rps);
  registry.GetGauge("slo.error_rate_1m").Set(minute.error_rate);
  registry.GetGauge("slo.deadline_hit_rate_1m").Set(minute.deadline_hit_rate);
  registry.GetGauge("slo.availability_burn_1m").Set(minute.availability_burn);
  registry.GetGauge("slo.latency_burn_1m").Set(minute.latency_burn);
}

}  // namespace obs
}  // namespace dagperf
