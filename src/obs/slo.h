#ifndef DAGPERF_OBS_SLO_H_
#define DAGPERF_OBS_SLO_H_

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/window.h"

namespace dagperf {
namespace obs {

/// Sliding-window SLO tracking for the serving path.
///
/// Objectives are declarative ("p99 under 250 ms", "99.9% of requests
/// succeed"); the tracker turns the request stream into windowed evidence
/// for or against them: per-op-class latency histograms and outcome
/// counters over 10s / 1m / 5m windows, plus burn rates — how fast the
/// error budget is being consumed relative to the objective (1.0 = burning
/// exactly at budget; >1 = the objective will be missed if this keeps up).
///
/// Recording shares the WindowedHistogram discipline: lock-free, gated on
/// the process-wide metrics flag, one relaxed load when disarmed.

/// Operation classes tracked separately — the protocol ops with distinct
/// latency profiles. kOther absorbs everything else.
enum class OpClass : std::uint8_t {
  kEstimate = 0,
  kExplain = 1,
  kSweep = 2,
  kOther = 3,
};
inline constexpr int kOpClassCount = 4;

const char* OpClassName(OpClass op);
OpClass OpClassFor(const std::string& op_name);

/// The windows every SLO quantity is reported over.
inline constexpr std::array<double, 3> kSloWindowsSeconds = {10.0, 60.0,
                                                             300.0};

struct SloObjectives {
  /// Target p99 latency in milliseconds; <= 0 disables the latency SLO.
  double p99_ms = 0.0;
  /// Target success fraction in (0, 1), e.g. 0.999; <= 0 disables.
  double availability = 0.0;

  bool latency_enabled() const { return p99_ms > 0.0; }
  bool availability_enabled() const {
    return availability > 0.0 && availability < 1.0;
  }
};

class SloTracker {
 public:
  explicit SloTracker(SloObjectives objectives = {},
                      WindowOptions window = {});

  /// Records one finished request. `latency_ms` is end-to-end (queue wait
  /// included — that is what the caller experienced). Disarmed cost: one
  /// relaxed load per windowed primitive touched.
  void RecordOutcome(OpClass op, double latency_ms, bool ok, bool had_deadline,
                     bool deadline_met) {
    RecordOutcome(op, latency_ms, ok, had_deadline, deadline_met,
                  MonotonicUs());
  }
  void RecordOutcome(OpClass op, double latency_ms, bool ok, bool had_deadline,
                     bool deadline_met, double now_us);

  struct WindowReport {
    double window_seconds = 0.0;
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    std::uint64_t deadline_total = 0;  // Requests that carried a deadline.
    std::uint64_t deadline_met = 0;
    double rps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double mean_ms = 0.0;
    double error_rate = 0.0;         // errors / count (0 when empty).
    double deadline_hit_rate = 1.0;  // met / carried (1 when none carried).
    /// Fraction of requests over the p99 objective (bucket resolution).
    double frac_over_objective = 0.0;
    /// Error-budget burn rates; 0 when the objective is disabled or the
    /// window is empty. availability: error_rate / (1 - objective).
    /// latency: frac_over_objective / 0.01 (a p99 objective budgets 1%).
    double availability_burn = 0.0;
    double latency_burn = 0.0;
  };

  struct ClassReport {
    OpClass op = OpClass::kOther;
    std::array<WindowReport, kSloWindowsSeconds.size()> windows{};
  };

  struct Report {
    SloObjectives objectives;
    /// Aggregate across all op classes, then one entry per class.
    std::array<WindowReport, kSloWindowsSeconds.size()> total{};
    std::array<ClassReport, kOpClassCount> by_class{};
  };

  Report Snapshot() const { return Snapshot(MonotonicUs()); }
  Report Snapshot(double now_us) const;

  /// Pushes the aggregate 1m-window figures into MetricsRegistry as
  /// `slo.*` gauges (p99_ms_1m, error_rate_1m, deadline_hit_rate_1m,
  /// availability_burn_1m, latency_burn_1m) so generic metric sinks —
  /// Prometheus export included — see SLO state without knowing this type.
  void PublishGauges(const Report& report) const;

  const SloObjectives& objectives() const { return objectives_; }

 private:
  struct PerClass {
    WindowedHistogram latency_ms;
    WindowedCounter errors;
    WindowedCounter deadline_total;
    WindowedCounter deadline_met;

    explicit PerClass(WindowOptions window)
        : latency_ms(window),
          errors(window),
          deadline_total(window),
          deadline_met(window) {}
  };

  WindowReport MakeWindowReport(const PerClass& c, double window_seconds,
                                double now_us) const;

  SloObjectives objectives_;
  WindowOptions window_;
  std::array<PerClass, kOpClassCount> classes_;
};

}  // namespace obs
}  // namespace dagperf

#endif  // DAGPERF_OBS_SLO_H_
