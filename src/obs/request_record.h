#ifndef DAGPERF_OBS_REQUEST_RECORD_H_
#define DAGPERF_OBS_REQUEST_RECORD_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dagperf {
namespace obs {

/// Per-request attribution for the serving path. Aggregate metrics answer
/// "how is the service doing"; a RequestRecord answers "why was request
/// #4812 slow" — it carries everything the service learned about one request
/// from admission to outcome, in one fixed-size, allocation-free struct
/// (fixed char fields, trivially copyable) so recording costs a struct copy,
/// never a heap walk. The `id` links the record to ScopedSpan traces (spans
/// tag their "request_id" arg with it).

/// How the estimate was produced — the cost classes of the warm path.
enum class RequestPath : std::uint8_t {
  kUnknown = 0,
  /// Every state replayed, cold memo.
  kFullReplay = 1,
  /// Task times answered mostly by the cross-request memo.
  kMemoWarm = 2,
  /// Resumed from a prefix checkpoint (incremental re-estimation).
  kIncremental = 3,
  /// Served by attaching to another request's in-flight computation
  /// (singleflight coalescing) — this request ran zero estimator states.
  kCoalesced = 4,
};

const char* RequestPathName(RequestPath path);

struct RequestRecord {
  /// Fixed-capacity name fields: longer names are truncated, never allocated.
  static constexpr std::size_t kOpBytes = 16;
  static constexpr std::size_t kNameBytes = 48;

  std::uint64_t id = 0;
  char op[kOpBytes] = {};        // "estimate" | "explain" | "sweep" | ...
  char workflow[kNameBytes] = {};
  char cluster[kNameBytes] = {};

  /// MonotonicUs timebase. queue_wait = start - submit; exec = end - start.
  double submit_us = 0.0;
  double start_us = 0.0;
  double end_us = 0.0;

  /// Estimator states actually stepped (post-resume) and memo behaviour.
  std::uint32_t states = 0;
  std::uint32_t resumed_states = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;

  RequestPath path = RequestPath::kUnknown;
  /// Stable outcome code (ErrorCodeName vocabulary, stored as its numeric
  /// value — obs sits below common and cannot name ErrorCode itself).
  std::uint8_t outcome_code = 0;
  std::uint8_t retries = 0;
  bool ok = false;
  bool had_deadline = false;
  /// Finished within its deadline (vacuously true without one).
  bool deadline_met = true;
  bool watchdog_fired = false;
  bool breaker_rejected = false;
  bool shed = false;
  bool expired_in_queue = false;

  double queue_wait_us() const { return start_us - submit_us; }
  double exec_us() const { return end_us - start_us; }
  double total_us() const { return end_us - submit_us; }

  /// Bounded strcpy into the fixed name fields.
  static void SetName(char* field, std::size_t capacity, const std::string& s);
  void set_op(const std::string& s) { SetName(op, kOpBytes, s); }
  void set_workflow(const std::string& s) { SetName(workflow, kNameBytes, s); }
  void set_cluster(const std::string& s) { SetName(cluster, kNameBytes, s); }
};

/// A structured service event (breaker transition, watchdog fire, drain
/// epoch) pinned alongside the request ring — the "what changed" context a
/// post-mortem reads next to the slow requests.
struct FlightEvent {
  static constexpr std::size_t kKindBytes = 24;
  static constexpr std::size_t kDetailBytes = 96;

  double ts_us = 0.0;
  char kind[kKindBytes] = {};    // "breaker" | "watchdog" | "drain" | ...
  char detail[kDetailBytes] = {};
};

struct FlightRecorderOptions {
  /// Request ring capacity (last N requests survive).
  int capacity = 256;
  /// Exemplar slots: the slowest requests of the current pin window and the
  /// most recent error requests are pinned outside the ring, so one slow
  /// burst an hour ago is still there after the ring wrapped.
  int slowest_exemplars = 4;
  int error_exemplars = 8;
  /// Pin window for the slowest exemplars: on the first record after this
  /// many seconds the slots recycle, so "slowest" tracks recent behaviour.
  double exemplar_window_seconds = 300.0;
  /// Event ring capacity.
  int event_capacity = 64;
};

/// Lock-minimal ring of the last N RequestRecords plus pinned exemplars.
///
/// The hot path (Record) is: one relaxed enabled-load (disarmed exit), a
/// fetch_add to claim a slot, a struct copy, and a seqlock-style publish —
/// no mutex, no allocation. Exemplar pinning takes a small mutex but only
/// when a record is an error or beats the current slowest set (rare by
/// construction). Dump() walks the ring under the same publish protocol and
/// skips slots that are mid-write.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  /// Appends `record` to the ring; pins it if it is an error or among the
  /// slowest of the window. Disarmed cost: one relaxed load.
  void Record(const RequestRecord& record);

  /// Appends a structured event (strings truncated to the fixed fields).
  void AddEvent(const std::string& kind, const std::string& detail);

  struct Dump {
    /// Ring contents, oldest first.
    std::vector<RequestRecord> records;
    /// Pinned slowest-of-window, slowest first.
    std::vector<RequestRecord> slowest;
    /// Pinned most-recent errors, oldest first.
    std::vector<RequestRecord> errors;
    /// Event ring, oldest first.
    std::vector<FlightEvent> events;
    std::uint64_t total_recorded = 0;
  };
  Dump Snapshot() const;

  /// Serialises a Snapshot as a self-contained JSON object (same dialect as
  /// MetricsRegistry::ToJson — obs does not depend on common/json).
  std::string ToJson() const;

  std::uint64_t total_recorded() const {
    return total_recorded_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    static constexpr std::size_t kWords =
        (sizeof(RequestRecord) + sizeof(std::uint64_t) - 1) /
        sizeof(std::uint64_t);

    /// Even = published generation; odd = write in progress. Writers claim
    /// the slot by CAS (even -> odd), so two writers wrapping onto the same
    /// slot serialise instead of racing.
    std::atomic<std::uint64_t> seq{0};
    /// The record payload as atomic words: both sides of the seqlock copy
    /// through relaxed atomic loads/stores, so a torn read is detected by
    /// the seq re-check rather than being undefined behaviour.
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  FlightRecorderOptions options_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> total_recorded_{0};

  /// Lock-free admission pre-check: a record only takes the exemplar mutex
  /// if it beats this floor (slowest pinned latency; 0 while the set fills)
  /// or crosses the window deadline. Stale reads are benign.
  std::atomic<double> slow_floor_us_{0.0};
  std::atomic<double> exemplar_deadline_us_{0.0};

  /// Exemplars + events: cold-path state under one mutex.
  mutable std::mutex exemplar_mutex_;
  std::vector<RequestRecord> slowest_;
  double exemplar_window_start_us_ = 0.0;
  std::vector<RequestRecord> errors_;
  std::vector<FlightEvent> events_;
  std::uint64_t event_head_ = 0;
  std::uint64_t events_total_ = 0;
};

}  // namespace obs
}  // namespace dagperf

#endif  // DAGPERF_OBS_REQUEST_RECORD_H_
