#include "obs/trace.h"

#include <utility>

#include "obs/metrics.h"

namespace dagperf {
namespace obs {

std::int64_t CurrentThreadLane() {
  static std::atomic<std::int64_t> next{0};
  thread_local const std::int64_t lane = next.fetch_add(1);
  return lane;
}

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Add(ChromeTraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::AddCounter(const std::string& name, double ts_us,
                               std::vector<std::pair<std::string, double>> series,
                               std::int64_t pid) {
  if (!enabled()) return;
  ChromeTraceEvent event;
  event.name = name;
  event.cat = "counter";
  event.ph = 'C';
  event.ts_us = ts_us;
  event.pid = pid;
  event.num_args = std::move(series);
  Add(std::move(event));
}

std::vector<ChromeTraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void TraceRecorder::Write(std::ostream& out) const {
  WriteChromeTraceEvents(Events(), out);
}

ScopedSpan::ScopedSpan(TraceRecorder& recorder, std::string name,
                       std::string cat, std::int64_t pid) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  event_.name = std::move(name);
  event_.cat = std::move(cat);
  event_.pid = pid;
  event_.tid = CurrentThreadLane();
  event_.ts_us = MonotonicUs();
}

ScopedSpan::ScopedSpan(std::string name, std::string cat, std::int64_t pid)
    : ScopedSpan(TraceRecorder::Default(), std::move(name), std::move(cat),
                 pid) {}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  event_.dur_us = MonotonicUs() - event_.ts_us;
  recorder_->Add(std::move(event_));
}

void ScopedSpan::AddArg(const std::string& key, double value) {
  if (recorder_ == nullptr) return;
  event_.num_args.emplace_back(key, value);
}

void ScopedSpan::AddArg(const std::string& key, std::string value) {
  if (recorder_ == nullptr) return;
  event_.str_args.emplace_back(key, std::move(value));
}

}  // namespace obs
}  // namespace dagperf
