#include "obs/request_record.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <type_traits>

namespace dagperf {
namespace obs {

namespace {

/// Minimal JSON string escaping for the fixed name fields (pure std; obs
/// cannot use common/json).
std::string JsonEscape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendRecordJson(std::ostringstream& out, const RequestRecord& r) {
  out << "{\"id\":" << r.id << ",\"op\":\"" << JsonEscape(r.op)
      << "\",\"workflow\":\"" << JsonEscape(r.workflow) << "\",\"cluster\":\""
      << JsonEscape(r.cluster) << "\",\"path\":\"" << RequestPathName(r.path)
      << "\",\"outcome_code\":" << static_cast<int>(r.outcome_code)
      << ",\"ok\":" << (r.ok ? "true" : "false")
      << ",\"queue_wait_us\":" << r.queue_wait_us()
      << ",\"exec_us\":" << r.exec_us() << ",\"total_us\":" << r.total_us()
      << ",\"states\":" << r.states
      << ",\"resumed_states\":" << r.resumed_states
      << ",\"memo_hits\":" << r.memo_hits
      << ",\"memo_misses\":" << r.memo_misses
      << ",\"retries\":" << static_cast<int>(r.retries)
      << ",\"had_deadline\":" << (r.had_deadline ? "true" : "false")
      << ",\"deadline_met\":" << (r.deadline_met ? "true" : "false")
      << ",\"watchdog_fired\":" << (r.watchdog_fired ? "true" : "false")
      << ",\"breaker_rejected\":" << (r.breaker_rejected ? "true" : "false")
      << ",\"shed\":" << (r.shed ? "true" : "false")
      << ",\"expired_in_queue\":" << (r.expired_in_queue ? "true" : "false")
      << "}";
}

}  // namespace

const char* RequestPathName(RequestPath path) {
  switch (path) {
    case RequestPath::kFullReplay: return "full_replay";
    case RequestPath::kMemoWarm: return "memo_warm";
    case RequestPath::kIncremental: return "incremental";
    case RequestPath::kCoalesced: return "coalesced";
    case RequestPath::kUnknown: break;
  }
  return "unknown";
}

void RequestRecord::SetName(char* field, std::size_t capacity,
                            const std::string& s) {
  const std::size_t n = std::min(s.size(), capacity - 1);
  std::memcpy(field, s.data(), n);
  field[n] = '\0';
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {
  options_.capacity = std::max(1, options_.capacity);
  options_.slowest_exemplars = std::max(0, options_.slowest_exemplars);
  options_.error_exemplars = std::max(0, options_.error_exemplars);
  options_.event_capacity = std::max(1, options_.event_capacity);
  slots_ = std::vector<Slot>(static_cast<std::size_t>(options_.capacity));
  slowest_.reserve(static_cast<std::size_t>(options_.slowest_exemplars));
  errors_.reserve(static_cast<std::size_t>(options_.error_exemplars));
  events_.resize(static_cast<std::size_t>(options_.event_capacity));
}

void FlightRecorder::Record(const RequestRecord& record) {
  if (!internal::Enabled()) return;
  static_assert(std::is_trivially_copyable<RequestRecord>::value,
                "the seqlock copies RequestRecord as raw words");
  std::uint64_t staged[Slot::kWords] = {};
  std::memcpy(staged, &record, sizeof(record));

  const std::uint64_t index =
      head_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::uint64_t>(options_.capacity);
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  // Seqlock publish: claim the slot by CAS (even -> odd), copy, release as
  // even. A failed CAS means another writer wrapped onto this slot; its
  // copy is a bounded handful of relaxed stores, so spin.
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  while ((seq & 1) != 0 ||
         !slot.seq.compare_exchange_weak(seq, seq + 1,
                                         std::memory_order_relaxed)) {
    if (seq & 1) seq = slot.seq.load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < Slot::kWords; ++i) {
    slot.words[i].store(staged[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
  total_recorded_.fetch_add(1, std::memory_order_relaxed);

  // Exemplar pinning — only errors and window-topping latencies take the
  // mutex. The lock-free pre-check reads the admission floor (slowest pinned
  // latency once the set is full; 0 while filling, so everything admits) and
  // the window deadline; a stale read costs at most one extra lock or a
  // one-record-late recycle, never a lost exemplar.
  const bool is_error = !record.ok;
  const bool window_expired =
      options_.slowest_exemplars > 0 &&
      record.end_us > exemplar_deadline_us_.load(std::memory_order_relaxed);
  const bool maybe_slowest =
      options_.slowest_exemplars > 0 &&
      record.total_us() > slow_floor_us_.load(std::memory_order_relaxed);
  if (!window_expired && !maybe_slowest &&
      !(is_error && options_.error_exemplars > 0)) {
    return;
  }
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (options_.slowest_exemplars > 0) {
    const double window_us = options_.exemplar_window_seconds * 1e6;
    if (record.end_us - exemplar_window_start_us_ > window_us) {
      slowest_.clear();
      exemplar_window_start_us_ = record.end_us;
      exemplar_deadline_us_.store(record.end_us + window_us,
                                  std::memory_order_relaxed);
    }
    const std::size_t cap =
        static_cast<std::size_t>(options_.slowest_exemplars);
    if (slowest_.size() < cap ||
        record.total_us() > slowest_.back().total_us()) {
      slowest_.push_back(record);
      std::sort(slowest_.begin(), slowest_.end(),
                [](const RequestRecord& a, const RequestRecord& b) {
                  return a.total_us() > b.total_us();
                });
      if (slowest_.size() > cap) slowest_.resize(cap);
    }
    slow_floor_us_.store(
        slowest_.size() < cap ? 0.0 : slowest_.back().total_us(),
        std::memory_order_relaxed);
  }
  if (is_error && options_.error_exemplars > 0) {
    errors_.push_back(record);
    const std::size_t ecap = static_cast<std::size_t>(options_.error_exemplars);
    if (errors_.size() > ecap) {
      errors_.erase(errors_.begin(),
                    errors_.begin() +
                        static_cast<std::ptrdiff_t>(errors_.size() - ecap));
    }
  }
}

void FlightRecorder::AddEvent(const std::string& kind,
                              const std::string& detail) {
  if (!internal::Enabled()) return;
  FlightEvent event;
  event.ts_us = MonotonicUs();
  RequestRecord::SetName(event.kind, FlightEvent::kKindBytes, kind);
  RequestRecord::SetName(event.detail, FlightEvent::kDetailBytes, detail);
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  events_[static_cast<std::size_t>(
      event_head_ % static_cast<std::uint64_t>(options_.event_capacity))] =
      event;
  ++event_head_;
  ++events_total_;
}

FlightRecorder::Dump FlightRecorder::Snapshot() const {
  Dump dump;
  dump.total_recorded = total_recorded_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = static_cast<std::uint64_t>(options_.capacity);
  const std::uint64_t count = std::min(head, cap);
  dump.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = head - count; i < head; ++i) {
    const Slot& slot = slots_[static_cast<std::size_t>(i % cap)];
    // Seqlock read: retry while a writer holds the slot; give up after a
    // few attempts (the slot is being overwritten faster than we can read).
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before & 1) continue;
      std::uint64_t staged[Slot::kWords];
      for (std::size_t w = 0; w < Slot::kWords; ++w) {
        staged[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != before) continue;
      RequestRecord copy;
      std::memcpy(&copy, staged, sizeof(copy));
      if (copy.end_us > 0.0 || copy.id != 0) dump.records.push_back(copy);
      break;
    }
  }
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  dump.slowest = slowest_;
  dump.errors = errors_;
  const std::uint64_t ecap = static_cast<std::uint64_t>(options_.event_capacity);
  const std::uint64_t ecount = std::min(event_head_, ecap);
  dump.events.reserve(static_cast<std::size_t>(ecount));
  for (std::uint64_t i = event_head_ - ecount; i < event_head_; ++i) {
    dump.events.push_back(events_[static_cast<std::size_t>(i % ecap)]);
  }
  return dump;
}

std::string FlightRecorder::ToJson() const {
  const Dump dump = Snapshot();
  std::ostringstream out;
  out << "{\"total_recorded\":" << dump.total_recorded << ",\"records\":[";
  for (std::size_t i = 0; i < dump.records.size(); ++i) {
    if (i > 0) out << ",";
    AppendRecordJson(out, dump.records[i]);
  }
  out << "],\"slowest\":[";
  for (std::size_t i = 0; i < dump.slowest.size(); ++i) {
    if (i > 0) out << ",";
    AppendRecordJson(out, dump.slowest[i]);
  }
  out << "],\"errors\":[";
  for (std::size_t i = 0; i < dump.errors.size(); ++i) {
    if (i > 0) out << ",";
    AppendRecordJson(out, dump.errors[i]);
  }
  out << "],\"events\":[";
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    if (i > 0) out << ",";
    const FlightEvent& e = dump.events[i];
    out << "{\"ts_us\":" << e.ts_us << ",\"kind\":\"" << JsonEscape(e.kind)
        << "\",\"detail\":\"" << JsonEscape(e.detail) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace obs
}  // namespace dagperf
