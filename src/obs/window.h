#ifndef DAGPERF_OBS_WINDOW_H_
#define DAGPERF_OBS_WINDOW_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace dagperf {
namespace obs {

/// Sliding-window aggregation over a ring of fixed-duration epochs.
///
/// Cumulative counters answer "how many ever"; serving questions are "what
/// is the p99 *right now*" and "what fraction of the last minute failed".
/// WindowedHistogram / WindowedCounter keep a ring of `kEpochs` epoch slots,
/// each `epoch_seconds` wide on the shared MonotonicUs timebase. Recording
/// lands in the slot of the current epoch; a snapshot sums the slots whose
/// epoch falls inside the requested window. Old epochs are recycled in
/// place, so memory is fixed and no background thread is needed.
///
/// Concurrency: recording is lock-free (relaxed atomics on the slot, same
/// discipline as obs::Histogram) and gated on the process-wide metrics flag
/// — disarmed cost is one relaxed load. Epoch rotation is a two-phase tag
/// protocol per slot: the rotating writer CASes the slot tag to a "resetting"
/// sentinel, zeroes the slot, then publishes the new epoch tag; concurrent
/// writers that observe the sentinel re-read until the slot is live. A
/// writer that stalls across an entire epoch boundary between computing its
/// epoch and recording can land its sample in the successor epoch — a
/// bounded, benign smear (samples are never lost, windows never double
/// count), the standard trade for lock-free rotation.
///
/// Time is injectable (`now_us` parameters, defaulting to MonotonicUs()) so
/// rotation is deterministically testable.

/// Epoch ring geometry shared by the windowed types. With the default
/// 5-second epochs the 64-slot ring covers > 5 minutes of lookback — the
/// 10s / 1m / 5m windows the SLO tracker reports all fit.
struct WindowOptions {
  double epoch_seconds = 5.0;
};

inline constexpr int kWindowEpochs = 64;

namespace internal {
/// Slot tags: epoch E is published as E*2; E*2+1 marks a reset in progress.
inline constexpr std::uint64_t kResettingBit = 1;
}  // namespace internal

/// A histogram whose samples expire: the log2 bucket layout of
/// obs::Histogram replicated per epoch slot.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(WindowOptions options = {});

  /// Records `value` into the current epoch's slot. No-op while metrics are
  /// disabled (one relaxed load). `now_us` is on the MonotonicUs timebase.
  void Record(double value) { Record(value, MonotonicUs()); }
  void Record(double value, double now_us);

  /// Records regardless of the process-wide metrics flag. For windows that
  /// are control inputs, not telemetry — e.g. the sweep hedger derives its
  /// hedge delay from a latency window, which must keep filling when the
  /// operator has metrics off (an empty window would silently disable
  /// hedging).
  void RecordAlways(double value) { RecordAlways(value, MonotonicUs()); }
  void RecordAlways(double value, double now_us);

  /// Sums every live epoch inside `window_seconds` ending at `now_us` into
  /// one Histogram::Snapshot (the current partial epoch included). An empty
  /// window yields count == 0 and Quantile() == 0.
  Histogram::Snapshot Snap(double window_seconds) const {
    return Snap(window_seconds, MonotonicUs());
  }
  Histogram::Snapshot Snap(double window_seconds, double now_us) const;

  double epoch_seconds() const { return options_.epoch_seconds; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> tag{0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::array<std::atomic<std::uint64_t>, Histogram::kBuckets> buckets{};
  };

  /// Returns the slot for `epoch`, rotating it (two-phase reset) if it still
  /// holds an older epoch. Null while another thread is mid-reset.
  Slot* LiveSlot(std::uint64_t epoch);

  WindowOptions options_;
  std::array<Slot, static_cast<std::size_t>(kWindowEpochs)> slots_;
};

/// A counter whose increments expire, same ring discipline.
class WindowedCounter {
 public:
  explicit WindowedCounter(WindowOptions options = {});

  void Add(std::uint64_t n = 1) { Add(n, MonotonicUs()); }
  void Add(std::uint64_t n, double now_us);

  /// Total increments inside `window_seconds` ending at `now_us`.
  std::uint64_t Sum(double window_seconds) const {
    return Sum(window_seconds, MonotonicUs());
  }
  std::uint64_t Sum(double window_seconds, double now_us) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> tag{0};
    std::atomic<std::uint64_t> value{0};
  };

  Slot* LiveSlot(std::uint64_t epoch);

  WindowOptions options_;
  std::array<Slot, static_cast<std::size_t>(kWindowEpochs)> slots_;
};

}  // namespace obs
}  // namespace dagperf

#endif  // DAGPERF_OBS_WINDOW_H_
