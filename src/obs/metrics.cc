#include "obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace dagperf {
namespace obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() { return internal::Enabled(); }

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;
  // ilogb(v) = floor(log2 v) for finite positive v.
  const int exp = std::ilogb(value);
  const int bucket = exp + kZeroBucket;
  if (bucket < 0) return 0;
  if (bucket >= kBuckets) return kBuckets - 1;
  return bucket;
}

double Histogram::BucketLowerBound(int i) {
  return std::ldexp(1.0, i - kZeroBucket);
}

void Histogram::Record(double value) {
  if (!internal::Enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    if (static_cast<double>(cumulative) >= target) {
      // Geometric midpoint of [2^k, 2^(k+1)) = 2^k * sqrt(2).
      return BucketLowerBound(i) * std::sqrt(2.0);
    }
  }
  return BucketLowerBound(kBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot s;
  std::lock_guard<std::mutex> lock(mutex_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    s.counters.emplace_back(name, counter->value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    s.gauges.emplace_back(name, gauge->value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    s.histograms.emplace_back(name, histogram->Snap());
  }
  return s;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  const Snapshot s = Snap();
  std::string out = "{\n  \"metrics_enabled\": ";
  out += MetricsEnabled() ? "true" : "false";
  out += ",\n  \"counters\": {";
  for (size_t i = 0; i < s.counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendEscaped(out, s.counters[i].first);
    out += ": ";
    out += std::to_string(s.counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < s.gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendEscaped(out, s.gauges[i].first);
    out += ": ";
    AppendNumber(out, s.gauges[i].second);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < s.histograms.size(); ++i) {
    const auto& [name, h] = s.histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendEscaped(out, name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    AppendNumber(out, h.sum);
    out += ", \"mean\": ";
    AppendNumber(out, h.mean());
    out += ", \"p50\": ";
    AppendNumber(out, h.Quantile(0.50));
    out += ", \"p95\": ";
    AppendNumber(out, h.Quantile(0.95));
    out += ", \"p99\": ";
    AppendNumber(out, h.Quantile(0.99));
    out += ", \"buckets\": [";
    bool first = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t count = h.buckets[static_cast<size_t>(b)];
      if (count == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += '[';
      AppendNumber(out, Histogram::BucketLowerBound(b));
      out += ", " + std::to_string(count) + ']';
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

double MonotonicUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace obs
}  // namespace dagperf
