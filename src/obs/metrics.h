#ifndef DAGPERF_OBS_METRICS_H_
#define DAGPERF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dagperf {
namespace obs {

/// Process-wide metrics switch. Metrics are OFF by default: every recording
/// primitive first does one relaxed atomic-bool load and returns, so the
/// disabled cost of an instrumented hot path is a branch — no clocks, no
/// contended writes, no allocation (guarded by bench_overhead's BENCH_obs
/// "off ~= free" measurement). Handles can be looked up and held while
/// disabled; enabling later makes them live without re-registration.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
inline bool Enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
}  // namespace internal

/// Monotonically increasing event count. Lock-free; exact under concurrency.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    if (!internal::Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, hit rate, ...).
class Gauge {
 public:
  void Set(double v) {
    if (!internal::Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of positive samples over fixed logarithmic buckets.
///
/// Bucket i covers [2^(i - kZeroBucket), 2^(i + 1 - kZeroBucket)), so the
/// domain spans ~1e-10 .. ~4e9 in whatever unit the caller records
/// (microseconds for all library latency histograms). Samples at or below 0
/// land in bucket 0; samples beyond the top land in the last bucket. The
/// fast path is one exponent extraction plus two relaxed atomic adds —
/// lock-free, and totals are conserved exactly under contention (count and
/// per-bucket sums are integer atomics; `sum` uses atomic double fetch_add).
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kZeroBucket = 32;

  void Record(double value);

  /// Lower bound of bucket i in recorded units.
  static double BucketLowerBound(int i);
  /// Bucket a value would land in (exposed for tests).
  static int BucketIndex(double value);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    /// Approximate quantile (geometric midpoint of the covering bucket).
    double Quantile(double q) const;
  };
  Snapshot Snap() const;
  void Reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Named metric directory. Registration (Get*) takes a mutex and returns a
/// reference that stays valid for the registry's lifetime — call sites look
/// a handle up once (static local or member) and record through it
/// lock-free. One name space per metric kind.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all library instrumentation. Never
  /// destroyed (leaked singleton) so handles outlive static teardown.
  static MetricsRegistry& Default();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  Snapshot Snap() const;

  /// Zeroes every registered metric (handles stay valid).
  void ResetAll();

  /// Serialises a snapshot as a JSON object:
  ///   {"metrics_enabled": bool, "counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, mean, p50, p95, p99,
  ///                          buckets: [[lower_bound, count], ...]}}}
  /// Self-contained (obs does not depend on common/json); output parses
  /// with any JSON parser.
  std::string ToJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Microseconds on the monotonic clock since process start — the timebase
/// shared by metrics call sites and trace spans so latency histograms and
/// exported traces line up.
double MonotonicUs();

}  // namespace obs
}  // namespace dagperf

#endif  // DAGPERF_OBS_METRICS_H_
