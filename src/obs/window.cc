#include "obs/window.h"

#include <algorithm>

namespace dagperf {
namespace obs {

namespace {

std::uint64_t EpochOf(double now_us, double epoch_seconds) {
  const double epoch_us = epoch_seconds * 1e6;
  if (!(now_us > 0.0) || !(epoch_us > 0.0)) return 0;
  return static_cast<std::uint64_t>(now_us / epoch_us);
}

/// How many whole epochs a window spans, current partial epoch included.
int EpochSpan(double window_seconds, double epoch_seconds) {
  if (!(window_seconds > 0.0)) return 1;
  const int span =
      static_cast<int>(window_seconds / std::max(epoch_seconds, 1e-9) + 0.5);
  return std::clamp(span, 1, kWindowEpochs);
}

}  // namespace

WindowedHistogram::WindowedHistogram(WindowOptions options) : options_(options) {
  options_.epoch_seconds = std::max(1e-6, options_.epoch_seconds);
}

WindowedHistogram::Slot* WindowedHistogram::LiveSlot(std::uint64_t epoch) {
  Slot& slot = slots_[static_cast<std::size_t>(epoch % kWindowEpochs)];
  const std::uint64_t live = epoch << 1;
  std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
  if (tag == live) return &slot;
  if (tag > live) return nullptr;  // A newer epoch claimed the slot already.
  if (tag & internal::kResettingBit) return nullptr;  // Mid-reset elsewhere.
  // Claim: tag -> resetting, zero the slot, publish the live tag. Writers
  // that lose the CAS re-read and either see the live tag or spin out.
  if (!slot.tag.compare_exchange_strong(tag, live | internal::kResettingBit,
                                        std::memory_order_acq_rel)) {
    return nullptr;
  }
  slot.count.store(0, std::memory_order_relaxed);
  slot.sum.store(0.0, std::memory_order_relaxed);
  for (auto& bucket : slot.buckets) bucket.store(0, std::memory_order_relaxed);
  slot.tag.store(live, std::memory_order_release);
  return &slot;
}

void WindowedHistogram::Record(double value, double now_us) {
  if (!internal::Enabled()) return;
  RecordAlways(value, now_us);
}

void WindowedHistogram::RecordAlways(double value, double now_us) {
  const std::uint64_t epoch = EpochOf(now_us, options_.epoch_seconds);
  for (int attempt = 0; attempt < 64; ++attempt) {
    Slot* slot = LiveSlot(epoch);
    if (slot == nullptr) continue;  // Reset in flight; retry.
    slot->count.fetch_add(1, std::memory_order_relaxed);
    slot->sum.fetch_add(value, std::memory_order_relaxed);
    slot->buckets[static_cast<std::size_t>(Histogram::BucketIndex(value))]
        .fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Pathological contention on a resetting slot: drop the sample rather than
  // spin unboundedly on an observability path.
}

Histogram::Snapshot WindowedHistogram::Snap(double window_seconds,
                                            double now_us) const {
  Histogram::Snapshot snapshot;
  const std::uint64_t now_epoch = EpochOf(now_us, options_.epoch_seconds);
  const int span = EpochSpan(window_seconds, options_.epoch_seconds);
  for (int back = 0; back < span; ++back) {
    if (static_cast<std::uint64_t>(back) > now_epoch) break;
    const std::uint64_t epoch = now_epoch - static_cast<std::uint64_t>(back);
    const Slot& slot = slots_[static_cast<std::size_t>(epoch % kWindowEpochs)];
    if (slot.tag.load(std::memory_order_acquire) != (epoch << 1)) continue;
    snapshot.count += slot.count.load(std::memory_order_relaxed);
    snapshot.sum += slot.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      snapshot.buckets[static_cast<std::size_t>(b)] +=
          slot.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }
  return snapshot;
}

WindowedCounter::WindowedCounter(WindowOptions options) : options_(options) {
  options_.epoch_seconds = std::max(1e-6, options_.epoch_seconds);
}

WindowedCounter::Slot* WindowedCounter::LiveSlot(std::uint64_t epoch) {
  Slot& slot = slots_[static_cast<std::size_t>(epoch % kWindowEpochs)];
  const std::uint64_t live = epoch << 1;
  std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
  if (tag == live) return &slot;
  if (tag > live) return nullptr;
  if (tag & internal::kResettingBit) return nullptr;
  if (!slot.tag.compare_exchange_strong(tag, live | internal::kResettingBit,
                                        std::memory_order_acq_rel)) {
    return nullptr;
  }
  slot.value.store(0, std::memory_order_relaxed);
  slot.tag.store(live, std::memory_order_release);
  return &slot;
}

void WindowedCounter::Add(std::uint64_t n, double now_us) {
  if (!internal::Enabled()) return;
  const std::uint64_t epoch = EpochOf(now_us, options_.epoch_seconds);
  for (int attempt = 0; attempt < 64; ++attempt) {
    Slot* slot = LiveSlot(epoch);
    if (slot == nullptr) continue;
    slot->value.fetch_add(n, std::memory_order_relaxed);
    return;
  }
}

std::uint64_t WindowedCounter::Sum(double window_seconds, double now_us) const {
  std::uint64_t total = 0;
  const std::uint64_t now_epoch = EpochOf(now_us, options_.epoch_seconds);
  const int span = EpochSpan(window_seconds, options_.epoch_seconds);
  for (int back = 0; back < span; ++back) {
    if (static_cast<std::uint64_t>(back) > now_epoch) break;
    const std::uint64_t epoch = now_epoch - static_cast<std::uint64_t>(back);
    const Slot& slot = slots_[static_cast<std::size_t>(epoch % kWindowEpochs)];
    if (slot.tag.load(std::memory_order_acquire) != (epoch << 1)) continue;
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace obs
}  // namespace dagperf
