#include "obs/prom.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace dagperf {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string PrometheusSanitizeName(const std::string& name) {
  std::string out = "dagperf_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string WritePrometheusText(const MetricsRegistry::Snapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusSanitizeName(name) + "_total";
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusSanitizeName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << FormatDouble(value) << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PrometheusSanitizeName(name);
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t in_bucket =
          hist.buckets[static_cast<std::size_t>(b)];
      if (in_bucket == 0) continue;  // Cumulative stays correct; elide.
      cumulative += in_bucket;
      out << prom << "_bucket{le=\""
          << FormatDouble(Histogram::BucketLowerBound(b + 1)) << "\"} "
          << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << hist.count << "\n";
    out << prom << "_sum " << FormatDouble(hist.sum) << "\n";
    out << prom << "_count " << hist.count << "\n";
  }
  return out.str();
}

std::string WritePrometheusText() {
  return WritePrometheusText(MetricsRegistry::Default().Snap());
}

}  // namespace obs
}  // namespace dagperf
