#include "obs/chrome_trace.h"

#include <cmath>
#include <cstdio>

namespace dagperf {
namespace obs {

namespace {

std::string Escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  out << value;
}

}  // namespace

void WriteChromeTraceEvents(
    const std::vector<ChromeTraceEvent>& events, std::ostream& out,
    const std::vector<std::pair<std::int64_t, std::string>>& process_names) {
  out << "[\n";
  bool first = true;
  for (const auto& [pid, label] : process_names) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": 0, \"args\": {\"name\": \"" << Escaped(label) << "\"}}";
  }
  for (const ChromeTraceEvent& e : events) {
    if (!first) out << ",\n";
    first = false;
    // Field order matters to downstream consumers that scan rather than
    // parse (tests grep "ts" -> "dur" -> "pid" -> "tid" in sequence).
    out << "  {\"name\": \"" << Escaped(e.name) << "\", \"cat\": \""
        << Escaped(e.cat.empty() ? std::string("default") : e.cat)
        << "\", \"ph\": \"" << e.ph << "\", \"ts\": ";
    WriteNumber(out, e.ts_us);
    if (e.ph == 'X') {
      out << ", \"dur\": ";
      WriteNumber(out, e.dur_us);
    }
    out << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid;
    if (!e.num_args.empty() || !e.str_args.empty()) {
      out << ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : e.num_args) {
        if (!first_arg) out << ", ";
        first_arg = false;
        out << "\"" << Escaped(key) << "\": ";
        WriteNumber(out, value);
      }
      for (const auto& [key, value] : e.str_args) {
        if (!first_arg) out << ", ";
        first_arg = false;
        out << "\"" << Escaped(key) << "\": \"" << Escaped(value) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]\n";
}

}  // namespace obs
}  // namespace dagperf
