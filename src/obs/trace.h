#ifndef DAGPERF_OBS_TRACE_H_
#define DAGPERF_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"

namespace dagperf {
namespace obs {

/// Stable small integer identifying the calling thread, assigned in first-
/// use order. Used as the "tid" lane of recorded spans so a trace shows one
/// lane per worker thread.
std::int64_t CurrentThreadLane();

/// Collects trace events for export as Chrome-trace/Perfetto JSON.
///
/// Off by default; while disabled, Add() is a relaxed-load-and-return and
/// ScopedSpan construction takes no timestamps. Recording appends to one
/// mutex-guarded vector — spans in this library are coarse (an estimate, a
/// workflow state, a sweep candidate, a pool task), so the lock is not a
/// hot-path concern; metrics cover the fine-grained signals.
///
/// Timebase: microseconds on the shared monotonic clock (MonotonicUs), so
/// spans from every subsystem align in one timeline.
class TraceRecorder {
 public:
  /// Process-wide recorder used by library instrumentation (leaked
  /// singleton, same lifetime policy as MetricsRegistry::Default).
  static TraceRecorder& Default();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event; no-op while disabled.
  void Add(ChromeTraceEvent event);

  /// Appends a counter sample ('C') on track `name` at `ts_us`.
  void AddCounter(const std::string& name, double ts_us,
                  std::vector<std::pair<std::string, double>> series,
                  std::int64_t pid = 0);

  std::vector<ChromeTraceEvent> Events() const;
  std::size_t size() const;
  void Clear();

  /// Writes the recorded events as a Chrome trace-event JSON array.
  void Write(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<ChromeTraceEvent> events_;
};

/// RAII span: records a complete ('X') event covering its lifetime on the
/// calling thread's lane. If the recorder is disabled at construction the
/// span is inert (no clock reads, no allocation beyond the moved strings).
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder& recorder, std::string name, std::string cat,
             std::int64_t pid = 0);
  /// Convenience on the default recorder.
  ScopedSpan(std::string name, std::string cat, std::int64_t pid = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return recorder_ != nullptr; }
  void AddArg(const std::string& key, double value);
  void AddArg(const std::string& key, std::string value);

 private:
  TraceRecorder* recorder_ = nullptr;  // Null when inert.
  ChromeTraceEvent event_;
};

}  // namespace obs
}  // namespace dagperf

#endif  // DAGPERF_OBS_TRACE_H_
