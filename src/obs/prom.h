#ifndef DAGPERF_OBS_PROM_H_
#define DAGPERF_OBS_PROM_H_

#include <string>

#include "obs/metrics.h"

namespace dagperf {
namespace obs {

/// Prometheus text exposition (format 0.0.4) over a MetricsRegistry
/// snapshot — the lingua franca every metrics stack scrapes, so dagperf
/// telemetry lands in Prometheus/Grafana with zero adapter code.
///
/// Mapping:
///  - metric names are sanitised (dots and other non-[a-zA-Z0-9_:] become
///    '_') and prefixed "dagperf_";
///  - Counter  -> `# TYPE <name>_total counter` with a `_total` suffix;
///  - Gauge    -> `# TYPE <name> gauge`;
///  - Histogram -> classic cumulative `_bucket{le="..."}` series over the
///    log2 bucket upper bounds (empty buckets elided, `+Inf` always
///    present) plus `_sum` and `_count`.
///
/// Output is deterministic (registry snapshots are name-sorted), which the
/// golden-format test relies on.
std::string PrometheusSanitizeName(const std::string& name);
std::string WritePrometheusText(const MetricsRegistry::Snapshot& snapshot);

/// Convenience: snapshot the default registry and render it.
std::string WritePrometheusText();

}  // namespace obs
}  // namespace dagperf

#endif  // DAGPERF_OBS_PROM_H_
