#include "dag/spec_io.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "dag/validate.h"

namespace dagperf {

namespace {

/// The recognised JobSpec fields (document units in the comments).
const std::set<std::string>& KnownJobKeys() {
  static const std::set<std::string>* keys = new std::set<std::string>{
      "name",
      "input_gb",
      "split_mb",
      "num_reduce_tasks",
      "map_selectivity",
      "reduce_selectivity",
      "compress_map_output",
      "compression_ratio",
      "replicas",
      "map_compute_mbps",
      "reduce_compute_mbps",
      "sort_compute_mbps",
      "compress_compute_mbps",
      "remote_read_fraction",
      "input_cache_fraction",
      "shuffle_cache_hit",
      "sort_buffer_mb",
      "reduce_merge_buffer_mb",
      "reduce_skew_cv",
      "map_slot_vcores",
      "map_slot_memory_gb",
      "reduce_slot_vcores",
      "reduce_slot_memory_gb",
  };
  return *keys;
}

/// Typed field accessors for ingestion. Unlike Json::GetNumber (which keeps
/// the fallback when a present field has the wrong type — hiding typos like
/// `"input_gb": "100"`), these reject wrong-typed present fields, and the
/// integer accessor additionally rejects non-integral and out-of-int-range
/// numbers before any cast (casting e.g. 1e20 to int is undefined
/// behaviour). They record the first error in `status` and keep parsing, so
/// the surrounding code stays a flat assignment list.
class FieldReader {
 public:
  explicit FieldReader(const Json& json) : json_(json) {}

  const Status& status() const { return status_; }

  double Number(const char* key, double fallback) {
    const Json* v = json_.Get(key);
    if (v == nullptr) return fallback;
    if (v->type() != Json::Type::kNumber) {
      Fail(std::string("field \"") + key + "\" must be a number");
      return fallback;
    }
    return v->AsNumber();
  }

  int Int(const char* key, int fallback) {
    const Json* v = json_.Get(key);
    if (v == nullptr) return fallback;
    if (v->type() != Json::Type::kNumber) {
      Fail(std::string("field \"") + key + "\" must be a number");
      return fallback;
    }
    const double d = v->AsNumber();
    if (!std::isfinite(d) || d != std::floor(d) ||
        d < static_cast<double>(std::numeric_limits<int>::min()) ||
        d > static_cast<double>(std::numeric_limits<int>::max())) {
      Fail(std::string("field \"") + key + "\" must be an integer (got " +
           std::to_string(d) + ")");
      return fallback;
    }
    return static_cast<int>(d);
  }

  bool Bool(const char* key, bool fallback) {
    const Json* v = json_.Get(key);
    if (v == nullptr) return fallback;
    if (v->type() != Json::Type::kBool) {
      Fail(std::string("field \"") + key + "\" must be a boolean");
      return fallback;
    }
    return v->AsBool();
  }

  std::string String(const char* key, const std::string& fallback) {
    const Json* v = json_.Get(key);
    if (v == nullptr) return fallback;
    if (v->type() != Json::Type::kString) {
      Fail(std::string("field \"") + key + "\" must be a string");
      return fallback;
    }
    return v->AsString();
  }

 private:
  void Fail(std::string message) {
    if (status_.ok()) status_ = Status::InvalidArgument(std::move(message));
  }

  const Json& json_;
  Status status_;
};

}  // namespace

Json JobSpecToJson(const JobSpec& spec) {
  Json j = Json::MakeObject();
  j.Set("name", Json::MakeString(spec.name));
  j.Set("input_gb", Json::MakeNumber(spec.input.ToGB()));
  j.Set("split_mb", Json::MakeNumber(spec.split_size.ToMB()));
  j.Set("num_reduce_tasks", Json::MakeNumber(spec.num_reduce_tasks));
  j.Set("map_selectivity", Json::MakeNumber(spec.map_selectivity));
  j.Set("reduce_selectivity", Json::MakeNumber(spec.reduce_selectivity));
  j.Set("compress_map_output", Json::MakeBool(spec.compress_map_output));
  j.Set("compression_ratio", Json::MakeNumber(spec.compression_ratio));
  j.Set("replicas", Json::MakeNumber(spec.replicas));
  j.Set("map_compute_mbps", Json::MakeNumber(spec.map_compute.ToMBps()));
  j.Set("reduce_compute_mbps", Json::MakeNumber(spec.reduce_compute.ToMBps()));
  j.Set("sort_compute_mbps", Json::MakeNumber(spec.sort_compute.ToMBps()));
  j.Set("compress_compute_mbps", Json::MakeNumber(spec.compress_compute.ToMBps()));
  j.Set("remote_read_fraction", Json::MakeNumber(spec.remote_read_fraction));
  j.Set("input_cache_fraction", Json::MakeNumber(spec.input_cache_fraction));
  j.Set("shuffle_cache_hit", Json::MakeNumber(spec.shuffle_cache_hit));
  j.Set("sort_buffer_mb", Json::MakeNumber(spec.sort_buffer.ToMB()));
  j.Set("reduce_merge_buffer_mb", Json::MakeNumber(spec.reduce_merge_buffer.ToMB()));
  j.Set("reduce_skew_cv", Json::MakeNumber(spec.reduce_skew_cv));
  j.Set("map_slot_vcores", Json::MakeNumber(spec.map_slot.vcores));
  j.Set("map_slot_memory_gb", Json::MakeNumber(spec.map_slot.memory.ToGB()));
  j.Set("reduce_slot_vcores", Json::MakeNumber(spec.reduce_slot.vcores));
  j.Set("reduce_slot_memory_gb", Json::MakeNumber(spec.reduce_slot.memory.ToGB()));
  return j;
}

Result<JobSpec> JobSpecFromJson(const Json& json) {
  if (json.type() != Json::Type::kObject) {
    return Status::InvalidArgument("job spec must be a JSON object");
  }
  for (const auto& [key, value] : json.AsObject()) {
    if (KnownJobKeys().count(key) == 0) {
      return Status::InvalidArgument("unknown job field: " + key);
    }
  }
  JobSpec spec;  // Field defaults.
  FieldReader r(json);
  spec.name = r.String("name", "job");
  spec.input = Bytes::FromGB(r.Number("input_gb", spec.input.ToGB()));
  spec.split_size = Bytes::FromMB(r.Number("split_mb", spec.split_size.ToMB()));
  spec.num_reduce_tasks = r.Int("num_reduce_tasks", spec.num_reduce_tasks);
  spec.map_selectivity = r.Number("map_selectivity", spec.map_selectivity);
  spec.reduce_selectivity =
      r.Number("reduce_selectivity", spec.reduce_selectivity);
  spec.compress_map_output =
      r.Bool("compress_map_output", spec.compress_map_output);
  spec.compression_ratio = r.Number("compression_ratio", spec.compression_ratio);
  spec.replicas = r.Int("replicas", spec.replicas);
  spec.map_compute =
      Rate::MBps(r.Number("map_compute_mbps", spec.map_compute.ToMBps()));
  spec.reduce_compute =
      Rate::MBps(r.Number("reduce_compute_mbps", spec.reduce_compute.ToMBps()));
  spec.sort_compute =
      Rate::MBps(r.Number("sort_compute_mbps", spec.sort_compute.ToMBps()));
  spec.compress_compute = Rate::MBps(
      r.Number("compress_compute_mbps", spec.compress_compute.ToMBps()));
  spec.remote_read_fraction =
      r.Number("remote_read_fraction", spec.remote_read_fraction);
  spec.input_cache_fraction =
      r.Number("input_cache_fraction", spec.input_cache_fraction);
  spec.shuffle_cache_hit = r.Number("shuffle_cache_hit", spec.shuffle_cache_hit);
  spec.sort_buffer =
      Bytes::FromMB(r.Number("sort_buffer_mb", spec.sort_buffer.ToMB()));
  spec.reduce_merge_buffer = Bytes::FromMB(
      r.Number("reduce_merge_buffer_mb", spec.reduce_merge_buffer.ToMB()));
  spec.reduce_skew_cv = r.Number("reduce_skew_cv", spec.reduce_skew_cv);
  spec.map_slot.vcores = r.Number("map_slot_vcores", spec.map_slot.vcores);
  spec.map_slot.memory =
      Bytes::FromGB(r.Number("map_slot_memory_gb", spec.map_slot.memory.ToGB()));
  spec.reduce_slot.vcores =
      r.Number("reduce_slot_vcores", spec.reduce_slot.vcores);
  spec.reduce_slot.memory = Bytes::FromGB(
      r.Number("reduce_slot_memory_gb", spec.reduce_slot.memory.ToGB()));
  if (!r.status().ok()) {
    return Status::InvalidArgument("job spec \"" + spec.name +
                                   "\": " + r.status().message());
  }
  return spec;
}

Json WorkflowToJson(const DagWorkflow& flow) {
  Json j = Json::MakeObject();
  j.Set("name", Json::MakeString(flow.name()));
  Json jobs = Json::MakeArray();
  for (const auto& job : flow.jobs()) jobs.Append(JobSpecToJson(job.spec));
  j.Set("jobs", std::move(jobs));
  Json edges = Json::MakeArray();
  for (const auto& [from, to] : flow.edges()) {
    Json edge = Json::MakeArray();
    edge.Append(Json::MakeNumber(from));
    edge.Append(Json::MakeNumber(to));
    edges.Append(std::move(edge));
  }
  j.Set("edges", std::move(edges));
  return j;
}

namespace {

/// Parses one "[from, to]" edge pair, type- and range-checking each element
/// before any cast (a string element or a 1e20 double must become a clean
/// error, not a CHECK abort or undefined behaviour).
Result<std::pair<JobId, JobId>> EdgeFromJson(const Json& edge, size_t index) {
  const std::string where = "edge " + std::to_string(index);
  if (edge.type() != Json::Type::kArray || edge.AsArray().size() != 2) {
    return Status::InvalidArgument(where + ": must be a [from, to] pair");
  }
  JobId ids[2];
  for (int e = 0; e < 2; ++e) {
    const Json& element = edge.AsArray()[e];
    if (element.type() != Json::Type::kNumber) {
      return Status::InvalidArgument(where + ": endpoints must be numbers");
    }
    const double d = element.AsNumber();
    if (!std::isfinite(d) || d != std::floor(d) || d < 0 ||
        d > static_cast<double>(kMaxJobsPerWorkflow)) {
      return Status::InvalidArgument(
          where + ": endpoint " + std::to_string(d) +
          " is not a job index in [0, " + std::to_string(kMaxJobsPerWorkflow) +
          "]");
    }
    ids[e] = static_cast<JobId>(d);
  }
  return std::make_pair(ids[0], ids[1]);
}

}  // namespace

Result<DagWorkflow> WorkflowFromJson(const Json& json) {
  if (json.type() != Json::Type::kObject) {
    return Status::InvalidArgument("workflow must be a JSON object");
  }
  const Json* jobs = json.Get("jobs");
  if (jobs == nullptr || jobs->type() != Json::Type::kArray) {
    return Status::InvalidArgument("workflow needs a \"jobs\" array");
  }
  const Json* name = json.Get("name");
  if (name != nullptr && name->type() != Json::Type::kString) {
    return Status::InvalidArgument("workflow \"name\" must be a string");
  }

  std::vector<JobSpec> specs;
  specs.reserve(jobs->AsArray().size());
  for (const Json& job : jobs->AsArray()) {
    Result<JobSpec> spec = JobSpecFromJson(job);
    if (!spec.ok()) return spec.status();
    specs.push_back(std::move(spec).value());
  }
  std::vector<std::pair<JobId, JobId>> edge_list;
  if (const Json* edges = json.Get("edges"); edges != nullptr) {
    if (edges->type() != Json::Type::kArray) {
      return Status::InvalidArgument("\"edges\" must be an array");
    }
    edge_list.reserve(edges->AsArray().size());
    for (size_t k = 0; k < edges->AsArray().size(); ++k) {
      Result<std::pair<JobId, JobId>> edge =
          EdgeFromJson(edges->AsArray()[k], k);
      if (!edge.ok()) return edge.status();
      edge_list.push_back(edge.value());
    }
  }

  // The validation firewall: every semantic rule — field ranges, derived
  // task counts, edge ranges, duplicates, cycles — is checked here in one
  // pass, and all violations come back together as JSON-pointer diagnostics.
  const Status valid =
      ValidateWorkflowSpec(specs, edge_list).ToStatus("workflow");
  if (!valid.ok()) return valid;

  DagBuilder builder(json.GetString("name", "workflow"));
  for (JobSpec& spec : specs) builder.AddJob(std::move(spec));
  for (const auto& [from, to] : edge_list) builder.AddEdge(from, to);
  return std::move(builder).Build();
}

Status SaveWorkflow(const DagWorkflow& flow, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path + " for writing");
  out << WorkflowToJson(flow).Dump();
  return out.good() ? Status::Ok() : Status::Internal("write failed: " + path);
}

Result<DagWorkflow> LoadWorkflow(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<Json> json = Json::Parse(buffer.str());
  if (!json.ok()) return json.status();
  return WorkflowFromJson(*json);
}

}  // namespace dagperf
