#include "dag/spec_io.h"

#include <fstream>
#include <set>
#include <sstream>

namespace dagperf {

namespace {

/// The recognised JobSpec fields (document units in the comments).
const std::set<std::string>& KnownJobKeys() {
  static const std::set<std::string>* keys = new std::set<std::string>{
      "name",
      "input_gb",
      "split_mb",
      "num_reduce_tasks",
      "map_selectivity",
      "reduce_selectivity",
      "compress_map_output",
      "compression_ratio",
      "replicas",
      "map_compute_mbps",
      "reduce_compute_mbps",
      "sort_compute_mbps",
      "compress_compute_mbps",
      "remote_read_fraction",
      "input_cache_fraction",
      "shuffle_cache_hit",
      "sort_buffer_mb",
      "reduce_merge_buffer_mb",
      "reduce_skew_cv",
      "map_slot_vcores",
      "map_slot_memory_gb",
      "reduce_slot_vcores",
      "reduce_slot_memory_gb",
  };
  return *keys;
}

}  // namespace

Json JobSpecToJson(const JobSpec& spec) {
  Json j = Json::MakeObject();
  j.Set("name", Json::MakeString(spec.name));
  j.Set("input_gb", Json::MakeNumber(spec.input.ToGB()));
  j.Set("split_mb", Json::MakeNumber(spec.split_size.ToMB()));
  j.Set("num_reduce_tasks", Json::MakeNumber(spec.num_reduce_tasks));
  j.Set("map_selectivity", Json::MakeNumber(spec.map_selectivity));
  j.Set("reduce_selectivity", Json::MakeNumber(spec.reduce_selectivity));
  j.Set("compress_map_output", Json::MakeBool(spec.compress_map_output));
  j.Set("compression_ratio", Json::MakeNumber(spec.compression_ratio));
  j.Set("replicas", Json::MakeNumber(spec.replicas));
  j.Set("map_compute_mbps", Json::MakeNumber(spec.map_compute.ToMBps()));
  j.Set("reduce_compute_mbps", Json::MakeNumber(spec.reduce_compute.ToMBps()));
  j.Set("sort_compute_mbps", Json::MakeNumber(spec.sort_compute.ToMBps()));
  j.Set("compress_compute_mbps", Json::MakeNumber(spec.compress_compute.ToMBps()));
  j.Set("remote_read_fraction", Json::MakeNumber(spec.remote_read_fraction));
  j.Set("input_cache_fraction", Json::MakeNumber(spec.input_cache_fraction));
  j.Set("shuffle_cache_hit", Json::MakeNumber(spec.shuffle_cache_hit));
  j.Set("sort_buffer_mb", Json::MakeNumber(spec.sort_buffer.ToMB()));
  j.Set("reduce_merge_buffer_mb", Json::MakeNumber(spec.reduce_merge_buffer.ToMB()));
  j.Set("reduce_skew_cv", Json::MakeNumber(spec.reduce_skew_cv));
  j.Set("map_slot_vcores", Json::MakeNumber(spec.map_slot.vcores));
  j.Set("map_slot_memory_gb", Json::MakeNumber(spec.map_slot.memory.ToGB()));
  j.Set("reduce_slot_vcores", Json::MakeNumber(spec.reduce_slot.vcores));
  j.Set("reduce_slot_memory_gb", Json::MakeNumber(spec.reduce_slot.memory.ToGB()));
  return j;
}

Result<JobSpec> JobSpecFromJson(const Json& json) {
  if (json.type() != Json::Type::kObject) {
    return Status::InvalidArgument("job spec must be a JSON object");
  }
  for (const auto& [key, value] : json.AsObject()) {
    if (KnownJobKeys().count(key) == 0) {
      return Status::InvalidArgument("unknown job field: " + key);
    }
  }
  JobSpec spec;  // Field defaults.
  spec.name = json.GetString("name", "job");
  spec.input = Bytes::FromGB(json.GetNumber("input_gb", spec.input.ToGB()));
  spec.split_size = Bytes::FromMB(json.GetNumber("split_mb", spec.split_size.ToMB()));
  spec.num_reduce_tasks = static_cast<int>(
      json.GetNumber("num_reduce_tasks", spec.num_reduce_tasks));
  spec.map_selectivity = json.GetNumber("map_selectivity", spec.map_selectivity);
  spec.reduce_selectivity =
      json.GetNumber("reduce_selectivity", spec.reduce_selectivity);
  spec.compress_map_output =
      json.GetBool("compress_map_output", spec.compress_map_output);
  spec.compression_ratio = json.GetNumber("compression_ratio", spec.compression_ratio);
  spec.replicas = static_cast<int>(json.GetNumber("replicas", spec.replicas));
  spec.map_compute =
      Rate::MBps(json.GetNumber("map_compute_mbps", spec.map_compute.ToMBps()));
  spec.reduce_compute =
      Rate::MBps(json.GetNumber("reduce_compute_mbps", spec.reduce_compute.ToMBps()));
  spec.sort_compute =
      Rate::MBps(json.GetNumber("sort_compute_mbps", spec.sort_compute.ToMBps()));
  spec.compress_compute = Rate::MBps(
      json.GetNumber("compress_compute_mbps", spec.compress_compute.ToMBps()));
  spec.remote_read_fraction =
      json.GetNumber("remote_read_fraction", spec.remote_read_fraction);
  spec.input_cache_fraction =
      json.GetNumber("input_cache_fraction", spec.input_cache_fraction);
  spec.shuffle_cache_hit = json.GetNumber("shuffle_cache_hit", spec.shuffle_cache_hit);
  spec.sort_buffer =
      Bytes::FromMB(json.GetNumber("sort_buffer_mb", spec.sort_buffer.ToMB()));
  spec.reduce_merge_buffer = Bytes::FromMB(
      json.GetNumber("reduce_merge_buffer_mb", spec.reduce_merge_buffer.ToMB()));
  spec.reduce_skew_cv = json.GetNumber("reduce_skew_cv", spec.reduce_skew_cv);
  spec.map_slot.vcores = json.GetNumber("map_slot_vcores", spec.map_slot.vcores);
  spec.map_slot.memory =
      Bytes::FromGB(json.GetNumber("map_slot_memory_gb", spec.map_slot.memory.ToGB()));
  spec.reduce_slot.vcores =
      json.GetNumber("reduce_slot_vcores", spec.reduce_slot.vcores);
  spec.reduce_slot.memory = Bytes::FromGB(
      json.GetNumber("reduce_slot_memory_gb", spec.reduce_slot.memory.ToGB()));
  return spec;
}

Json WorkflowToJson(const DagWorkflow& flow) {
  Json j = Json::MakeObject();
  j.Set("name", Json::MakeString(flow.name()));
  Json jobs = Json::MakeArray();
  for (const auto& job : flow.jobs()) jobs.Append(JobSpecToJson(job.spec));
  j.Set("jobs", std::move(jobs));
  Json edges = Json::MakeArray();
  for (const auto& [from, to] : flow.edges()) {
    Json edge = Json::MakeArray();
    edge.Append(Json::MakeNumber(from));
    edge.Append(Json::MakeNumber(to));
    edges.Append(std::move(edge));
  }
  j.Set("edges", std::move(edges));
  return j;
}

Result<DagWorkflow> WorkflowFromJson(const Json& json) {
  if (json.type() != Json::Type::kObject) {
    return Status::InvalidArgument("workflow must be a JSON object");
  }
  const Json* jobs = json.Get("jobs");
  if (jobs == nullptr || jobs->type() != Json::Type::kArray) {
    return Status::InvalidArgument("workflow needs a \"jobs\" array");
  }
  DagBuilder builder(json.GetString("name", "workflow"));
  for (const Json& job : jobs->AsArray()) {
    Result<JobSpec> spec = JobSpecFromJson(job);
    if (!spec.ok()) return spec.status();
    builder.AddJob(std::move(spec).value());
  }
  if (const Json* edges = json.Get("edges"); edges != nullptr) {
    if (edges->type() != Json::Type::kArray) {
      return Status::InvalidArgument("\"edges\" must be an array");
    }
    for (const Json& edge : edges->AsArray()) {
      if (edge.type() != Json::Type::kArray || edge.AsArray().size() != 2) {
        return Status::InvalidArgument("each edge must be a [from, to] pair");
      }
      builder.AddEdge(static_cast<JobId>(edge.AsArray()[0].AsNumber()),
                      static_cast<JobId>(edge.AsArray()[1].AsNumber()));
    }
  }
  return std::move(builder).Build();
}

Status SaveWorkflow(const DagWorkflow& flow, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path + " for writing");
  out << WorkflowToJson(flow).Dump();
  return out.good() ? Status::Ok() : Status::Internal("write failed: " + path);
}

Result<DagWorkflow> LoadWorkflow(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<Json> json = Json::Parse(buffer.str());
  if (!json.ok()) return json.status();
  return WorkflowFromJson(*json);
}

}  // namespace dagperf
