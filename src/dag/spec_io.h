#ifndef DAGPERF_DAG_SPEC_IO_H_
#define DAGPERF_DAG_SPEC_IO_H_

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "dag/dag_workflow.h"
#include "workload/job_spec.h"

namespace dagperf {

/// JSON (de)serialisation of workload descriptions, so workflows can be
/// authored as files and fed to the CLI / stored next to experiment
/// results. The document format:
///
///   {
///     "name": "my-flow",
///     "jobs": [ { "name": "...", "input_gb": 100, ... }, ... ],
///     "edges": [ [0, 1], [0, 2] ]
///   }
///
/// Job fields use human units (GB, MB, MB/s); absent fields keep JobSpec's
/// defaults, and unknown fields are rejected (catching typos in authored
/// files).

/// Serialises one JobSpec.
Json JobSpecToJson(const JobSpec& spec);

/// Parses one JobSpec object; rejects unknown keys and out-of-range values
/// (via CompileJob validation at Build time for the latter).
Result<JobSpec> JobSpecFromJson(const Json& json);

/// Serialises a whole workflow.
Json WorkflowToJson(const DagWorkflow& flow);

/// Parses and builds a workflow (topology and specs validated by
/// DagBuilder::Build).
Result<DagWorkflow> WorkflowFromJson(const Json& json);

/// File convenience wrappers.
Status SaveWorkflow(const DagWorkflow& flow, const std::string& path);
Result<DagWorkflow> LoadWorkflow(const std::string& path);

}  // namespace dagperf

#endif  // DAGPERF_DAG_SPEC_IO_H_
