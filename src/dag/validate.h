#ifndef DAGPERF_DAG_VALIDATE_H_
#define DAGPERF_DAG_VALIDATE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/validation.h"
#include "dag/dag_workflow.h"
#include "workload/job_spec.h"

namespace dagperf {

/// Caps on workflow shape. Generous for real workloads (the paper's largest
/// DAGs have a handful of jobs; production DAGs have thousands of stages at
/// most) but small enough that every derived count — map tasks from
/// input/split, resolved reducers, total stages — fits comfortably in int
/// arithmetic, so downstream code can cast without overflow checks.
inline constexpr int kMaxJobsPerWorkflow = 100'000;
inline constexpr int kMaxEdgesPerWorkflow = 1'000'000;
inline constexpr int kMaxTasksPerStage = 10'000'000;

/// Validation-firewall entry points for workflow descriptions.
///
/// These collect *all* violations of a spec as JSON-pointer diagnostics
/// (see common/validation.h) and are wired in front of every user-reachable
/// ingestion path: WorkflowFromJson/LoadWorkflow run ValidateWorkflowSpec
/// before building, and Simulator::Run / StateBasedEstimator::Estimate /
/// EstimateBatch re-validate built inputs cheaply. Downstream code keeps
/// DAGPERF_CHECK for true invariants — by the time a spec passes the
/// firewall, a failed CHECK means a library bug, not bad input.
///
/// NaN/Inf discipline: every rule is written NaN-safe (`!(x > 0)` instead of
/// `x <= 0`), so non-finite values coming from arithmetic overflow in JSON
/// (e.g. "1e400" parsing to Inf, or GB-to-bytes scaling overflowing) are
/// named violations instead of poison propagating into estimates.

/// Validates one job spec's fields and derived sizes (map task count,
/// resolved reducer count). Pointers are rooted at `prefix` and use the
/// spec_io JSON field names ("/input_gb", "/map_slot_vcores", ...).
ValidationReport ValidateJobSpec(const JobSpec& spec,
                                 const std::string& prefix = "");

/// Validates a whole workflow description before DagBuilder::Build: every
/// job spec (under "/jobs/<i>"), every edge ("/edges/<k>": range, self-loop,
/// duplicate), and acyclicity over the well-formed edges.
ValidationReport ValidateWorkflowSpec(
    const std::vector<JobSpec>& jobs,
    const std::vector<std::pair<JobId, JobId>>& edges);

/// Re-validates an already-built workflow: each job's spec plus the compiled
/// profile (finite non-negative sub-stage demands, positive task counts).
/// Topology is construction-guaranteed by DagBuilder. This is the check the
/// estimator-facing firewall runs on programmatically built flows, and the
/// property tests run over every built-in workload suite.
ValidationReport ValidateWorkflow(const DagWorkflow& flow);

}  // namespace dagperf

#endif  // DAGPERF_DAG_VALIDATE_H_
