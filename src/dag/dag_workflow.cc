#include "dag/dag_workflow.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <queue>
#include <set>

#include "common/check.h"

namespace dagperf {

namespace {

/// Appends the raw bit patterns of numeric fields — exact, no formatting
/// loss. Numeric blocks go through a stack buffer in one append() each; the
/// serialiser runs once per job at Build() time, but the bytes it produces
/// are compared and hashed on every incremental-estimation lookup, so the
/// layout stays dense and deterministic.
void AppendStageProfile(std::string& out, const StageProfile& stage) {
  out += stage.name;
  out += '\0';
  char head[1 + 4 * sizeof(double)];
  char* p = head;
  *p++ = static_cast<char>(stage.kind);
  const double fields[4] = {static_cast<double>(stage.num_tasks),
                            stage.task_size_cv, stage.slot.vcores,
                            stage.slot.memory.value()};
  std::memcpy(p, fields, sizeof(fields));
  out.append(head, sizeof(head));
  for (const SubStageProfile& sub : stage.substages) {
    char block[sizeof(sub.demand.values) + 1];
    std::memcpy(block, sub.demand.values.data(), sizeof(sub.demand.values));
    block[sizeof(sub.demand.values)] = ';';
    out.append(block, sizeof(block));
  }
  out += '|';
}

void AppendInt64(std::string& out, std::int64_t value) {
  char bits[sizeof(std::int64_t)];
  std::memcpy(bits, &value, sizeof(std::int64_t));
  out.append(bits, sizeof(std::int64_t));
}

}  // namespace

const JobProfile& DagWorkflow::job(JobId id) const {
  DAGPERF_CHECK(id >= 0 && id < num_jobs());
  return jobs_[id];
}

const std::vector<JobId>& DagWorkflow::parents(JobId id) const {
  DAGPERF_CHECK(id >= 0 && id < num_jobs());
  return parents_[id];
}

const std::string& DagWorkflow::job_fingerprint(JobId id) const {
  DAGPERF_CHECK(id >= 0 && id < num_jobs());
  return job_fingerprints_[id];
}

std::size_t DagWorkflow::job_fingerprint_hash(JobId id) const {
  DAGPERF_CHECK(id >= 0 && id < num_jobs());
  return job_fingerprint_hashes_[id];
}

const std::vector<JobId>& DagWorkflow::children(JobId id) const {
  DAGPERF_CHECK(id >= 0 && id < num_jobs());
  return children_[id];
}

std::vector<JobId> DagWorkflow::Sources() const {
  std::vector<JobId> out;
  for (JobId id = 0; id < num_jobs(); ++id) {
    if (parents_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<JobId> DagWorkflow::TopologicalOrder() const {
  std::vector<int> indegree(num_jobs());
  for (JobId id = 0; id < num_jobs(); ++id) {
    indegree[id] = static_cast<int>(parents_[id].size());
  }
  // Min-heap on id for a stable order.
  std::priority_queue<JobId, std::vector<JobId>, std::greater<JobId>> ready;
  for (JobId id = 0; id < num_jobs(); ++id) {
    if (indegree[id] == 0) ready.push(id);
  }
  std::vector<JobId> order;
  order.reserve(num_jobs());
  while (!ready.empty()) {
    const JobId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (JobId child : children_[id]) {
      if (--indegree[child] == 0) ready.push(child);
    }
  }
  DAGPERF_CHECK_MSG(static_cast<int>(order.size()) == num_jobs(),
                    "workflow contains a cycle (Build() should have rejected it)");
  return order;
}

int DagWorkflow::TotalStages() const {
  int stages = 0;
  for (const auto& job : jobs_) stages += job.has_reduce() ? 2 : 1;
  return stages;
}

DagBuilder::DagBuilder(std::string name) : name_(std::move(name)) {}

JobId DagBuilder::AddJob(JobSpec spec) {
  specs_.push_back(std::move(spec));
  return static_cast<JobId>(specs_.size()) - 1;
}

DagBuilder& DagBuilder::AddEdge(JobId from, JobId to) {
  edges_.emplace_back(from, to);
  return *this;
}

JobId DagBuilder::AddJobAfter(JobId after, JobSpec spec) {
  const JobId id = AddJob(std::move(spec));
  AddEdge(after, id);
  return id;
}

Result<DagWorkflow> DagBuilder::Build() && {
  const int n = static_cast<int>(specs_.size());
  if (n == 0) return Status::InvalidArgument(name_ + ": workflow has no jobs");

  std::set<std::pair<JobId, JobId>> seen;
  for (const auto& [from, to] : edges_) {
    if (from < 0 || from >= n || to < 0 || to >= n) {
      return Status::InvalidArgument(name_ + ": edge references unknown job");
    }
    if (from == to) {
      return Status::InvalidArgument(name_ + ": self edge on job " +
                                     specs_[from].name);
    }
    if (!seen.insert({from, to}).second) {
      return Status::InvalidArgument(name_ + ": duplicate edge");
    }
  }

  DagWorkflow flow;
  flow.name_ = name_;
  flow.edges_ = edges_;
  flow.parents_.resize(n);
  flow.children_.resize(n);
  for (const auto& [from, to] : edges_) {
    flow.children_[from].push_back(to);
    flow.parents_[to].push_back(from);
  }
  for (auto& v : flow.parents_) std::sort(v.begin(), v.end());
  for (auto& v : flow.children_) std::sort(v.begin(), v.end());

  // Cycle check via Kahn's algorithm.
  std::vector<int> indegree(n);
  for (JobId id = 0; id < n; ++id) {
    indegree[id] = static_cast<int>(flow.parents_[id].size());
  }
  std::queue<JobId> ready;
  for (JobId id = 0; id < n; ++id) {
    if (indegree[id] == 0) ready.push(id);
  }
  int visited = 0;
  while (!ready.empty()) {
    const JobId id = ready.front();
    ready.pop();
    ++visited;
    for (JobId child : flow.children_[id]) {
      if (--indegree[child] == 0) ready.push(child);
    }
  }
  if (visited != n) return Status::InvalidArgument(name_ + ": cycle detected");

  flow.jobs_.reserve(n);
  for (const auto& spec : specs_) {
    Result<JobProfile> profile = CompileJob(spec);
    if (!profile.ok()) return profile.status();
    flow.jobs_.push_back(std::move(profile).value());
  }

  // Structural fingerprints, precomputed while the flow is being frozen:
  // the compiled stage profiles plus the sorted parent list, byte-exact.
  flow.job_fingerprints_.resize(n);
  flow.job_fingerprint_hashes_.resize(n);
  const std::hash<std::string> hasher;
  for (JobId id = 0; id < n; ++id) {
    std::string& fp = flow.job_fingerprints_[id];
    const JobProfile& job = flow.jobs_[id];
    AppendStageProfile(fp, job.map);
    fp += job.has_reduce() ? '\1' : '\0';
    if (job.has_reduce()) AppendStageProfile(fp, *job.reduce);
    const std::vector<JobId>& parents = flow.parents_[id];
    AppendInt64(fp, static_cast<std::int64_t>(parents.size()));
    for (JobId parent : parents) AppendInt64(fp, parent);
    flow.job_fingerprint_hashes_[id] = hasher(fp);
  }
  return flow;
}

}  // namespace dagperf
