#ifndef DAGPERF_DAG_DAG_WORKFLOW_H_
#define DAGPERF_DAG_DAG_WORKFLOW_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "workload/job_profile.h"
#include "workload/job_spec.h"

namespace dagperf {

/// Index of a job within its workflow.
using JobId = int;

/// A DAG workflow per Definition 1 of the paper: a set of jobs J and edges E
/// where (j_m, j_n) means j_n may start only after j_m completes. Multiple
/// source jobs (and generally any antichain) run in parallel.
///
/// Instances are immutable once built; construct via DagBuilder, which
/// compiles each JobSpec and validates the topology.
class DagWorkflow {
 public:
  const std::string& name() const { return name_; }
  int num_jobs() const { return static_cast<int>(jobs_.size()); }
  const JobProfile& job(JobId id) const;
  const std::vector<JobProfile>& jobs() const { return jobs_; }
  const std::vector<std::pair<JobId, JobId>>& edges() const { return edges_; }

  const std::vector<JobId>& parents(JobId id) const;
  const std::vector<JobId>& children(JobId id) const;

  /// Jobs with no parents (runnable at workflow start).
  std::vector<JobId> Sources() const;

  /// A topological order of the jobs (stable: ties broken by id).
  std::vector<JobId> TopologicalOrder() const;

  /// Total schedulable stages across jobs (map + reduce), the upper bound on
  /// workflow state transitions contributed by stage starts/completions.
  int TotalStages() const;

  /// Exact-byte structural fingerprint of one job: the compiled stage
  /// profiles (every field a task-time model can read) plus the sorted
  /// parent list. Two jobs with equal fingerprints are interchangeable for
  /// any estimate — the incremental engine keys checkpoint prefixes on these
  /// bytes and the sweep engine orders candidates by them. Precomputed at
  /// Build() time, because the hot re-estimation paths read them on every
  /// call while the flow itself is immutable.
  const std::string& job_fingerprint(JobId id) const;
  const std::vector<std::string>& job_fingerprints() const {
    return job_fingerprints_;
  }
  /// std::hash of job_fingerprint(id) — a cheap per-job ordering signature
  /// (stable within the process; not for persistence).
  std::size_t job_fingerprint_hash(JobId id) const;

 private:
  friend class DagBuilder;
  DagWorkflow() = default;

  std::string name_;
  std::vector<JobProfile> jobs_;
  std::vector<std::pair<JobId, JobId>> edges_;
  std::vector<std::vector<JobId>> parents_;
  std::vector<std::vector<JobId>> children_;
  std::vector<std::string> job_fingerprints_;
  std::vector<std::size_t> job_fingerprint_hashes_;
};

/// Incremental builder. Usage:
///
///   DagBuilder b("my-flow");
///   JobId a = b.AddJob(spec_a);
///   JobId c = b.AddJob(spec_c);
///   b.AddEdge(a, c);
///   Result<DagWorkflow> flow = std::move(b).Build();
///
/// Build() compiles every JobSpec and rejects cycles, self-edges, duplicate
/// edges and out-of-range ids.
class DagBuilder {
 public:
  explicit DagBuilder(std::string name);

  JobId AddJob(JobSpec spec);
  DagBuilder& AddEdge(JobId from, JobId to);

  /// Convenience for linear pipelines: adds the job and an edge from `after`.
  JobId AddJobAfter(JobId after, JobSpec spec);

  Result<DagWorkflow> Build() &&;

 private:
  std::string name_;
  std::vector<JobSpec> specs_;
  std::vector<std::pair<JobId, JobId>> edges_;
};

}  // namespace dagperf

#endif  // DAGPERF_DAG_DAG_WORKFLOW_H_
