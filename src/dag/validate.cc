#include "dag/validate.h"

#include <cmath>
#include <cstdio>
#include <deque>
#include <set>

#include "workload/job_profile.h"

namespace dagperf {

namespace {

/// Largest sensible HDFS replica count; replicas multiply write volume, so an
/// absurd value turns into an absurd (if finite) estimate — cap it instead.
constexpr int kMaxReplicas = 1000;

std::string Num(double v) { return std::to_string(v); }

/// Pointer strings are built ONLY when a violation is recorded: the
/// validation firewall runs in front of every estimate, so its happy path
/// must not pay for string concatenation. Validators therefore pass the
/// (prefix, field) pair down and concatenate lazily here.
std::string Pointer(const std::string& prefix, const char* field) {
  return prefix + field;
}

std::string Pointer(const std::string& prefix, const char* stage,
                    const char* field) {
  return prefix + stage + field;
}

/// NaN-safe "must be positive and finite": NaN fails every comparison, so
/// `!(v > 0)` catches it where `v <= 0` would let it through.
void RequirePositiveFinite(double v, const std::string& prefix,
                           const char* field, ValidationReport& report) {
  if (!std::isfinite(v)) {
    report.Add(Pointer(prefix, field), "must be finite, got " + Num(v));
  } else if (!(v > 0)) {
    report.Add(Pointer(prefix, field), "must be positive, got " + Num(v));
  }
}

void RequireNonNegativeFinite(double v, const std::string& prefix,
                              const char* field, ValidationReport& report) {
  if (!std::isfinite(v)) {
    report.Add(Pointer(prefix, field), "must be finite, got " + Num(v));
  } else if (!(v >= 0)) {
    report.Add(Pointer(prefix, field), "must be >= 0, got " + Num(v));
  }
}

void RequireFraction(double v, const std::string& prefix, const char* field,
                     ValidationReport& report) {
  if (!(v >= 0) || !(v <= 1)) {  // NaN fails both arms.
    report.Add(Pointer(prefix, field), "must be in [0, 1], got " + Num(v));
  }
}

/// Positive-finite check for a stage-scoped field ("/map/slot/vcores").
void RequireStagePositiveFinite(double v, const std::string& prefix,
                                const char* stage, const char* field,
                                ValidationReport& report) {
  if (!std::isfinite(v)) {
    report.Add(Pointer(prefix, stage, field), "must be finite, got " + Num(v));
  } else if (!(v > 0)) {
    report.Add(Pointer(prefix, stage, field),
               "must be positive, got " + Num(v));
  }
}

bool IsPositiveFinite(double v) { return std::isfinite(v) && v > 0; }

/// Compiled-stage checks for ValidateWorkflow: demands must be finite and
/// non-negative, task counts in range. Pointers name the compiled stage
/// ("/jobs/2/reduce/..."), not a JSON field — these flows were built in code.
void CheckStageProfile(const StageProfile& stage, const std::string& prefix,
                       const char* stage_field, ValidationReport& report) {
  if (stage.num_tasks < 1) {
    report.Add(Pointer(prefix, stage_field, "/num_tasks"),
               "must be >= 1, got " + std::to_string(stage.num_tasks));
  } else if (stage.num_tasks > kMaxTasksPerStage) {
    report.Add(Pointer(prefix, stage_field, "/num_tasks"),
               "exceeds the " + std::to_string(kMaxTasksPerStage) +
                   " tasks-per-stage cap");
  }
  RequireStagePositiveFinite(stage.slot.vcores, prefix, stage_field,
                             "/slot/vcores", report);
  RequireStagePositiveFinite(stage.slot.memory.ToGB(), prefix, stage_field,
                             "/slot/memory_gb", report);
  if (!std::isfinite(stage.task_size_cv) || !(stage.task_size_cv >= 0)) {
    report.Add(Pointer(prefix, stage_field, "/task_size_cv"),
               std::isfinite(stage.task_size_cv)
                   ? "must be >= 0, got " + Num(stage.task_size_cv)
                   : "must be finite, got " + Num(stage.task_size_cv));
  }
  for (size_t s = 0; s < stage.substages.size(); ++s) {
    const SubStageProfile& sub = stage.substages[s];
    for (Resource r : kAllResources) {
      const double demand = sub.demand[r];
      if (!std::isfinite(demand) || !(demand >= 0)) {
        report.Add(prefix + stage_field + "/substages/" + std::to_string(s),
                   "sub-stage \"" + sub.name + "\" has bad " +
                       ResourceName(r) + " demand " + Num(demand));
      }
    }
  }
}

}  // namespace

ValidationReport ValidateJobSpec(const JobSpec& spec,
                                 const std::string& prefix) {
  ValidationReport report;
  RequirePositiveFinite(spec.input.ToGB(), prefix, "/input_gb", report);
  RequirePositiveFinite(spec.split_size.ToMB(), prefix, "/split_mb", report);
  if (spec.num_reduce_tasks < kAutoReducers) {
    report.Add(Pointer(prefix, "/num_reduce_tasks"),
               "must be >= -1 (-1 = auto), got " +
                   std::to_string(spec.num_reduce_tasks));
  } else if (spec.num_reduce_tasks > kMaxTasksPerStage) {
    report.Add(Pointer(prefix, "/num_reduce_tasks"),
               "exceeds the " + std::to_string(kMaxTasksPerStage) +
                   " tasks-per-stage cap");
  }
  RequireNonNegativeFinite(spec.map_selectivity, prefix, "/map_selectivity",
                           report);
  RequireNonNegativeFinite(spec.reduce_selectivity, prefix,
                           "/reduce_selectivity", report);
  if (!(spec.compression_ratio > 0) || !(spec.compression_ratio <= 1)) {
    report.Add(Pointer(prefix, "/compression_ratio"),
               "must be in (0, 1], got " + Num(spec.compression_ratio));
  }
  if (spec.replicas < 1) {
    report.Add(Pointer(prefix, "/replicas"),
               "must be >= 1, got " + std::to_string(spec.replicas));
  } else if (spec.replicas > kMaxReplicas) {
    report.Add(Pointer(prefix, "/replicas"), "exceeds the " +
                                                 std::to_string(kMaxReplicas) +
                                                 " replica cap");
  }
  RequirePositiveFinite(spec.map_compute.ToMBps(), prefix,
                        "/map_compute_mbps", report);
  RequirePositiveFinite(spec.reduce_compute.ToMBps(), prefix,
                        "/reduce_compute_mbps", report);
  RequirePositiveFinite(spec.sort_compute.ToMBps(), prefix,
                        "/sort_compute_mbps", report);
  RequirePositiveFinite(spec.compress_compute.ToMBps(), prefix,
                        "/compress_compute_mbps", report);
  RequireFraction(spec.remote_read_fraction, prefix, "/remote_read_fraction",
                  report);
  RequireFraction(spec.input_cache_fraction, prefix, "/input_cache_fraction",
                  report);
  RequireFraction(spec.shuffle_cache_hit, prefix, "/shuffle_cache_hit",
                  report);
  RequirePositiveFinite(spec.sort_buffer.ToMB(), prefix, "/sort_buffer_mb",
                        report);
  RequirePositiveFinite(spec.reduce_merge_buffer.ToMB(), prefix,
                        "/reduce_merge_buffer_mb", report);
  RequireNonNegativeFinite(spec.reduce_skew_cv, prefix, "/reduce_skew_cv",
                           report);
  RequirePositiveFinite(spec.map_slot.vcores, prefix, "/map_slot_vcores",
                        report);
  RequirePositiveFinite(spec.map_slot.memory.ToGB(), prefix,
                        "/map_slot_memory_gb", report);
  RequirePositiveFinite(spec.reduce_slot.vcores, prefix,
                        "/reduce_slot_vcores", report);
  RequirePositiveFinite(spec.reduce_slot.memory.ToGB(), prefix,
                        "/reduce_slot_memory_gb", report);

  // Derived sizes, checked only once their inputs are individually valid (so
  // a single bad field does not also produce derived-value noise). All
  // arithmetic stays in double space: the point is to reject values whose
  // int casts downstream would overflow or whose products go non-finite.
  const bool input_ok = IsPositiveFinite(spec.input.value());
  const bool split_ok = IsPositiveFinite(spec.split_size.value());
  const bool map_sel_ok =
      std::isfinite(spec.map_selectivity) && spec.map_selectivity >= 0;
  if (input_ok && split_ok) {
    const double maps = std::ceil(spec.input.value() / spec.split_size.value());
    if (!(maps <= kMaxTasksPerStage)) {
      report.Add(prefix + "/split_mb",
                 "derives " + Num(maps) + " map tasks, exceeding the " +
                     std::to_string(kMaxTasksPerStage) + " tasks-per-stage cap");
    }
  }
  if (input_ok && map_sel_ok) {
    const double raw_bytes = spec.input.value() * spec.map_selectivity;
    if (!std::isfinite(raw_bytes)) {
      report.Add(prefix + "/map_selectivity",
                 "raw map output (input * selectivity) is not finite");
    } else if (spec.num_reduce_tasks == kAutoReducers) {
      const double reducers = std::ceil(raw_bytes / 1e9);
      if (!(reducers <= kMaxTasksPerStage)) {
        report.Add(prefix + "/num_reduce_tasks",
                   "auto-derived reducer count " + Num(reducers) +
                       " exceeds the " + std::to_string(kMaxTasksPerStage) +
                       " tasks-per-stage cap");
      }
    }
  }
  return report;
}

ValidationReport ValidateWorkflowSpec(
    const std::vector<JobSpec>& jobs,
    const std::vector<std::pair<JobId, JobId>>& edges) {
  ValidationReport report;
  if (jobs.empty()) {
    report.Add("/jobs", "workflow needs at least one job");
  } else if (jobs.size() > static_cast<size_t>(kMaxJobsPerWorkflow)) {
    report.Add("/jobs", "exceeds the " + std::to_string(kMaxJobsPerWorkflow) +
                            " jobs-per-workflow cap");
  } else {
    for (size_t i = 0; i < jobs.size(); ++i) {
      report.Merge(ValidateJobSpec(jobs[i], "/jobs/" + std::to_string(i)));
    }
  }

  const int n = static_cast<int>(jobs.size());
  if (edges.size() > static_cast<size_t>(kMaxEdgesPerWorkflow)) {
    report.Add("/edges", "exceeds the " +
                             std::to_string(kMaxEdgesPerWorkflow) +
                             " edges-per-workflow cap");
    return report;  // Refuse to chew through an adversarial edge list.
  }
  std::set<std::pair<JobId, JobId>> seen;
  std::vector<std::vector<JobId>> children(n);
  std::vector<int> indegree(n, 0);
  for (size_t k = 0; k < edges.size(); ++k) {
    const auto& [from, to] = edges[k];
    const std::string pointer = "/edges/" + std::to_string(k);
    if (from < 0 || from >= n) {
      report.Add(pointer + "/0", "job id " + std::to_string(from) +
                                     " out of range [0, " + std::to_string(n) +
                                     ")");
      continue;
    }
    if (to < 0 || to >= n) {
      report.Add(pointer + "/1", "job id " + std::to_string(to) +
                                     " out of range [0, " + std::to_string(n) +
                                     ")");
      continue;
    }
    if (from == to) {
      report.Add(pointer, "self-edge on job " + std::to_string(from));
      continue;
    }
    if (!seen.insert({from, to}).second) {
      report.Add(pointer, "duplicate edge " + std::to_string(from) + " -> " +
                              std::to_string(to));
      continue;
    }
    children[from].push_back(to);
    ++indegree[to];
  }

  // Kahn's algorithm over the well-formed edges; whatever is left with a
  // positive in-degree sits on (or behind) a cycle.
  std::deque<JobId> ready;
  for (JobId j = 0; j < n; ++j) {
    if (indegree[j] == 0) ready.push_back(j);
  }
  int visited = 0;
  while (!ready.empty()) {
    const JobId j = ready.front();
    ready.pop_front();
    ++visited;
    for (JobId c : children[j]) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  if (visited < n) {
    std::string cyclic;
    for (JobId j = 0; j < n; ++j) {
      if (indegree[j] > 0) {
        if (!cyclic.empty()) cyclic += ", ";
        cyclic += std::to_string(j);
        if (!jobs[j].name.empty()) cyclic += " (" + jobs[j].name + ")";
      }
    }
    report.Add("/edges", "cycle detected involving jobs " + cyclic);
  }
  return report;
}

ValidationReport ValidateWorkflow(const DagWorkflow& flow) {
  ValidationReport report;
  if (flow.num_jobs() == 0) {
    report.Add("/jobs", "workflow needs at least one job");
    return report;
  }
  for (JobId i = 0; i < flow.num_jobs(); ++i) {
    const JobProfile& job = flow.job(i);
    // Fits the small-string buffer, so the happy path stays allocation-free.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/jobs/%d", static_cast<int>(i));
    const std::string prefix(buf);
    report.Merge(ValidateJobSpec(job.spec, prefix));
    CheckStageProfile(job.map, prefix, "/map", report);
    if (job.has_reduce()) {
      CheckStageProfile(*job.reduce, prefix, "/reduce", report);
    }
  }
  return report;
}

}  // namespace dagperf
