#ifndef DAGPERF_BOE_BOE_MODEL_H_
#define DAGPERF_BOE_BOE_MODEL_H_

#include <string>
#include <vector>

#include "cluster/cluster_spec.h"
#include "cluster/resources.h"
#include "common/units.h"
#include "workload/job_profile.h"

namespace dagperf {

/// Options for the Bottleneck Oriented Estimation model.
struct BoeOptions {
  /// How contention on shared resources is counted across sub-stages.
  enum class ContentionMode {
    /// Paper-faithful (Eq. 5): every task of every co-running stage contends
    /// on each resource its stage uses, i.e. mu_X(Delta) = 1/Delta_X where
    /// Delta_X counts all tasks whose stage demands X anywhere.
    kPaper,
    /// Steady-state refinement: the task population of a stage is spread
    /// across its sub-stages in proportion to sub-stage durations, and
    /// allocations come from the exact max-min fair-share solver. Kept as an
    /// ablation of the paper's simplification (see bench_ablation).
    kSteadyState,
    /// Wave-aligned refinement (default): tasks of the *queried* stage are
    /// assumed sub-stage aligned (slot scheduling launches them in waves
    /// that progress in lock-step), while co-running stages' tasks spread
    /// across their sub-stages and consume only their effective usage
    /// (p_X < 1 for non-bottleneck resources, §III-A3). Reduces to the
    /// paper rule for a single stage with one dominant sub-stage.
    kAlignedSelf,
  };

  ContentionMode mode = ContentionMode::kAlignedSelf;
  /// Fixed-point iterations for kSteadyState.
  int max_iterations = 60;
  double tolerance = 1e-9;
};

/// Per-operation cost inside one sub-stage estimate.
struct OpEstimate {
  Resource resource = Resource::kCpu;
  /// Demand in resource units (bytes, or core-seconds for CPU).
  double demand = 0.0;
  /// Time this operation alone would need at its allocated share.
  Duration time;
  /// Effective utilisation p_X of the allocated share: time / substage time
  /// (1.0 exactly for the bottleneck resource).
  double utilization = 0.0;
};

/// Estimate for one pipelined sub-stage: the max over its operations.
struct SubStageEstimate {
  std::string name;
  Duration duration;
  Resource bottleneck = Resource::kCpu;
  std::vector<OpEstimate> ops;
};

/// Estimate for one task of a stage: the sum of its sub-stage estimates
/// (sub-stages are separated by bulk synchronisation and do not overlap).
struct TaskEstimate {
  std::string stage_name;
  Duration duration;
  /// Bottleneck of the longest sub-stage — "the" bottleneck of the stage.
  Resource bottleneck = Resource::kCpu;
  std::vector<SubStageEstimate> substages;
};

/// A stage running concurrently with others in one workflow state.
struct ParallelStage {
  const StageProfile* stage = nullptr;
  /// Average concurrent tasks of this stage per node (Delta_i / #nodes).
  /// May be fractional.
  double tasks_per_node = 0.0;
};

/// Bottleneck Oriented Estimation (paper §III).
///
/// Estimates task execution time by pricing each sub-stage's operations at
/// the throughput share the task receives given the degree of parallelism,
/// and taking the max (pipelined operations overlap; the slowest one paces
/// the tuple pipeline). The model is purely analytical: inputs are a node
/// spec, compiled stage profiles, and task populations.
class BoeModel {
 public:
  explicit BoeModel(const NodeSpec& node, BoeOptions options = {});

  /// Checks the node's effective throughputs: InvalidArgument naming every
  /// resource axis whose capacity is zero, negative, NaN, or infinite.
  /// Estimate* methods stay total even on a bad node (a zero/NaN capacity
  /// prices affected operations at Duration::Infinite(), never NaN), but
  /// callers feeding user-supplied hardware specs should check this first —
  /// the estimator/simulator firewall does it via ValidateClusterSpec.
  Status Validate() const;

  /// Task time for a single stage running alone with `tasks_per_node`
  /// concurrent tasks per node.
  TaskEstimate EstimateTask(const StageProfile& stage, double tasks_per_node) const;

  /// Task times for multiple stages sharing the cluster in one workflow
  /// state (parallel jobs). Returns one estimate per input stage.
  std::vector<TaskEstimate> EstimateParallel(
      const std::vector<ParallelStage>& stages) const;

  /// Duration-only fast path for hot loops: writes one task duration in
  /// seconds per input stage into `*out` (resized, capacity reused).
  /// Bit-identical to the `.duration` fields of EstimateParallel but skips
  /// the per-operation/sub-stage breakdown — no strings, no OpEstimate
  /// vectors, flat thread-local scratch — so the per-op max over resources
  /// compiles to a branch-free loop over the fixed resource axes.
  void EstimateDurations(const std::vector<ParallelStage>& stages,
                         std::vector<double>* out) const;

  const NodeSpec& node() const { return node_; }
  const BoeOptions& options() const { return options_; }

 private:
  std::vector<TaskEstimate> EstimatePaper(const std::vector<ParallelStage>& stages) const;
  std::vector<TaskEstimate> EstimateSteadyState(
      const std::vector<ParallelStage>& stages) const;
  std::vector<TaskEstimate> EstimateAlignedSelf(
      const std::vector<ParallelStage>& stages) const;

  void DurationsPaper(const std::vector<ParallelStage>& stages,
                      std::vector<double>* out) const;
  void DurationsSteadyState(const std::vector<ParallelStage>& stages,
                            std::vector<double>* out) const;
  void DurationsAlignedSelf(const std::vector<ParallelStage>& stages,
                            std::vector<double>* out) const;

  NodeSpec node_;
  ResourceVector capacities_;
  BoeOptions options_;
};

}  // namespace dagperf

#endif  // DAGPERF_BOE_BOE_MODEL_H_
