#include "boe/boe_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/rate_solver.h"
#include "common/check.h"

namespace dagperf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-task rate caps: a single-threaded task uses at most one core; I/O has
/// no per-task cap beyond the device itself.
ResourceVector PerTaskCaps() {
  ResourceVector caps;
  caps[Resource::kCpu] = 1.0;
  return caps;
}

/// Builds a sub-stage estimate given the per-task allocated throughput on
/// each resource (resource units per second available to this task).
SubStageEstimate EstimateSubStage(const SubStageProfile& substage,
                                  const ResourceVector& alloc) {
  SubStageEstimate est;
  est.name = substage.name;
  double worst = 0.0;
  for (Resource r : kAllResources) {
    const double demand = substage.demand[r];
    if (demand <= 0) continue;  // NaN demand fails this test and is priced.
    OpEstimate op;
    op.resource = r;
    op.demand = demand;
    const double a = alloc[r];
    // Zero/negative/NaN throughput means the operation can never complete;
    // a non-finite demand is poison that must surface, not propagate — both
    // price at Infinite, so no NaN ever reaches the duration arithmetic.
    op.time = std::isfinite(demand) && a > 0 ? Duration(demand / a)
                                             : Duration::Infinite();
    est.ops.push_back(op);
    if (op.time.seconds() > worst) {
      worst = op.time.seconds();
      est.bottleneck = r;
    }
  }
  est.duration = Duration(worst);
  for (auto& op : est.ops) {
    op.utilization = worst > 0 ? op.time.seconds() / worst : 0.0;
  }
  return est;
}

/// Duration of one sub-stage at the given per-task allocation: the max over
/// its priced operations. Mirrors EstimateSubStage's pricing exactly —
/// demand <= 0 is unpriced, a NaN demand or non-positive throughput prices
/// at infinity — but as a select-and-max over the fixed resource axes with
/// no per-operation state, so the compiler can unroll and vectorize it.
inline double SubStageDuration(const SubStageProfile& substage,
                               const ResourceVector& alloc) {
  double worst = 0.0;
  for (int r = 0; r < kNumResources; ++r) {
    const double d = substage.demand.values[r];
    const double a = alloc.values[r];
    const bool priced = !(d <= 0.0);  // NaN demand is priced (at infinity).
    const double t = priced ? (std::isfinite(d) && a > 0 ? d / a : kInf) : 0.0;
    worst = t > worst ? t : worst;
  }
  return worst;
}

/// Per-task paper-rule allocation (Eq. 5 equal split, clipped by the
/// per-task caps) — shared by EstimatePaper and the duration-only path.
ResourceVector PaperAllocation(const ResourceVector& capacities,
                               const std::vector<ParallelStage>& stages) {
  ResourceVector contenders;
  for (const auto& ps : stages) {
    const ResourceVector total = ps.stage->TotalDemand();
    for (Resource r : kAllResources) {
      if (total[r] > 0) contenders[r] += ps.tasks_per_node;
    }
  }
  const ResourceVector task_caps = PerTaskCaps();
  ResourceVector alloc;
  for (Resource r : kAllResources) {
    double share = contenders[r] > 0 ? capacities[r] / contenders[r] : capacities[r];
    // A lone task cannot exceed its own per-task cap (e.g. one core), but it
    // can always use at least what an equal split would give it.
    if (task_caps[r] > 0) share = std::min(std::max(share, 0.0), task_caps[r]);
    alloc[r] = share;
  }
  return alloc;
}

/// Flat scratch for the duration-only iterative modes: sub-stage and task
/// durations live in index-addressed arrays reused across calls.
struct DurationScratch {
  std::vector<size_t> offset;  // substage array offset per stage
  std::vector<double> sub;     // current sub-stage durations (flat)
  std::vector<double> next_sub;
  std::vector<double> task;  // current task durations
  std::vector<double> next_task;
  std::vector<Flow> flows;
  std::vector<std::pair<size_t, size_t>> flow_key;  // (stage, substage)
  std::vector<FlowRate> rates;
};

DurationScratch& LocalDurationScratch() {
  static thread_local DurationScratch scratch;
  return scratch;
}

/// Seeds `s.offset`, `s.sub`, and `s.task` with the paper-mode estimate —
/// the common starting point of both iterative modes.
void SeedPaperDurations(const ResourceVector& capacities,
                        const std::vector<ParallelStage>& stages,
                        DurationScratch& s) {
  const ResourceVector alloc = PaperAllocation(capacities, stages);
  s.offset.clear();
  s.sub.clear();
  s.task.clear();
  for (const auto& ps : stages) {
    s.offset.push_back(s.sub.size());
    double total = 0.0;
    for (const auto& ss : ps.stage->substages) {
      const double t = SubStageDuration(ss, alloc);
      s.sub.push_back(t);
      total += t;
    }
    s.task.push_back(total);
  }
}

TaskEstimate CombineSubStages(const StageProfile& stage,
                              std::vector<SubStageEstimate> substages) {
  TaskEstimate task;
  task.stage_name = stage.name;
  double total = 0.0;
  double longest = -1.0;
  for (const auto& ss : substages) {
    total += ss.duration.seconds();
    if (ss.duration.seconds() > longest) {
      longest = ss.duration.seconds();
      task.bottleneck = ss.bottleneck;
    }
  }
  task.duration = Duration(total);
  task.substages = std::move(substages);
  return task;
}

}  // namespace

BoeModel::BoeModel(const NodeSpec& node, BoeOptions options)
    : node_(node), capacities_(node.Capacities()), options_(options) {
  DAGPERF_CHECK(options_.max_iterations > 0);
}

Status BoeModel::Validate() const {
  std::string bad;
  for (Resource r : kAllResources) {
    const double capacity = capacities_[r];
    if (std::isfinite(capacity) && capacity > 0) continue;  // NaN-safe.
    if (!bad.empty()) bad += ", ";
    bad += std::string(ResourceName(r)) + " capacity " +
           std::to_string(capacity);
  }
  if (bad.empty()) return Status::Ok();
  return Status::InvalidArgument("node has non-positive or non-finite " + bad);
}

TaskEstimate BoeModel::EstimateTask(const StageProfile& stage,
                                    double tasks_per_node) const {
  ParallelStage ps{&stage, tasks_per_node};
  return EstimateParallel({ps}).front();
}

std::vector<TaskEstimate> BoeModel::EstimateParallel(
    const std::vector<ParallelStage>& stages) const {
  for (const auto& ps : stages) {
    DAGPERF_CHECK(ps.stage != nullptr);
    DAGPERF_CHECK(ps.tasks_per_node > 0);
  }
  if (stages.empty()) return {};
  // The refinement modes route through the exact rate solver, whose
  // invariant is positive finite capacity on every demanded resource. On a
  // bad node (see Validate()) fall back to the paper rule, which prices a
  // zero/NaN capacity at Duration::Infinite() and keeps Estimate* total.
  if (!Validate().ok()) return EstimatePaper(stages);
  switch (options_.mode) {
    case BoeOptions::ContentionMode::kPaper:
      return EstimatePaper(stages);
    case BoeOptions::ContentionMode::kSteadyState:
      return EstimateSteadyState(stages);
    case BoeOptions::ContentionMode::kAlignedSelf:
      return EstimateAlignedSelf(stages);
  }
  DAGPERF_CHECK(false);
  return {};
}

std::vector<TaskEstimate> BoeModel::EstimatePaper(
    const std::vector<ParallelStage>& stages) const {
  // Contenders per resource: every task of every stage that uses the
  // resource anywhere in its pipeline (the paper's Delta for mu_X(Delta)).
  const ResourceVector alloc = PaperAllocation(capacities_, stages);

  std::vector<TaskEstimate> out;
  out.reserve(stages.size());
  for (const auto& ps : stages) {
    std::vector<SubStageEstimate> subs;
    subs.reserve(ps.stage->substages.size());
    for (const auto& ss : ps.stage->substages) {
      subs.push_back(EstimateSubStage(ss, alloc));
    }
    out.push_back(CombineSubStages(*ps.stage, std::move(subs)));
  }
  return out;
}

std::vector<TaskEstimate> BoeModel::EstimateSteadyState(
    const std::vector<ParallelStage>& stages) const {
  // Start from the paper-mode estimate and iterate: spread each stage's task
  // population over its sub-stages in proportion to the current sub-stage
  // durations, solve exact max-min fair rates, and recompute durations.
  std::vector<TaskEstimate> current = EstimatePaper(stages);
  const ResourceVector task_caps = PerTaskCaps();

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Build one flow per (stage, sub-stage).
    std::vector<Flow> flows;
    std::vector<std::pair<size_t, size_t>> flow_key;  // (stage idx, substage idx)
    for (size_t i = 0; i < stages.size(); ++i) {
      const auto& ps = stages[i];
      const double total_time = std::max(current[i].duration.seconds(), 1e-12);
      for (size_t s = 0; s < ps.stage->substages.size(); ++s) {
        const double frac =
            std::max(current[i].substages[s].duration.seconds(), 0.0) / total_time;
        if (frac <= 1e-12) continue;
        Flow flow;
        flow.population = ps.tasks_per_node * frac;
        flow.demand = ps.stage->substages[s].demand;
        flow.per_task_cap = task_caps;
        flows.push_back(flow);
        flow_key.emplace_back(i, s);
      }
    }
    const std::vector<FlowRate> rates = SolveRates(capacities_, flows);

    // Per-flow allocated throughput implies new sub-stage durations.
    std::vector<TaskEstimate> next = current;
    for (size_t k = 0; k < flows.size(); ++k) {
      const auto [i, s] = flow_key[k];
      ResourceVector alloc = rates[k].offered;
      for (Resource r : kAllResources) {
        if (flows[k].demand[r] <= 0) alloc[r] = capacities_[r];
      }
      next[i].substages[s] = EstimateSubStage(stages[i].stage->substages[s], alloc);
    }
    for (size_t i = 0; i < stages.size(); ++i) {
      next[i] = CombineSubStages(*stages[i].stage, std::move(next[i].substages));
    }

    // Damped update; stop when durations are stable.
    double delta = 0.0;
    for (size_t i = 0; i < stages.size(); ++i) {
      const double old_t = current[i].duration.seconds();
      const double new_t = next[i].duration.seconds();
      if (old_t != kInf && new_t != kInf) {
        delta = std::max(delta, std::fabs(new_t - old_t) / std::max(old_t, 1e-12));
      }
    }
    current = std::move(next);
    if (delta < options_.tolerance) break;
  }
  return current;
}

std::vector<TaskEstimate> BoeModel::EstimateAlignedSelf(
    const std::vector<ParallelStage>& stages) const {
  // Like EstimateSteadyState, but when pricing sub-stage sigma of stage i,
  // ALL of stage i's tasks contend in sigma (wave alignment), while other
  // stages contribute sub-stage-spread populations at their effective usage.
  std::vector<TaskEstimate> current = EstimatePaper(stages);
  const ResourceVector task_caps = PerTaskCaps();

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::vector<TaskEstimate> next = current;
    for (size_t i = 0; i < stages.size(); ++i) {
      for (size_t s = 0; s < stages[i].stage->substages.size(); ++s) {
        std::vector<Flow> flows;
        Flow self;
        self.population = stages[i].tasks_per_node;
        self.demand = stages[i].stage->substages[s].demand;
        self.per_task_cap = task_caps;
        flows.push_back(self);
        for (size_t j = 0; j < stages.size(); ++j) {
          if (j == i) continue;
          const double total_time = std::max(current[j].duration.seconds(), 1e-12);
          for (size_t t = 0; t < stages[j].stage->substages.size(); ++t) {
            const double frac =
                std::max(current[j].substages[t].duration.seconds(), 0.0) /
                total_time;
            if (frac <= 1e-12) continue;
            Flow other;
            other.population = stages[j].tasks_per_node * frac;
            other.demand = stages[j].stage->substages[t].demand;
            other.per_task_cap = task_caps;
            flows.push_back(other);
          }
        }
        const std::vector<FlowRate> rates = SolveRates(capacities_, flows);
        ResourceVector alloc = rates[0].offered;
        for (Resource r : kAllResources) {
          if (flows[0].demand[r] <= 0) alloc[r] = capacities_[r];
        }
        next[i].substages[s] = EstimateSubStage(stages[i].stage->substages[s], alloc);
      }
    }
    for (size_t i = 0; i < stages.size(); ++i) {
      next[i] = CombineSubStages(*stages[i].stage, std::move(next[i].substages));
    }

    double delta = 0.0;
    for (size_t i = 0; i < stages.size(); ++i) {
      const double old_t = current[i].duration.seconds();
      const double new_t = next[i].duration.seconds();
      if (old_t != kInf && new_t != kInf) {
        delta = std::max(delta, std::fabs(new_t - old_t) / std::max(old_t, 1e-12));
      }
    }
    current = std::move(next);
    if (delta < options_.tolerance) break;
  }
  return current;
}

void BoeModel::EstimateDurations(const std::vector<ParallelStage>& stages,
                                 std::vector<double>* out) const {
  for (const auto& ps : stages) {
    DAGPERF_CHECK(ps.stage != nullptr);
    DAGPERF_CHECK(ps.tasks_per_node > 0);
  }
  out->clear();
  if (stages.empty()) return;
  // Same mode routing as EstimateParallel, including the bad-node fallback
  // to the paper rule (which stays total by pricing at infinity).
  if (!Validate().ok()) return DurationsPaper(stages, out);
  switch (options_.mode) {
    case BoeOptions::ContentionMode::kPaper:
      return DurationsPaper(stages, out);
    case BoeOptions::ContentionMode::kSteadyState:
      return DurationsSteadyState(stages, out);
    case BoeOptions::ContentionMode::kAlignedSelf:
      return DurationsAlignedSelf(stages, out);
  }
  DAGPERF_CHECK(false);
}

void BoeModel::DurationsPaper(const std::vector<ParallelStage>& stages,
                              std::vector<double>* out) const {
  const ResourceVector alloc = PaperAllocation(capacities_, stages);
  out->resize(stages.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    double total = 0.0;
    for (const auto& ss : stages[i].stage->substages) {
      total += SubStageDuration(ss, alloc);
    }
    (*out)[i] = total;
  }
}

void BoeModel::DurationsSteadyState(const std::vector<ParallelStage>& stages,
                                    std::vector<double>* out) const {
  // The flat mirror of EstimateSteadyState: identical iteration structure
  // and arithmetic over index-addressed duration arrays.
  DurationScratch& s = LocalDurationScratch();
  SeedPaperDurations(capacities_, stages, s);
  const ResourceVector task_caps = PerTaskCaps();

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    s.flows.clear();
    s.flow_key.clear();
    for (size_t i = 0; i < stages.size(); ++i) {
      const auto& ps = stages[i];
      const double total_time = std::max(s.task[i], 1e-12);
      for (size_t sub = 0; sub < ps.stage->substages.size(); ++sub) {
        const double frac = std::max(s.sub[s.offset[i] + sub], 0.0) / total_time;
        if (frac <= 1e-12) continue;
        Flow flow;
        flow.population = ps.tasks_per_node * frac;
        flow.demand = ps.stage->substages[sub].demand;
        flow.per_task_cap = task_caps;
        s.flows.push_back(flow);
        s.flow_key.emplace_back(i, sub);
      }
    }
    SolveRates(capacities_, s.flows, &s.rates);

    s.next_sub = s.sub;
    for (size_t k = 0; k < s.flows.size(); ++k) {
      const auto [i, sub] = s.flow_key[k];
      // Resources the sub-stage does not demand are unpriced, so (unlike the
      // struct-building path) the allocation needs no capacity backfill.
      s.next_sub[s.offset[i] + sub] =
          SubStageDuration(stages[i].stage->substages[sub], s.rates[k].offered);
    }
    s.next_task.resize(stages.size());
    for (size_t i = 0; i < stages.size(); ++i) {
      double total = 0.0;
      for (size_t sub = 0; sub < stages[i].stage->substages.size(); ++sub) {
        total += s.next_sub[s.offset[i] + sub];
      }
      s.next_task[i] = total;
    }

    double delta = 0.0;
    for (size_t i = 0; i < stages.size(); ++i) {
      const double old_t = s.task[i];
      const double new_t = s.next_task[i];
      if (old_t != kInf && new_t != kInf) {
        delta = std::max(delta, std::fabs(new_t - old_t) / std::max(old_t, 1e-12));
      }
    }
    s.sub.swap(s.next_sub);
    s.task.swap(s.next_task);
    if (delta < options_.tolerance) break;
  }
  out->assign(s.task.begin(), s.task.end());
}

void BoeModel::DurationsAlignedSelf(const std::vector<ParallelStage>& stages,
                                    std::vector<double>* out) const {
  // The flat mirror of EstimateAlignedSelf (same iteration structure).
  DurationScratch& s = LocalDurationScratch();
  SeedPaperDurations(capacities_, stages, s);
  const ResourceVector task_caps = PerTaskCaps();

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    s.next_sub = s.sub;
    for (size_t i = 0; i < stages.size(); ++i) {
      for (size_t sub = 0; sub < stages[i].stage->substages.size(); ++sub) {
        s.flows.clear();
        Flow self;
        self.population = stages[i].tasks_per_node;
        self.demand = stages[i].stage->substages[sub].demand;
        self.per_task_cap = task_caps;
        s.flows.push_back(self);
        for (size_t j = 0; j < stages.size(); ++j) {
          if (j == i) continue;
          const double total_time = std::max(s.task[j], 1e-12);
          for (size_t t = 0; t < stages[j].stage->substages.size(); ++t) {
            const double frac =
                std::max(s.sub[s.offset[j] + t], 0.0) / total_time;
            if (frac <= 1e-12) continue;
            Flow other;
            other.population = stages[j].tasks_per_node * frac;
            other.demand = stages[j].stage->substages[t].demand;
            other.per_task_cap = task_caps;
            s.flows.push_back(other);
          }
        }
        SolveRates(capacities_, s.flows, &s.rates);
        s.next_sub[s.offset[i] + sub] =
            SubStageDuration(stages[i].stage->substages[sub], s.rates[0].offered);
      }
    }
    s.next_task.resize(stages.size());
    for (size_t i = 0; i < stages.size(); ++i) {
      double total = 0.0;
      for (size_t sub = 0; sub < stages[i].stage->substages.size(); ++sub) {
        total += s.next_sub[s.offset[i] + sub];
      }
      s.next_task[i] = total;
    }

    double delta = 0.0;
    for (size_t i = 0; i < stages.size(); ++i) {
      const double old_t = s.task[i];
      const double new_t = s.next_task[i];
      if (old_t != kInf && new_t != kInf) {
        delta = std::max(delta, std::fabs(new_t - old_t) / std::max(old_t, 1e-12));
      }
    }
    s.sub.swap(s.next_sub);
    s.task.swap(s.next_task);
    if (delta < options_.tolerance) break;
  }
  out->assign(s.task.begin(), s.task.end());
}

}  // namespace dagperf
