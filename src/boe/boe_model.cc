#include "boe/boe_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/rate_solver.h"
#include "common/check.h"

namespace dagperf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-task rate caps: a single-threaded task uses at most one core; I/O has
/// no per-task cap beyond the device itself.
ResourceVector PerTaskCaps() {
  ResourceVector caps;
  caps[Resource::kCpu] = 1.0;
  return caps;
}

/// Builds a sub-stage estimate given the per-task allocated throughput on
/// each resource (resource units per second available to this task).
SubStageEstimate EstimateSubStage(const SubStageProfile& substage,
                                  const ResourceVector& alloc) {
  SubStageEstimate est;
  est.name = substage.name;
  double worst = 0.0;
  for (Resource r : kAllResources) {
    const double demand = substage.demand[r];
    if (demand <= 0) continue;  // NaN demand fails this test and is priced.
    OpEstimate op;
    op.resource = r;
    op.demand = demand;
    const double a = alloc[r];
    // Zero/negative/NaN throughput means the operation can never complete;
    // a non-finite demand is poison that must surface, not propagate — both
    // price at Infinite, so no NaN ever reaches the duration arithmetic.
    op.time = std::isfinite(demand) && a > 0 ? Duration(demand / a)
                                             : Duration::Infinite();
    est.ops.push_back(op);
    if (op.time.seconds() > worst) {
      worst = op.time.seconds();
      est.bottleneck = r;
    }
  }
  est.duration = Duration(worst);
  for (auto& op : est.ops) {
    op.utilization = worst > 0 ? op.time.seconds() / worst : 0.0;
  }
  return est;
}

TaskEstimate CombineSubStages(const StageProfile& stage,
                              std::vector<SubStageEstimate> substages) {
  TaskEstimate task;
  task.stage_name = stage.name;
  double total = 0.0;
  double longest = -1.0;
  for (const auto& ss : substages) {
    total += ss.duration.seconds();
    if (ss.duration.seconds() > longest) {
      longest = ss.duration.seconds();
      task.bottleneck = ss.bottleneck;
    }
  }
  task.duration = Duration(total);
  task.substages = std::move(substages);
  return task;
}

}  // namespace

BoeModel::BoeModel(const NodeSpec& node, BoeOptions options)
    : node_(node), capacities_(node.Capacities()), options_(options) {
  DAGPERF_CHECK(options_.max_iterations > 0);
}

Status BoeModel::Validate() const {
  std::string bad;
  for (Resource r : kAllResources) {
    const double capacity = capacities_[r];
    if (std::isfinite(capacity) && capacity > 0) continue;  // NaN-safe.
    if (!bad.empty()) bad += ", ";
    bad += std::string(ResourceName(r)) + " capacity " +
           std::to_string(capacity);
  }
  if (bad.empty()) return Status::Ok();
  return Status::InvalidArgument("node has non-positive or non-finite " + bad);
}

TaskEstimate BoeModel::EstimateTask(const StageProfile& stage,
                                    double tasks_per_node) const {
  ParallelStage ps{&stage, tasks_per_node};
  return EstimateParallel({ps}).front();
}

std::vector<TaskEstimate> BoeModel::EstimateParallel(
    const std::vector<ParallelStage>& stages) const {
  for (const auto& ps : stages) {
    DAGPERF_CHECK(ps.stage != nullptr);
    DAGPERF_CHECK(ps.tasks_per_node > 0);
  }
  if (stages.empty()) return {};
  // The refinement modes route through the exact rate solver, whose
  // invariant is positive finite capacity on every demanded resource. On a
  // bad node (see Validate()) fall back to the paper rule, which prices a
  // zero/NaN capacity at Duration::Infinite() and keeps Estimate* total.
  if (!Validate().ok()) return EstimatePaper(stages);
  switch (options_.mode) {
    case BoeOptions::ContentionMode::kPaper:
      return EstimatePaper(stages);
    case BoeOptions::ContentionMode::kSteadyState:
      return EstimateSteadyState(stages);
    case BoeOptions::ContentionMode::kAlignedSelf:
      return EstimateAlignedSelf(stages);
  }
  DAGPERF_CHECK(false);
  return {};
}

std::vector<TaskEstimate> BoeModel::EstimatePaper(
    const std::vector<ParallelStage>& stages) const {
  // Contenders per resource: every task of every stage that uses the
  // resource anywhere in its pipeline (the paper's Delta for mu_X(Delta)).
  ResourceVector contenders;
  for (const auto& ps : stages) {
    const ResourceVector total = ps.stage->TotalDemand();
    for (Resource r : kAllResources) {
      if (total[r] > 0) contenders[r] += ps.tasks_per_node;
    }
  }

  const ResourceVector task_caps = PerTaskCaps();
  ResourceVector alloc;
  for (Resource r : kAllResources) {
    double share = contenders[r] > 0 ? capacities_[r] / contenders[r] : capacities_[r];
    // A lone task cannot exceed its own per-task cap (e.g. one core), but it
    // can always use at least what an equal split would give it.
    if (task_caps[r] > 0) share = std::min(std::max(share, 0.0), task_caps[r]);
    alloc[r] = share;
  }

  std::vector<TaskEstimate> out;
  out.reserve(stages.size());
  for (const auto& ps : stages) {
    std::vector<SubStageEstimate> subs;
    subs.reserve(ps.stage->substages.size());
    for (const auto& ss : ps.stage->substages) {
      subs.push_back(EstimateSubStage(ss, alloc));
    }
    out.push_back(CombineSubStages(*ps.stage, std::move(subs)));
  }
  return out;
}

std::vector<TaskEstimate> BoeModel::EstimateSteadyState(
    const std::vector<ParallelStage>& stages) const {
  // Start from the paper-mode estimate and iterate: spread each stage's task
  // population over its sub-stages in proportion to the current sub-stage
  // durations, solve exact max-min fair rates, and recompute durations.
  std::vector<TaskEstimate> current = EstimatePaper(stages);
  const ResourceVector task_caps = PerTaskCaps();

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Build one flow per (stage, sub-stage).
    std::vector<Flow> flows;
    std::vector<std::pair<size_t, size_t>> flow_key;  // (stage idx, substage idx)
    for (size_t i = 0; i < stages.size(); ++i) {
      const auto& ps = stages[i];
      const double total_time = std::max(current[i].duration.seconds(), 1e-12);
      for (size_t s = 0; s < ps.stage->substages.size(); ++s) {
        const double frac =
            std::max(current[i].substages[s].duration.seconds(), 0.0) / total_time;
        if (frac <= 1e-12) continue;
        Flow flow;
        flow.population = ps.tasks_per_node * frac;
        flow.demand = ps.stage->substages[s].demand;
        flow.per_task_cap = task_caps;
        flows.push_back(flow);
        flow_key.emplace_back(i, s);
      }
    }
    const std::vector<FlowRate> rates = SolveRates(capacities_, flows);

    // Per-flow allocated throughput implies new sub-stage durations.
    std::vector<TaskEstimate> next = current;
    for (size_t k = 0; k < flows.size(); ++k) {
      const auto [i, s] = flow_key[k];
      ResourceVector alloc = rates[k].offered;
      for (Resource r : kAllResources) {
        if (flows[k].demand[r] <= 0) alloc[r] = capacities_[r];
      }
      next[i].substages[s] = EstimateSubStage(stages[i].stage->substages[s], alloc);
    }
    for (size_t i = 0; i < stages.size(); ++i) {
      next[i] = CombineSubStages(*stages[i].stage, std::move(next[i].substages));
    }

    // Damped update; stop when durations are stable.
    double delta = 0.0;
    for (size_t i = 0; i < stages.size(); ++i) {
      const double old_t = current[i].duration.seconds();
      const double new_t = next[i].duration.seconds();
      if (old_t != kInf && new_t != kInf) {
        delta = std::max(delta, std::fabs(new_t - old_t) / std::max(old_t, 1e-12));
      }
    }
    current = std::move(next);
    if (delta < options_.tolerance) break;
  }
  return current;
}

std::vector<TaskEstimate> BoeModel::EstimateAlignedSelf(
    const std::vector<ParallelStage>& stages) const {
  // Like EstimateSteadyState, but when pricing sub-stage sigma of stage i,
  // ALL of stage i's tasks contend in sigma (wave alignment), while other
  // stages contribute sub-stage-spread populations at their effective usage.
  std::vector<TaskEstimate> current = EstimatePaper(stages);
  const ResourceVector task_caps = PerTaskCaps();

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::vector<TaskEstimate> next = current;
    for (size_t i = 0; i < stages.size(); ++i) {
      for (size_t s = 0; s < stages[i].stage->substages.size(); ++s) {
        std::vector<Flow> flows;
        Flow self;
        self.population = stages[i].tasks_per_node;
        self.demand = stages[i].stage->substages[s].demand;
        self.per_task_cap = task_caps;
        flows.push_back(self);
        for (size_t j = 0; j < stages.size(); ++j) {
          if (j == i) continue;
          const double total_time = std::max(current[j].duration.seconds(), 1e-12);
          for (size_t t = 0; t < stages[j].stage->substages.size(); ++t) {
            const double frac =
                std::max(current[j].substages[t].duration.seconds(), 0.0) /
                total_time;
            if (frac <= 1e-12) continue;
            Flow other;
            other.population = stages[j].tasks_per_node * frac;
            other.demand = stages[j].stage->substages[t].demand;
            other.per_task_cap = task_caps;
            flows.push_back(other);
          }
        }
        const std::vector<FlowRate> rates = SolveRates(capacities_, flows);
        ResourceVector alloc = rates[0].offered;
        for (Resource r : kAllResources) {
          if (flows[0].demand[r] <= 0) alloc[r] = capacities_[r];
        }
        next[i].substages[s] = EstimateSubStage(stages[i].stage->substages[s], alloc);
      }
    }
    for (size_t i = 0; i < stages.size(); ++i) {
      next[i] = CombineSubStages(*stages[i].stage, std::move(next[i].substages));
    }

    double delta = 0.0;
    for (size_t i = 0; i < stages.size(); ++i) {
      const double old_t = current[i].duration.seconds();
      const double new_t = next[i].duration.seconds();
      if (old_t != kInf && new_t != kInf) {
        delta = std::max(delta, std::fabs(new_t - old_t) / std::max(old_t, 1e-12));
      }
    }
    current = std::move(next);
    if (delta < options_.tolerance) break;
  }
  return current;
}

}  // namespace dagperf
