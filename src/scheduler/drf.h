#ifndef DAGPERF_SCHEDULER_DRF_H_
#define DAGPERF_SCHEDULER_DRF_H_

#include <vector>

#include "cluster/cluster_spec.h"
#include "cluster/resources.h"

namespace dagperf {

/// Scheduling configuration of the (YARN-like) resource manager.
struct SchedulerConfig {
  /// vcores advertised per physical core. YARN deployments routinely
  /// over-subscribe CPU; the paper's experiments reach 12 concurrent tasks
  /// on 6-core nodes, i.e. a factor of 2.
  double vcores_per_core = 2.0;

  /// Optional hard cap on concurrent tasks per node (classic MapReduce slot
  /// count). 0 means "no explicit cap" — only vcores/memory limit
  /// concurrency. The Fig. 6 parallelism sweep sets this to the swept value.
  int max_tasks_per_node = 0;
};

/// One stage's outstanding demand as seen by the scheduler.
struct StageDemand {
  SlotDemand slot;
  /// Tasks of this stage still wanting a container (pending + would-run).
  int remaining_tasks = 0;
};

/// Dominant Resource Fairness allocation (Ghodsi et al., NSDI'11) over
/// <vcores, memory>, the policy YARN's fair scheduler implements and the one
/// the paper assumes (§II-B).
///
/// Given the aggregate cluster capacity and each stage's per-task demand and
/// task backlog, returns the number of concurrently running tasks each stage
/// receives: containers are granted one at a time to the stage with the
/// smallest dominant share until capacity, per-node caps, or backlogs are
/// exhausted.
class DrfAllocator {
 public:
  DrfAllocator(const ClusterSpec& cluster, const SchedulerConfig& config);

  /// Allocates containers among the given stages. The result has one entry
  /// per input stage; entries are in [0, remaining_tasks].
  std::vector<int> Allocate(const std::vector<StageDemand>& stages) const;

  /// Allocation-free variant for hot loops: writes the grants into
  /// `*granted` (resized to stages.size(), capacity reused).
  void Allocate(const std::vector<StageDemand>& stages,
                std::vector<int>* granted) const;

  /// Max concurrent tasks of a single uniform stage (the cluster-wide slot
  /// count for that container shape).
  int ClusterSlots(const SlotDemand& demand) const;

  /// Max concurrent tasks of the given shape on one node.
  int NodeSlots(const SlotDemand& demand) const;

 private:
  double total_vcores_;
  double total_memory_;
  double node_vcores_;
  double node_memory_;
  int num_nodes_;
  int max_tasks_per_node_;
};

}  // namespace dagperf

#endif  // DAGPERF_SCHEDULER_DRF_H_
