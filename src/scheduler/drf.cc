#include "scheduler/drf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dagperf {

DrfAllocator::DrfAllocator(const ClusterSpec& cluster, const SchedulerConfig& config) {
  DAGPERF_CHECK(cluster.Validate().ok());
  DAGPERF_CHECK(config.vcores_per_core > 0);
  DAGPERF_CHECK(config.max_tasks_per_node >= 0);
  num_nodes_ = cluster.num_nodes;
  node_vcores_ = cluster.node.cores * config.vcores_per_core;
  node_memory_ = cluster.node.memory.value();
  total_vcores_ = node_vcores_ * num_nodes_;
  total_memory_ = node_memory_ * num_nodes_;
  max_tasks_per_node_ = config.max_tasks_per_node;
}

int DrfAllocator::NodeSlots(const SlotDemand& demand) const {
  DAGPERF_CHECK(demand.vcores > 0 && demand.memory.value() > 0);
  const double by_vcores = node_vcores_ / demand.vcores;
  const double by_memory = node_memory_ / demand.memory.value();
  int slots = static_cast<int>(std::floor(std::min(by_vcores, by_memory)));
  if (max_tasks_per_node_ > 0) slots = std::min(slots, max_tasks_per_node_);
  return std::max(0, slots);
}

int DrfAllocator::ClusterSlots(const SlotDemand& demand) const {
  return NodeSlots(demand) * num_nodes_;
}

std::vector<int> DrfAllocator::Allocate(const std::vector<StageDemand>& stages) const {
  std::vector<int> granted;
  Allocate(stages, &granted);
  return granted;
}

void DrfAllocator::Allocate(const std::vector<StageDemand>& stages,
                            std::vector<int>* out) const {
  const size_t n = stages.size();
  std::vector<int>& granted = *out;
  granted.assign(n, 0);
  if (n == 0) return;

  double used_vcores = 0;
  double used_memory = 0;
  int used_tasks = 0;
  const int task_cap = max_tasks_per_node_ > 0
                           ? max_tasks_per_node_ * num_nodes_
                           : std::numeric_limits<int>::max();

  // Grant one container at a time to the stage with the minimum dominant
  // share. Identical container shapes make this equal division; different
  // shapes reproduce DRF's dominant-share equalisation.
  while (true) {
    int best = -1;
    double best_share = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const auto& st = stages[i];
      if (granted[i] >= st.remaining_tasks) continue;
      DAGPERF_CHECK(st.slot.vcores > 0 && st.slot.memory.value() > 0);
      if (used_vcores + st.slot.vcores > total_vcores_ + 1e-9) continue;
      if (used_memory + st.slot.memory.value() > total_memory_ + 1e-9) continue;
      if (used_tasks + 1 > task_cap) continue;
      const double share =
          std::max(granted[i] * st.slot.vcores / total_vcores_,
                   granted[i] * st.slot.memory.value() / total_memory_);
      if (share < best_share) {
        best_share = share;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    granted[best] += 1;
    used_vcores += stages[best].slot.vcores;
    used_memory += stages[best].slot.memory.value();
    used_tasks += 1;
  }
}

}  // namespace dagperf
