#include "tuner/tuner.h"

#include <algorithm>
#include <set>

#include "boe/boe_model.h"
#include "model/state_estimator.h"
#include "model/sweep.h"
#include "model/task_time_cache.h"
#include "model/task_time_source.h"

namespace dagperf {

namespace {

/// Every tuning decision prices candidates with the same model stack: BOE
/// task times (1 s container overhead) fed to the state-based estimator.
constexpr double kContainerOverheadS = 1.0;

/// Rebuilds a workflow from its compiled job specs with extra edges.
Result<DagWorkflow> RebuildWithEdges(
    const DagWorkflow& flow, const std::vector<std::pair<JobId, JobId>>& extra) {
  DagBuilder builder(flow.name() + "-variant");
  for (const auto& job : flow.jobs()) builder.AddJob(job.spec);
  for (const auto& [from, to] : flow.edges()) builder.AddEdge(from, to);
  for (const auto& [from, to] : extra) builder.AddEdge(from, to);
  return std::move(builder).Build();
}

/// Predicted makespans of all candidate flows on one cluster, evaluated by
/// the sweep engine (parallel across candidates, task-time cache shared —
/// knob sweeps leave most stages untouched, so most states recur).
Result<std::vector<Duration>> PredictAll(const std::vector<const DagWorkflow*>& flows,
                                         const ClusterSpec& cluster,
                                         const SchedulerConfig& scheduler,
                                         TaskTimeMemo* memo = nullptr) {
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(kContainerOverheadS));
  std::vector<SweepCandidate> requests;
  requests.reserve(flows.size());
  for (const DagWorkflow* flow : flows) requests.push_back({flow, cluster, ""});
  SweepOptions options;
  options.memo = memo;
  const SweepResult result = EstimateBatch(requests, scheduler, source, options);
  std::vector<Duration> times;
  times.reserve(flows.size());
  for (const auto& estimate : result.estimates) {
    if (!estimate.ok()) return estimate.status();
    times.push_back(estimate->makespan);
  }
  return times;
}

}  // namespace

Result<ReducerTuning> TuneReducers(const JobSpec& job, const ClusterSpec& cluster,
                                   const SchedulerConfig& scheduler,
                                   std::vector<int> candidates) {
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument(job.name + ": map-only job has no reducers");
  }
  if (candidates.empty()) {
    // Wave-aligned defaults: fractions and multiples of the slot count,
    // plus the library's auto heuristic.
    const DrfAllocator allocator(cluster, scheduler);
    const int slots = allocator.ClusterSlots(job.reduce_slot);
    std::set<int> grid;
    for (double factor : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0}) {
      const int c = static_cast<int>(slots * factor);
      if (c >= 1) grid.insert(c);
    }
    JobSpec auto_spec = job;
    auto_spec.num_reduce_tasks = kAutoReducers;
    grid.insert(ResolveReducers(auto_spec));
    candidates.assign(grid.begin(), grid.end());
  }

  Result<std::vector<DagWorkflow>> flows = BuildReducerCandidates(job, candidates);
  if (!flows.ok()) return flows.status();
  std::vector<const DagWorkflow*> flow_ptrs;
  flow_ptrs.reserve(flows->size());
  for (const DagWorkflow& flow : *flows) flow_ptrs.push_back(&flow);
  Result<std::vector<Duration>> times = PredictAll(flow_ptrs, cluster, scheduler);
  if (!times.ok()) return times.status();

  ReducerTuning result;
  result.best_time = Duration::Infinite();
  for (size_t i = 0; i < candidates.size(); ++i) {
    result.explored.push_back({candidates[i], (*times)[i]});
    if ((*times)[i] < result.best_time) {
      result.best_time = (*times)[i];
      result.best_reducers = candidates[i];
    }
  }
  return result;
}

Result<CompressionDecision> DecideCompression(const JobSpec& job,
                                              const ClusterSpec& cluster,
                                              const SchedulerConfig& scheduler) {
  const auto build = [&](bool compress) -> Result<DagWorkflow> {
    JobSpec candidate = job;
    candidate.compress_map_output = compress;
    DagBuilder builder(job.name + "-tuning");
    builder.AddJob(candidate);
    return std::move(builder).Build();
  };
  Result<DagWorkflow> on = build(true);
  if (!on.ok()) return on.status();
  Result<DagWorkflow> off = build(false);
  if (!off.ok()) return off.status();
  Result<std::vector<Duration>> times =
      PredictAll({&*on, &*off}, cluster, scheduler);
  if (!times.ok()) return times.status();
  CompressionDecision decision;
  decision.with_compression = (*times)[0];
  decision.without_compression = (*times)[1];
  decision.compress = (*times)[0] < (*times)[1];
  return decision;
}

Result<BranchDecision> DecideBranchPolicy(const DagWorkflow& flow,
                                          const ClusterSpec& cluster,
                                          const SchedulerConfig& scheduler) {
  const std::vector<JobId> sources = flow.Sources();
  if (sources.size() < 2) {
    return Status::InvalidArgument(flow.name() + ": fewer than two source jobs");
  }
  // Serialise: chain each source behind the previous one.
  std::vector<std::pair<JobId, JobId>> chain;
  for (size_t i = 0; i + 1 < sources.size(); ++i) {
    chain.emplace_back(sources[i], sources[i + 1]);
  }
  Result<DagWorkflow> serial_flow = RebuildWithEdges(flow, chain);
  if (!serial_flow.ok()) return serial_flow.status();

  Result<std::vector<Duration>> times =
      PredictAll({&flow, &*serial_flow}, cluster, scheduler);
  if (!times.ok()) return times.status();
  BranchDecision decision;
  decision.corun_time = (*times)[0];
  decision.serialized_time = (*times)[1];
  decision.policy = decision.corun_time <= decision.serialized_time
                        ? BranchPolicy::kCoRun
                        : BranchPolicy::kSerialize;
  return decision;
}

Result<ClusterSizing> SizeCluster(const DagWorkflow& flow, Duration deadline,
                                  const ClusterSpec& node_template,
                                  const SchedulerConfig& scheduler, int max_nodes) {
  if (deadline.seconds() <= 0) {
    return Status::InvalidArgument("deadline must be positive");
  }
  if (max_nodes < 1) return Status::InvalidArgument("max_nodes must be >= 1");

  ClusterSizing sizing;
  // The task-time cache is shared across every probe: changing the node
  // count changes per-stage parallelism, but many states (and all states of
  // small upstream jobs) recur between probes.
  TaskTimeMemo memo;
  const auto predict = [&](const std::vector<int>& node_counts)
      -> Result<std::vector<Duration>> {
    std::vector<ClusterSpec> clusters;
    clusters.reserve(node_counts.size());
    for (int nodes : node_counts) {
      ClusterSpec cluster = node_template;
      cluster.num_nodes = nodes;
      clusters.push_back(cluster);
    }
    std::vector<const DagWorkflow*> flows(node_counts.size(), &flow);
    // All probes share the template's node type, so one BOE source serves
    // every cluster size (task times depend on per-node populations, which
    // the estimation context carries).
    const BoeModel boe(node_template.node);
    const BoeTaskTimeSource source(boe, Duration::Seconds(kContainerOverheadS));
    std::vector<SweepCandidate> requests;
    requests.reserve(node_counts.size());
    for (size_t i = 0; i < node_counts.size(); ++i) {
      requests.push_back({flows[i], clusters[i], ""});
    }
    SweepOptions options;
    options.memo = &memo;
    const SweepResult result = EstimateBatch(requests, scheduler, source, options);
    std::vector<Duration> times;
    times.reserve(node_counts.size());
    for (size_t i = 0; i < result.estimates.size(); ++i) {
      if (!result.estimates[i].ok()) return result.estimates[i].status();
      times.push_back(result.estimates[i]->makespan);
      sizing.explored.push_back({node_counts[i], result.estimates[i]->makespan});
    }
    return times;
  };

  // Exponential ladder, evaluated as one parallel batch; the predicted
  // makespan is monotone non-increasing in the node count, so the first
  // ladder rung meeting the deadline brackets the answer.
  std::vector<int> ladder;
  for (int nodes = 1;; nodes = std::min(nodes * 2, max_nodes)) {
    ladder.push_back(nodes);
    if (nodes >= max_nodes) break;
  }
  Result<std::vector<Duration>> ladder_times = predict(ladder);
  if (!ladder_times.ok()) return ladder_times.status();
  int passing = -1;
  for (size_t i = 0; i < ladder.size(); ++i) {
    if ((*ladder_times)[i] <= deadline) {
      passing = static_cast<int>(i);
      break;
    }
  }
  if (passing < 0) {
    return Status::NotFound("no cluster size within max_nodes meets the deadline");
  }
  int hi = ladder[passing];
  Duration hi_time = (*ladder_times)[passing];
  int lo = passing == 0 ? hi : ladder[passing - 1];

  // Invariant: predict(hi) <= deadline; predict(lo) > deadline or lo == hi.
  while (lo + 1 < hi) {
    const int mid = lo + (hi - lo) / 2;
    Result<std::vector<Duration>> mid_time = predict({mid});
    if (!mid_time.ok()) return mid_time.status();
    if ((*mid_time)[0] <= deadline) {
      hi = mid;
      hi_time = (*mid_time)[0];
    } else {
      lo = mid;
    }
  }
  sizing.nodes = hi;
  sizing.predicted = hi_time;
  return sizing;
}

}  // namespace dagperf
