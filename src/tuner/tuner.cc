#include "tuner/tuner.h"

#include <algorithm>
#include <set>

#include "boe/boe_model.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"

namespace dagperf {

namespace {

/// Predicted makespan of a single-job workflow under the full model.
Result<Duration> PredictJob(const JobSpec& job, const ClusterSpec& cluster,
                            const SchedulerConfig& scheduler) {
  DagBuilder builder(job.name + "-tuning");
  builder.AddJob(job);
  Result<DagWorkflow> flow = std::move(builder).Build();
  if (!flow.ok()) return flow.status();
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, scheduler);
  Result<DagEstimate> estimate = estimator.Estimate(*flow, source);
  if (!estimate.ok()) return estimate.status();
  return estimate->makespan;
}

Result<Duration> PredictFlow(const DagWorkflow& flow, const ClusterSpec& cluster,
                             const SchedulerConfig& scheduler) {
  const BoeModel boe(cluster.node);
  const BoeTaskTimeSource source(boe, Duration::Seconds(1));
  const StateBasedEstimator estimator(cluster, scheduler);
  Result<DagEstimate> estimate = estimator.Estimate(flow, source);
  if (!estimate.ok()) return estimate.status();
  return estimate->makespan;
}

/// Rebuilds a workflow from its compiled job specs with extra edges.
Result<DagWorkflow> RebuildWithEdges(
    const DagWorkflow& flow, const std::vector<std::pair<JobId, JobId>>& extra) {
  DagBuilder builder(flow.name() + "-variant");
  for (const auto& job : flow.jobs()) builder.AddJob(job.spec);
  for (const auto& [from, to] : flow.edges()) builder.AddEdge(from, to);
  for (const auto& [from, to] : extra) builder.AddEdge(from, to);
  return std::move(builder).Build();
}

}  // namespace

Result<ReducerTuning> TuneReducers(const JobSpec& job, const ClusterSpec& cluster,
                                   const SchedulerConfig& scheduler,
                                   std::vector<int> candidates) {
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument(job.name + ": map-only job has no reducers");
  }
  if (candidates.empty()) {
    // Wave-aligned defaults: fractions and multiples of the slot count,
    // plus the library's auto heuristic.
    const DrfAllocator allocator(cluster, scheduler);
    const int slots = allocator.ClusterSlots(job.reduce_slot);
    std::set<int> grid;
    for (double factor : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0}) {
      const int c = static_cast<int>(slots * factor);
      if (c >= 1) grid.insert(c);
    }
    JobSpec auto_spec = job;
    auto_spec.num_reduce_tasks = kAutoReducers;
    grid.insert(ResolveReducers(auto_spec));
    candidates.assign(grid.begin(), grid.end());
  }

  ReducerTuning result;
  result.best_time = Duration::Infinite();
  for (int reducers : candidates) {
    if (reducers < 1) return Status::InvalidArgument("candidate reducers < 1");
    JobSpec candidate = job;
    candidate.num_reduce_tasks = reducers;
    Result<Duration> predicted = PredictJob(candidate, cluster, scheduler);
    if (!predicted.ok()) return predicted.status();
    result.explored.push_back({reducers, *predicted});
    if (*predicted < result.best_time) {
      result.best_time = *predicted;
      result.best_reducers = reducers;
    }
  }
  return result;
}

Result<CompressionDecision> DecideCompression(const JobSpec& job,
                                              const ClusterSpec& cluster,
                                              const SchedulerConfig& scheduler) {
  JobSpec on = job;
  on.compress_map_output = true;
  JobSpec off = job;
  off.compress_map_output = false;
  Result<Duration> t_on = PredictJob(on, cluster, scheduler);
  if (!t_on.ok()) return t_on.status();
  Result<Duration> t_off = PredictJob(off, cluster, scheduler);
  if (!t_off.ok()) return t_off.status();
  CompressionDecision decision;
  decision.with_compression = *t_on;
  decision.without_compression = *t_off;
  decision.compress = *t_on < *t_off;
  return decision;
}

Result<BranchDecision> DecideBranchPolicy(const DagWorkflow& flow,
                                          const ClusterSpec& cluster,
                                          const SchedulerConfig& scheduler) {
  const std::vector<JobId> sources = flow.Sources();
  if (sources.size() < 2) {
    return Status::InvalidArgument(flow.name() + ": fewer than two source jobs");
  }
  Result<Duration> corun = PredictFlow(flow, cluster, scheduler);
  if (!corun.ok()) return corun.status();

  // Serialise: chain each source behind the previous one.
  std::vector<std::pair<JobId, JobId>> chain;
  for (size_t i = 0; i + 1 < sources.size(); ++i) {
    chain.emplace_back(sources[i], sources[i + 1]);
  }
  Result<DagWorkflow> serial_flow = RebuildWithEdges(flow, chain);
  if (!serial_flow.ok()) return serial_flow.status();
  Result<Duration> serial = PredictFlow(*serial_flow, cluster, scheduler);
  if (!serial.ok()) return serial.status();

  BranchDecision decision;
  decision.corun_time = *corun;
  decision.serialized_time = *serial;
  decision.policy =
      *corun <= *serial ? BranchPolicy::kCoRun : BranchPolicy::kSerialize;
  return decision;
}

Result<ClusterSizing> SizeCluster(const DagWorkflow& flow, Duration deadline,
                                  const ClusterSpec& node_template,
                                  const SchedulerConfig& scheduler, int max_nodes) {
  if (deadline.seconds() <= 0) {
    return Status::InvalidArgument("deadline must be positive");
  }
  if (max_nodes < 1) return Status::InvalidArgument("max_nodes must be >= 1");

  ClusterSizing sizing;
  // Exponential probe then binary search on the predicted makespan, which
  // is monotone non-increasing in the node count.
  int lo = 1;
  int hi = 1;
  Result<Duration> t = Duration(0);
  const auto predict = [&](int nodes) -> Result<Duration> {
    ClusterSpec cluster = node_template;
    cluster.num_nodes = nodes;
    Result<Duration> p = PredictFlow(flow, cluster, scheduler);
    if (p.ok()) sizing.explored.push_back({nodes, *p});
    return p;
  };
  t = predict(hi);
  if (!t.ok()) return t.status();
  while (*t > deadline && hi < max_nodes) {
    lo = hi;
    hi = std::min(hi * 2, max_nodes);
    t = predict(hi);
    if (!t.ok()) return t.status();
  }
  if (*t > deadline) {
    return Status::NotFound("no cluster size within max_nodes meets the deadline");
  }
  // Invariant: predict(hi) <= deadline; predict(lo) > deadline or lo == hi.
  while (lo + 1 < hi) {
    const int mid = lo + (hi - lo) / 2;
    Result<Duration> tm = predict(mid);
    if (!tm.ok()) return tm.status();
    if (*tm <= deadline) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Re-predict the winner for the exact duration (may not be in cache).
  ClusterSpec cluster = node_template;
  cluster.num_nodes = hi;
  Result<Duration> final_t = PredictFlow(flow, cluster, scheduler);
  if (!final_t.ok()) return final_t.status();
  sizing.nodes = hi;
  sizing.predicted = *final_t;
  return sizing;
}

}  // namespace dagperf
