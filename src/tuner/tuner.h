#ifndef DAGPERF_TUNER_TUNER_H_
#define DAGPERF_TUNER_TUNER_H_

#include <vector>

#include "cluster/cluster_spec.h"
#include "common/status.h"
#include "common/units.h"
#include "dag/dag_workflow.h"
#include "scheduler/drf.h"
#include "workload/job_spec.h"

namespace dagperf {

/// Cost-model-driven configuration tuning — the self-management application
/// the paper motivates (§I: "job self-tuning", "capacity planning on the
/// cloud"). Every decision below is made purely with the analytical models
/// (sub-millisecond per candidate), never by running the workload.

/// One explored candidate of a knob sweep.
template <typename KnobT>
struct TuningCandidate {
  KnobT knob;
  Duration predicted;
};

/// Result of tuning a job's reducer count.
struct ReducerTuning {
  int best_reducers = 0;
  Duration best_time;
  std::vector<TuningCandidate<int>> explored;
};

/// Picks the reducer count minimising the predicted job makespan. The
/// candidate grid defaults to multiples of the cluster's slot count (wave
/// alignment) plus the auto heuristic. Returns InvalidArgument for map-only
/// jobs.
Result<ReducerTuning> TuneReducers(const JobSpec& job, const ClusterSpec& cluster,
                                   const SchedulerConfig& scheduler,
                                   std::vector<int> candidates = {});

/// Result of the map-output compression decision (trade CPU for I/O).
struct CompressionDecision {
  bool compress = false;
  Duration with_compression;
  Duration without_compression;
};

/// Decides whether compressing intermediate data is predicted to pay off
/// for this job on this cluster.
Result<CompressionDecision> DecideCompression(const JobSpec& job,
                                              const ClusterSpec& cluster,
                                              const SchedulerConfig& scheduler);

/// Whether independent DAG branches should run concurrently (DRF-shared) or
/// be serialised. Co-running overlaps heterogeneous bottlenecks; it loses
/// when the branches fight over the same one.
enum class BranchPolicy { kCoRun, kSerialize };

struct BranchDecision {
  BranchPolicy policy = BranchPolicy::kCoRun;
  Duration corun_time;
  Duration serialized_time;
};

/// Compares the workflow as given against a variant whose source jobs are
/// chained head-to-tail. Requires at least two source jobs.
Result<BranchDecision> DecideBranchPolicy(const DagWorkflow& flow,
                                          const ClusterSpec& cluster,
                                          const SchedulerConfig& scheduler);

/// Result of model-driven cluster sizing.
struct ClusterSizing {
  int nodes = 0;
  Duration predicted;
  std::vector<TuningCandidate<int>> explored;
};

/// Smallest node count (scaling the given cluster's node type) predicted to
/// finish `flow` within `deadline`. NotFound when even `max_nodes` misses.
Result<ClusterSizing> SizeCluster(const DagWorkflow& flow, Duration deadline,
                                  const ClusterSpec& node_template,
                                  const SchedulerConfig& scheduler,
                                  int max_nodes = 256);

}  // namespace dagperf

#endif  // DAGPERF_TUNER_TUNER_H_
