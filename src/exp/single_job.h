#ifndef DAGPERF_EXP_SINGLE_JOB_H_
#define DAGPERF_EXP_SINGLE_JOB_H_

#include <string>
#include <vector>

#include "cluster/cluster_spec.h"
#include "common/status.h"
#include "exp/phase_split.h"
#include "sim/simulator.h"
#include "workload/job_spec.h"

namespace dagperf {

/// One point of the Fig. 6 parallelism sweep.
struct SingleJobSweepPoint {
  int tasks_per_node = 0;
  PhaseTimes truth;     // Simulated ground truth (median task times).
  PhaseTimes boe;       // BOE model prediction.
  PhaseTimes baseline;  // Fixed-parallelism profile prediction.
};

struct SingleJobSweepResult {
  std::string job_name;
  int baseline_reference = 0;
  std::vector<SingleJobSweepPoint> points;
};

struct SingleJobSweepConfig {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  std::vector<int> parallelisms = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  /// Per-node parallelism of the baseline's profiling run (Starfish-like
  /// profiles at low parallelism; MRTuner-like at the core count).
  int baseline_reference = 2;
  SimOptions sim;
};

/// Runs the single-job task-time experiment behind Fig. 6 (a)-(f): for each
/// per-node degree of parallelism, simulate the job, measure median
/// map/shuffle/reduce task times, and compare the BOE prediction against the
/// fixed-parallelism baseline (the best case of Starfish / MRTuner, which
/// reproduces the profiling run's times regardless of the actual
/// parallelism).
Result<SingleJobSweepResult> RunSingleJobSweep(const JobSpec& spec,
                                               const SingleJobSweepConfig& config);

/// Mean relative accuracy of a predictor column over the sweep, per phase.
struct SweepAccuracy {
  double map = 0.0;
  double shuffle = 0.0;
  double reduce = 0.0;
};
SweepAccuracy BoeSweepAccuracy(const SingleJobSweepResult& result);
SweepAccuracy BaselineSweepAccuracy(const SingleJobSweepResult& result);

}  // namespace dagperf

#endif  // DAGPERF_EXP_SINGLE_JOB_H_
