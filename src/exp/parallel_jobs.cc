#include "exp/parallel_jobs.h"

#include <algorithm>

#include "boe/boe_model.h"
#include "common/stats.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"

namespace dagperf {

namespace {

using RunningSet = std::vector<std::pair<JobId, StageKind>>;

RunningSet EstimatedRunningSet(const DagEstimate& estimate,
                               const StateEstimate& state) {
  RunningSet set;
  for (const auto& r : estimate.running(state)) set.emplace_back(r.job, r.kind);
  std::sort(set.begin(), set.end());
  return set;
}

}  // namespace

Result<ParallelJobsResult> RunParallelJobsExperiment(const DagWorkflow& flow,
                                                     const ClusterSpec& cluster,
                                                     const SchedulerConfig& scheduler,
                                                     const SimOptions& sim_options) {
  const Simulator sim(cluster, scheduler, sim_options);
  Result<SimResult> truth = sim.Run(flow);
  if (!truth.ok()) return truth.status();

  // Default contention mode (kAlignedSelf): own-stage tasks wave-aligned,
  // co-running stages at their effective usage (see bench_ablation A1).
  const BoeModel model(cluster.node);
  const BoeTaskTimeSource source(model,
                                 Duration(sim_options.task_startup_seconds));
  const StateBasedEstimator estimator(cluster, scheduler);
  Result<DagEstimate> estimate = estimator.Estimate(flow, source);
  if (!estimate.ok()) return estimate.status();

  ParallelJobsResult result;
  result.flow_name = flow.name();
  result.truth_states = static_cast<int>(truth->states().size());
  result.estimated_states = static_cast<int>(estimate->states.size());

  // Align each observed state with the first unused estimated state that has
  // the same running set; the estimator and the simulator traverse the same
  // stage-transition sequence, so this is ordinarily 1:1.
  std::vector<bool> used(estimate->states.size(), false);
  for (const auto& truth_state : truth->states()) {
    const StateEstimate* match = nullptr;
    for (size_t i = 0; i < estimate->states.size(); ++i) {
      if (used[i]) continue;
      if (EstimatedRunningSet(*estimate, estimate->states[i]) ==
          truth_state.running) {
        used[i] = true;
        match = &estimate->states[i];
        break;
      }
    }
    if (match == nullptr) continue;

    for (const auto& est_running : estimate->running(*match)) {
      const std::vector<double> durations = truth->TaskDurationsInState(
          est_running.job, est_running.kind, truth_state.index);
      if (durations.empty()) continue;  // No task midpoint fell in the state.
      StateTaskAccuracy cell;
      cell.state = truth_state.index;
      cell.job = est_running.job;
      cell.job_name = flow.job(est_running.job).name;
      cell.kind = est_running.kind;
      cell.truth_s = ComputeStats(durations).median;
      cell.estimate_s = est_running.task_time_s;
      cell.accuracy = RelativeAccuracy(cell.estimate_s, cell.truth_s);
      result.cells.push_back(std::move(cell));
    }
  }
  return result;
}

}  // namespace dagperf
