#include "exp/phase_split.h"

#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace dagperf {

bool IsShuffleSubStage(const std::string& name) {
  return name == "shuffle" || name == "merge";
}

PhaseTimes MeasurePhaseTimes(const DagWorkflow& flow, const SimResult& result,
                             JobId job_id) {
  const JobProfile& job = flow.job(job_id);
  PhaseTimes phases;

  std::vector<double> map_durations;
  for (const auto& t : result.tasks()) {
    if (t.job == job_id && t.stage == StageKind::kMap) {
      map_durations.push_back(t.duration());
    }
  }
  DAGPERF_CHECK_MSG(!map_durations.empty(), "no completed map tasks to measure");
  phases.map_s = ComputeStats(map_durations).median;

  if (!job.has_reduce()) return phases;

  std::vector<double> shuffle_durations;
  std::vector<double> reduce_durations;
  const std::vector<SubStageProfile>& substages = job.reduce->substages;
  for (const auto& t : result.tasks()) {
    if (t.job != job_id || t.stage != StageKind::kReduce) continue;
    DAGPERF_CHECK(t.substage_s.size() == substages.size());
    double shuffle = t.startup_s;
    double reduce = 0.0;
    for (size_t i = 0; i < substages.size(); ++i) {
      if (IsShuffleSubStage(substages[i].name)) {
        shuffle += t.substage_s[i];
      } else {
        reduce += t.substage_s[i];
      }
    }
    shuffle_durations.push_back(shuffle);
    reduce_durations.push_back(reduce);
  }
  DAGPERF_CHECK_MSG(!shuffle_durations.empty(), "no completed reduce tasks");
  phases.shuffle_s = ComputeStats(shuffle_durations).median;
  phases.reduce_s = ComputeStats(reduce_durations).median;
  return phases;
}

PhaseTimes BoePhaseTimes(const BoeModel& model, const JobProfile& job,
                         double map_tasks_per_node, double reduce_tasks_per_node,
                         double startup_s) {
  PhaseTimes phases;
  const TaskEstimate map_est = model.EstimateTask(job.map, map_tasks_per_node);
  phases.map_s = map_est.duration.seconds() + startup_s;
  if (!job.has_reduce()) return phases;

  const TaskEstimate reduce_est =
      model.EstimateTask(*job.reduce, reduce_tasks_per_node);
  phases.shuffle_s = startup_s;
  for (const auto& ss : reduce_est.substages) {
    if (IsShuffleSubStage(ss.name)) {
      phases.shuffle_s += ss.duration.seconds();
    } else {
      phases.reduce_s += ss.duration.seconds();
    }
  }
  return phases;
}

}  // namespace dagperf
