#ifndef DAGPERF_EXP_PHASE_SPLIT_H_
#define DAGPERF_EXP_PHASE_SPLIT_H_

#include "boe/boe_model.h"
#include "dag/dag_workflow.h"
#include "sim/sim_result.h"

namespace dagperf {

/// Median task-level times of the three phases the paper's Fig. 6 plots
/// separately. The library models the shuffle as the leading sub-stages of
/// the reduce task (copy + merge), so:
///
///   map     = whole map-task duration (incl. startup),
///   shuffle = reduce-task startup + "shuffle" + "merge" sub-stages,
///   reduce  = the trailing "reduce+write" sub-stage.
struct PhaseTimes {
  double map_s = 0.0;
  double shuffle_s = 0.0;
  double reduce_s = 0.0;
};

/// Ground-truth phase medians of one job from a simulated execution.
/// Requires the job to have completed map (and reduce, if present) tasks.
PhaseTimes MeasurePhaseTimes(const DagWorkflow& flow, const SimResult& result,
                             JobId job);

/// BOE-predicted phase times for one job, given per-node task populations
/// for each stage. `startup_s` is the known fixed container overhead added
/// to the map and shuffle phases (where a task begins).
PhaseTimes BoePhaseTimes(const BoeModel& model, const JobProfile& job,
                         double map_tasks_per_node, double reduce_tasks_per_node,
                         double startup_s);

/// True if the sub-stage belongs to the shuffle phase of a reduce task.
bool IsShuffleSubStage(const std::string& name);

}  // namespace dagperf

#endif  // DAGPERF_EXP_PHASE_SPLIT_H_
