#ifndef DAGPERF_EXP_PARALLEL_JOBS_H_
#define DAGPERF_EXP_PARALLEL_JOBS_H_

#include <string>
#include <vector>

#include "cluster/cluster_spec.h"
#include "common/status.h"
#include "dag/dag_workflow.h"
#include "scheduler/drf.h"
#include "sim/simulator.h"

namespace dagperf {

/// One (state, job-stage) accuracy cell of Table II: the BOE model's task
/// time estimate for a job during one workflow state versus the simulated
/// median task time observed in that state.
struct StateTaskAccuracy {
  int state = 0;  // 1-based, matching the paper's s1..s4.
  JobId job = 0;
  std::string job_name;
  StageKind kind = StageKind::kMap;
  double truth_s = 0.0;
  double estimate_s = 0.0;
  double accuracy = 0.0;
};

struct ParallelJobsResult {
  std::string flow_name;
  std::vector<StateTaskAccuracy> cells;
  int truth_states = 0;
  int estimated_states = 0;
};

/// Runs the Table II experiment on a workflow of parallel jobs: simulates
/// the ground truth, runs the state-based estimator with the BOE task-time
/// source, aligns estimated states with observed states by their running
/// (job, stage) sets, and reports per-state task-time accuracy.
Result<ParallelJobsResult> RunParallelJobsExperiment(const DagWorkflow& flow,
                                                     const ClusterSpec& cluster,
                                                     const SchedulerConfig& scheduler,
                                                     const SimOptions& sim_options);

}  // namespace dagperf

#endif  // DAGPERF_EXP_PARALLEL_JOBS_H_
