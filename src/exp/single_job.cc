#include "exp/single_job.h"

#include <algorithm>

#include "boe/boe_model.h"
#include "common/check.h"
#include "common/stats.h"
#include "dag/dag_workflow.h"

namespace dagperf {

namespace {

/// Effective sustained per-node population of a stage: the slot cap, unless
/// the stage has too few tasks to fill the cluster at that cap.
double EffectiveTasksPerNode(int cap, int num_tasks, int num_nodes) {
  const double by_tasks = static_cast<double>(num_tasks) / num_nodes;
  return std::min(static_cast<double>(cap), std::max(by_tasks, 1e-9));
}

Result<PhaseTimes> SimulatedPhases(const JobSpec& spec, const ClusterSpec& cluster,
                                   int tasks_per_node, const SimOptions& sim_options) {
  DagBuilder builder(spec.name + "-sweep");
  builder.AddJob(spec);
  Result<DagWorkflow> flow = std::move(builder).Build();
  if (!flow.ok()) return flow.status();
  SchedulerConfig sched;
  sched.max_tasks_per_node = tasks_per_node;
  const Simulator sim(cluster, sched, sim_options);
  Result<SimResult> result = sim.Run(*flow);
  if (!result.ok()) return result.status();
  return MeasurePhaseTimes(*flow, *result, 0);
}

double MeanAccuracy(const std::vector<double>& estimates,
                    const std::vector<double>& truths) {
  DAGPERF_CHECK(estimates.size() == truths.size());
  DAGPERF_CHECK(!estimates.empty());
  double sum = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    sum += RelativeAccuracy(estimates[i], truths[i]);
  }
  return sum / static_cast<double>(estimates.size());
}

SweepAccuracy ColumnAccuracy(const SingleJobSweepResult& result,
                             PhaseTimes SingleJobSweepPoint::*column) {
  std::vector<double> est_map, truth_map, est_sh, truth_sh, est_red, truth_red;
  for (const auto& p : result.points) {
    const PhaseTimes& est = p.*column;
    est_map.push_back(est.map_s);
    truth_map.push_back(p.truth.map_s);
    if (p.truth.shuffle_s > 0) {
      est_sh.push_back(est.shuffle_s);
      truth_sh.push_back(p.truth.shuffle_s);
      est_red.push_back(est.reduce_s);
      truth_red.push_back(p.truth.reduce_s);
    }
  }
  SweepAccuracy acc;
  acc.map = MeanAccuracy(est_map, truth_map);
  if (!est_sh.empty()) {
    acc.shuffle = MeanAccuracy(est_sh, truth_sh);
    acc.reduce = MeanAccuracy(est_red, truth_red);
  }
  return acc;
}

}  // namespace

Result<SingleJobSweepResult> RunSingleJobSweep(const JobSpec& spec,
                                               const SingleJobSweepConfig& config) {
  if (config.parallelisms.empty()) {
    return Status::InvalidArgument("no parallelism points");
  }
  Result<JobProfile> profile = CompileJob(spec);
  if (!profile.ok()) return profile.status();

  SingleJobSweepResult result;
  result.job_name = spec.name;
  result.baseline_reference = config.baseline_reference;

  // Baseline: the profiling run's ground truth, flat across the sweep.
  Result<PhaseTimes> baseline = SimulatedPhases(spec, config.cluster,
                                                config.baseline_reference, config.sim);
  if (!baseline.ok()) return baseline.status();

  const BoeModel model(config.cluster.node);
  for (int delta : config.parallelisms) {
    if (delta <= 0) return Status::InvalidArgument("parallelism must be positive");
    SingleJobSweepPoint point;
    point.tasks_per_node = delta;

    Result<PhaseTimes> truth =
        SimulatedPhases(spec, config.cluster, delta, config.sim);
    if (!truth.ok()) return truth.status();
    point.truth = *truth;

    const double map_tpn = EffectiveTasksPerNode(delta, profile->map.num_tasks,
                                                 config.cluster.num_nodes);
    const double red_tpn =
        profile->has_reduce()
            ? EffectiveTasksPerNode(delta, profile->reduce->num_tasks,
                                    config.cluster.num_nodes)
            : 0.0;
    point.boe = BoePhaseTimes(model, *profile, map_tpn, red_tpn,
                              config.sim.task_startup_seconds);
    point.baseline = *baseline;
    result.points.push_back(point);
  }
  return result;
}

SweepAccuracy BoeSweepAccuracy(const SingleJobSweepResult& result) {
  return ColumnAccuracy(result, &SingleJobSweepPoint::boe);
}

SweepAccuracy BaselineSweepAccuracy(const SingleJobSweepResult& result) {
  return ColumnAccuracy(result, &SingleJobSweepPoint::baseline);
}

}  // namespace dagperf
