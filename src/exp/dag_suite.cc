#include "exp/dag_suite.h"

#include <algorithm>
#include <chrono>

#include "common/stats.h"
#include "model/state_estimator.h"
#include "model/task_time_source.h"

namespace dagperf {

namespace {

double StageBreakdownAccuracy(const SimResult& truth, const DagEstimate& estimate) {
  std::vector<double> accuracies;
  for (const auto& truth_stage : truth.stages()) {
    const Result<StageSpanEstimate> est =
        estimate.FindStage(truth_stage.job, truth_stage.stage);
    if (!est.ok()) continue;
    const double truth_duration = truth_stage.end - truth_stage.start;
    const double est_duration = est->end - est->start;
    if (truth_duration <= 0) continue;
    accuracies.push_back(RelativeAccuracy(est_duration, truth_duration));
  }
  if (accuracies.empty()) return 0.0;
  return ComputeStats(accuracies).mean;
}

}  // namespace

Result<DagAccuracyRow> EvaluateDagWorkflow(const NamedFlow& named,
                                           const ClusterSpec& cluster,
                                           const SchedulerConfig& scheduler,
                                           const SimOptions& sim_options) {
  const DagWorkflow& flow = named.flow;
  const Simulator sim(cluster, scheduler, sim_options);
  Result<SimResult> truth = sim.Run(flow);
  if (!truth.ok()) return truth.status();

  Result<ProfileTaskTimeSource> mean_source =
      ProfileTaskTimeSource::FromSimulation(flow, *truth, ProfileStatistic::kMean);
  if (!mean_source.ok()) return mean_source.status();
  Result<ProfileTaskTimeSource> median_source =
      ProfileTaskTimeSource::FromSimulation(flow, *truth, ProfileStatistic::kMedian);
  if (!median_source.ok()) return median_source.status();

  EstimatorOptions alg1;
  EstimatorOptions alg2;
  alg2.skew_aware = true;
  const StateBasedEstimator est_alg1(cluster, scheduler, alg1);
  const StateBasedEstimator est_alg2(cluster, scheduler, alg2);

  const auto t0 = std::chrono::steady_clock::now();
  Result<DagEstimate> mean_est = est_alg1.Estimate(flow, *mean_source);
  if (!mean_est.ok()) return mean_est.status();
  Result<DagEstimate> median_est = est_alg1.Estimate(flow, *median_source);
  if (!median_est.ok()) return median_est.status();
  Result<DagEstimate> normal_est = est_alg2.Estimate(flow, *mean_source);
  if (!normal_est.ok()) return normal_est.status();
  const auto t1 = std::chrono::steady_clock::now();

  DagAccuracyRow row;
  row.name = named.name;
  row.truth_s = truth->makespan().seconds();
  row.est_mean_s = mean_est->makespan.seconds();
  row.est_median_s = median_est->makespan.seconds();
  row.est_normal_s = normal_est->makespan.seconds();
  row.acc_mean = RelativeAccuracy(row.est_mean_s, row.truth_s);
  row.acc_median = RelativeAccuracy(row.est_median_s, row.truth_s);
  row.acc_normal = RelativeAccuracy(row.est_normal_s, row.truth_s);
  row.stage_breakdown_acc = StageBreakdownAccuracy(*truth, *mean_est);
  row.estimate_latency_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return row;
}

SuiteSummary Summarize(const std::vector<DagAccuracyRow>& rows) {
  SuiteSummary summary;
  if (rows.empty()) return summary;
  for (const auto& row : rows) {
    summary.mean_acc_mean += row.acc_mean;
    summary.mean_acc_median += row.acc_median;
    summary.mean_acc_normal += row.acc_normal;
    summary.min_acc = std::min({summary.min_acc, row.acc_mean, row.acc_median,
                                row.acc_normal});
    summary.max_latency_ms = std::max(summary.max_latency_ms, row.estimate_latency_ms);
  }
  const double n = static_cast<double>(rows.size());
  summary.mean_acc_mean /= n;
  summary.mean_acc_median /= n;
  summary.mean_acc_normal /= n;
  return summary;
}

}  // namespace dagperf
