#ifndef DAGPERF_EXP_DAG_SUITE_H_
#define DAGPERF_EXP_DAG_SUITE_H_

#include <string>
#include <vector>

#include "cluster/cluster_spec.h"
#include "common/status.h"
#include "scheduler/drf.h"
#include "sim/simulator.h"
#include "workloads/suite.h"

namespace dagperf {

/// Table III row: end-to-end accuracy of the three state-based estimator
/// variants on one DAG workflow, plus stage-break-down accuracy and the
/// model computation latency (§V-C's final metric).
struct DagAccuracyRow {
  std::string name;
  double truth_s = 0.0;
  double est_mean_s = 0.0;    // Alg1 with mean task-time statistic.
  double est_median_s = 0.0;  // Alg1 with median statistic ("Alg1-Mid").
  double est_normal_s = 0.0;  // Alg2: skew-aware normal wave model.
  double acc_mean = 0.0;
  double acc_median = 0.0;
  double acc_normal = 0.0;
  /// Average per-stage duration accuracy of the Alg1-Mean estimate
  /// ("Stage Break-downs" in §V-C).
  double stage_breakdown_acc = 0.0;
  /// Wall-clock cost of computing the three estimates (E8: must be << 1 s).
  double estimate_latency_ms = 0.0;
};

/// Evaluates one workflow with the Table III methodology: simulate the
/// ground truth, capture task-time profiles from it (identical degree of
/// parallelism, per the paper), then run Alg1-Mean / Alg1-Mid / Alg2-Normal
/// and score each against the simulated execution.
Result<DagAccuracyRow> EvaluateDagWorkflow(const NamedFlow& flow,
                                           const ClusterSpec& cluster,
                                           const SchedulerConfig& scheduler,
                                           const SimOptions& sim_options);

/// Column means over a set of rows (the paper's "average accuracy of 51
/// workflows" summary).
struct SuiteSummary {
  double mean_acc_mean = 0.0;
  double mean_acc_median = 0.0;
  double mean_acc_normal = 0.0;
  double min_acc = 1.0;  // Worst cell across all variants and workflows.
  double max_latency_ms = 0.0;
};
SuiteSummary Summarize(const std::vector<DagAccuracyRow>& rows);

}  // namespace dagperf

#endif  // DAGPERF_EXP_DAG_SUITE_H_
