#include "engine/builtin.h"

#include <cstdlib>

namespace dagperf {

namespace {

/// Splits a value on whitespace and feeds each token to `fn`.
template <typename Fn>
void ForEachToken(const std::string& text, Fn fn) {
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    size_t j = i;
    while (j < text.size() && text[j] != ' ') ++j;
    if (j > i) fn(text.substr(i, j - i));
    i = j;
  }
}

void SumValues(const std::string& key, const std::vector<std::string>& values,
               ReduceContext& out) {
  long long total = 0;
  for (const auto& v : values) total += std::atoll(v.c_str());
  out.Emit(key, std::to_string(total));
}

}  // namespace

EngineJobConfig WordCountJob(std::string input, std::string output,
                             int num_reducers) {
  EngineJobConfig config;
  config.name = "wordcount";
  config.input = std::move(input);
  config.output = std::move(output);
  config.num_reducers = num_reducers;
  config.map = [](const Record& record, MapContext& out) {
    ForEachToken(record.value,
                 [&](std::string token) { out.Emit(std::move(token), "1"); });
  };
  config.combiner = SumValues;
  config.reduce = SumValues;
  return config;
}

EngineJobConfig SortJob(std::string input, std::string output, int num_reducers) {
  EngineJobConfig config;
  config.name = "sort";
  config.input = std::move(input);
  config.output = std::move(output);
  config.num_reducers = num_reducers;
  config.map = [](const Record& record, MapContext& out) {
    out.Emit(record.key, record.value);
  };
  config.reduce = [](const std::string& key, const std::vector<std::string>& values,
                     ReduceContext& out) {
    for (const auto& v : values) out.Emit(key, v);
  };
  // Range partitioner on the first byte keeps global order across the
  // concatenated partition outputs (keys are expected roughly uniform).
  config.partitioner = [](const std::string& key, int partitions) {
    const unsigned char first = key.empty() ? 0 : key[0];
    return static_cast<int>(first) * partitions / 256;
  };
  return config;
}

EngineJobConfig GrepJob(std::string input, std::string output, std::string pattern) {
  EngineJobConfig config;
  config.name = "grep";
  config.input = std::move(input);
  config.output = std::move(output);
  config.map = [pattern = std::move(pattern)](const Record& record, MapContext& out) {
    if (record.value.find(pattern) != std::string::npos) {
      out.Emit(record.key, record.value);
    }
  };
  return config;  // Map-only.
}

EngineJobConfig SumByKeyJob(std::string input, std::string output, int num_reducers) {
  EngineJobConfig config;
  config.name = "sum-by-key";
  config.input = std::move(input);
  config.output = std::move(output);
  config.num_reducers = num_reducers;
  config.map = [](const Record& record, MapContext& out) {
    out.Emit(record.key, record.value);
  };
  config.combiner = SumValues;
  config.reduce = SumValues;
  return config;
}

EngineJobConfig JoinJob(std::string merged_input, std::string output,
                        int num_reducers) {
  EngineJobConfig config;
  config.name = "join";
  config.input = std::move(merged_input);
  config.output = std::move(output);
  config.num_reducers = num_reducers;
  config.map = [](const Record& record, MapContext& out) {
    out.Emit(record.key, record.value);  // Values carry an "L:"/"R:" tag.
  };
  config.reduce = [](const std::string& key, const std::vector<std::string>& values,
                     ReduceContext& out) {
    std::vector<std::string> left;
    std::vector<std::string> right;
    for (const auto& v : values) {
      if (v.rfind("L:", 0) == 0) left.push_back(v.substr(2));
      if (v.rfind("R:", 0) == 0) right.push_back(v.substr(2));
    }
    for (const auto& l : left) {
      for (const auto& r : right) out.Emit(key, l + "|" + r);
    }
  };
  return config;
}

Status MergeForJoin(LocalStore& store, const std::string& left,
                    const std::string& right, const std::string& merged) {
  Result<const RecordVec*> l = store.Read(left);
  if (!l.ok()) return l.status();
  Result<const RecordVec*> r = store.Read(right);
  if (!r.ok()) return r.status();
  RecordVec out;
  out.reserve((*l)->size() + (*r)->size());
  for (const auto& rec : **l) out.push_back({rec.key, "L:" + rec.value});
  for (const auto& rec : **r) out.push_back({rec.key, "R:" + rec.value});
  store.Write(merged, std::move(out));
  return Status::Ok();
}

}  // namespace dagperf
