#ifndef DAGPERF_ENGINE_THREAD_POOL_H_
#define DAGPERF_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dagperf {

/// Fixed-size worker pool executing closures FIFO — the engine's "task
/// slots": the pool size caps how many map or reduce tasks run
/// concurrently, mirroring a node's container limit.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() started from another
  /// thread; tasks may enqueue further tasks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by other
  /// tasks) has finished.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace dagperf

#endif  // DAGPERF_ENGINE_THREAD_POOL_H_
