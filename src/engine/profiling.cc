#include "engine/profiling.h"

#include <algorithm>

namespace dagperf {

Result<JobSpec> SpecFromMetrics(const JobMetrics& metrics,
                                const ProfilingOptions& options) {
  if (metrics.map.bytes_in == 0) {
    return Status::InvalidArgument(metrics.job_name + ": no input bytes measured");
  }
  if (options.input_scale <= 0) {
    return Status::InvalidArgument("input_scale must be positive");
  }
  JobSpec spec = options.defaults;
  spec.name = metrics.job_name;
  spec.input = Bytes(static_cast<double>(metrics.map.bytes_in) * options.input_scale);

  const double in_bytes = static_cast<double>(metrics.map.bytes_in);
  spec.map_selectivity = static_cast<double>(metrics.map.bytes_out) / in_bytes;

  if (metrics.reduce.tasks > 0) {
    const double shuffle = static_cast<double>(metrics.shuffle_bytes);
    spec.reduce_selectivity =
        shuffle > 0 ? static_cast<double>(metrics.reduce.bytes_out) / shuffle : 0.0;
    if (metrics.reduce.total_task_seconds > 0 && shuffle > 0) {
      spec.reduce_compute = Rate(shuffle / metrics.reduce.total_task_seconds);
    }
    // Keep the profiled reducer density (reducers per input byte) when
    // scaling up, so partition sizes stay representative.
    const double reducers_per_byte =
        static_cast<double>(metrics.reduce.tasks) / in_bytes;
    spec.num_reduce_tasks = std::max(
        1, static_cast<int>(reducers_per_byte * spec.input.value() + 0.5));
  } else {
    spec.num_reduce_tasks = 0;
  }

  if (metrics.map.total_task_seconds > 0) {
    spec.map_compute = Rate(in_bytes / metrics.map.total_task_seconds);
  }
  return spec;
}

Result<JobSpec> ProfileEngineJob(MapReduceEngine& engine,
                                 const EngineJobConfig& config,
                                 const ProfilingOptions& options) {
  Result<JobMetrics> metrics = engine.Run(config);
  if (!metrics.ok()) return metrics.status();
  return SpecFromMetrics(*metrics, options);
}

}  // namespace dagperf
