#include "engine/record.h"

namespace dagperf {

size_t ByteSize(const RecordVec& records) {
  size_t total = 0;
  for (const auto& r : records) total += r.ByteSize();
  return total;
}

}  // namespace dagperf
