#ifndef DAGPERF_ENGINE_DATAGEN_H_
#define DAGPERF_ENGINE_DATAGEN_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "engine/storage.h"

namespace dagperf {

/// Synthetic dataset generators for the execution engine — the stand-ins
/// for RandomTextWriter / TeraGen / TPC-H dbgen (DESIGN.md §2). All are
/// deterministic for a given seed.

/// Natural-language-like text: records of `words_per_record` words drawn
/// from a `vocabulary`-word Zipf(s) distribution (word frequencies in real
/// corpora are Zipfian, which is what gives WordCount its combiner win).
/// Generates until at least `bytes` of records exist.
void GenerateText(LocalStore& store, const std::string& path, Bytes bytes,
                  int vocabulary = 10000, double zipf_s = 1.0,
                  int words_per_record = 20, uint64_t seed = 42);

/// TeraGen-like records: uniformly random fixed-width keys with
/// `value_bytes` of payload.
void GenerateKeyValue(LocalStore& store, const std::string& path, Bytes bytes,
                      int key_bytes = 10, int value_bytes = 90,
                      uint64_t seed = 42);

/// Keyed integer measurements with Zipf-skewed keys (aggregation /
/// join-workload input; the skew exponent controls reduce-key imbalance).
void GenerateKeyedInts(LocalStore& store, const std::string& path, int records,
                       int distinct_keys, double zipf_s = 0.8,
                       uint64_t seed = 42);

}  // namespace dagperf

#endif  // DAGPERF_ENGINE_DATAGEN_H_
