#ifndef DAGPERF_ENGINE_RECORD_H_
#define DAGPERF_ENGINE_RECORD_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dagperf {

/// A key/value record — the unit of data the execution engine moves. The
/// engine is schema-less: keys and values are byte strings, exactly as in
/// Hadoop's Text-based pipelines.
struct Record {
  std::string key;
  std::string value;

  bool operator==(const Record&) const = default;

  /// Serialized size used for byte accounting (framework overhead of a
  /// length-prefixed pair included).
  size_t ByteSize() const { return key.size() + value.size() + 8; }
};

using RecordVec = std::vector<Record>;

/// Total serialized size of a record batch.
size_t ByteSize(const RecordVec& records);

}  // namespace dagperf

#endif  // DAGPERF_ENGINE_RECORD_H_
