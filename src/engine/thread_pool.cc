#include "engine/thread_pool.h"

#include "common/check.h"

namespace dagperf {

ThreadPool::ThreadPool(int threads) {
  DAGPERF_CHECK(threads > 0);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DAGPERF_CHECK_MSG(!shutdown_, "submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace dagperf
