#include "engine/storage.h"

namespace dagperf {

void LocalStore::Write(const std::string& path, RecordVec records) {
  std::lock_guard<std::mutex> lock(mutex_);
  datasets_[path] = std::move(records);
}

void LocalStore::Append(const std::string& path, RecordVec records) {
  std::lock_guard<std::mutex> lock(mutex_);
  RecordVec& existing = datasets_[path];
  existing.insert(existing.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
}

Result<const RecordVec*> LocalStore::Read(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(path);
  if (it == datasets_.end()) return Status::NotFound(path + ": no such dataset");
  return &it->second;
}

bool LocalStore::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return datasets_.count(path) > 0;
}

void LocalStore::Erase(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  datasets_.erase(path);
}

std::vector<std::string> LocalStore::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& [path, records] : datasets_) out.push_back(path);
  return out;
}

size_t LocalStore::SizeBytes(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(path);
  return it == datasets_.end() ? 0 : ByteSize(it->second);
}

}  // namespace dagperf
