#ifndef DAGPERF_ENGINE_WORKFLOW_H_
#define DAGPERF_ENGINE_WORKFLOW_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"

namespace dagperf {

/// A DAG of engine jobs: edge (m, n) means job n starts only after job m
/// completes (Definition 1 of the paper, executed for real). Jobs are
/// connected through LocalStore paths: a child's input is typically a
/// parent's output.
struct EngineWorkflow {
  std::string name = "workflow";
  std::vector<EngineJobConfig> jobs;
  std::vector<std::pair<int, int>> edges;
};

/// Per-run measurements: one JobMetrics per job (same order), plus the
/// workflow wall time and each job's start/end offsets — the engine-side
/// equivalent of the simulator's stage records.
struct WorkflowMetrics {
  std::vector<JobMetrics> jobs;
  std::vector<double> job_start_s;
  std::vector<double> job_end_s;
  double wall_seconds = 0.0;
};

/// Executes the DAG with real parallelism: every job whose parents have
/// completed runs immediately on its own thread, so independent branches
/// genuinely contend for this machine's cores — the same phenomenon the
/// cost models describe at cluster scale. Rejects cyclic or out-of-range
/// topologies and aborts the workflow on the first job failure.
Result<WorkflowMetrics> RunEngineWorkflow(MapReduceEngine& engine,
                                          const EngineWorkflow& workflow);

}  // namespace dagperf

#endif  // DAGPERF_ENGINE_WORKFLOW_H_
