#ifndef DAGPERF_ENGINE_STORAGE_H_
#define DAGPERF_ENGINE_STORAGE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/record.h"

namespace dagperf {

/// In-memory record store standing in for a DFS: named datasets of records,
/// written once, read many times. Thread-safe. Jobs read their input from
/// one path and write their output to another, exactly like HDFS
/// directories; DAGs chain paths.
class LocalStore {
 public:
  LocalStore() = default;
  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;

  /// Creates or replaces a dataset.
  void Write(const std::string& path, RecordVec records);

  /// Appends to a dataset (creating it if absent) — used by parallel
  /// writers; ordering between appenders is unspecified, as on a real DFS.
  void Append(const std::string& path, RecordVec records);

  /// Immutable view of a dataset; NotFound if absent. The pointer remains
  /// valid until the dataset is rewritten or erased.
  Result<const RecordVec*> Read(const std::string& path) const;

  bool Exists(const std::string& path) const;
  void Erase(const std::string& path);
  std::vector<std::string> List() const;

  /// Serialized size of a dataset (0 if absent).
  size_t SizeBytes(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RecordVec> datasets_;
};

}  // namespace dagperf

#endif  // DAGPERF_ENGINE_STORAGE_H_
