#ifndef DAGPERF_ENGINE_BUILTIN_H_
#define DAGPERF_ENGINE_BUILTIN_H_

#include <string>

#include "engine/engine.h"

namespace dagperf {

/// Ready-made engine jobs mirroring the paper's workloads (Table I), for
/// functional validation and profile extraction.

/// WordCount: tokenises values on whitespace, counts occurrences. Uses a
/// combiner, like the HiBench configuration.
EngineJobConfig WordCountJob(std::string input, std::string output,
                             int num_reducers = 4);

/// TeraSort-like total sort: identity map keyed on the record key; a range
/// partitioner (prefix-based) keeps partition outputs globally ordered.
EngineJobConfig SortJob(std::string input, std::string output,
                        int num_reducers = 4);

/// Grep: map-only filter keeping records whose value contains `pattern`.
EngineJobConfig GrepJob(std::string input, std::string output,
                        std::string pattern);

/// Per-key sum of integer-valued records (aggregation query shape).
EngineJobConfig SumByKeyJob(std::string input, std::string output,
                            int num_reducers = 4);

/// Inner join of two datasets on the record key. The map tags records by
/// source (the engine runs it over a pre-merged input; see MergeForJoin).
EngineJobConfig JoinJob(std::string merged_input, std::string output,
                        int num_reducers = 4);

/// Tags and concatenates two datasets for JoinJob.
Status MergeForJoin(LocalStore& store, const std::string& left,
                    const std::string& right, const std::string& merged);

}  // namespace dagperf

#endif  // DAGPERF_ENGINE_BUILTIN_H_
