#ifndef DAGPERF_ENGINE_PROFILING_H_
#define DAGPERF_ENGINE_PROFILING_H_

#include "common/status.h"
#include "engine/engine.h"
#include "workload/job_spec.h"

namespace dagperf {

/// Closes the loop between real execution and the analytical models: runs a
/// job on the execution engine and converts its measurements into the
/// JobSpec the cost models consume — the role of Starfish's profiler in the
/// paper's ecosystem.
///
/// Measured from the run:
///   * map_selectivity    = post-combine map output bytes / input bytes
///   * reduce_selectivity = job output bytes / shuffle bytes
///   * map_compute        = input bytes / summed map-task seconds
///                          (per-core map-function throughput; engine tasks
///                          are single-threaded, so task-seconds are
///                          core-seconds on an unloaded machine)
///   * reduce_compute     = shuffle bytes / summed reduce-task seconds
///
/// Not measurable in-process (no disks or NICs here): replica counts,
/// compression ratio, cache behaviour, skew — `defaults` supplies them,
/// with Table-I-style values preconfigured.
struct ProfilingOptions {
  /// Scale-up factor applied to the measured input when synthesising the
  /// JobSpec (profile on 100 MB, model 100 GB).
  double input_scale = 1.0;
  /// Non-measurable JobSpec fields are copied from here.
  JobSpec defaults;
};

/// Runs `config` on `engine` and derives a JobSpec. The engine job executes
/// for real (its output dataset is produced as a side effect).
Result<JobSpec> ProfileEngineJob(MapReduceEngine& engine,
                                 const EngineJobConfig& config,
                                 const ProfilingOptions& options = {});

/// Converts already-collected metrics (e.g. from a previous run) without
/// re-executing. `input_bytes` must be > 0.
Result<JobSpec> SpecFromMetrics(const JobMetrics& metrics,
                                const ProfilingOptions& options = {});

}  // namespace dagperf

#endif  // DAGPERF_ENGINE_PROFILING_H_
