#ifndef DAGPERF_ENGINE_ENGINE_H_
#define DAGPERF_ENGINE_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/record.h"
#include "engine/storage.h"

namespace dagperf {

/// An in-process, multithreaded MapReduce execution engine over LocalStore
/// datasets — the executable counterpart of the framework the cost models
/// describe. It exists to (a) validate workload semantics (the library's
/// WordCount really counts words), (b) produce *measured* job profiles that
/// feed the analytical models (see engine/profiling.h), and (c) serve as a
/// teaching-scale reference implementation of the map/sort/combine/
/// shuffle/reduce pipeline.
///
/// Fidelity note: tasks here contend for this machine's CPUs and memory
/// bandwidth only — there is no disk or network. Cluster-scale validation
/// of the models is the simulator's job (src/sim); the engine validates
/// function-level semantics and CPU-bound behaviour.

/// Sink for map-side emissions.
class MapContext {
 public:
  virtual ~MapContext() = default;
  virtual void Emit(std::string key, std::string value) = 0;
};

/// Sink for reduce/combine-side emissions.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  virtual void Emit(std::string key, std::string value) = 0;
};

/// User-defined map function: called once per input record.
using MapFn = std::function<void(const Record&, MapContext&)>;

/// User-defined reduce (or combine) function: called once per key with all
/// of the key's values, in deterministic (map-task, emission) order.
using ReduceFn =
    std::function<void(const std::string& key, const std::vector<std::string>& values,
                       ReduceContext&)>;

/// Maps a key to a reduce partition in [0, partitions).
using PartitionFn = std::function<int(const std::string& key, int partitions)>;

/// Default partitioner: stable hash of the key.
int HashPartition(const std::string& key, int partitions);

/// Declarative configuration of one engine job.
struct EngineJobConfig {
  std::string name = "job";
  std::string input;
  std::string output;
  MapFn map;           // Required.
  ReduceFn reduce;     // Empty: map-only job (map output goes to `output`).
  ReduceFn combiner;   // Optional map-side pre-aggregation.
  PartitionFn partitioner;  // Defaults to HashPartition.
  int num_reducers = 2;
  /// Records per map split (the engine's "block size").
  size_t split_records = 64 * 1024;
  /// Map-side sort buffer in records per task (0 = unbounded). When map
  /// output exceeds it, the task sorts and spills a run and later merges
  /// all runs — MapReduce's external sort, observable in the metrics as
  /// spills and merge bytes (what JobSpec::sort_buffer models).
  size_t sort_buffer_records = 0;
};

/// Aggregated measurements of one phase (map or reduce).
struct PhaseMetrics {
  int tasks = 0;
  size_t records_in = 0;
  size_t records_out = 0;
  size_t bytes_in = 0;
  size_t bytes_out = 0;
  /// Sum and max of per-task wall time (seconds).
  double total_task_seconds = 0.0;
  double max_task_seconds = 0.0;
};

/// Measurements of one executed job — the raw material of profiling.
struct JobMetrics {
  std::string job_name;
  PhaseMetrics map;
  PhaseMetrics reduce;
  /// Post-combine map output crossing the (in-memory) shuffle.
  size_t shuffle_bytes = 0;
  /// External-sort activity: spill runs written beyond the first, and the
  /// bytes re-read+re-written by the map-side merge of multiple runs.
  size_t map_spills = 0;
  size_t merge_bytes = 0;
  double wall_seconds = 0.0;
  /// Wall-clock spans of the two phases (map includes the shuffle gather).
  double map_wall_seconds = 0.0;
  double reduce_wall_seconds = 0.0;
};

struct EngineOptions {
  /// Concurrent map / reduce tasks ("slots").
  int map_slots = 4;
  int reduce_slots = 4;
};

/// The engine. Thread-safe for concurrent Run() calls on distinct outputs.
class MapReduceEngine {
 public:
  /// `store` must outlive the engine.
  MapReduceEngine(LocalStore* store, EngineOptions options = {});

  /// Executes the job to completion. Output is written atomically to
  /// config.output (replacing any previous dataset) and is deterministic:
  /// reduce outputs concatenate in partition order, map-only outputs in
  /// split order. Fails on missing input / invalid configuration.
  Result<JobMetrics> Run(const EngineJobConfig& config);

  const EngineOptions& options() const { return options_; }

 private:
  LocalStore* store_;
  EngineOptions options_;
};

/// Groups sorted records by key and invokes `fn` per group (exposed for the
/// combiner path and tests).
void GroupAndReduce(const RecordVec& sorted, const ReduceFn& fn, ReduceContext& out);

}  // namespace dagperf

#endif  // DAGPERF_ENGINE_ENGINE_H_
