#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/check.h"
#include "common/parallel.h"

namespace dagperf {

namespace {

/// Collects emissions into a vector.
class VectorSink : public MapContext, public ReduceContext {
 public:
  explicit VectorSink(RecordVec* out) : out_(out) {}
  void Emit(std::string key, std::string value) override {
    out_->push_back({std::move(key), std::move(value)});
  }

 private:
  RecordVec* out_;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void SortByKey(RecordVec& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) { return a.key < b.key; });
}

}  // namespace

int HashPartition(const std::string& key, int partitions) {
  // FNV-1a; stable across platforms so outputs are reproducible.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<uint64_t>(partitions));
}

void GroupAndReduce(const RecordVec& sorted, const ReduceFn& fn, ReduceContext& out) {
  size_t i = 0;
  std::vector<std::string> values;
  while (i < sorted.size()) {
    const std::string& key = sorted[i].key;
    values.clear();
    size_t j = i;
    while (j < sorted.size() && sorted[j].key == key) {
      values.push_back(sorted[j].value);
      ++j;
    }
    fn(key, values, out);
    i = j;
  }
}

MapReduceEngine::MapReduceEngine(LocalStore* store, EngineOptions options)
    : store_(store), options_(options) {
  DAGPERF_CHECK(store_ != nullptr);
  DAGPERF_CHECK(options_.map_slots > 0);
  DAGPERF_CHECK(options_.reduce_slots > 0);
}

Result<JobMetrics> MapReduceEngine::Run(const EngineJobConfig& config) {
  if (!config.map) return Status::InvalidArgument(config.name + ": map fn required");
  if (config.reduce && config.num_reducers < 1) {
    return Status::InvalidArgument(config.name + ": need >= 1 reducer");
  }
  if (config.split_records == 0) {
    return Status::InvalidArgument(config.name + ": split_records must be > 0");
  }
  if (config.output.empty() || config.input.empty()) {
    return Status::InvalidArgument(config.name + ": input/output paths required");
  }
  Result<const RecordVec*> input = store_->Read(config.input);
  if (!input.ok()) return input.status();
  const RecordVec& records = **input;
  const PartitionFn partition =
      config.partitioner ? config.partitioner : HashPartition;
  const bool map_only = !config.reduce;
  const int reducers = map_only ? 0 : config.num_reducers;

  const auto job_start = std::chrono::steady_clock::now();
  JobMetrics metrics;
  metrics.job_name = config.name;

  // ---- Map phase -----------------------------------------------------
  const size_t num_splits =
      std::max<size_t>(1, (records.size() + config.split_records - 1) /
                              config.split_records);
  // Per split: either one output vector (map-only) or one per partition.
  struct MapOutput {
    std::vector<RecordVec> partitions;
    size_t records_in = 0;
    size_t bytes_in = 0;
    size_t records_out = 0;
    size_t bytes_out = 0;
    size_t spills = 0;
    size_t merge_bytes = 0;
    double seconds = 0.0;
  };
  std::vector<MapOutput> map_outputs(num_splits);

  {
    ThreadPool pool(options_.map_slots);
    for (size_t split = 0; split < num_splits; ++split) {
      pool.Submit([&, split] {
        const auto task_start = std::chrono::steady_clock::now();
        MapOutput& out = map_outputs[split];
        const size_t begin = split * config.split_records;
        const size_t end = std::min(records.size(), begin + config.split_records);
        out.partitions.resize(map_only ? 1 : reducers);

        RecordVec emitted;
        VectorSink sink(&emitted);
        // External sort: emitted records accumulate in the sort buffer;
        // overflowing it seals a sorted (and combined) run. Multiple runs
        // are merged at task end — the spill/merge behaviour
        // JobSpec::sort_buffer models analytically.
        std::vector<std::vector<RecordVec>> runs;
        const auto seal_run = [&] {
          if (emitted.empty()) return;
          std::vector<RecordVec> run(reducers);
          for (auto& r : emitted) {
            const int p = partition(r.key, reducers);
            DAGPERF_CHECK_MSG(p >= 0 && p < reducers, "partitioner out of range");
            run[p].push_back(std::move(r));
          }
          emitted.clear();
          if (config.combiner) {
            for (auto& part : run) {
              SortByKey(part);
              RecordVec combined;
              VectorSink combined_sink(&combined);
              GroupAndReduce(part, config.combiner, combined_sink);
              part = std::move(combined);
            }
          }
          runs.push_back(std::move(run));
        };

        for (size_t i = begin; i < end; ++i) {
          config.map(records[i], sink);
          out.bytes_in += records[i].ByteSize();
          if (!map_only && config.sort_buffer_records > 0 &&
              emitted.size() >= config.sort_buffer_records) {
            seal_run();
          }
        }
        out.records_in = end - begin;

        if (map_only) {
          out.partitions[0] = std::move(emitted);
        } else {
          seal_run();
          if (runs.size() <= 1) {
            if (!runs.empty()) out.partitions = std::move(runs[0]);
          } else {
            // Merge pass over every spilled run.
            out.spills = runs.size() - 1;
            for (auto& run : runs) {
              for (int p = 0; p < reducers; ++p) {
                out.merge_bytes += ByteSize(run[p]);
                out.partitions[p].insert(out.partitions[p].end(),
                                         std::make_move_iterator(run[p].begin()),
                                         std::make_move_iterator(run[p].end()));
              }
            }
            for (auto& part : out.partitions) {
              SortByKey(part);
              if (config.combiner) {
                RecordVec combined;
                VectorSink combined_sink(&combined);
                GroupAndReduce(part, config.combiner, combined_sink);
                part = std::move(combined);
              }
            }
          }
        }
        for (const auto& part : out.partitions) {
          out.records_out += part.size();
          out.bytes_out += ByteSize(part);
        }
        out.seconds = SecondsSince(task_start);
      });
    }
    pool.Wait();
  }

  metrics.map_wall_seconds = SecondsSince(job_start);
  metrics.map.tasks = static_cast<int>(num_splits);
  for (const auto& out : map_outputs) {
    metrics.map.records_in += out.records_in;
    metrics.map.bytes_in += out.bytes_in;
    metrics.map.records_out += out.records_out;
    metrics.map.bytes_out += out.bytes_out;
    metrics.map_spills += out.spills;
    metrics.merge_bytes += out.merge_bytes;
    metrics.map.total_task_seconds += out.seconds;
    metrics.map.max_task_seconds = std::max(metrics.map.max_task_seconds, out.seconds);
  }

  if (map_only) {
    RecordVec output;
    for (auto& out : map_outputs) {
      output.insert(output.end(), std::make_move_iterator(out.partitions[0].begin()),
                    std::make_move_iterator(out.partitions[0].end()));
    }
    store_->Write(config.output, std::move(output));
    metrics.wall_seconds = SecondsSince(job_start);
    return metrics;
  }
  metrics.shuffle_bytes = metrics.map.bytes_out;

  // ---- Shuffle: gather each partition in split order (deterministic). --
  std::vector<RecordVec> shuffle(reducers);
  for (auto& out : map_outputs) {
    for (int p = 0; p < reducers; ++p) {
      shuffle[p].insert(shuffle[p].end(),
                        std::make_move_iterator(out.partitions[p].begin()),
                        std::make_move_iterator(out.partitions[p].end()));
    }
  }

  // ---- Reduce phase ----------------------------------------------------
  struct ReduceOutput {
    RecordVec records;
    size_t records_in = 0;
    size_t bytes_in = 0;
    double seconds = 0.0;
  };
  std::vector<ReduceOutput> reduce_outputs(reducers);
  {
    ThreadPool pool(options_.reduce_slots);
    for (int p = 0; p < reducers; ++p) {
      pool.Submit([&, p] {
        const auto task_start = std::chrono::steady_clock::now();
        ReduceOutput& out = reduce_outputs[p];
        RecordVec& partition = shuffle[p];
        out.records_in = partition.size();
        out.bytes_in = ByteSize(partition);
        SortByKey(partition);
        VectorSink sink(&out.records);
        GroupAndReduce(partition, config.reduce, sink);
        out.seconds = SecondsSince(task_start);
      });
    }
    pool.Wait();
  }

  metrics.reduce_wall_seconds = SecondsSince(job_start) - metrics.map_wall_seconds;
  RecordVec output;
  metrics.reduce.tasks = reducers;
  for (auto& out : reduce_outputs) {
    metrics.reduce.records_in += out.records_in;
    metrics.reduce.bytes_in += out.bytes_in;
    metrics.reduce.records_out += out.records.size();
    metrics.reduce.bytes_out += ByteSize(out.records);
    metrics.reduce.total_task_seconds += out.seconds;
    metrics.reduce.max_task_seconds =
        std::max(metrics.reduce.max_task_seconds, out.seconds);
    output.insert(output.end(), std::make_move_iterator(out.records.begin()),
                  std::make_move_iterator(out.records.end()));
  }
  store_->Write(config.output, std::move(output));
  metrics.wall_seconds = SecondsSince(job_start);
  return metrics;
}

}  // namespace dagperf
