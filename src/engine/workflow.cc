#include "engine/workflow.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace dagperf {

namespace {

Status ValidateTopology(const EngineWorkflow& workflow) {
  const int n = static_cast<int>(workflow.jobs.size());
  if (n == 0) return Status::InvalidArgument(workflow.name + ": no jobs");
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> children(n);
  for (const auto& [from, to] : workflow.edges) {
    if (from < 0 || from >= n || to < 0 || to >= n) {
      return Status::InvalidArgument(workflow.name + ": edge out of range");
    }
    if (from == to) return Status::InvalidArgument(workflow.name + ": self edge");
    ++indegree[to];
    children[from].push_back(to);
  }
  // Kahn's cycle check.
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  int visited = 0;
  while (!ready.empty()) {
    const int job = ready.back();
    ready.pop_back();
    ++visited;
    for (int child : children[job]) {
      if (--indegree[child] == 0) ready.push_back(child);
    }
  }
  if (visited != n) return Status::InvalidArgument(workflow.name + ": cycle");
  return Status::Ok();
}

}  // namespace

Result<WorkflowMetrics> RunEngineWorkflow(MapReduceEngine& engine,
                                          const EngineWorkflow& workflow) {
  Status st = ValidateTopology(workflow);
  if (!st.ok()) return st;
  const int n = static_cast<int>(workflow.jobs.size());

  WorkflowMetrics metrics;
  metrics.jobs.resize(n);
  metrics.job_start_s.resize(n, 0.0);
  metrics.job_end_s.resize(n, 0.0);

  std::vector<int> unfinished_parents(n, 0);
  std::vector<std::vector<int>> children(n);
  for (const auto& [from, to] : workflow.edges) {
    ++unfinished_parents[to];
    children[from].push_back(to);
  }

  std::mutex mutex;
  std::condition_variable done_cv;
  int completed = 0;
  Status first_error = Status::Ok();
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();

  // Launch is self-referential (finished jobs launch their ready children),
  // so it lives in a std::function. The threads vector is guarded by the
  // same mutex: workers append to it when launching children.
  std::function<void(int)> launch = [&](int job) {
    std::lock_guard<std::mutex> launch_lock(mutex);
    threads.emplace_back([&, job] {
      {
        std::lock_guard<std::mutex> lock(mutex);
        metrics.job_start_s[job] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
      }
      Result<JobMetrics> result = engine.Run(workflow.jobs[job]);
      std::vector<int> now_ready;
      {
        std::lock_guard<std::mutex> lock(mutex);
        metrics.job_end_s[job] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        if (!result.ok()) {
          if (first_error.ok()) first_error = result.status();
        } else {
          metrics.jobs[job] = std::move(result).value();
          for (int child : children[job]) {
            if (--unfinished_parents[child] == 0) now_ready.push_back(child);
          }
        }
        ++completed;
      }
      if (first_error.ok()) {
        for (int child : now_ready) launch(child);
      }
      done_cv.notify_all();
    });
  };

  {
    // Collect sources first: launching mutates `threads`.
    std::vector<int> sources;
    for (int i = 0; i < n; ++i) {
      if (unfinished_parents[i] == 0) sources.push_back(i);
    }
    for (int job : sources) launch(job);
  }

  {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] {
      if (!first_error.ok()) return true;
      return completed == n;
    });
  }
  // Join everything that was started; workers append children to `threads`
  // before exiting, so joining in creation order drains the vector even
  // while it grows.
  size_t joined = 0;
  while (true) {
    std::thread worker;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (joined == threads.size()) break;
      worker = std::move(threads[joined++]);
    }
    worker.join();
  }
  if (!first_error.ok()) return first_error;

  metrics.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return metrics;
}

}  // namespace dagperf
