#include "engine/datagen.h"

#include "common/check.h"
#include "common/rng.h"

namespace dagperf {

namespace {

std::string RandomWord(Rng& rng, uint64_t index) {
  // Deterministic pseudo-word for a vocabulary index: letters derived from
  // a mixed hash so words have realistic varied lengths (3-10 chars).
  Rng word_rng(index * 2654435761ULL + 17);
  const int len = 3 + static_cast<int>(word_rng.UniformInt(8));
  std::string word;
  word.reserve(len);
  for (int i = 0; i < len; ++i) {
    word.push_back('a' + static_cast<char>(word_rng.UniformInt(26)));
  }
  (void)rng;
  return word;
}

}  // namespace

void GenerateText(LocalStore& store, const std::string& path, Bytes bytes,
                  int vocabulary, double zipf_s, int words_per_record,
                  uint64_t seed) {
  DAGPERF_CHECK(vocabulary > 0);
  DAGPERF_CHECK(words_per_record > 0);
  Rng rng(seed);
  // Pre-build the vocabulary once; Zipf picks indices into it.
  std::vector<std::string> words;
  words.reserve(vocabulary);
  for (int i = 0; i < vocabulary; ++i) {
    words.push_back(RandomWord(rng, static_cast<uint64_t>(i)));
  }
  RecordVec records;
  size_t total = 0;
  uint64_t line = 0;
  const size_t target = static_cast<size_t>(bytes.value());
  while (total < target) {
    std::string text;
    for (int w = 0; w < words_per_record; ++w) {
      if (w > 0) text += ' ';
      text += words[rng.Zipf(vocabulary, zipf_s)];
    }
    Record record{std::to_string(line++), std::move(text)};
    total += record.ByteSize();
    records.push_back(std::move(record));
  }
  store.Write(path, std::move(records));
}

void GenerateKeyValue(LocalStore& store, const std::string& path, Bytes bytes,
                      int key_bytes, int value_bytes, uint64_t seed) {
  DAGPERF_CHECK(key_bytes > 0);
  DAGPERF_CHECK(value_bytes >= 0);
  Rng rng(seed);
  RecordVec records;
  size_t total = 0;
  const size_t target = static_cast<size_t>(bytes.value());
  while (total < target) {
    std::string key;
    key.reserve(key_bytes);
    for (int i = 0; i < key_bytes; ++i) {
      key.push_back(static_cast<char>('!' + rng.UniformInt(94)));  // Printable.
    }
    std::string value(value_bytes, 'x');
    Record record{std::move(key), std::move(value)};
    total += record.ByteSize();
    records.push_back(std::move(record));
  }
  store.Write(path, std::move(records));
}

void GenerateKeyedInts(LocalStore& store, const std::string& path, int records,
                       int distinct_keys, double zipf_s, uint64_t seed) {
  DAGPERF_CHECK(records >= 0);
  DAGPERF_CHECK(distinct_keys > 0);
  Rng rng(seed);
  RecordVec out;
  out.reserve(records);
  for (int i = 0; i < records; ++i) {
    const uint64_t key = rng.Zipf(distinct_keys, zipf_s);
    const int value = static_cast<int>(rng.UniformInt(1000));
    out.push_back({"k" + std::to_string(key), std::to_string(value)});
  }
  store.Write(path, std::move(out));
}

}  // namespace dagperf
