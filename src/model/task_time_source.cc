#include "model/task_time_source.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/stats.h"

namespace dagperf {

NormalParams TaskTimeSource::TaskTimeDist(const EstimationContext& context) const {
  const double mean = TaskTime(context).seconds();
  DAGPERF_CHECK(context.query < context.running.size());
  const double cv = context.running[context.query].stage->task_size_cv;
  return {mean, mean * cv};
}

BoeTaskTimeSource::BoeTaskTimeSource(const BoeModel& model, Duration fixed_overhead)
    : model_(model), fixed_overhead_(fixed_overhead) {}

Duration BoeTaskTimeSource::TaskTime(const EstimationContext& context) const {
  DAGPERF_CHECK(context.query < context.running.size());
  // Duration-only fast path: bit-identical to EstimateParallel's durations
  // without materialising the per-operation breakdown (Attribution still
  // pays for the full estimate, but only runs when attribution is on).
  static thread_local std::vector<double> durations;
  model_.EstimateDurations(context.running, &durations);
  return Duration(durations[context.query]) + fixed_overhead_;
}

std::optional<TaskAttribution> BoeTaskTimeSource::Attribution(
    const EstimationContext& context) const {
  DAGPERF_CHECK(context.query < context.running.size());
  const std::vector<TaskEstimate> estimates = model_.EstimateParallel(context.running);
  const TaskEstimate& task = estimates[context.query];
  TaskAttribution attribution;
  attribution.bottleneck = task.bottleneck;
  attribution.work_time = task.duration;
  for (const SubStageEstimate& substage : task.substages) {
    for (const OpEstimate& op : substage.ops) {
      if (op.time.is_infinite()) continue;
      attribution.busy[op.resource] += op.time.seconds();
    }
  }
  return attribution;
}

ProfileTaskTimeSource::ProfileTaskTimeSource(ProfileStatistic statistic)
    : statistic_(statistic) {}

void ProfileTaskTimeSource::AddProfile(const std::string& stage_name,
                                       std::vector<double> durations) {
  DAGPERF_CHECK_MSG(!durations.empty(), "empty profile sample");
  const SampleStats stats = ComputeStats(durations);
  profiles_[stage_name] = Entry{stats.mean, stats.median, stats.stddev};
}

void ProfileTaskTimeSource::AddContextProfile(
    const std::vector<std::string>& running, const std::string& stage_name,
    std::vector<double> durations) {
  DAGPERF_CHECK_MSG(!durations.empty(), "empty context profile sample");
  std::vector<std::string> sorted = running;
  std::sort(sorted.begin(), sorted.end());
  std::string signature;
  for (const auto& name : sorted) {
    signature += name;
    signature += '|';
  }
  const SampleStats stats = ComputeStats(durations);
  context_profiles_[{signature, stage_name}] =
      Entry{stats.mean, stats.median, stats.stddev};
}

std::string ProfileTaskTimeSource::Signature(const EstimationContext& context) {
  std::vector<std::string> names;
  names.reserve(context.running.size());
  for (const auto& ps : context.running) names.push_back(ps.stage->name);
  std::sort(names.begin(), names.end());
  std::string signature;
  for (const auto& name : names) {
    signature += name;
    signature += '|';
  }
  return signature;
}

namespace {

/// Pooled within-wave standard deviation: tasks dispatched at the same
/// instant (wave-mates) run under identical contention, so their dispersion
/// is the skew component Alg2-Normal should model. The raw sample stddev
/// also absorbs cross-state contention shifts, which would wrongly inflate
/// every wave-max estimate.
double WithinWaveStddev(const std::vector<TaskRecord>& tasks, JobId job,
                        StageKind stage) {
  std::map<long long, std::pair<double, std::vector<double>>> groups;
  for (const auto& t : tasks) {
    if (t.job != job || t.stage != stage) continue;
    const long long key = llround(t.start * 100.0);  // 10 ms start buckets.
    groups[key].second.push_back(t.duration());
  }
  double ss = 0.0;
  size_t n = 0;
  for (auto& [key, group] : groups) {
    const std::vector<double>& durations = group.second;
    double mean = 0.0;
    for (double d : durations) mean += d;
    mean /= static_cast<double>(durations.size());
    for (double d : durations) ss += (d - mean) * (d - mean);
    n += durations.size();
  }
  return n > 0 ? std::sqrt(ss / static_cast<double>(n)) : 0.0;
}

}  // namespace

Result<ProfileTaskTimeSource> ProfileTaskTimeSource::FromSimulation(
    const DagWorkflow& flow, const SimResult& result, ProfileStatistic statistic) {
  ProfileTaskTimeSource source(statistic);
  for (JobId id = 0; id < flow.num_jobs(); ++id) {
    const JobProfile& job = flow.job(id);
    const std::vector<double> map_durations = result.TaskDurations(id, StageKind::kMap);
    if (map_durations.empty()) {
      return Status::FailedPrecondition(job.map.name + ": no profiled map tasks");
    }
    source.AddProfile(job.map.name, map_durations);
    source.profiles_[job.map.name].stddev =
        WithinWaveStddev(result.tasks(), id, StageKind::kMap);
    if (job.has_reduce()) {
      const std::vector<double> reduce_durations =
          result.TaskDurations(id, StageKind::kReduce);
      if (reduce_durations.empty()) {
        return Status::FailedPrecondition(job.reduce->name +
                                          ": no profiled reduce tasks");
      }
      source.AddProfile(job.reduce->name, reduce_durations);
      source.profiles_[job.reduce->name].stddev =
          WithinWaveStddev(result.tasks(), id, StageKind::kReduce);
    }
  }

  // Contention buckets: durations of tasks attributed to each workflow
  // state, keyed by the names of the stages running in that state. States
  // with the same running set pool their samples.
  const auto stage_name = [&flow](JobId id, StageKind kind) -> const std::string& {
    return kind == StageKind::kMap ? flow.job(id).map.name
                                   : flow.job(id).reduce->name;
  };
  std::map<std::pair<std::string, std::string>, std::vector<double>> buckets;
  for (const auto& state : result.states()) {
    std::vector<std::string> running;
    running.reserve(state.running.size());
    for (const auto& [id, kind] : state.running) running.push_back(stage_name(id, kind));
    std::sort(running.begin(), running.end());
    std::string signature;
    for (const auto& name : running) {
      signature += name;
      signature += '|';
    }
    for (const auto& [id, kind] : state.running) {
      const std::vector<double> durations =
          result.TaskDurationsInState(id, kind, state.index);
      if (durations.empty()) continue;
      auto& bucket = buckets[{signature, stage_name(id, kind)}];
      bucket.insert(bucket.end(), durations.begin(), durations.end());
    }
  }
  for (auto& [key, durations] : buckets) {
    const SampleStats stats = ComputeStats(durations);
    Entry entry{stats.mean, stats.median, stats.stddev};
    // The contention bucket pins the level; the spread still comes from the
    // stage's within-wave skew, rescaled to the bucket's mean.
    const auto global = source.profiles_.find(key.second);
    if (global != source.profiles_.end() && global->second.mean > 0) {
      entry.stddev = global->second.stddev * stats.mean / global->second.mean;
    }
    source.context_profiles_[key] = entry;
  }
  return source;
}

bool ProfileTaskTimeSource::HasProfile(const std::string& stage_name) const {
  return profiles_.count(stage_name) > 0;
}

const ProfileTaskTimeSource::Entry& ProfileTaskTimeSource::Lookup(
    const EstimationContext& context) const {
  DAGPERF_CHECK(context.query < context.running.size());
  const std::string& name = context.running[context.query].stage->name;
  const auto ctx_it = context_profiles_.find({Signature(context), name});
  if (ctx_it != context_profiles_.end()) return ctx_it->second;
  auto it = profiles_.find(name);
  DAGPERF_CHECK_MSG(it != profiles_.end(), name.c_str());
  return it->second;
}

Duration ProfileTaskTimeSource::TaskTime(const EstimationContext& context) const {
  const Entry& entry = Lookup(context);
  return Duration(statistic_ == ProfileStatistic::kMean ? entry.mean : entry.median);
}

NormalParams ProfileTaskTimeSource::TaskTimeDist(
    const EstimationContext& context) const {
  const Entry& entry = Lookup(context);
  return {entry.mean, entry.stddev};
}

}  // namespace dagperf
