#ifndef DAGPERF_MODEL_TASK_TIME_CACHE_H_
#define DAGPERF_MODEL_TASK_TIME_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/task_time_source.h"

namespace dagperf {

/// Thread-safe memo table for task-time queries.
///
/// The state-based estimator asks its TaskTimeSource for a task time once
/// per (running stage, workflow state); across the states of one estimate —
/// and far more so across the candidates of a what-if sweep — the same
/// concurrent-execution context recurs constantly (e.g. every reducer-count
/// candidate shares the identical map-only states). The memo keys on an
/// *exact* serialisation of the EstimationContext (stage profile contents
/// and per-node task populations, raw double bits — no rounding), so a hit
/// returns bit-identical values to recomputation and cached estimates equal
/// uncached ones exactly.
///
/// Keys optionally carry a caller-supplied scope prefix so one memo can be
/// shared across sources or knob settings that the context alone does not
/// distinguish (e.g. different node hardware, different fixed overheads).
///
/// Internally the table is striped into kShardCount power-of-two shards
/// (hash-of-key → shard), each with its own reader-writer lock and hit/miss
/// counters, so concurrent sweeps and coalesced service requests contend on
/// 1/kShardCount of the keyspace instead of one global mutex. The striping
/// is invisible at the API: stats() rolls the per-shard counters up, and
/// Export() returns entries sorted by key so warm-state snapshot bytes stay
/// deterministic (and bit-compatible with the pre-sharded format).
///
/// All operations are safe to call concurrently.
class TaskTimeMemo {
 public:
  /// Lock stripes. Power of two so the shard index is a mask, sized so a
  /// pool of a few dozen sweep workers rarely collides on a stripe.
  static constexpr std::size_t kShardCount = 16;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Misses whose insert found the value already stored: two threads
    /// computed the same key concurrently (harmless — the source is
    /// deterministic — but duplicated work worth watching under load).
    std::uint64_t insert_races = 0;
    std::size_t entries = 0;
    /// Stripe count (constant for a build; surfaced so `stats` consumers
    /// can normalise contention numbers without a header dependency).
    std::size_t shards = kShardCount;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  Stats stats() const;

  /// Drops every entry and zeroes the per-shard hit/miss/race counters.
  /// The service calls this on drain, so post-drain `stats` gauges report
  /// the new epoch only — counters from before the drain never leak into
  /// hit-rate computed after it.
  void Clear();

  /// One memo entry in exported form — the warm-state snapshot
  /// (model/snapshot.h) serialises these; Entry itself stays private.
  struct ExportedEntry {
    std::string key;
    Duration time;
    NormalParams dist;
    bool has_time = false;
    bool has_dist = false;
  };

  /// Snapshot of every stored entry, sorted by key. The sort makes the
  /// export independent of shard iteration order and hash seeding, which
  /// keeps warm-state snapshot bytes (model/snapshot.h) deterministic for a
  /// given set of entries.
  std::vector<ExportedEntry> Export() const;

  /// Merges entries into the memo. Existing keys keep their stored value —
  /// sources are deterministic, so a colliding import carries the same bits
  /// either way. Hit/miss counters are untouched: imported warmth shows up
  /// as hits, exactly like warmth earned by serving.
  void Import(const std::vector<ExportedEntry>& entries);
  static std::string Fingerprint(const std::string& scope,
                                 const EstimationContext& context);

  /// Allocation-free variant for hot loops: rebuilds the key into `*out`
  /// (cleared first, capacity reused).
  static void FingerprintTo(const std::string& scope,
                            const EstimationContext& context, std::string* out);

 private:
  friend class MemoizedTaskTimeSource;

  struct Entry {
    Duration time;
    NormalParams dist;
    bool has_time = false;
    bool has_dist = false;
  };

  /// One lock stripe: a slice of the keyspace with its own mutex and
  /// counters. Counters live on the shard (not globally) so a hot stripe
  /// never bounces a process-wide cache line.
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    mutable std::atomic<std::uint64_t> hits{0};
    mutable std::atomic<std::uint64_t> misses{0};
    mutable std::atomic<std::uint64_t> insert_races{0};
  };

  static std::size_t ShardIndex(std::string_view key) {
    static_assert((kShardCount & (kShardCount - 1)) == 0,
                  "shard count must be a power of two");
    return std::hash<std::string_view>{}(key) & (kShardCount - 1);
  }

  Shard& ShardFor(std::string_view key) { return shards_[ShardIndex(key)]; }
  const Shard& ShardFor(std::string_view key) const {
    return shards_[ShardIndex(key)];
  }

  std::array<Shard, kShardCount> shards_;
};

/// A TaskTimeSource decorator answering repeated queries from a TaskTimeMemo
/// instead of re-invoking the wrapped source (BOE solve or profile lookup).
///
/// The wrapped source must be deterministic (same context in, same value
/// out) and must outlive this object, as must the memo. Both conditions hold
/// for BoeTaskTimeSource and ProfileTaskTimeSource. Safe for concurrent use
/// when the wrapped source is (see the thread-safety contract in
/// task_time_source.h).
class MemoizedTaskTimeSource : public TaskTimeSource {
 public:
  MemoizedTaskTimeSource(const TaskTimeSource& base, TaskTimeMemo* memo,
                         std::string scope = "");

  Duration TaskTime(const EstimationContext& context) const override;
  NormalParams TaskTimeDist(const EstimationContext& context) const override;

  /// Attribution passes through uncached: it is queried only by explain
  /// reports (one-off, off the sweep hot path), and caching it would double
  /// every memo entry for data the sweeps never read.
  std::optional<TaskAttribution> Attribution(
      const EstimationContext& context) const override;

  /// Hit/miss counts observed through *this instance* — the memo's own
  /// stats aggregate every user of the table, which cannot attribute cache
  /// behaviour to one request. The service creates one decorator per
  /// request, so these counters classify that request's warm/cold path.
  /// Only maintained while obs metrics are enabled (one extra relaxed add
  /// per query when armed, nothing when not).
  std::uint64_t local_hits() const {
    return local_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t local_misses() const {
    return local_misses_.load(std::memory_order_relaxed);
  }

 private:
  const TaskTimeSource& base_;
  TaskTimeMemo* memo_;
  std::string scope_;
  mutable std::atomic<std::uint64_t> local_hits_{0};
  mutable std::atomic<std::uint64_t> local_misses_{0};
};

}  // namespace dagperf

#endif  // DAGPERF_MODEL_TASK_TIME_CACHE_H_
