#include "model/snapshot.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/resources.h"

namespace dagperf {

namespace {

constexpr char kMagic[8] = {'D', 'P', 'W', 'A', 'R', 'M', '0', '1'};
constexpr std::uint32_t kFormatVersion = 1;

std::uint64_t Fnv1a64(const char* data, std::size_t size) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

// ---- writer ---------------------------------------------------------------

void PutU8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void PutU32(std::string& out, std::uint32_t value) {
  char bits[sizeof(value)];
  std::memcpy(bits, &value, sizeof(value));
  out.append(bits, sizeof(value));
}

void PutU64(std::string& out, std::uint64_t value) {
  char bits[sizeof(value)];
  std::memcpy(bits, &value, sizeof(value));
  out.append(bits, sizeof(value));
}

void PutI64(std::string& out, std::int64_t value) {
  char bits[sizeof(value)];
  std::memcpy(bits, &value, sizeof(value));
  out.append(bits, sizeof(value));
}

void PutDouble(std::string& out, double value) {
  char bits[sizeof(value)];
  std::memcpy(bits, &value, sizeof(value));
  out.append(bits, sizeof(value));
}

void PutString(std::string& out, const std::string& value) {
  PutU64(out, value.size());
  out.append(value);
}

// ---- bounds-checked reader ------------------------------------------------

/// Every Read* fails soft (ok -> false, zero value) on underflow; callers
/// check cursor.ok once per record instead of per field. A corrupt length
/// can therefore never read past the payload or drive a giant allocation:
/// vector counts are validated against the bytes actually remaining.
struct Cursor {
  const char* data;
  std::size_t remaining;
  bool ok = true;

  bool Take(void* out, std::size_t size) {
    if (!ok || size > remaining) {
      ok = false;
      return false;
    }
    std::memcpy(out, data, size);
    data += size;
    remaining -= size;
    return true;
  }

  std::uint8_t ReadU8() {
    std::uint8_t value = 0;
    Take(&value, sizeof(value));
    return value;
  }
  std::uint32_t ReadU32() {
    std::uint32_t value = 0;
    Take(&value, sizeof(value));
    return value;
  }
  std::uint64_t ReadU64() {
    std::uint64_t value = 0;
    Take(&value, sizeof(value));
    return value;
  }
  std::int64_t ReadI64() {
    std::int64_t value = 0;
    Take(&value, sizeof(value));
    return value;
  }
  double ReadDouble() {
    double value = 0;
    Take(&value, sizeof(value));
    return value;
  }
  std::string ReadString() {
    const std::uint64_t size = ReadU64();
    if (!ok || size > remaining) {
      ok = false;
      return std::string();
    }
    std::string value(data, static_cast<std::size_t>(size));
    data += size;
    remaining -= static_cast<std::size_t>(size);
    return value;
  }
  /// Validates a vector count against the minimum bytes one element needs.
  std::size_t ReadCount(std::size_t min_element_bytes) {
    const std::uint64_t count = ReadU64();
    if (!ok || (min_element_bytes > 0 &&
                count > remaining / min_element_bytes)) {
      ok = false;
      return 0;
    }
    return static_cast<std::size_t>(count);
  }
};

// ---- checkpoint record serialisation --------------------------------------

void PutCheckpoint(std::string& out, const EstimatorCheckpoint& cp) {
  PutString(out, cp.key);
  PutU64(out, cp.done.size());
  for (JobId id : cp.done) PutI64(out, id);
  PutU64(out, cp.jobs.size());
  for (JobId id : cp.jobs) PutI64(out, id);
  PutU64(out, cp.stage_state.size());
  for (const StageDynState& s : cp.stage_state) {
    PutU8(out, s.ready);
    PutU8(out, s.complete);
    PutDouble(out, s.not_started);
    PutDouble(out, s.start_time);
    PutDouble(out, s.end_time);
    PutI64(out, s.wave_begin);
    PutI64(out, s.wave_count);
  }
  PutU64(out, cp.waves.size());
  for (const WaveState& w : cp.waves) {
    PutDouble(out, w.size);
    PutDouble(out, w.frac);
    PutU8(out, w.is_last ? 1 : 0);
  }
  PutDouble(out, cp.now);
  PutI64(out, cp.next_state_index);
  PutU64(out, cp.states.size());
  for (const StateEstimate& s : cp.states) {
    PutI64(out, s.index);
    PutDouble(out, s.start);
    PutDouble(out, s.duration);
    PutI64(out, s.running_begin);
    PutI64(out, s.running_count);
    PutI64(out, s.critical);
  }
  PutU64(out, cp.running_pool.size());
  for (const RunningStageEstimate& r : cp.running_pool) {
    PutI64(out, r.job);
    PutU8(out, static_cast<std::uint8_t>(r.kind));
    PutI64(out, r.parallelism);
    PutDouble(out, r.task_time_s);
    PutU8(out, r.has_attribution ? 1 : 0);
    PutU8(out, static_cast<std::uint8_t>(r.bottleneck));
    for (double share : r.utilization.values) PutDouble(out, share);
  }
  PutU64(out, cp.stages.size());
  for (const StageSpanEstimate& s : cp.stages) {
    PutI64(out, s.job);
    PutU8(out, static_cast<std::uint8_t>(s.kind));
    PutDouble(out, s.start);
    PutDouble(out, s.end);
  }
}

bool ReadCheckpoint(Cursor& cursor, EstimatorCheckpoint* cp) {
  cp->key = cursor.ReadString();
  const std::size_t done_count = cursor.ReadCount(sizeof(std::int64_t));
  cp->done.resize(done_count);
  for (std::size_t i = 0; i < done_count; ++i) {
    cp->done[i] = static_cast<JobId>(cursor.ReadI64());
  }
  const std::size_t job_count = cursor.ReadCount(sizeof(std::int64_t));
  cp->jobs.resize(job_count);
  for (std::size_t i = 0; i < job_count; ++i) {
    cp->jobs[i] = static_cast<JobId>(cursor.ReadI64());
  }
  const std::size_t stage_count = cursor.ReadCount(2 + 3 * sizeof(double));
  cp->stage_state.resize(stage_count);
  for (std::size_t i = 0; i < stage_count; ++i) {
    StageDynState& s = cp->stage_state[i];
    s.ready = cursor.ReadU8();
    s.complete = cursor.ReadU8();
    s.not_started = cursor.ReadDouble();
    s.start_time = cursor.ReadDouble();
    s.end_time = cursor.ReadDouble();
    s.wave_begin = static_cast<int>(cursor.ReadI64());
    s.wave_count = static_cast<int>(cursor.ReadI64());
  }
  const std::size_t wave_count = cursor.ReadCount(2 * sizeof(double) + 1);
  cp->waves.resize(wave_count);
  for (std::size_t i = 0; i < wave_count; ++i) {
    WaveState& w = cp->waves[i];
    w.size = cursor.ReadDouble();
    w.frac = cursor.ReadDouble();
    w.is_last = cursor.ReadU8() != 0;
  }
  cp->now = cursor.ReadDouble();
  cp->next_state_index = static_cast<int>(cursor.ReadI64());
  const std::size_t state_count = cursor.ReadCount(4 * sizeof(std::int64_t));
  cp->states.resize(state_count);
  for (std::size_t i = 0; i < state_count; ++i) {
    StateEstimate& s = cp->states[i];
    s.index = static_cast<int>(cursor.ReadI64());
    s.start = cursor.ReadDouble();
    s.duration = cursor.ReadDouble();
    s.running_begin = static_cast<int>(cursor.ReadI64());
    s.running_count = static_cast<int>(cursor.ReadI64());
    s.critical = static_cast<int>(cursor.ReadI64());
  }
  const std::size_t running_count = cursor.ReadCount(2 * sizeof(std::int64_t));
  cp->running_pool.resize(running_count);
  for (std::size_t i = 0; i < running_count; ++i) {
    RunningStageEstimate& r = cp->running_pool[i];
    r.job = static_cast<JobId>(cursor.ReadI64());
    r.kind = static_cast<StageKind>(cursor.ReadU8());
    r.parallelism = static_cast<int>(cursor.ReadI64());
    r.task_time_s = cursor.ReadDouble();
    r.has_attribution = cursor.ReadU8() != 0;
    r.bottleneck = static_cast<Resource>(cursor.ReadU8());
    for (double& share : r.utilization.values) share = cursor.ReadDouble();
  }
  const std::size_t span_count = cursor.ReadCount(sizeof(std::int64_t));
  cp->stages.resize(span_count);
  for (std::size_t i = 0; i < span_count; ++i) {
    StageSpanEstimate& s = cp->stages[i];
    s.job = static_cast<JobId>(cursor.ReadI64());
    s.kind = static_cast<StageKind>(cursor.ReadU8());
    s.start = cursor.ReadDouble();
    s.end = cursor.ReadDouble();
  }
  return cursor.ok;
}

}  // namespace

Status SaveWarmSnapshot(const std::string& path, const TaskTimeMemo& memo,
                        const PrefixCheckpointStore& checkpoints,
                        SnapshotStats* stats) {
  const std::vector<TaskTimeMemo::ExportedEntry> entries = memo.Export();
  const std::vector<std::shared_ptr<const EstimatorCheckpoint>> stored =
      checkpoints.Export();

  std::string payload;
  payload.reserve(entries.size() * 64 + stored.size() * 512);
  PutU64(payload, entries.size());
  for (const TaskTimeMemo::ExportedEntry& entry : entries) {
    PutString(payload, entry.key);
    PutU8(payload, static_cast<std::uint8_t>((entry.has_time ? 1 : 0) |
                                             (entry.has_dist ? 2 : 0)));
    PutDouble(payload, entry.time.seconds());
    PutDouble(payload, entry.dist.mean);
    PutDouble(payload, entry.dist.stddev);
  }
  PutU64(payload, stored.size());
  for (const auto& checkpoint : stored) PutCheckpoint(payload, *checkpoint);

  std::string file;
  file.reserve(payload.size() + 32);
  file.append(kMagic, sizeof(kMagic));
  PutU32(file, kFormatVersion);
  PutU32(file, static_cast<std::uint32_t>(kNumResources));
  PutU64(file, payload.size());
  PutU64(file, Fnv1a64(payload.data(), payload.size()));
  file.append(payload);

  // Temp-and-rename: a crash mid-write leaves at worst a stale .tmp, never a
  // torn file under the snapshot's real name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("snapshot: cannot open " + tmp + " for writing");
    }
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    if (!out) {
      return Status::Internal("snapshot: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot: rename " + tmp + " -> " + path +
                            " failed");
  }
  if (stats != nullptr) {
    stats->memo_entries = entries.size();
    stats->checkpoints = stored.size();
    stats->bytes = payload.size();
  }
  return Status::Ok();
}

namespace {

/// Shared loader; when `scope` is non-null only entries with the
/// `scope + '#'` key prefix are imported. The filter runs after full
/// validation — a corrupt snapshot is rejected whole either way.
Status LoadWarmSnapshotImpl(const std::string& path, const std::string* scope,
                            TaskTimeMemo* memo,
                            PrefixCheckpointStore* checkpoints,
                            SnapshotStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("snapshot: no file at " + path);
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("snapshot: read error on " + path);
  }

  constexpr std::size_t kHeaderSize =
      sizeof(kMagic) + 2 * sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
  if (file.size() < kHeaderSize) {
    return Status::InvalidArgument(
        "snapshot: " + path + " is truncated (" +
        std::to_string(file.size()) + " bytes, header needs " +
        std::to_string(kHeaderSize) + "): cold-starting");
  }
  Cursor header{file.data(), file.size()};
  char magic[sizeof(kMagic)];
  header.Take(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("snapshot: " + path +
                                   " has a bad magic: cold-starting");
  }
  const std::uint32_t format = header.ReadU32();
  if (format != kFormatVersion) {
    return Status::FailedPrecondition(
        "snapshot: " + path + " is format v" + std::to_string(format) +
        ", this binary writes v" + std::to_string(kFormatVersion) +
        ": stale, cold-starting");
  }
  const std::uint32_t resources = header.ReadU32();
  if (resources != static_cast<std::uint32_t>(kNumResources)) {
    return Status::FailedPrecondition(
        "snapshot: " + path + " was saved with " + std::to_string(resources) +
        " resource dimensions, this binary has " +
        std::to_string(static_cast<int>(kNumResources)) +
        ": stale, cold-starting");
  }
  const std::uint64_t payload_size = header.ReadU64();
  const std::uint64_t checksum = header.ReadU64();
  if (payload_size != header.remaining) {
    return Status::InvalidArgument(
        "snapshot: " + path + " payload size mismatch (header says " +
        std::to_string(payload_size) + ", file carries " +
        std::to_string(header.remaining) + "): truncated, cold-starting");
  }
  const std::uint64_t actual = Fnv1a64(header.data, header.remaining);
  if (actual != checksum) {
    return Status::InvalidArgument("snapshot: " + path +
                                   " checksum mismatch: corrupt, "
                                   "cold-starting");
  }

  // Parse fully into local staging before touching the targets: a payload
  // that passes the checksum but still trips a bounds check (a logic bug,
  // not line noise) must not leave the stores half-imported.
  Cursor cursor{header.data, header.remaining};
  const std::size_t memo_count = cursor.ReadCount(sizeof(std::uint64_t) + 1);
  std::vector<TaskTimeMemo::ExportedEntry> entries;
  entries.reserve(memo_count);
  for (std::size_t i = 0; i < memo_count && cursor.ok; ++i) {
    TaskTimeMemo::ExportedEntry entry;
    entry.key = cursor.ReadString();
    const std::uint8_t flags = cursor.ReadU8();
    entry.has_time = (flags & 1) != 0;
    entry.has_dist = (flags & 2) != 0;
    entry.time = Duration::Seconds(cursor.ReadDouble());
    entry.dist.mean = cursor.ReadDouble();
    entry.dist.stddev = cursor.ReadDouble();
    entries.push_back(std::move(entry));
  }
  const std::size_t checkpoint_count =
      cursor.ReadCount(sizeof(std::uint64_t));
  std::vector<std::shared_ptr<const EstimatorCheckpoint>> restored;
  restored.reserve(checkpoint_count);
  for (std::size_t i = 0; i < checkpoint_count && cursor.ok; ++i) {
    auto checkpoint = std::make_shared<EstimatorCheckpoint>();
    if (!ReadCheckpoint(cursor, checkpoint.get())) break;
    restored.push_back(std::move(checkpoint));
  }
  if (!cursor.ok) {
    return Status::InvalidArgument(
        "snapshot: " + path +
        " payload walks off a record boundary: corrupt, cold-starting");
  }
  if (cursor.remaining != 0) {
    return Status::InvalidArgument(
        "snapshot: " + path + " carries " + std::to_string(cursor.remaining) +
        " trailing bytes: corrupt, cold-starting");
  }

  if (scope != nullptr) {
    // Both stores put `scope + '#'` first in their keys (see
    // TaskTimeMemo::Fingerprint and AppendGlobalFingerprint), so a prefix
    // test selects exactly one cluster scope's warm state — the '#' stops
    // "default" from also matching a "default2" scope.
    const std::string prefix = *scope + "#";
    auto outside_scope = [&prefix](const std::string& key) {
      return key.compare(0, prefix.size(), prefix) != 0;
    };
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const TaskTimeMemo::ExportedEntry& e) {
                                   return outside_scope(e.key);
                                 }),
                  entries.end());
    restored.erase(
        std::remove_if(
            restored.begin(), restored.end(),
            [&](const std::shared_ptr<const EstimatorCheckpoint>& c) {
              return outside_scope(c->key);
            }),
        restored.end());
  }

  memo->Import(entries);
  checkpoints->Import(restored);
  if (stats != nullptr) {
    stats->memo_entries = entries.size();
    stats->checkpoints = restored.size();
    stats->bytes = static_cast<std::size_t>(payload_size);
  }
  return Status::Ok();
}

}  // namespace

Status LoadWarmSnapshot(const std::string& path, TaskTimeMemo* memo,
                        PrefixCheckpointStore* checkpoints,
                        SnapshotStats* stats) {
  return LoadWarmSnapshotImpl(path, nullptr, memo, checkpoints, stats);
}

Status LoadWarmSnapshotForScope(const std::string& path,
                                const std::string& scope, TaskTimeMemo* memo,
                                PrefixCheckpointStore* checkpoints,
                                SnapshotStats* stats) {
  return LoadWarmSnapshotImpl(path, &scope, memo, checkpoints, stats);
}

}  // namespace dagperf
