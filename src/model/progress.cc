#include "model/progress.h"

#include <algorithm>

#include "common/check.h"

namespace dagperf {

ProgressIndicator::ProgressIndicator(DagEstimate plan) : plan_(std::move(plan)) {
  DAGPERF_CHECK_MSG(plan_.makespan.seconds() > 0, "plan has no duration");
}

double ProgressIndicator::CompletionAt(Duration elapsed) const {
  const double frac = elapsed.seconds() / plan_.makespan.seconds();
  return std::clamp(frac, 0.0, 1.0);
}

Duration ProgressIndicator::RemainingAt(Duration elapsed) const {
  return Duration(std::max(0.0, plan_.makespan.seconds() - elapsed.seconds()));
}

Result<StateEstimate> ProgressIndicator::StateAt(Duration elapsed) const {
  const double t = elapsed.seconds();
  for (const auto& state : plan_.states) {
    if (t >= state.start && t < state.start + state.duration) return state;
  }
  return Status::NotFound("no active state at the given time");
}

std::vector<RunningStageEstimate> ProgressIndicator::RunningAt(
    Duration elapsed) const {
  const Result<StateEstimate> state = StateAt(elapsed);
  if (!state.ok()) return {};
  const RunningSpan span = plan_.running(*state);
  return std::vector<RunningStageEstimate>(span.begin(), span.end());
}

Status ProgressIndicator::ObserveStageCompletion(JobId job, StageKind kind,
                                                 Duration observed_end) {
  if (observed_end.seconds() <= 0) {
    return Status::FailedPrecondition("observed completion must be positive");
  }
  const Result<StageSpanEstimate> predicted = plan_.FindStage(job, kind);
  if (!predicted.ok()) {
    return Status::FailedPrecondition("stage not present in the plan");
  }
  const double anchor = predicted->end;
  if (anchor <= 0) return Status::FailedPrecondition("plan anchor is degenerate");
  const double scale = observed_end.seconds() / anchor;

  // Times up to the anchor are replaced by reality (scaled); times after the
  // anchor shift with it and stretch by the same drift factor.
  const auto remap = [&](double t) { return t * scale; };
  for (auto& state : plan_.states) {
    const double end = state.start + state.duration;
    state.start = remap(state.start);
    state.duration = remap(end) - state.start;
  }
  for (auto& stage : plan_.stages) {
    stage.start = remap(stage.start);
    stage.end = remap(stage.end);
  }
  plan_.makespan = Duration(remap(plan_.makespan.seconds()));
  return Status::Ok();
}

}  // namespace dagperf
