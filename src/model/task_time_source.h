#ifndef DAGPERF_MODEL_TASK_TIME_SOURCE_H_
#define DAGPERF_MODEL_TASK_TIME_SOURCE_H_

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "boe/boe_model.h"
#include "common/status.h"
#include "common/units.h"
#include "dag/dag_workflow.h"
#include "sim/sim_result.h"
#include "workload/job_profile.h"

namespace dagperf {

/// Parameters of a normal task-time distribution (Alg2-Normal input).
struct NormalParams {
  double mean = 0.0;
  double stddev = 0.0;
};

/// The concurrent execution context a task-time query refers to: every stage
/// running in the current workflow state with its per-node task population.
/// `query` indexes the stage being asked about.
struct EstimationContext {
  std::vector<ParallelStage> running;
  size_t query = 0;
};

/// Resource attribution of one task in a context — the data behind the
/// bottleneck-explain reports (model/explain.h). `busy` holds, per
/// resource, the seconds the resource is active while the task runs (the
/// time pushing the task's demand through its allocated share); dividing by
/// `work_time` gives the utilisation share, exactly 1.0 for the resource
/// that paces every sub-stage.
struct TaskAttribution {
  /// The arg-max of the BOE model: bottleneck of the task's longest
  /// sub-stage (paper §III's "the" bottleneck of the stage).
  Resource bottleneck = Resource::kCpu;
  ResourceVector busy;
  /// Modeled task work time (excludes any fixed container overhead).
  Duration work_time;

  /// Fraction of the task's work time resource `r` is active, in [0, 1].
  double UtilizationShare(Resource r) const {
    const double t = work_time.seconds();
    return t > 0 ? std::min(1.0, busy[r] / t) : 0.0;
  }
};

/// Supplies per-task execution-time estimates to the state-based workflow
/// estimator. Two families exist, matching the paper's methodology:
///
///  * BoeTaskTimeSource — the full analytical model (BOE), used when no
///    profile of the target execution exists (Figs. 4/6, Table II).
///  * ProfileTaskTimeSource — statistics of profiled task durations captured
///    at the same degree of parallelism, used in §V-C / Table III to isolate
///    the state-based machinery's error from task-level model error.
///
/// Thread safety contract: TaskTime()/TaskTimeDist() must be safe to call
/// concurrently and must be deterministic — the same context always yields
/// the same value. Implementations are therefore const and read-only after
/// construction (mutation such as AddProfile must happen before the source
/// is shared). The sweep engine's memo cache (model/task_time_cache.h)
/// additionally relies on determinism for its bit-identical-results
/// guarantee.
class TaskTimeSource {
 public:
  virtual ~TaskTimeSource() = default;

  /// Point estimate of one task's duration in the given context.
  virtual Duration TaskTime(const EstimationContext& context) const = 0;

  /// Distribution estimate for skew-aware (Alg2) wave makespans. The default
  /// derives the spread from the stage's task-size CV around TaskTime().
  virtual NormalParams TaskTimeDist(const EstimationContext& context) const;

  /// Resource attribution of the queried task: which resource bottlenecks
  /// it and how busy each resource is. nullopt when the source has no
  /// resource-level model (profiled durations carry no attribution).
  /// Queried by the estimator only when EstimatorOptions::
  /// attribute_bottlenecks is set — off the sweep hot path.
  virtual std::optional<TaskAttribution> Attribution(
      const EstimationContext& context) const {
    (void)context;
    return std::nullopt;
  }
};

/// Task times computed by the BOE model from stage profiles and the current
/// contention context.
class BoeTaskTimeSource : public TaskTimeSource {
 public:
  /// `fixed_overhead` is added to every task (container startup cost — a
  /// constant any profiling pass measures trivially).
  explicit BoeTaskTimeSource(const BoeModel& model,
                             Duration fixed_overhead = Duration(0));

  Duration TaskTime(const EstimationContext& context) const override;

  /// Full BOE attribution: bottleneck = the model's arg-max for the queried
  /// stage; busy seconds = per-resource operation times summed across the
  /// task's sub-stages.
  std::optional<TaskAttribution> Attribution(
      const EstimationContext& context) const override;

 private:
  const BoeModel& model_;
  Duration fixed_overhead_;
};

/// Which statistic of the profiled sample a point query returns.
enum class ProfileStatistic { kMean, kMedian };

/// Task times looked up from a profile of observed durations, keyed by stage
/// name. Queries for unknown stages abort: the estimator must only be run on
/// workflows the profile covers.
///
/// Profiles are *contention-matched* when built via FromSimulation (the
/// paper's §V-C methodology: "task execution time profiles with the
/// identical degree of parallelism for each stage"): task durations are
/// additionally bucketed by the set of stages that were running when the
/// task executed, and a query is answered from the bucket matching its
/// EstimationContext, falling back to the stage's global statistics when no
/// matching bucket exists.
class ProfileTaskTimeSource : public TaskTimeSource {
 public:
  explicit ProfileTaskTimeSource(ProfileStatistic statistic);

  /// Records a sample of observed task durations for `stage_name` (global
  /// bucket).
  void AddProfile(const std::string& stage_name, std::vector<double> durations);

  /// Records durations observed while exactly `running` (sorted stage
  /// names) were executing.
  void AddContextProfile(const std::vector<std::string>& running,
                         const std::string& stage_name,
                         std::vector<double> durations);

  /// Profiles every stage of `flow` from a simulated (or otherwise
  /// measured) execution, with per-state contention buckets.
  static Result<ProfileTaskTimeSource> FromSimulation(const DagWorkflow& flow,
                                                      const SimResult& result,
                                                      ProfileStatistic statistic);

  Duration TaskTime(const EstimationContext& context) const override;
  NormalParams TaskTimeDist(const EstimationContext& context) const override;

  bool HasProfile(const std::string& stage_name) const;

 private:
  struct Entry {
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0;
  };
  /// Best entry for the query: contention-matched bucket if present,
  /// otherwise the stage's global statistics.
  const Entry& Lookup(const EstimationContext& context) const;
  static std::string Signature(const EstimationContext& context);

  ProfileStatistic statistic_;
  std::map<std::string, Entry> profiles_;
  /// (running-set signature, stage name) -> stats.
  std::map<std::pair<std::string, std::string>, Entry> context_profiles_;
};

}  // namespace dagperf

#endif  // DAGPERF_MODEL_TASK_TIME_SOURCE_H_
