#include "model/sweep.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/cancel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dagperf {

namespace {

/// Sweep-engine metrics (obs/metrics.h): cumulative candidate/failure
/// counts, the last batch's cache behaviour, and the memo hit-rate gauge the
/// CLI's --metrics-json surfaces next to `sweep --json` output.
struct SweepMetrics {
  obs::Counter& candidates;
  obs::Counter& failures;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& cache_hit_rate;
  obs::Counter& cancelled;
  obs::Counter& deadline_exceeded;
  obs::Counter& retries;

  SweepMetrics()
      : candidates(
            obs::MetricsRegistry::Default().GetCounter("sweep.candidates")),
        failures(obs::MetricsRegistry::Default().GetCounter("sweep.failures")),
        cache_hits(
            obs::MetricsRegistry::Default().GetCounter("sweep.cache_hits")),
        cache_misses(
            obs::MetricsRegistry::Default().GetCounter("sweep.cache_misses")),
        cache_hit_rate(
            obs::MetricsRegistry::Default().GetGauge("sweep.cache_hit_rate")),
        cancelled(obs::MetricsRegistry::Default().GetCounter("sweep.cancelled")),
        deadline_exceeded(obs::MetricsRegistry::Default().GetCounter(
            "sweep.deadline_exceeded")),
        retries(obs::MetricsRegistry::Default().GetCounter("sweep.retries")) {}
};

SweepMetrics& Metrics() {
  static SweepMetrics* metrics = new SweepMetrics();
  return *metrics;
}

Result<DagEstimate> EstimateOne(const EstimateRequest& request,
                                const SchedulerConfig& scheduler,
                                const TaskTimeSource& source,
                                const EstimatorOptions& estimator_options) {
  if (request.flow == nullptr) {
    return Status::InvalidArgument("sweep request has no workflow");
  }
  // The estimator is the firewall here: its constructor validates the
  // cluster (every violation, not just the first) and Estimate() validates
  // the flow, so an invalid candidate yields a full diagnostic.
  const StateBasedEstimator estimator(request.cluster, scheduler,
                                      estimator_options);
  return estimator.Estimate(*request.flow, source);
}

}  // namespace

SweepResult EstimateBatch(const std::vector<EstimateRequest>& requests,
                          const SchedulerConfig& scheduler,
                          const TaskTimeSource& source, const SweepOptions& options) {
  SweepResult result;
  result.stats.candidates = static_cast<int>(requests.size());
  if (requests.empty()) return result;

  // Cache wiring. An external memo wins; otherwise a batch-local shared memo
  // or one private memo per candidate.
  TaskTimeMemo* shared_memo = options.memo;
  std::optional<TaskTimeMemo> local_memo;
  if (options.memoize && shared_memo == nullptr && options.share_cache) {
    local_memo.emplace();
    shared_memo = &*local_memo;
  }
  const TaskTimeMemo::Stats before =
      shared_memo != nullptr ? shared_memo->stats() : TaskTimeMemo::Stats{};

  // Checkpoint-store wiring mirrors the memo: an external store wins,
  // otherwise an incremental shared-cache batch gets a batch-local store so
  // candidates still resume from each other's prefixes.
  PrefixCheckpointStore* store = options.checkpoints;
  std::optional<PrefixCheckpointStore> local_store;
  if (options.incremental && store == nullptr && options.share_cache) {
    local_store.emplace();
    store = &*local_store;
  }
  if (!options.incremental) store = nullptr;
  const PrefixCheckpointStore::Stats cp_before =
      store != nullptr ? store->stats() : PrefixCheckpointStore::Stats{};

  std::vector<std::unique_ptr<TaskTimeMemo>> private_memos;
  if (options.memoize && shared_memo == nullptr) {
    private_memos.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      private_memos.push_back(std::make_unique<TaskTimeMemo>());
    }
  }

  // Batch-level budget propagates into each candidate's estimator (unless
  // the caller set estimator-level signals), so a firing budget also unwinds
  // the candidate currently mid-estimate, not just unstarted ones.
  EstimatorOptions estimator_options = options.estimator;
  estimator_options.budget = estimator_options.budget.MergedWith(options.budget);
  if (store != nullptr) {
    estimator_options.checkpoints = store;
    estimator_options.checkpoint_scope = options.cache_scope;
  }

  // Per-candidate global fingerprints, computed in the ordering block below
  // (before any evaluation) and handed to the estimator so it does not
  // re-serialise them for its checkpoint lookups; per-job fingerprints come
  // precomputed on each immutable flow. Empty when incremental is off.
  struct CandidateFingerprints {
    std::string global;
    std::vector<std::size_t> sig;  // hash(global), then per-job fp hashes.
  };
  std::vector<CandidateFingerprints> fingerprints;

  std::atomic<int> retries{0};
  const auto evaluate = [&](size_t i) -> Result<DagEstimate> {
    std::optional<obs::ScopedSpan> span;
    if (obs::TraceRecorder::Default().enabled()) {
      const std::string& label = requests[i].label;
      span.emplace("candidate " +
                       (label.empty()
                            ? (requests[i].flow != nullptr ? requests[i].flow->name()
                                                           : std::to_string(i))
                            : label),
                   "sweep");
    }
    const auto once = [&]() -> Result<DagEstimate> {
      EstimatorOptions candidate_options = estimator_options;
      if (i < fingerprints.size() && !fingerprints[i].sig.empty()) {
        candidate_options.checkpoint_global_fp = &fingerprints[i].global;
      }
      if (!options.memoize) {
        return EstimateOne(requests[i], scheduler, source, candidate_options);
      }
      TaskTimeMemo* memo =
          shared_memo != nullptr ? shared_memo : private_memos[i].get();
      const MemoizedTaskTimeSource cached(source, memo, options.cache_scope);
      return EstimateOne(requests[i], scheduler, cached, candidate_options);
    };
    Result<DagEstimate> estimate = once();
    int attempts = 0;
    while (!estimate.ok() && IsRetryable(estimate.status().code()) &&
           attempts < options.max_retries && !options.budget.exhausted()) {
      ++attempts;
      retries.fetch_add(1, std::memory_order_relaxed);
      estimate = once();
    }
    return estimate;
  };

  result.estimates.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    result.estimates.emplace_back(Status::Internal("not evaluated"));
  }
  // Which slots actually ran: under a firing budget, skipped slots keep the
  // placeholder and are stamped with the budget status below.
  std::vector<char> evaluated(requests.size(), 0);

  // Evaluation order. Results land in request-order slots regardless, and
  // each candidate's bits are order-independent (memo and checkpoints are
  // both bit-exact), so reordering only changes cache locality: with a
  // checkpoint store, sorting by structural fingerprint evaluates candidates
  // with shared workflow prefixes consecutively, maximising resume depth.
  //
  // The fingerprints are computed once per candidate here and passed through
  // to the estimator (EstimatorOptions::checkpoint_global_fp), which would
  // otherwise recompute the same bytes for its own checkpoint lookups — on a
  // warm dense neighborhood that recomputation is a double-digit fraction of
  // a resumed estimate. Ordering compares per-fingerprint hashes rather than
  // the multi-KB fingerprints themselves: any consistent order that keeps
  // equal prefixes adjacent clusters the candidates equally well.
  std::vector<size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  if (store != nullptr) {
    fingerprints.resize(requests.size());
    const std::hash<std::string> hasher;
    for (size_t i = 0; i < requests.size(); ++i) {
      const DagWorkflow* flow = requests[i].flow;
      if (flow == nullptr) continue;
      CandidateFingerprints& fp = fingerprints[i];
      PrefixCheckpointStore::AppendGlobalFingerprint(
          options.cache_scope, requests[i].cluster, scheduler,
          estimator_options, &fp.global);
      fp.sig.reserve(flow->num_jobs() + 1);
      fp.sig.push_back(hasher(fp.global));
      for (JobId id = 0; id < flow->num_jobs(); ++id) {
        fp.sig.push_back(flow->job_fingerprint_hash(id));
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return std::lexicographical_compare(
          fingerprints[a].sig.begin(), fingerprints[a].sig.end(),
          fingerprints[b].sig.begin(), fingerprints[b].sig.end());
    });
  }

  // A dedicated pool larger than the machine is pure context-switch
  // overhead: oversubscribed workers time-slice one another without adding
  // throughput. Clamp to the hardware, and degrade to the serial loop when
  // that leaves a single worker.
  int effective_threads = options.threads;
  if (options.pool == nullptr && effective_threads > 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && static_cast<unsigned>(effective_threads) > hw) {
      effective_threads = static_cast<int>(hw);
    }
  }

  Status budget_status = Status::Ok();
  if (options.pool == nullptr && effective_threads == 1) {
    for (const size_t i : order) {
      if (budget_status.ok()) {
        budget_status = options.budget.Check("sweep");
      }
      if (!budget_status.ok()) break;
      result.estimates[i] = evaluate(i);
      evaluated[i] = 1;
    }
  } else {
    std::optional<ThreadPool> dedicated;
    ThreadPool* pool = options.pool;
    if (pool == nullptr && effective_threads > 1) {
      dedicated.emplace(effective_threads);
      pool = &*dedicated;
    }
    size_t start = 0;
    if (shared_memo != nullptr || store != nullptr) {
      // Prime the shared caches on the calling thread: one candidate fills
      // the memo/checkpoint entries the rest of the batch will hit, instead
      // of every worker racing to compute the same misses in parallel.
      budget_status = options.budget.Check("sweep");
      if (budget_status.ok()) {
        result.estimates[order[0]] = evaluate(order[0]);
        evaluated[order[0]] = 1;
        start = 1;
      }
    }
    if (budget_status.ok() && start < order.size()) {
      const size_t remaining = order.size() - start;
      // Warm cached candidates are microseconds of work; batch several per
      // pool task so dispatch overhead cannot swamp them (this is what keeps
      // parallel-cached throughput above serial-cached).
      size_t chunk = 1;
      if (shared_memo != nullptr || store != nullptr) {
        const size_t workers = static_cast<size_t>(
            pool != nullptr ? pool->size() : DefaultPool().size());
        chunk = std::max<size_t>(1, remaining / (std::max<size_t>(workers, 1) * 4));
      }
      const std::int64_t num_chunks =
          static_cast<std::int64_t>((remaining + chunk - 1) / chunk);
      budget_status = ParallelFor(
          0, num_chunks,
          [&](std::int64_t c) {
            const size_t lo = start + static_cast<size_t>(c) * chunk;
            const size_t hi = std::min(order.size(), lo + chunk);
            for (size_t k = lo; k < hi; ++k) {
              result.estimates[order[k]] = evaluate(order[k]);
              evaluated[order[k]] = 1;
            }
          },
          options.budget, pool);
    }
  }
  if (!budget_status.ok()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!evaluated[i]) result.estimates[i] = budget_status;
    }
  }

  for (size_t i = 0; i < result.estimates.size(); ++i) {
    const Result<DagEstimate>& estimate = result.estimates[i];
    if (!estimate.ok()) {
      switch (estimate.status().code()) {
        case ErrorCode::kCancelled:
          ++result.stats.cancelled;
          break;
        case ErrorCode::kDeadlineExceeded:
          ++result.stats.deadline_exceeded;
          break;
        default:
          ++result.stats.failures;
          break;
      }
      continue;
    }
    ++result.stats.completed;
    if (estimate->makespan < result.stats.best_makespan) {
      result.stats.best_makespan = estimate->makespan;
      result.stats.best_index = static_cast<int>(i);
    }
  }
  result.stats.retries = retries.load(std::memory_order_relaxed);

  if (shared_memo != nullptr) {
    const TaskTimeMemo::Stats after = shared_memo->stats();
    result.stats.cache_hits = after.hits - before.hits;
    result.stats.cache_misses = after.misses - before.misses;
  } else {
    for (const auto& memo : private_memos) {
      const TaskTimeMemo::Stats s = memo->stats();
      result.stats.cache_hits += s.hits;
      result.stats.cache_misses += s.misses;
    }
  }
  const std::uint64_t queries = result.stats.cache_hits + result.stats.cache_misses;
  result.stats.cache_hit_rate =
      queries == 0 ? 0.0
                   : static_cast<double>(result.stats.cache_hits) /
                         static_cast<double>(queries);

  if (store != nullptr) {
    const PrefixCheckpointStore::Stats cp_after = store->stats();
    result.stats.prefix_hits = cp_after.hits - cp_before.hits;
    result.stats.prefix_misses = cp_after.misses - cp_before.misses;
    result.stats.resumed_states = cp_after.resumed_states - cp_before.resumed_states;
    result.stats.checkpoints_stored = cp_after.inserts - cp_before.inserts;
  }

  SweepMetrics& metrics = Metrics();
  metrics.candidates.Add(static_cast<std::uint64_t>(result.stats.candidates));
  metrics.failures.Add(static_cast<std::uint64_t>(result.stats.failures));
  metrics.cache_hits.Add(result.stats.cache_hits);
  metrics.cache_misses.Add(result.stats.cache_misses);
  metrics.cache_hit_rate.Set(result.stats.cache_hit_rate);
  metrics.cancelled.Add(static_cast<std::uint64_t>(result.stats.cancelled));
  metrics.deadline_exceeded.Add(
      static_cast<std::uint64_t>(result.stats.deadline_exceeded));
  metrics.retries.Add(static_cast<std::uint64_t>(result.stats.retries));
  return result;
}

Status EstimateBatch(const std::vector<EstimateRequest>& requests,
                     const SchedulerConfig& scheduler,
                     const TaskTimeSource& source, const SweepOptions& options,
                     SweepResult* out) {
  *out = EstimateBatch(requests, scheduler, source, options);
  for (const auto& estimate : out->estimates) {
    if (!estimate.ok()) return estimate.status();
  }
  return Status::Ok();
}

Result<std::vector<DagWorkflow>> BuildReducerCandidates(
    const JobSpec& job, const std::vector<int>& reducer_counts) {
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument(job.name + ": map-only job has no reducers");
  }
  std::vector<DagWorkflow> flows;
  flows.reserve(reducer_counts.size());
  for (int reducers : reducer_counts) {
    if (reducers < 1) return Status::InvalidArgument("candidate reducers < 1");
    JobSpec candidate = job;
    candidate.num_reduce_tasks = reducers;
    DagBuilder builder(job.name + "-r" + std::to_string(reducers));
    builder.AddJob(candidate);
    Result<DagWorkflow> flow = std::move(builder).Build();
    if (!flow.ok()) return flow.status();
    flows.push_back(std::move(flow).value());
  }
  return flows;
}

}  // namespace dagperf
