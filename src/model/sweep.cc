#include "model/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/cancel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace dagperf {

namespace {

/// Sweep-engine metrics (obs/metrics.h): cumulative candidate/failure
/// counts, the last batch's cache behaviour, and the memo hit-rate gauge the
/// CLI's --metrics-json surfaces next to `sweep --json` output.
struct SweepMetrics {
  obs::Counter& candidates;
  obs::Counter& failures;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& cache_hit_rate;
  obs::Counter& cancelled;
  obs::Counter& deadline_exceeded;
  obs::Counter& retries;
  obs::Counter& hedges_launched;
  obs::Counter& hedges_won;
  obs::Counter& hedges_wasted;

  SweepMetrics()
      : candidates(
            obs::MetricsRegistry::Default().GetCounter("sweep.candidates")),
        failures(obs::MetricsRegistry::Default().GetCounter("sweep.failures")),
        cache_hits(
            obs::MetricsRegistry::Default().GetCounter("sweep.cache_hits")),
        cache_misses(
            obs::MetricsRegistry::Default().GetCounter("sweep.cache_misses")),
        cache_hit_rate(
            obs::MetricsRegistry::Default().GetGauge("sweep.cache_hit_rate")),
        cancelled(obs::MetricsRegistry::Default().GetCounter("sweep.cancelled")),
        deadline_exceeded(obs::MetricsRegistry::Default().GetCounter(
            "sweep.deadline_exceeded")),
        retries(obs::MetricsRegistry::Default().GetCounter("sweep.retries")),
        hedges_launched(obs::MetricsRegistry::Default().GetCounter(
            "sweep.hedges_launched")),
        hedges_won(
            obs::MetricsRegistry::Default().GetCounter("sweep.hedges_won")),
        hedges_wasted(obs::MetricsRegistry::Default().GetCounter(
            "sweep.hedges_wasted")) {}
};

SweepMetrics& Metrics() {
  static SweepMetrics* metrics = new SweepMetrics();
  return *metrics;
}

/// Process-wide window of recent candidate latencies (µs). Every completed
/// candidate of every batch records here (RecordAlways — the window is a
/// control input for the hedge delay, not telemetry, so it fills with
/// metrics disabled too); hedged batches read their delay quantile from it.
/// Sharing one window across batches is what lets the service's small
/// recurring sweeps accumulate enough samples to arm hedging at all.
obs::WindowedHistogram& HedgeLatencyWindow() {
  static obs::WindowedHistogram* window = new obs::WindowedHistogram();
  return *window;
}

/// One timer thread firing scheduled thunks after a delay; hedged batches
/// use it to launch the hedge once a candidate overstays its quantile.
/// Thunks run on the timer thread and must stay cheap (the hedge itself is
/// submitted to the worker pool). Shutdown() drops unfired thunks and joins;
/// after it returns no thunk is running or will run.
class HedgeScheduler {
 public:
  ~HedgeScheduler() { Shutdown(); }

  void After(double delay_us, std::function<void()> fn) {
    const double due_us = obs::MonotonicUs() + std::max(0.0, delay_us);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) return;
      if (!thread_.joinable()) thread_ = std::thread([this] { Loop(); });
      queue_.push_back({due_us, std::move(fn)});
      std::push_heap(queue_.begin(), queue_.end(), Later);
    }
    wake_.notify_one();
  }

  void Shutdown() {
    std::thread timer;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopped_ = true;
      queue_.clear();
      timer = std::move(thread_);
    }
    wake_.notify_all();
    if (timer.joinable()) timer.join();
  }

 private:
  struct Item {
    double due_us = 0.0;
    std::function<void()> fn;
  };
  static bool Later(const Item& a, const Item& b) { return a.due_us > b.due_us; }

  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopped_) {
      if (queue_.empty()) {
        wake_.wait(lock);
        continue;
      }
      const double now_us = obs::MonotonicUs();
      const double due_us = queue_.front().due_us;
      if (now_us < due_us) {
        wake_.wait_for(lock, std::chrono::duration<double, std::micro>(
                                 due_us - now_us));
        continue;
      }
      std::pop_heap(queue_.begin(), queue_.end(), Later);
      Item item = std::move(queue_.back());
      queue_.pop_back();
      lock.unlock();
      item.fn();
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Item> queue_;
  bool stopped_ = false;
  std::thread thread_;
};

Result<DagEstimate> EstimateOne(const SweepCandidate& request,
                                const SchedulerConfig& scheduler,
                                const TaskTimeSource& source,
                                const EstimatorOptions& estimator_options) {
  if (request.flow == nullptr) {
    return Status::InvalidArgument("sweep request has no workflow");
  }
  // The estimator is the firewall here: its constructor validates the
  // cluster (every violation, not just the first) and Estimate() validates
  // the flow, so an invalid candidate yields a full diagnostic.
  const StateBasedEstimator estimator(request.cluster, scheduler,
                                      estimator_options);
  return estimator.Estimate(*request.flow, source);
}

}  // namespace

SweepResult EstimateBatch(const std::vector<SweepCandidate>& requests,
                          const SchedulerConfig& scheduler,
                          const TaskTimeSource& source, const SweepOptions& options) {
  SweepResult result;
  result.stats.candidates = static_cast<int>(requests.size());
  if (requests.empty()) return result;

  // Cache wiring. An external memo wins; otherwise a batch-local shared memo
  // or one private memo per candidate.
  TaskTimeMemo* shared_memo = options.memo;
  std::optional<TaskTimeMemo> local_memo;
  if (options.memoize && shared_memo == nullptr && options.share_cache) {
    local_memo.emplace();
    shared_memo = &*local_memo;
  }
  const TaskTimeMemo::Stats before =
      shared_memo != nullptr ? shared_memo->stats() : TaskTimeMemo::Stats{};

  // Checkpoint-store wiring mirrors the memo: an external store wins,
  // otherwise an incremental shared-cache batch gets a batch-local store so
  // candidates still resume from each other's prefixes.
  PrefixCheckpointStore* store = options.checkpoints;
  std::optional<PrefixCheckpointStore> local_store;
  if (options.incremental && store == nullptr && options.share_cache) {
    local_store.emplace();
    store = &*local_store;
  }
  if (!options.incremental) store = nullptr;
  const PrefixCheckpointStore::Stats cp_before =
      store != nullptr ? store->stats() : PrefixCheckpointStore::Stats{};

  std::vector<std::unique_ptr<TaskTimeMemo>> private_memos;
  if (options.memoize && shared_memo == nullptr) {
    private_memos.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      private_memos.push_back(std::make_unique<TaskTimeMemo>());
    }
  }

  // Batch-level budget propagates into each candidate's estimator (unless
  // the caller set estimator-level signals), so a firing budget also unwinds
  // the candidate currently mid-estimate, not just unstarted ones.
  EstimatorOptions estimator_options = options.estimator;
  estimator_options.budget = estimator_options.budget.MergedWith(options.budget);
  if (store != nullptr) {
    estimator_options.checkpoints = store;
    estimator_options.checkpoint_scope = options.cache_scope;
  }

  // Per-candidate global fingerprints, computed in the ordering block below
  // (before any evaluation) and handed to the estimator so it does not
  // re-serialise them for its checkpoint lookups; per-job fingerprints come
  // precomputed on each immutable flow. Empty when incremental is off.
  struct CandidateFingerprints {
    std::string global;
    std::vector<std::size_t> sig;  // hash(global), then per-job fp hashes.
  };
  std::vector<CandidateFingerprints> fingerprints;

  std::atomic<int> retries{0};

  /// Hedging machinery, armed only in the pooled branch below (the serial
  /// path has no second worker to race). `pool` doubles as the armed flag.
  struct HedgeState {
    ThreadPool* pool = nullptr;
    std::atomic<std::uint64_t> launched{0};
    std::atomic<std::uint64_t> won{0};
    std::atomic<std::uint64_t> wasted{0};
    /// Hedge tasks submitted but not yet finished; the batch cannot return
    /// (or compute stats) while any hedge still references its state.
    std::atomic<int> outstanding{0};
    std::mutex mutex;
    std::condition_variable drained;
  };
  HedgeState hedge_state;
  HedgeScheduler hedge_timer;

  /// One evaluation attempt of candidate `i`. `attempt_cancel` (when set)
  /// is OR-ed into the budget so a hedge race can unwind the losing side
  /// without touching the batch budget.
  const auto once = [&](size_t i,
                        const CancelToken* attempt_cancel) -> Result<DagEstimate> {
    EstimatorOptions candidate_options = estimator_options;
    if (i < fingerprints.size() && !fingerprints[i].sig.empty()) {
      candidate_options.checkpoint_global_fp = &fingerprints[i].global;
    }
    if (attempt_cancel != nullptr) {
      candidate_options.budget.cancel = CancelToken::LinkedTo(
          {candidate_options.budget.cancel, *attempt_cancel});
    }
    if (!options.memoize) {
      return EstimateOne(requests[i], scheduler, source, candidate_options);
    }
    TaskTimeMemo* memo =
        shared_memo != nullptr ? shared_memo : private_memos[i].get();
    const MemoizedTaskTimeSource cached(source, memo, options.cache_scope);
    return EstimateOne(requests[i], scheduler, cached, candidate_options);
  };

  /// Delay before hedging, from the recent-latency window; < 0 disables
  /// (window too thin to know what "straggler" means yet).
  const auto hedge_delay_us = [&]() -> double {
    const obs::Histogram::Snapshot snap =
        HedgeLatencyWindow().Snap(options.hedge.window_seconds);
    const int min_samples = std::max(1, options.hedge.min_samples);
    if (snap.count < static_cast<std::uint64_t>(min_samples)) return -1.0;
    const double q_us = snap.Quantile(options.hedge.quantile);
    return std::clamp(q_us, options.hedge.min_delay_ms * 1e3,
                      std::max(options.hedge.min_delay_ms,
                               options.hedge.max_delay_ms) *
                          1e3);
  };

  /// First attempt at candidate `i`, hedged when armed: the primary runs
  /// inline; if it overstays the delay, a duplicate launches on the pool.
  /// First finished result settles the race and cancels the other side.
  /// Both sides compute identical bits (deterministic source, bit-exact
  /// memo), so which one wins is unobservable in the output.
  const auto attempt = [&](size_t i,
                           double* settled_us) -> Result<DagEstimate> {
    double delay_us = -1.0;
    if (hedge_state.pool != nullptr) delay_us = hedge_delay_us();
    if (delay_us < 0) return once(i, nullptr);

    struct Race {
      std::atomic<bool> settled{false};
      CancelToken primary_cancel = CancelToken::Cancellable();
      CancelToken hedge_cancel = CancelToken::Cancellable();
      std::mutex mutex;
      std::condition_variable done;
      bool hedge_done = false;
      std::optional<Result<DagEstimate>> hedge_result;
      /// When the hedge won: the instant its result settled the race. The
      /// candidate's answer exists from this moment; the straggling primary
      /// unwinding afterwards is duplicated-work cost, not result latency.
      double settle_us = 0.0;
    };
    auto race = std::make_shared<Race>();

    hedge_timer.After(delay_us, [&, race, i] {
      // Timer thread: launch the hedge unless the primary already settled.
      if (race->settled.load(std::memory_order_acquire)) return;
      hedge_state.outstanding.fetch_add(1, std::memory_order_relaxed);
      hedge_state.launched.fetch_add(1, std::memory_order_relaxed);
      hedge_state.pool->Submit([&, race, i] {
        Result<DagEstimate> hedged = Status::Cancelled("hedge superseded");
        bool ran = false;
        if (!race->settled.load(std::memory_order_acquire)) {
          ran = true;
          hedged = once(i, &race->hedge_cancel);
        }
        if (!race->settled.exchange(true, std::memory_order_acq_rel)) {
          // Hedge won: unwind the primary, publish the result.
          const double settle_us = obs::MonotonicUs();
          race->primary_cancel.Cancel();
          {
            std::lock_guard<std::mutex> lock(race->mutex);
            race->hedge_result = std::move(hedged);
            race->hedge_done = true;
            race->settle_us = settle_us;
          }
          race->done.notify_all();
        } else {
          if (ran) hedge_state.wasted.fetch_add(1, std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lock(race->mutex);
            race->hedge_done = true;
          }
          race->done.notify_all();
        }
        if (hedge_state.outstanding.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          std::lock_guard<std::mutex> lock(hedge_state.mutex);
          hedge_state.drained.notify_all();
        }
      });
    });

    Result<DagEstimate> primary = once(i, &race->primary_cancel);
    if (!race->settled.exchange(true, std::memory_order_acq_rel)) {
      // Primary won; a hedge still queued skips itself, one mid-run unwinds
      // at its next state boundary. Either way its result is discarded.
      race->hedge_cancel.Cancel();
      return primary;
    }
    // The hedge settled first: its result is the candidate's result (the
    // primary unwound with kCancelled from the race token).
    std::unique_lock<std::mutex> lock(race->mutex);
    race->done.wait(lock, [&] { return race->hedge_done; });
    hedge_state.won.fetch_add(1, std::memory_order_relaxed);
    if (settled_us != nullptr) *settled_us = race->settle_us;
    return std::move(*race->hedge_result);
  };

  const auto evaluate = [&](size_t i) -> Result<DagEstimate> {
    std::optional<obs::ScopedSpan> span;
    if (obs::TraceRecorder::Default().enabled()) {
      const std::string& label = requests[i].label;
      span.emplace("candidate " +
                       (label.empty()
                            ? (requests[i].flow != nullptr ? requests[i].flow->name()
                                                           : std::to_string(i))
                            : label),
                   "sweep");
    }
    const double eval_start_us = obs::MonotonicUs();
    double settled_us = -1.0;
    Result<DagEstimate> estimate = attempt(i, &settled_us);
    int attempts = 0;
    while (!estimate.ok() && IsRetryable(estimate.status().code()) &&
           attempts < options.max_retries && !options.budget.exhausted()) {
      ++attempts;
      retries.fetch_add(1, std::memory_order_relaxed);
      // Retries run unhedged: a retryable failure was not a straggler, and
      // re-arming the race would double the duplicated work bound.
      estimate = once(i, nullptr);
    }
    // A hedge-won race's latency ends when the winning copy settled, not
    // when the losing primary unwound: the answer existed from the settle,
    // and recording the straggler's unwind instead would also feed the very
    // tail hedging removed back into the delay-quantile control window.
    const double end_us = (attempts == 0 && estimate.ok() && settled_us > 0)
                              ? settled_us
                              : obs::MonotonicUs();
    const double elapsed_us = end_us - eval_start_us;
    result.candidate_latency_ms[i] = elapsed_us * 1e-3;
    if (estimate.ok()) HedgeLatencyWindow().RecordAlways(elapsed_us);
    return estimate;
  };

  result.estimates.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    result.estimates.emplace_back(Status::Internal("not evaluated"));
  }
  result.candidate_latency_ms.assign(requests.size(), -1.0);
  // Which slots actually ran: under a firing budget, skipped slots keep the
  // placeholder and are stamped with the budget status below.
  std::vector<char> evaluated(requests.size(), 0);

  // Evaluation order. Results land in request-order slots regardless, and
  // each candidate's bits are order-independent (memo and checkpoints are
  // both bit-exact), so reordering only changes cache locality: with a
  // checkpoint store, sorting by structural fingerprint evaluates candidates
  // with shared workflow prefixes consecutively, maximising resume depth.
  //
  // The fingerprints are computed once per candidate here and passed through
  // to the estimator (EstimatorOptions::checkpoint_global_fp), which would
  // otherwise recompute the same bytes for its own checkpoint lookups — on a
  // warm dense neighborhood that recomputation is a double-digit fraction of
  // a resumed estimate. Ordering compares per-fingerprint hashes rather than
  // the multi-KB fingerprints themselves: any consistent order that keeps
  // equal prefixes adjacent clusters the candidates equally well.
  std::vector<size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  if (store != nullptr) {
    fingerprints.resize(requests.size());
    const std::hash<std::string> hasher;
    for (size_t i = 0; i < requests.size(); ++i) {
      const DagWorkflow* flow = requests[i].flow;
      if (flow == nullptr) continue;
      CandidateFingerprints& fp = fingerprints[i];
      PrefixCheckpointStore::AppendGlobalFingerprint(
          options.cache_scope, requests[i].cluster, scheduler,
          estimator_options, &fp.global);
      fp.sig.reserve(flow->num_jobs() + 1);
      fp.sig.push_back(hasher(fp.global));
      for (JobId id = 0; id < flow->num_jobs(); ++id) {
        fp.sig.push_back(flow->job_fingerprint_hash(id));
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return std::lexicographical_compare(
          fingerprints[a].sig.begin(), fingerprints[a].sig.end(),
          fingerprints[b].sig.begin(), fingerprints[b].sig.end());
    });
  }

  // A dedicated pool larger than the machine is pure context-switch
  // overhead: oversubscribed workers time-slice one another without adding
  // throughput. Clamp to the hardware, and degrade to the serial loop when
  // that leaves a single worker.
  int effective_threads = options.threads;
  if (options.pool == nullptr && effective_threads > 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && static_cast<unsigned>(effective_threads) > hw) {
      effective_threads = static_cast<int>(hw);
    }
  }

  Status budget_status = Status::Ok();
  if (options.pool == nullptr && effective_threads == 1) {
    for (const size_t i : order) {
      if (budget_status.ok()) {
        budget_status = options.budget.Check("sweep");
      }
      if (!budget_status.ok()) break;
      result.estimates[i] = evaluate(i);
      evaluated[i] = 1;
    }
  } else {
    std::optional<ThreadPool> dedicated;
    ThreadPool* pool = options.pool;
    if (pool == nullptr && effective_threads > 1) {
      dedicated.emplace(effective_threads);
      pool = &*dedicated;
    }
    if (options.hedge.enabled && pool != nullptr) hedge_state.pool = pool;
    size_t start = 0;
    if (shared_memo != nullptr || store != nullptr) {
      // Prime the shared caches on the calling thread: one candidate fills
      // the memo/checkpoint entries the rest of the batch will hit, instead
      // of every worker racing to compute the same misses in parallel.
      budget_status = options.budget.Check("sweep");
      if (budget_status.ok()) {
        result.estimates[order[0]] = evaluate(order[0]);
        evaluated[order[0]] = 1;
        start = 1;
      }
    }
    if (budget_status.ok() && start < order.size()) {
      const size_t remaining = order.size() - start;
      // Warm cached candidates are microseconds of work; batch several per
      // pool task so dispatch overhead cannot swamp them (this is what keeps
      // parallel-cached throughput above serial-cached).
      size_t chunk = 1;
      if (shared_memo != nullptr || store != nullptr) {
        const size_t workers = static_cast<size_t>(
            pool != nullptr ? pool->size() : DefaultPool().size());
        chunk = std::max<size_t>(1, remaining / (std::max<size_t>(workers, 1) * 4));
      }
      const std::int64_t num_chunks =
          static_cast<std::int64_t>((remaining + chunk - 1) / chunk);
      const auto run_chunk = [&](std::int64_t c) {
        const size_t lo = start + static_cast<size_t>(c) * chunk;
        const size_t hi = std::min(order.size(), lo + chunk);
        for (size_t k = lo; k < hi; ++k) {
          result.estimates[order[k]] = evaluate(order[k]);
          evaluated[order[k]] = 1;
        }
      };
      if (hedge_state.pool == nullptr) {
        budget_status = ParallelFor(0, num_chunks, run_chunk, options.budget, pool);
      } else {
        // Hedged batches bypass ParallelFor: it parks one long-lived drainer
        // task per worker, so a hedge submitted mid-batch would queue behind
        // an entire chunk stream and fire only near batch end. Here each
        // pool task runs ONE chunk and requeues itself at the back of the
        // FIFO, so a hedge waits at most the chunks already in flight. The
        // calling thread claims chunks directly, which keeps a pool of one
        // worker deadlock-free exactly like ParallelFor's participation.
        std::atomic<std::int64_t> next_chunk{0};
        std::atomic<int> pumps{0};
        std::mutex done_mutex;
        std::condition_variable done_cv;
        std::mutex status_mutex;
        Status shared_status = Status::Ok();
        const auto process_one = [&]() -> bool {
          const std::int64_t c =
              next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (c >= num_chunks) return false;
          Status st;
          {
            std::lock_guard<std::mutex> lock(status_mutex);
            st = shared_status;
          }
          if (st.ok()) {
            st = options.budget.Check("sweep");
            if (!st.ok()) {
              std::lock_guard<std::mutex> lock(status_mutex);
              if (shared_status.ok()) shared_status = st;
            }
          }
          // Once the budget fired, remaining chunks are claimed and dropped
          // (their slots keep the placeholder and are stamped below) — the
          // same partial-result semantics as the ParallelFor path.
          if (st.ok()) run_chunk(c);
          return true;
        };
        std::function<void()> pump = [&] {
          if (process_one()) {
            pool->Submit(pump);
          } else if (pumps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(done_mutex);
            done_cv.notify_all();
          }
        };
        const int workers = std::max(1, pool->size());
        pumps.store(workers, std::memory_order_relaxed);
        for (int w = 0; w < workers; ++w) pool->Submit(pump);
        while (process_one()) {
        }
        {
          // pumps == 0 implies every claimed chunk finished: a pump only
          // exits on a claim past the end, which is ordered after its last
          // chunk completed; the caller's own chunks finished in the loop
          // above.
          std::unique_lock<std::mutex> lock(done_mutex);
          done_cv.wait(lock, [&] {
            return pumps.load(std::memory_order_acquire) == 0;
          });
        }
        {
          std::lock_guard<std::mutex> lock(status_mutex);
          budget_status = shared_status;
        }
      }
    }
    if (hedge_state.pool != nullptr) {
      // Quiesce hedging before anything below reads or frees batch state:
      // Shutdown() joins the timer (no further launches), then the drain
      // wait covers hedges already on the pool. After this, no leaked hedge
      // can outlive the batch — the chaos suite asserts exactly that.
      hedge_timer.Shutdown();
      std::unique_lock<std::mutex> lock(hedge_state.mutex);
      hedge_state.drained.wait(lock, [&] {
        return hedge_state.outstanding.load(std::memory_order_acquire) == 0;
      });
    }
  }
  if (!budget_status.ok()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!evaluated[i]) result.estimates[i] = budget_status;
    }
  }

  for (size_t i = 0; i < result.estimates.size(); ++i) {
    const Result<DagEstimate>& estimate = result.estimates[i];
    if (!estimate.ok()) {
      switch (estimate.status().code()) {
        case ErrorCode::kCancelled:
          ++result.stats.cancelled;
          break;
        case ErrorCode::kDeadlineExceeded:
          ++result.stats.deadline_exceeded;
          break;
        default:
          ++result.stats.failures;
          break;
      }
      continue;
    }
    ++result.stats.completed;
    if (estimate->makespan < result.stats.best_makespan) {
      result.stats.best_makespan = estimate->makespan;
      result.stats.best_index = static_cast<int>(i);
    }
  }
  result.stats.retries = retries.load(std::memory_order_relaxed);
  result.stats.hedges_launched =
      hedge_state.launched.load(std::memory_order_relaxed);
  result.stats.hedges_won = hedge_state.won.load(std::memory_order_relaxed);
  result.stats.hedges_wasted =
      hedge_state.wasted.load(std::memory_order_relaxed);

  if (shared_memo != nullptr) {
    const TaskTimeMemo::Stats after = shared_memo->stats();
    result.stats.cache_hits = after.hits - before.hits;
    result.stats.cache_misses = after.misses - before.misses;
  } else {
    for (const auto& memo : private_memos) {
      const TaskTimeMemo::Stats s = memo->stats();
      result.stats.cache_hits += s.hits;
      result.stats.cache_misses += s.misses;
    }
  }
  const std::uint64_t queries = result.stats.cache_hits + result.stats.cache_misses;
  result.stats.cache_hit_rate =
      queries == 0 ? 0.0
                   : static_cast<double>(result.stats.cache_hits) /
                         static_cast<double>(queries);

  if (store != nullptr) {
    const PrefixCheckpointStore::Stats cp_after = store->stats();
    result.stats.prefix_hits = cp_after.hits - cp_before.hits;
    result.stats.prefix_misses = cp_after.misses - cp_before.misses;
    result.stats.resumed_states = cp_after.resumed_states - cp_before.resumed_states;
    result.stats.checkpoints_stored = cp_after.inserts - cp_before.inserts;
  }

  SweepMetrics& metrics = Metrics();
  metrics.candidates.Add(static_cast<std::uint64_t>(result.stats.candidates));
  metrics.failures.Add(static_cast<std::uint64_t>(result.stats.failures));
  metrics.cache_hits.Add(result.stats.cache_hits);
  metrics.cache_misses.Add(result.stats.cache_misses);
  metrics.cache_hit_rate.Set(result.stats.cache_hit_rate);
  metrics.cancelled.Add(static_cast<std::uint64_t>(result.stats.cancelled));
  metrics.deadline_exceeded.Add(
      static_cast<std::uint64_t>(result.stats.deadline_exceeded));
  metrics.retries.Add(static_cast<std::uint64_t>(result.stats.retries));
  metrics.hedges_launched.Add(result.stats.hedges_launched);
  metrics.hedges_won.Add(result.stats.hedges_won);
  metrics.hedges_wasted.Add(result.stats.hedges_wasted);
  return result;
}

Status EstimateBatch(const std::vector<SweepCandidate>& requests,
                     const SchedulerConfig& scheduler,
                     const TaskTimeSource& source, const SweepOptions& options,
                     SweepResult* out) {
  *out = EstimateBatch(requests, scheduler, source, options);
  for (const auto& estimate : out->estimates) {
    if (!estimate.ok()) return estimate.status();
  }
  return Status::Ok();
}

Result<std::vector<DagWorkflow>> BuildReducerCandidates(
    const JobSpec& job, const std::vector<int>& reducer_counts) {
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument(job.name + ": map-only job has no reducers");
  }
  std::vector<DagWorkflow> flows;
  flows.reserve(reducer_counts.size());
  for (int reducers : reducer_counts) {
    if (reducers < 1) return Status::InvalidArgument("candidate reducers < 1");
    JobSpec candidate = job;
    candidate.num_reduce_tasks = reducers;
    DagBuilder builder(job.name + "-r" + std::to_string(reducers));
    builder.AddJob(candidate);
    Result<DagWorkflow> flow = std::move(builder).Build();
    if (!flow.ok()) return flow.status();
    flows.push_back(std::move(flow).value());
  }
  return flows;
}

}  // namespace dagperf
