#include "model/sweep.h"

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dagperf {

namespace {

/// Sweep-engine metrics (obs/metrics.h): cumulative candidate/failure
/// counts, the last batch's cache behaviour, and the memo hit-rate gauge the
/// CLI's --metrics-json surfaces next to `sweep --json` output.
struct SweepMetrics {
  obs::Counter& candidates;
  obs::Counter& failures;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& cache_hit_rate;

  SweepMetrics()
      : candidates(
            obs::MetricsRegistry::Default().GetCounter("sweep.candidates")),
        failures(obs::MetricsRegistry::Default().GetCounter("sweep.failures")),
        cache_hits(
            obs::MetricsRegistry::Default().GetCounter("sweep.cache_hits")),
        cache_misses(
            obs::MetricsRegistry::Default().GetCounter("sweep.cache_misses")),
        cache_hit_rate(
            obs::MetricsRegistry::Default().GetGauge("sweep.cache_hit_rate")) {}
};

SweepMetrics& Metrics() {
  static SweepMetrics* metrics = new SweepMetrics();
  return *metrics;
}

Result<DagEstimate> EstimateOne(const EstimateRequest& request,
                                const SchedulerConfig& scheduler,
                                const TaskTimeSource& source,
                                const EstimatorOptions& estimator_options) {
  if (request.flow == nullptr) {
    return Status::InvalidArgument("sweep request has no workflow");
  }
  const Status cluster_ok = request.cluster.Validate();
  if (!cluster_ok.ok()) return cluster_ok;
  const StateBasedEstimator estimator(request.cluster, scheduler,
                                      estimator_options);
  return estimator.Estimate(*request.flow, source);
}

}  // namespace

SweepResult EstimateBatch(const std::vector<EstimateRequest>& requests,
                          const SchedulerConfig& scheduler,
                          const TaskTimeSource& source, const SweepOptions& options) {
  SweepResult result;
  result.stats.candidates = static_cast<int>(requests.size());
  if (requests.empty()) return result;

  // Cache wiring. An external memo wins; otherwise a batch-local shared memo
  // or one private memo per candidate.
  TaskTimeMemo* shared_memo = options.memo;
  std::optional<TaskTimeMemo> local_memo;
  if (options.memoize && shared_memo == nullptr && options.share_cache) {
    local_memo.emplace();
    shared_memo = &*local_memo;
  }
  const TaskTimeMemo::Stats before =
      shared_memo != nullptr ? shared_memo->stats() : TaskTimeMemo::Stats{};

  std::vector<std::unique_ptr<TaskTimeMemo>> private_memos;
  if (options.memoize && shared_memo == nullptr) {
    private_memos.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      private_memos.push_back(std::make_unique<TaskTimeMemo>());
    }
  }

  const auto evaluate = [&](size_t i) -> Result<DagEstimate> {
    std::optional<obs::ScopedSpan> span;
    if (obs::TraceRecorder::Default().enabled()) {
      const std::string& label = requests[i].label;
      span.emplace("candidate " +
                       (label.empty()
                            ? (requests[i].flow != nullptr ? requests[i].flow->name()
                                                           : std::to_string(i))
                            : label),
                   "sweep");
    }
    if (!options.memoize) {
      return EstimateOne(requests[i], scheduler, source, options.estimator);
    }
    TaskTimeMemo* memo = shared_memo != nullptr ? shared_memo : private_memos[i].get();
    const MemoizedTaskTimeSource cached(source, memo, options.cache_scope);
    return EstimateOne(requests[i], scheduler, cached, options.estimator);
  };

  result.estimates.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    result.estimates.emplace_back(Status::Internal("not evaluated"));
  }

  if (options.pool == nullptr && options.threads == 1) {
    for (size_t i = 0; i < requests.size(); ++i) result.estimates[i] = evaluate(i);
  } else {
    std::optional<ThreadPool> dedicated;
    ThreadPool* pool = options.pool;
    if (pool == nullptr && options.threads > 1) {
      dedicated.emplace(options.threads);
      pool = &*dedicated;
    }
    ParallelFor(
        0, static_cast<std::int64_t>(requests.size()),
        [&](std::int64_t i) { result.estimates[static_cast<size_t>(i)] = evaluate(i); },
        pool);
  }

  for (size_t i = 0; i < result.estimates.size(); ++i) {
    const Result<DagEstimate>& estimate = result.estimates[i];
    if (!estimate.ok()) {
      ++result.stats.failures;
      continue;
    }
    if (estimate->makespan < result.stats.best_makespan) {
      result.stats.best_makespan = estimate->makespan;
      result.stats.best_index = static_cast<int>(i);
    }
  }

  if (shared_memo != nullptr) {
    const TaskTimeMemo::Stats after = shared_memo->stats();
    result.stats.cache_hits = after.hits - before.hits;
    result.stats.cache_misses = after.misses - before.misses;
  } else {
    for (const auto& memo : private_memos) {
      const TaskTimeMemo::Stats s = memo->stats();
      result.stats.cache_hits += s.hits;
      result.stats.cache_misses += s.misses;
    }
  }
  const std::uint64_t queries = result.stats.cache_hits + result.stats.cache_misses;
  result.stats.cache_hit_rate =
      queries == 0 ? 0.0
                   : static_cast<double>(result.stats.cache_hits) /
                         static_cast<double>(queries);

  SweepMetrics& metrics = Metrics();
  metrics.candidates.Add(static_cast<std::uint64_t>(result.stats.candidates));
  metrics.failures.Add(static_cast<std::uint64_t>(result.stats.failures));
  metrics.cache_hits.Add(result.stats.cache_hits);
  metrics.cache_misses.Add(result.stats.cache_misses);
  metrics.cache_hit_rate.Set(result.stats.cache_hit_rate);
  return result;
}

Result<std::vector<DagWorkflow>> BuildReducerCandidates(
    const JobSpec& job, const std::vector<int>& reducer_counts) {
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument(job.name + ": map-only job has no reducers");
  }
  std::vector<DagWorkflow> flows;
  flows.reserve(reducer_counts.size());
  for (int reducers : reducer_counts) {
    if (reducers < 1) return Status::InvalidArgument("candidate reducers < 1");
    JobSpec candidate = job;
    candidate.num_reduce_tasks = reducers;
    DagBuilder builder(job.name + "-r" + std::to_string(reducers));
    builder.AddJob(candidate);
    Result<DagWorkflow> flow = std::move(builder).Build();
    if (!flow.ok()) return flow.status();
    flows.push_back(std::move(flow).value());
  }
  return flows;
}

}  // namespace dagperf
