#include "model/sweep.h"

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/cancel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dagperf {

namespace {

/// Sweep-engine metrics (obs/metrics.h): cumulative candidate/failure
/// counts, the last batch's cache behaviour, and the memo hit-rate gauge the
/// CLI's --metrics-json surfaces next to `sweep --json` output.
struct SweepMetrics {
  obs::Counter& candidates;
  obs::Counter& failures;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& cache_hit_rate;
  obs::Counter& cancelled;
  obs::Counter& deadline_exceeded;
  obs::Counter& retries;

  SweepMetrics()
      : candidates(
            obs::MetricsRegistry::Default().GetCounter("sweep.candidates")),
        failures(obs::MetricsRegistry::Default().GetCounter("sweep.failures")),
        cache_hits(
            obs::MetricsRegistry::Default().GetCounter("sweep.cache_hits")),
        cache_misses(
            obs::MetricsRegistry::Default().GetCounter("sweep.cache_misses")),
        cache_hit_rate(
            obs::MetricsRegistry::Default().GetGauge("sweep.cache_hit_rate")),
        cancelled(obs::MetricsRegistry::Default().GetCounter("sweep.cancelled")),
        deadline_exceeded(obs::MetricsRegistry::Default().GetCounter(
            "sweep.deadline_exceeded")),
        retries(obs::MetricsRegistry::Default().GetCounter("sweep.retries")) {}
};

SweepMetrics& Metrics() {
  static SweepMetrics* metrics = new SweepMetrics();
  return *metrics;
}

Result<DagEstimate> EstimateOne(const EstimateRequest& request,
                                const SchedulerConfig& scheduler,
                                const TaskTimeSource& source,
                                const EstimatorOptions& estimator_options) {
  if (request.flow == nullptr) {
    return Status::InvalidArgument("sweep request has no workflow");
  }
  // The estimator is the firewall here: its constructor validates the
  // cluster (every violation, not just the first) and Estimate() validates
  // the flow, so an invalid candidate yields a full diagnostic.
  const StateBasedEstimator estimator(request.cluster, scheduler,
                                      estimator_options);
  return estimator.Estimate(*request.flow, source);
}

}  // namespace

SweepResult EstimateBatch(const std::vector<EstimateRequest>& requests,
                          const SchedulerConfig& scheduler,
                          const TaskTimeSource& source, const SweepOptions& options) {
  SweepResult result;
  result.stats.candidates = static_cast<int>(requests.size());
  if (requests.empty()) return result;

  // Cache wiring. An external memo wins; otherwise a batch-local shared memo
  // or one private memo per candidate.
  TaskTimeMemo* shared_memo = options.memo;
  std::optional<TaskTimeMemo> local_memo;
  if (options.memoize && shared_memo == nullptr && options.share_cache) {
    local_memo.emplace();
    shared_memo = &*local_memo;
  }
  const TaskTimeMemo::Stats before =
      shared_memo != nullptr ? shared_memo->stats() : TaskTimeMemo::Stats{};

  std::vector<std::unique_ptr<TaskTimeMemo>> private_memos;
  if (options.memoize && shared_memo == nullptr) {
    private_memos.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      private_memos.push_back(std::make_unique<TaskTimeMemo>());
    }
  }

  // Batch-level budget propagates into each candidate's estimator (unless
  // the caller set estimator-level signals), so a firing budget also unwinds
  // the candidate currently mid-estimate, not just unstarted ones.
  EstimatorOptions estimator_options = options.estimator;
  estimator_options.budget = estimator_options.budget.MergedWith(options.budget);

  std::atomic<int> retries{0};
  const auto evaluate = [&](size_t i) -> Result<DagEstimate> {
    std::optional<obs::ScopedSpan> span;
    if (obs::TraceRecorder::Default().enabled()) {
      const std::string& label = requests[i].label;
      span.emplace("candidate " +
                       (label.empty()
                            ? (requests[i].flow != nullptr ? requests[i].flow->name()
                                                           : std::to_string(i))
                            : label),
                   "sweep");
    }
    const auto once = [&]() -> Result<DagEstimate> {
      if (!options.memoize) {
        return EstimateOne(requests[i], scheduler, source, estimator_options);
      }
      TaskTimeMemo* memo =
          shared_memo != nullptr ? shared_memo : private_memos[i].get();
      const MemoizedTaskTimeSource cached(source, memo, options.cache_scope);
      return EstimateOne(requests[i], scheduler, cached, estimator_options);
    };
    Result<DagEstimate> estimate = once();
    int attempts = 0;
    while (!estimate.ok() && IsRetryable(estimate.status().code()) &&
           attempts < options.max_retries && !options.budget.exhausted()) {
      ++attempts;
      retries.fetch_add(1, std::memory_order_relaxed);
      estimate = once();
    }
    return estimate;
  };

  result.estimates.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    result.estimates.emplace_back(Status::Internal("not evaluated"));
  }
  // Which slots actually ran: under a firing budget, skipped slots keep the
  // placeholder and are stamped with the budget status below.
  std::vector<char> evaluated(requests.size(), 0);

  Status budget_status = Status::Ok();
  if (options.pool == nullptr && options.threads == 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      if (budget_status.ok()) {
        budget_status = options.budget.Check("sweep");
      }
      if (!budget_status.ok()) break;
      result.estimates[i] = evaluate(i);
      evaluated[i] = 1;
    }
  } else {
    std::optional<ThreadPool> dedicated;
    ThreadPool* pool = options.pool;
    if (pool == nullptr && options.threads > 1) {
      dedicated.emplace(options.threads);
      pool = &*dedicated;
    }
    budget_status = ParallelFor(
        0, static_cast<std::int64_t>(requests.size()),
        [&](std::int64_t i) {
          result.estimates[static_cast<size_t>(i)] = evaluate(i);
          evaluated[static_cast<size_t>(i)] = 1;
        },
        options.budget, pool);
  }
  if (!budget_status.ok()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!evaluated[i]) result.estimates[i] = budget_status;
    }
  }

  for (size_t i = 0; i < result.estimates.size(); ++i) {
    const Result<DagEstimate>& estimate = result.estimates[i];
    if (!estimate.ok()) {
      switch (estimate.status().code()) {
        case ErrorCode::kCancelled:
          ++result.stats.cancelled;
          break;
        case ErrorCode::kDeadlineExceeded:
          ++result.stats.deadline_exceeded;
          break;
        default:
          ++result.stats.failures;
          break;
      }
      continue;
    }
    ++result.stats.completed;
    if (estimate->makespan < result.stats.best_makespan) {
      result.stats.best_makespan = estimate->makespan;
      result.stats.best_index = static_cast<int>(i);
    }
  }
  result.stats.retries = retries.load(std::memory_order_relaxed);

  if (shared_memo != nullptr) {
    const TaskTimeMemo::Stats after = shared_memo->stats();
    result.stats.cache_hits = after.hits - before.hits;
    result.stats.cache_misses = after.misses - before.misses;
  } else {
    for (const auto& memo : private_memos) {
      const TaskTimeMemo::Stats s = memo->stats();
      result.stats.cache_hits += s.hits;
      result.stats.cache_misses += s.misses;
    }
  }
  const std::uint64_t queries = result.stats.cache_hits + result.stats.cache_misses;
  result.stats.cache_hit_rate =
      queries == 0 ? 0.0
                   : static_cast<double>(result.stats.cache_hits) /
                         static_cast<double>(queries);

  SweepMetrics& metrics = Metrics();
  metrics.candidates.Add(static_cast<std::uint64_t>(result.stats.candidates));
  metrics.failures.Add(static_cast<std::uint64_t>(result.stats.failures));
  metrics.cache_hits.Add(result.stats.cache_hits);
  metrics.cache_misses.Add(result.stats.cache_misses);
  metrics.cache_hit_rate.Set(result.stats.cache_hit_rate);
  metrics.cancelled.Add(static_cast<std::uint64_t>(result.stats.cancelled));
  metrics.deadline_exceeded.Add(
      static_cast<std::uint64_t>(result.stats.deadline_exceeded));
  metrics.retries.Add(static_cast<std::uint64_t>(result.stats.retries));
  return result;
}

Status EstimateBatch(const std::vector<EstimateRequest>& requests,
                     const SchedulerConfig& scheduler,
                     const TaskTimeSource& source, const SweepOptions& options,
                     SweepResult* out) {
  *out = EstimateBatch(requests, scheduler, source, options);
  for (const auto& estimate : out->estimates) {
    if (!estimate.ok()) return estimate.status();
  }
  return Status::Ok();
}

Result<std::vector<DagWorkflow>> BuildReducerCandidates(
    const JobSpec& job, const std::vector<int>& reducer_counts) {
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument(job.name + ": map-only job has no reducers");
  }
  std::vector<DagWorkflow> flows;
  flows.reserve(reducer_counts.size());
  for (int reducers : reducer_counts) {
    if (reducers < 1) return Status::InvalidArgument("candidate reducers < 1");
    JobSpec candidate = job;
    candidate.num_reduce_tasks = reducers;
    DagBuilder builder(job.name + "-r" + std::to_string(reducers));
    builder.AddJob(candidate);
    Result<DagWorkflow> flow = std::move(builder).Build();
    if (!flow.ok()) return flow.status();
    flows.push_back(std::move(flow).value());
  }
  return flows;
}

}  // namespace dagperf
