#include "model/explain.h"

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/resources.h"
#include "workload/job_profile.h"

namespace dagperf {

namespace {

std::string StageName(const DagWorkflow& flow, JobId job, StageKind kind) {
  return flow.job(job).name + "/" + StageKindName(kind);
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string FormatShare(double share) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", share * 100.0);
  return buf;
}

/// Left-pads/truncates nothing; simple right-pad for text tables.
std::string Pad(const std::string& s, size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

}  // namespace

std::vector<CriticalSegment> CriticalPath(const DagEstimate& estimate) {
  std::vector<CriticalSegment> segments;
  for (const StateEstimate& state : estimate.states) {
    if (state.duration <= 0.0) continue;
    // A state always has a critical stage when it has a duration (the
    // arg-min that advanced time); fall back to the first running stage for
    // robustness against hand-built estimates.
    const RunningSpan running = estimate.running(state);
    const int idx =
        state.critical >= 0 && state.critical < static_cast<int>(running.size())
            ? state.critical
            : 0;
    if (running.empty()) continue;
    const RunningStageEstimate& critical = running[idx];
    if (!segments.empty() && segments.back().job == critical.job &&
        segments.back().kind == critical.kind) {
      segments.back().duration += state.duration;
    } else {
      CriticalSegment segment;
      segment.job = critical.job;
      segment.kind = critical.kind;
      segment.start = state.start;
      segment.duration = state.duration;
      segments.push_back(segment);
    }
  }
  return segments;
}

Result<ExplainReport> Explain(const DagWorkflow& flow, const ClusterSpec& cluster,
                              const SchedulerConfig& scheduler,
                              const TaskTimeSource& source, EstimatorOptions options) {
  options.attribute_bottlenecks = true;
  const StateBasedEstimator estimator(cluster, scheduler, options);
  Result<DagEstimate> estimate = estimator.Estimate(flow, source);
  if (!estimate.ok()) return estimate.status();
  ExplainReport report;
  report.estimate = std::move(estimate).value();
  report.critical_path = CriticalPath(report.estimate);
  for (const CriticalSegment& segment : report.critical_path) {
    report.critical_total_s += segment.duration;
  }
  return report;
}

std::string ExplainToText(const DagWorkflow& flow, const ExplainReport& report) {
  std::string out;
  const double makespan = report.estimate.makespan.seconds();
  out += "workflow " + flow.name() + ": estimated makespan " +
         FormatSeconds(makespan) + " s, " +
         std::to_string(report.estimate.states.size()) + " states\n\n";

  // Critical path: which stage paced each slice of the makespan.
  out += "critical path (segments sum to the makespan):\n";
  size_t name_width = 5;
  for (const CriticalSegment& s : report.critical_path) {
    name_width = std::max(name_width, StageName(flow, s.job, s.kind).size());
  }
  out += "  " + Pad("stage", name_width) + "  start      duration   share\n";
  for (const CriticalSegment& s : report.critical_path) {
    out += "  " + Pad(StageName(flow, s.job, s.kind), name_width) + "  " +
           Pad(FormatSeconds(s.start), 9) + "  " + Pad(FormatSeconds(s.duration), 9) +
           "  " + FormatShare(makespan > 0 ? s.duration / makespan : 0.0) + "\n";
  }
  out += "\n";

  // Per-state detail with bottleneck attribution.
  out += "states:\n";
  for (const StateEstimate& state : report.estimate.states) {
    out += "  state " + std::to_string(state.index) + "  [" +
           FormatSeconds(state.start) + " s + " + FormatSeconds(state.duration) +
           " s]\n";
    const RunningSpan span = report.estimate.running(state);
    for (size_t i = 0; i < span.size(); ++i) {
      const RunningStageEstimate& rs = span[i];
      out += "    " + Pad(StageName(flow, rs.job, rs.kind), name_width) +
             "  p=" + Pad(std::to_string(rs.parallelism), 5) +
             " task=" + FormatSeconds(rs.task_time_s) + "s";
      if (rs.has_attribution) {
        out += "  bottleneck=" + std::string(ResourceName(rs.bottleneck)) + " (";
        bool first = true;
        for (Resource r : kAllResources) {
          if (!first) out += " ";
          first = false;
          out += std::string(ResourceName(r)) + "=" + FormatShare(rs.utilization[r]);
        }
        out += ")";
      }
      if (static_cast<int>(i) == state.critical) out += "  <- critical";
      out += "\n";
    }
  }
  return out;
}

Json ExplainToJson(const DagWorkflow& flow, const ExplainReport& report) {
  Json root = Json::MakeObject();
  root.Set("workflow", Json::MakeString(flow.name()));
  root.Set("makespan_s", Json::MakeNumber(report.estimate.makespan.seconds()));
  root.Set("critical_total_s", Json::MakeNumber(report.critical_total_s));

  Json path = Json::MakeArray();
  for (const CriticalSegment& s : report.critical_path) {
    Json segment = Json::MakeObject();
    segment.Set("stage", Json::MakeString(StageName(flow, s.job, s.kind)));
    segment.Set("start_s", Json::MakeNumber(s.start));
    segment.Set("duration_s", Json::MakeNumber(s.duration));
    path.Append(std::move(segment));
  }
  root.Set("critical_path", std::move(path));

  Json states = Json::MakeArray();
  for (const StateEstimate& state : report.estimate.states) {
    Json js = Json::MakeObject();
    js.Set("index", Json::MakeNumber(state.index));
    js.Set("start_s", Json::MakeNumber(state.start));
    js.Set("duration_s", Json::MakeNumber(state.duration));
    js.Set("critical", Json::MakeNumber(state.critical));
    Json running = Json::MakeArray();
    for (const RunningStageEstimate& rs : report.estimate.running(state)) {
      Json jr = Json::MakeObject();
      jr.Set("stage", Json::MakeString(StageName(flow, rs.job, rs.kind)));
      jr.Set("parallelism", Json::MakeNumber(rs.parallelism));
      jr.Set("task_s", Json::MakeNumber(rs.task_time_s));
      if (rs.has_attribution) {
        jr.Set("bottleneck", Json::MakeString(ResourceName(rs.bottleneck)));
        Json util = Json::MakeObject();
        for (Resource r : kAllResources) {
          util.Set(ResourceName(r), Json::MakeNumber(rs.utilization[r]));
        }
        jr.Set("utilization", std::move(util));
      }
      running.Append(std::move(jr));
    }
    js.Set("running", std::move(running));
    states.Append(std::move(js));
  }
  root.Set("states", std::move(states));
  return root;
}

void AppendEstimateTraceEvents(const DagWorkflow& flow, const DagEstimate& estimate,
                               std::vector<obs::ChromeTraceEvent>& events) {
  constexpr int kEstimatePid = 1;
  constexpr int kStateLane = 1000000;  // Above any plausible job id.

  // One lane per job: its stage spans in modeled time (1 s -> 1 "us" so
  // Perfetto's timeline reads directly in seconds).
  for (const StageSpanEstimate& span : estimate.stages) {
    obs::ChromeTraceEvent event;
    event.name = StageName(flow, span.job, span.kind);
    event.cat = "estimate";
    event.ph = 'X';
    event.ts_us = span.start * 1e6;
    event.dur_us = (span.end - span.start) * 1e6;
    event.pid = kEstimatePid;
    event.tid = static_cast<int>(span.job);
    events.push_back(std::move(event));
  }

  // State lane: one span per state naming its critical stage.
  bool any_attribution = false;
  for (const StateEstimate& state : estimate.states) {
    obs::ChromeTraceEvent event;
    event.name = "state " + std::to_string(state.index);
    event.cat = "estimate";
    event.ph = 'X';
    event.ts_us = state.start * 1e6;
    event.dur_us = state.duration * 1e6;
    event.pid = kEstimatePid;
    event.tid = kStateLane;
    const RunningSpan span = estimate.running(state);
    event.num_args.emplace_back("running", static_cast<double>(span.size()));
    if (state.critical >= 0 && state.critical < static_cast<int>(span.size())) {
      const RunningStageEstimate& critical = span[state.critical];
      event.str_args.emplace_back("critical",
                                  StageName(flow, critical.job, critical.kind));
    }
    events.push_back(std::move(event));
    for (const RunningStageEstimate& rs : span) {
      if (rs.has_attribution) any_attribution = true;
    }
  }

  // Per-resource modeled load counters: for each state, the sum over its
  // running stages of parallelism x utilisation share — how many concurrent
  // tasks keep the resource busy. Only meaningful with attribution on.
  if (any_attribution) {
    for (const StateEstimate& state : estimate.states) {
      obs::ChromeTraceEvent event;
      event.name = "resource load";
      event.cat = "estimate";
      event.ph = 'C';
      event.ts_us = state.start * 1e6;
      event.pid = kEstimatePid;
      event.tid = 0;
      for (Resource r : kAllResources) {
        double load = 0.0;
        for (const RunningStageEstimate& rs : estimate.running(state)) {
          if (!rs.has_attribution) continue;
          load += static_cast<double>(rs.parallelism) * rs.utilization[r];
        }
        event.num_args.emplace_back(ResourceName(r), load);
      }
      events.push_back(std::move(event));
    }
    // Close the last counter interval at the makespan.
    obs::ChromeTraceEvent event;
    event.name = "resource load";
    event.cat = "estimate";
    event.ph = 'C';
    event.ts_us = estimate.makespan.seconds() * 1e6;
    event.pid = kEstimatePid;
    event.tid = 0;
    for (Resource r : kAllResources) event.num_args.emplace_back(ResourceName(r), 0.0);
    events.push_back(std::move(event));
  }
}

void WriteEstimateChromeTrace(const DagWorkflow& flow, const DagEstimate& estimate,
                              std::ostream& out) {
  std::vector<obs::ChromeTraceEvent> events;
  AppendEstimateTraceEvents(flow, estimate, events);
  obs::WriteChromeTraceEvents(events, out, {{1, "estimate " + flow.name()}});
}

}  // namespace dagperf
