#ifndef DAGPERF_MODEL_INCREMENTAL_H_
#define DAGPERF_MODEL_INCREMENTAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_spec.h"
#include "dag/dag_workflow.h"
#include "model/state_estimator.h"
#include "scheduler/drf.h"

namespace dagperf {

/// Incremental re-estimation: prefix-resume checkpoints.
///
/// Sweep candidates in a tuner neighborhood typically differ in one knob of
/// one job, so their state trajectories (paper Algorithm 1) are identical up
/// to the first state in which the changed job participates. The estimator
/// checkpoints its complete dynamic state at job-completion boundaries; a
/// later candidate looks up the deepest checkpoint whose *structural prefix*
/// matches its own workflow and resumes the iteration there instead of
/// replaying it. Resumed estimates are bit-identical to full replay — the
/// checkpoint key is an exact-byte serialisation of everything the
/// trajectory up to that boundary depends on (see BuildKey), so a key match
/// guarantees the replay would have produced exactly the stored state.
///
/// Key structure (all numeric fields as raw bits, no rounding):
///   [scope, cluster, scheduler, estimator options]   -- global fingerprint
///   [sorted done-job ids]                            -- the prefix boundary
///   [for each ACTIVATED job (all parents done), ascending id:
///        id, stage profiles (map + reduce), parent ids]
/// Only activated jobs enter the key: a job whose parents are not all done
/// cannot have run before the boundary, so its profile cannot have
/// influenced the trajectory — which is what lets candidates that differ
/// only in a not-yet-activated job share the full prefix, and even lets
/// workflows with different job counts share checkpoints.
///
/// Invalidation: there is none to do. Cluster, scheduler, and estimator
/// options are part of every key, so changing them simply misses. The
/// TaskTimeSource is NOT captured by the key (sources are opaque); callers
/// must set a distinct `checkpoint_scope` per source identity, exactly as
/// they scope a shared TaskTimeMemo (the service uses the same scope string
/// for both). See docs/performance.md.

/// One in-flight wave of tasks: `size` tasks that started together and have
/// completed `frac` of their duration (moved here from the estimator so
/// checkpoints can store wave state verbatim).
struct WaveState {
  double size = 0.0;
  double frac = 0.0;
  /// Whether this wave contains the stage's final tasks (it pays the
  /// straggler tail under Alg2).
  bool is_last = false;
};

/// Frozen dynamic state of one stage slot at a checkpoint boundary.
struct StageDynState {
  unsigned char ready = 0;
  unsigned char complete = 0;
  double not_started = 0.0;
  double start_time = -1.0;
  double end_time = 0.0;
  /// This slot's waves live in EstimatorCheckpoint::waves
  /// [wave_begin, wave_begin + wave_count).
  int wave_begin = 0;
  int wave_count = 0;
};

/// The estimator's complete dynamic state at one job-completion boundary,
/// plus the partial output produced so far. Restoring is a handful of
/// memcpy-style vector assigns (every record is trivially copyable).
struct EstimatorCheckpoint {
  std::string key;
  /// Completed jobs at the boundary, ascending.
  std::vector<JobId> done;
  /// Activated jobs (all parents done), ascending. Non-activated jobs have
  /// never run and are re-initialised fresh by the resuming estimate.
  std::vector<JobId> jobs;
  /// Two slots (map, reduce) per entry of `jobs`, in order.
  std::vector<StageDynState> stage_state;
  /// Flat wave pool indexed by StageDynState::wave_begin/wave_count.
  std::vector<WaveState> waves;
  double now = 0.0;
  int next_state_index = 1;
  /// Partial output: the states/running records/stage spans emitted so far.
  std::vector<StateEstimate> states;
  std::vector<RunningStageEstimate> running_pool;
  std::vector<StageSpanEstimate> stages;

  /// Approximate retained heap footprint, for the store's byte cap.
  std::size_t ByteSize() const;
};

/// Thread-safe store of prefix checkpoints, shared across the candidates of
/// a sweep and — like TaskTimeMemo, which it lives beside in the service's
/// cross-request cache — across requests, with the same scope strings.
///
/// Inserts are first-wins (matching keys imply bit-identical content, so
/// either copy is correct) and stop once the byte cap is reached: rejecting
/// beats evicting because an estimate's resume depth then never depends on
/// concurrent eviction timing, keeping batch results deterministic.
class PrefixCheckpointStore {
 public:
  struct Options {
    /// Byte cap on retained checkpoints; inserts are rejected beyond it.
    std::size_t max_bytes = 64 * 1024 * 1024;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    /// Inserts rejected because the byte cap was reached.
    std::uint64_t rejected_full = 0;
    /// Total states skipped by resuming (the work saved).
    std::uint64_t resumed_states = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  PrefixCheckpointStore();
  explicit PrefixCheckpointStore(Options options);

  /// The deepest checkpoint matching a prefix of `flow` (most done jobs),
  /// or nullptr. `job_fps[id]` must hold AppendJobFingerprint(flow, id) for
  /// every id of the flow (extra entries are ignored). Counts a hit or miss.
  std::shared_ptr<const EstimatorCheckpoint> Lookup(
      const DagWorkflow& flow, const std::string& global_fp,
      const std::vector<std::string>& job_fps) const;

  /// Whether `key` is already stored — the estimator probes this before
  /// paying the capture cost of a checkpoint someone already recorded.
  bool Contains(const std::string& key) const;

  /// Stores a checkpoint under its `key`. First insert wins; inserts beyond
  /// the byte cap are rejected (counted in Stats::rejected_full).
  void Insert(std::shared_ptr<const EstimatorCheckpoint> checkpoint);

  /// Called by a resuming estimate with the number of states it skipped;
  /// feeds Stats::resumed_states and the incremental.resume_depth histogram.
  void RecordResume(int states) const;

  void Clear();
  Stats stats() const;

  /// Snapshot of every stored checkpoint (order unspecified) — the
  /// warm-state snapshot (model/snapshot.h) serialises these.
  std::vector<std::shared_ptr<const EstimatorCheckpoint>> Export() const;

  /// Re-inserts checkpoints through Insert(): first-wins, byte-capped, and
  /// done-set registration all apply, so a restored store probes exactly
  /// like the store it was saved from.
  void Import(
      const std::vector<std::shared_ptr<const EstimatorCheckpoint>>& entries);

  /// Appends the global part of a checkpoint key: scope + everything the
  /// estimator consumes from cluster, scheduler, and options. Excludes
  /// max_states and budget — both only bound how far an estimate gets, never
  /// the values it computes on the way.
  static void AppendGlobalFingerprint(const std::string& scope,
                                      const ClusterSpec& cluster,
                                      const SchedulerConfig& scheduler,
                                      const EstimatorOptions& options,
                                      std::string* out);

  /// Appends one job's structural fingerprint: stage profiles (exact bytes,
  /// the same serialisation TaskTimeMemo keys on) plus parent ids.
  static void AppendJobFingerprint(const DagWorkflow& flow, JobId id,
                                   std::string* out);

  /// Builds the full key for the boundary `done` (sorted ascending) of
  /// `flow`, computing the activated set internally. Returns false when the
  /// done set cannot belong to this flow (an id out of range), in which
  /// case `*out` is unspecified.
  static bool BuildKey(const std::string& global_fp,
                       const std::vector<std::string>& job_fps,
                       const DagWorkflow& flow, const JobId* done,
                       std::size_t done_count, std::string* out);

 private:
  Options options_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const EstimatorCheckpoint>>
      entries_;
  /// Distinct done sets seen by Insert, ordered deepest-first (size
  /// descending, then lexicographic) — the probe sequence for Lookup.
  std::vector<std::vector<JobId>> done_sets_;
  std::size_t bytes_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  mutable std::atomic<std::uint64_t> resumed_states_{0};
};

}  // namespace dagperf

#endif  // DAGPERF_MODEL_INCREMENTAL_H_
