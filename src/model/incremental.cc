#include "model/incremental.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "obs/metrics.h"

namespace dagperf {

namespace {

/// incremental.* metric handles (obs/metrics.h), mirroring the store's
/// internal stats for `--metrics-json` and the serve dashboards.
struct IncrementalMetrics {
  obs::Counter& prefix_hits;
  obs::Counter& prefix_misses;
  obs::Counter& checkpoints_stored;
  obs::Counter& store_rejected;
  obs::Histogram& resume_depth;

  IncrementalMetrics()
      : prefix_hits(obs::MetricsRegistry::Default().GetCounter(
            "incremental.prefix_hits")),
        prefix_misses(obs::MetricsRegistry::Default().GetCounter(
            "incremental.prefix_misses")),
        checkpoints_stored(obs::MetricsRegistry::Default().GetCounter(
            "incremental.checkpoints_stored")),
        store_rejected(obs::MetricsRegistry::Default().GetCounter(
            "incremental.store_rejected")),
        resume_depth(obs::MetricsRegistry::Default().GetHistogram(
            "incremental.resume_depth")) {}
};

IncrementalMetrics& Metrics() {
  static IncrementalMetrics* metrics = new IncrementalMetrics();
  return *metrics;
}

/// Appends the raw bit pattern of a double — exact, no formatting loss.
void AppendBits(std::string& out, double value) {
  char bits[sizeof(double)];
  std::memcpy(bits, &value, sizeof(double));
  out.append(bits, sizeof(double));
}

void AppendInt(std::string& out, std::int64_t value) {
  char bits[sizeof(std::int64_t)];
  std::memcpy(bits, &value, sizeof(std::int64_t));
  out.append(bits, sizeof(std::int64_t));
}

}  // namespace

std::size_t EstimatorCheckpoint::ByteSize() const {
  return sizeof(*this) + key.size() + done.size() * sizeof(JobId) +
         jobs.size() * sizeof(JobId) +
         stage_state.size() * sizeof(StageDynState) +
         waves.size() * sizeof(WaveState) +
         states.size() * sizeof(StateEstimate) +
         running_pool.size() * sizeof(RunningStageEstimate) +
         stages.size() * sizeof(StageSpanEstimate);
}

PrefixCheckpointStore::PrefixCheckpointStore()
    : PrefixCheckpointStore(Options{}) {}

PrefixCheckpointStore::PrefixCheckpointStore(Options options)
    : options_(options) {}

void PrefixCheckpointStore::AppendGlobalFingerprint(
    const std::string& scope, const ClusterSpec& cluster,
    const SchedulerConfig& scheduler, const EstimatorOptions& options,
    std::string* out) {
  *out += scope;
  *out += '#';
  AppendInt(*out, cluster.num_nodes);
  AppendInt(*out, cluster.node.cores);
  AppendBits(*out, cluster.node.memory.value());
  const ResourceVector capacities = cluster.node.Capacities();
  for (double capacity : capacities.values) AppendBits(*out, capacity);
  AppendBits(*out, scheduler.vcores_per_core);
  AppendInt(*out, scheduler.max_tasks_per_node);
  *out += static_cast<char>(options.wave_model);
  *out += options.skew_aware ? '\1' : '\0';
  *out += options.attribute_bottlenecks ? '\1' : '\0';
  AppendBits(*out, options.node_speed_cv);
  *out += '#';
}

void PrefixCheckpointStore::AppendJobFingerprint(const DagWorkflow& flow,
                                                 JobId id, std::string* out) {
  // The bytes are precomputed at DagBuilder::Build() time (the flow is
  // immutable, the hot paths read them on every estimate) — see
  // DagWorkflow::job_fingerprint for the layout.
  out->append(flow.job_fingerprint(id));
}

bool PrefixCheckpointStore::BuildKey(const std::string& global_fp,
                                     const std::vector<std::string>& job_fps,
                                     const DagWorkflow& flow, const JobId* done,
                                     std::size_t done_count, std::string* out) {
  const int n = flow.num_jobs();
  thread_local std::vector<unsigned char> done_mark;
  done_mark.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < done_count; ++i) {
    if (done[i] < 0 || done[i] >= n) return false;
    done_mark[static_cast<std::size_t>(done[i])] = 1;
  }

  out->clear();
  *out += global_fp;
  AppendInt(*out, static_cast<std::int64_t>(done_count));
  for (std::size_t i = 0; i < done_count; ++i) AppendInt(*out, done[i]);
  *out += '#';
  for (JobId id = 0; id < n; ++id) {
    bool activated = true;
    for (JobId parent : flow.parents(id)) {
      if (!done_mark[static_cast<std::size_t>(parent)]) {
        activated = false;
        break;
      }
    }
    if (!activated) continue;
    AppendInt(*out, id);
    *out += job_fps[static_cast<std::size_t>(id)];
    *out += '|';
  }
  return true;
}

std::shared_ptr<const EstimatorCheckpoint> PrefixCheckpointStore::Lookup(
    const DagWorkflow& flow, const std::string& global_fp,
    const std::vector<std::string>& job_fps) const {
  thread_local std::string key;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    // done_sets_ is ordered deepest-first, so the first key match is the
    // checkpoint with the most completed jobs — the maximal shared prefix.
    for (const std::vector<JobId>& done : done_sets_) {
      if (!BuildKey(global_fp, job_fps, flow, done.data(), done.size(), &key)) {
        continue;
      }
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        Metrics().prefix_hits.Add(1);
        return it->second;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Metrics().prefix_misses.Add(1);
  return nullptr;
}

bool PrefixCheckpointStore::Contains(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

void PrefixCheckpointStore::Insert(
    std::shared_ptr<const EstimatorCheckpoint> checkpoint) {
  const std::size_t size = checkpoint->ByteSize();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (entries_.find(checkpoint->key) != entries_.end()) return;  // First wins.
  if (bytes_ + size > options_.max_bytes) {
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    Metrics().store_rejected.Add(1);
    return;
  }
  // Register the done set for probing, deepest-first with lexicographic
  // tie-break (a deterministic total order, so probe sequences do not depend
  // on insertion interleaving).
  const auto deeper = [](const std::vector<JobId>& a,
                         const std::vector<JobId>& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a < b;
  };
  const auto it = std::lower_bound(done_sets_.begin(), done_sets_.end(),
                                   checkpoint->done, deeper);
  if (it == done_sets_.end() || *it != checkpoint->done) {
    done_sets_.insert(it, checkpoint->done);
  }
  bytes_ += size;
  entries_.emplace(checkpoint->key, std::move(checkpoint));
  inserts_.fetch_add(1, std::memory_order_relaxed);
  Metrics().checkpoints_stored.Add(1);
}

void PrefixCheckpointStore::RecordResume(int states) const {
  resumed_states_.fetch_add(static_cast<std::uint64_t>(states),
                            std::memory_order_relaxed);
  Metrics().resume_depth.Record(static_cast<double>(states));
}

void PrefixCheckpointStore::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  done_sets_.clear();
  bytes_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  rejected_full_.store(0, std::memory_order_relaxed);
  resumed_states_.store(0, std::memory_order_relaxed);
}

std::vector<std::shared_ptr<const EstimatorCheckpoint>>
PrefixCheckpointStore::Export() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::shared_ptr<const EstimatorCheckpoint>> out;
  out.reserve(entries_.size());
  for (const auto& [key, checkpoint] : entries_) out.push_back(checkpoint);
  return out;
}

void PrefixCheckpointStore::Import(
    const std::vector<std::shared_ptr<const EstimatorCheckpoint>>& entries) {
  for (const auto& checkpoint : entries) Insert(checkpoint);
}

PrefixCheckpointStore::Stats PrefixCheckpointStore::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.resumed_states = resumed_states_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace dagperf
