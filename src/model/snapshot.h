#ifndef DAGPERF_MODEL_SNAPSHOT_H_
#define DAGPERF_MODEL_SNAPSHOT_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "model/incremental.h"
#include "model/task_time_cache.h"

namespace dagperf {

/// Warm-state snapshot: persists a TaskTimeMemo + PrefixCheckpointStore to
/// disk so a restarted serving shard does not greet its clients with a
/// cold-cache latency cliff (`dagperf serve --snapshot-dir`).
///
/// Format (binary, little-endian as written by the host — snapshots are a
/// same-host restart aid, not a portable interchange format):
///
///   magic            "DPWARM01"            8 bytes
///   format_version   u32                   bumped on any layout change
///   resource_count   u32                   kNumResources at save time
///   payload_size     u64                   bytes following the checksum
///   checksum         u64                   FNV-1a64 over the payload
///   payload          memo entries, then checkpoints, every numeric field
///                    written bit-exact (raw double/int bytes) so a restored
///                    store answers bit-identically to the saved one
///
/// Rejection is always clean: a truncated file, flipped bit, wrong magic, or
/// a snapshot from a binary with a different format/resource layout returns
/// a non-Ok Status with a diagnostic naming what failed, and the target
/// stores are left exactly as they were — the caller simply cold-starts.
/// Loading never trusts a length field beyond the actual payload: every
/// read is bounds-checked before the checksum has a chance to lie.

struct SnapshotStats {
  std::size_t memo_entries = 0;
  std::size_t checkpoints = 0;
  /// Serialized payload size on disk.
  std::size_t bytes = 0;
};

/// Serialises `memo` + `checkpoints` to `path` (written via a temp file +
/// rename, so a crash mid-save never leaves a torn snapshot under the real
/// name). Concurrent memo/store writers are safe — Export takes their locks
/// — but the snapshot is a point-in-time cut, not a fence.
Status SaveWarmSnapshot(const std::string& path, const TaskTimeMemo& memo,
                        const PrefixCheckpointStore& checkpoints,
                        SnapshotStats* stats = nullptr);

/// Parses and validates the snapshot at `path`, then imports its entries
/// into `memo` and `checkpoints` (first-wins merge on both). On any
/// validation failure the targets are untouched and the Status says why:
/// kNotFound (no such file), kInvalidArgument (corrupt: bad magic, size
/// mismatch, checksum mismatch, truncated field), kFailedPrecondition
/// (stale: a different format or resource layout).
Status LoadWarmSnapshot(const std::string& path, TaskTimeMemo* memo,
                        PrefixCheckpointStore* checkpoints,
                        SnapshotStats* stats = nullptr);

/// LoadWarmSnapshot restricted to one cluster scope: only entries whose key
/// starts with `scope + '#'` — the prefix both TaskTimeMemo::Fingerprint
/// and the checkpoint store's global fingerprint put first — are imported;
/// everything else in the snapshot is skipped (and not counted in `stats`).
/// Validation is unchanged: a corrupt or stale snapshot is rejected whole,
/// targets untouched, even if the surviving scope slice was intact. This is
/// the router's warm-handoff path: a shard importing a peer's snapshot
/// takes only the key range the ring assigns it.
Status LoadWarmSnapshotForScope(const std::string& path,
                                const std::string& scope, TaskTimeMemo* memo,
                                PrefixCheckpointStore* checkpoints,
                                SnapshotStats* stats = nullptr);

}  // namespace dagperf

#endif  // DAGPERF_MODEL_SNAPSHOT_H_
