#include "model/state_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "cluster/validate.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/stats.h"
#include "dag/validate.h"
#include "model/incremental.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dagperf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

/// Estimator metric handles (obs/metrics.h); recording is gated on the
/// process-wide metrics flag, so holding them costs nothing when disabled.
struct EstimatorMetrics {
  obs::Counter& estimates;
  obs::Counter& states;
  obs::Histogram& task_time_query_us;
  obs::Gauge& states_per_sec;
  obs::Counter& deadline_exceeded;
  obs::Counter& cancelled;

  EstimatorMetrics()
      : estimates(obs::MetricsRegistry::Default().GetCounter(
            "estimator.estimates")),
        states(obs::MetricsRegistry::Default().GetCounter("estimator.states")),
        task_time_query_us(obs::MetricsRegistry::Default().GetHistogram(
            "estimator.task_time_query_us")),
        states_per_sec(obs::MetricsRegistry::Default().GetGauge(
            "estimator.states_per_sec")),
        deadline_exceeded(obs::MetricsRegistry::Default().GetCounter(
            "estimator.deadline_exceeded")),
        cancelled(obs::MetricsRegistry::Default().GetCounter(
            "estimator.cancelled")) {}
};

EstimatorMetrics& Metrics() {
  static EstimatorMetrics* metrics = new EstimatorMetrics();
  return *metrics;
}

/// Expected duration of a wave. Only the stage's FINAL wave pays the
/// straggler tail (expected max of the draws): mid-stage stragglers overlap
/// the next wave, so slots stay busy and the stage drains at the mean task
/// rate — the classic makespan approximation
///   S ~= (N - Delta)/Delta * mu + E[max of Delta].
double WaveTime(const NormalParams& dist, double wave_tasks, bool skew_aware,
                bool is_last_wave) {
  if (!skew_aware || !is_last_wave || dist.stddev <= 0 || wave_tasks <= 1.0) {
    return dist.mean;
  }
  const int n = static_cast<int>(std::lround(std::ceil(wave_tasks)));
  return ExpectedMaxOfNormal(dist.mean, dist.stddev, n);
}

/// Advances a stage (not_started pool + wave list) through its wave schedule
/// at parallelism `delta` for at most `dt_limit` seconds (infinity = run to
/// completion). Returns the simulated time consumed. Mutates its inputs.
double StepStage(double& not_started, std::vector<WaveState>& waves, int delta,
                 const NormalParams& dist, const EstimatorOptions& options,
                 double dt_limit) {
  if (delta <= 0) return dt_limit;
  const bool skew = options.skew_aware;

  if (options.wave_model == EstimatorOptions::WaveModel::kFluid) {
    // Continuous pool at the mean rate, plus the terminal tail once.
    const double rate = delta / std::max(dist.mean, 1e-12);
    double tail = 0.0;
    if (skew) {
      tail = WaveTime(dist, std::min<double>(delta, not_started), skew, true) -
             dist.mean;
    }
    const double to_finish = not_started / rate + tail;
    if (to_finish <= dt_limit + kEps) {
      not_started = 0.0;
      return to_finish;
    }
    not_started = std::max(0.0, not_started - dt_limit * rate);
    return dt_limit;
  }

  // Discrete waves. A parallelism drop (competitor arrival + preemption)
  // re-queues the newest waves' excess tasks.
  double active = 0.0;
  for (const auto& w : waves) active += w.size;
  while (active > delta + kEps && !waves.empty()) {
    WaveState& newest = waves.back();
    const double excess = std::min(newest.size, active - delta);
    newest.size -= excess;
    not_started += excess;
    active -= excess;
    if (newest.size <= kEps) waves.pop_back();
  }

  double elapsed = 0.0;
  int guard = 0;
  while (elapsed < dt_limit - kEps && (not_started > kEps || !waves.empty())) {
    DAGPERF_CHECK_MSG(++guard < 1000000, "wave stepping did not terminate");
    // Fill idle slots with new waves.
    active = 0.0;
    for (const auto& w : waves) active += w.size;
    if (not_started > kEps && active < delta - kEps) {
      WaveState wave;
      wave.size = std::min(not_started, delta - active);
      not_started -= wave.size;
      wave.is_last = not_started <= kEps;
      waves.push_back(wave);
      continue;
    }
    // Next wave completion.
    double next = kInf;
    for (const auto& w : waves) {
      const double t = WaveTime(dist, w.size, skew, w.is_last);
      next = std::min(next, t * (1.0 - w.frac));
    }
    if (next == kInf) break;  // No waves and nothing startable.
    const double step = std::min(next, dt_limit - elapsed);
    for (auto& w : waves) {
      const double t = WaveTime(dist, w.size, skew, w.is_last);
      w.frac += step / std::max(t, 1e-12);
    }
    elapsed += step;
    waves.erase(
        std::remove_if(waves.begin(), waves.end(),
                       [](const WaveState& w) { return w.frac >= 1.0 - kEps; }),
        waves.end());
  }
  return elapsed;
}

/// Per-estimate working state in SoA layout: one slot per (job, stage kind)
/// pair — slot 2*id is the map stage, 2*id+1 the reduce — with the scalar
/// arrays carved from a bump arena and every scratch vector reused across
/// states AND estimates. After a priming estimate at a given workflow size,
/// a warm estimate allocates nothing (see tests/alloc_regression_test.cc).
struct Workspace {
  Arena arena;
  int n = 0;      // Jobs.
  int slots = 0;  // 2 * n.

  // Per-slot arrays (arena-backed; profile == nullptr for absent reduces).
  const StageProfile** profile = nullptr;
  unsigned char* ready = nullptr;
  unsigned char* complete = nullptr;
  double* not_started = nullptr;
  double* start_time = nullptr;
  double* end_time = nullptr;
  // Per-job arrays.
  int* unfinished_parents = nullptr;
  unsigned char* done = nullptr;
  // Per-slot wave lists. std::vector (not arena) so capacity survives Reset;
  // grown monotonically, never shrunk.
  std::vector<std::vector<WaveState>> waves;

  // Per-state scratch, capacity reused.
  std::vector<int> running;  // Slot ids of this state's running stages.
  std::vector<StageDemand> demands;
  std::vector<int> delta;
  std::vector<size_t> context_slot;
  std::vector<NormalParams> dists;
  std::vector<std::optional<TaskAttribution>> attributions;
  EstimationContext context;
  std::vector<WaveState> rest_waves;  // RestTime's non-mutating copy.

  // Checkpoint scratch. fp_global points at the global fingerprint in
  // effect for the current estimate — either the caller's precomputed one
  // (EstimatorOptions::checkpoint_global_fp) or the ws-owned buffer below;
  // fp_jobs always points at the flow's precomputed job fingerprints.
  std::string global_fp;
  const std::string* fp_global = nullptr;
  const std::vector<std::string>* fp_jobs = nullptr;
  std::string key;
  std::vector<JobId> done_ids;

  void Prepare(const DagWorkflow& flow) {
    n = flow.num_jobs();
    slots = 2 * n;
    arena.Reset();
    profile = arena.AllocateArray<const StageProfile*>(slots);
    ready = arena.AllocateArray<unsigned char>(slots);
    complete = arena.AllocateArray<unsigned char>(slots);
    not_started = arena.AllocateArray<double>(slots);
    start_time = arena.AllocateArray<double>(slots);
    end_time = arena.AllocateArray<double>(slots);
    unfinished_parents = arena.AllocateArray<int>(n);
    done = arena.AllocateArray<unsigned char>(n);
    if (static_cast<int>(waves.size()) < slots) waves.resize(slots);
    for (int s = 0; s < slots; ++s) waves[s].clear();
    for (JobId id = 0; id < n; ++id) {
      const JobProfile& job = flow.job(id);
      unfinished_parents[id] = static_cast<int>(flow.parents(id).size());
      const int ms = 2 * id;
      profile[ms] = &job.map;
      not_started[ms] = job.map.num_tasks;
      start_time[ms] = -1.0;
      if (job.has_reduce()) {
        profile[ms + 1] = &*job.reduce;
        not_started[ms + 1] = job.reduce->num_tasks;
        start_time[ms + 1] = -1.0;
      }
      // A job with no parents is a source: its map starts ready.
      if (flow.parents(id).empty()) ready[ms] = 1;
    }
  }

  double TasksOutstanding(int slot) const {
    double total = not_started[slot];
    for (const WaveState& w : waves[slot]) total += w.size;
    return total;
  }

  /// Remaining time of a slot at parallelism `delta` (does not mutate the
  /// slot: steps a scratch copy of its wave list).
  double RestTime(int slot, int delta, const NormalParams& dist,
                  const EstimatorOptions& options) {
    if (TasksOutstanding(slot) <= kEps) return 0.0;
    if (delta <= 0) return kInf;
    double ns = not_started[slot];
    rest_waves = waves[slot];
    return StepStage(ns, rest_waves, delta, dist, options, kInf);
  }
};

/// One workspace per thread, reused across estimates — the zero-allocation
/// steady state. The in_use flag guards against a TaskTimeSource that
/// re-enters Estimate() on the same thread (none in the library do, but a
/// user source could): the re-entrant call falls back to a heap workspace.
struct WorkspaceLease {
  static thread_local Workspace workspace;
  static thread_local bool in_use;

  Workspace* ws;
  std::unique_ptr<Workspace> fallback;

  WorkspaceLease() {
    if (!in_use) {
      in_use = true;
      ws = &workspace;
    } else {
      fallback = std::make_unique<Workspace>();
      ws = fallback.get();
    }
  }
  ~WorkspaceLease() {
    if (fallback == nullptr) in_use = false;
  }
};

thread_local Workspace WorkspaceLease::workspace;
thread_local bool WorkspaceLease::in_use = false;

/// Restores the estimator's dynamic state and partial output from `cp`.
/// The done/activated bookkeeping is recomputed against the resuming flow's
/// own structure, which is what makes resume valid across flows that share
/// the prefix but differ elsewhere (even in job count).
void RestoreCheckpoint(const EstimatorCheckpoint& cp, const DagWorkflow& flow,
                       Workspace& ws, DagEstimate& estimate, double* now,
                       int* state_index, int* unfinished) {
  *now = cp.now;
  *state_index = cp.next_state_index;
  for (size_t a = 0; a < cp.jobs.size(); ++a) {
    const JobId id = cp.jobs[a];
    for (int k = 0; k < 2; ++k) {
      const StageDynState& sd = cp.stage_state[2 * a + k];
      const int slot = 2 * id + k;
      ws.ready[slot] = sd.ready;
      ws.complete[slot] = sd.complete;
      ws.not_started[slot] = sd.not_started;
      ws.start_time[slot] = sd.start_time;
      ws.end_time[slot] = sd.end_time;
      ws.waves[slot].assign(cp.waves.begin() + sd.wave_begin,
                            cp.waves.begin() + sd.wave_begin + sd.wave_count);
    }
  }
  for (JobId id : cp.done) ws.done[id] = 1;
  *unfinished = ws.n - static_cast<int>(cp.done.size());
  // Parent counts against the restored done set — exactly the value the
  // decrements of a full replay would have left.
  for (JobId id = 0; id < ws.n; ++id) {
    int u = 0;
    for (JobId parent : flow.parents(id)) u += ws.done[parent] ? 0 : 1;
    ws.unfinished_parents[id] = u;
  }
  // The partial output: memcpy-speed assigns of trivially-copyable records.
  estimate.states = cp.states;
  estimate.running_pool = cp.running_pool;
  estimate.stages = cp.stages;
}

/// Captures the current state into the store, unless a checkpoint for this
/// boundary already exists (the common case once one candidate has paved the
/// prefix — Contains() keeps the hot path from paying the capture copies).
void MaybeStoreCheckpoint(PrefixCheckpointStore& store, const DagWorkflow& flow,
                          Workspace& ws, const DagEstimate& estimate,
                          double now, int state_index) {
  ws.done_ids.clear();
  for (JobId id = 0; id < ws.n; ++id) {
    if (ws.done[id]) ws.done_ids.push_back(id);
  }
  if (!PrefixCheckpointStore::BuildKey(*ws.fp_global, *ws.fp_jobs, flow,
                                       ws.done_ids.data(), ws.done_ids.size(),
                                       &ws.key)) {
    return;
  }
  if (store.Contains(ws.key)) return;

  auto cp = std::make_shared<EstimatorCheckpoint>();
  cp->key = ws.key;
  cp->done = ws.done_ids;
  cp->now = now;
  cp->next_state_index = state_index;
  for (JobId id = 0; id < ws.n; ++id) {
    // unfinished_parents == 0 <=> every parent done <=> activated.
    if (ws.unfinished_parents[id] != 0) continue;
    cp->jobs.push_back(id);
    for (int k = 0; k < 2; ++k) {
      const int slot = 2 * id + k;
      StageDynState sd;
      sd.ready = ws.ready[slot];
      sd.complete = ws.complete[slot];
      sd.not_started = ws.not_started[slot];
      sd.start_time = ws.start_time[slot];
      sd.end_time = ws.end_time[slot];
      sd.wave_begin = static_cast<int>(cp->waves.size());
      sd.wave_count = static_cast<int>(ws.waves[slot].size());
      cp->waves.insert(cp->waves.end(), ws.waves[slot].begin(),
                       ws.waves[slot].end());
      cp->stage_state.push_back(sd);
    }
  }
  cp->states = estimate.states;
  cp->running_pool = estimate.running_pool;
  cp->stages = estimate.stages;
  store.Insert(std::move(cp));
}

}  // namespace

Result<StageSpanEstimate> DagEstimate::FindStage(JobId job, StageKind kind) const {
  for (const auto& s : stages) {
    if (s.job == job && s.kind == kind) return s;
  }
  return Status::NotFound("stage not found in estimate");
}

StateBasedEstimator::StateBasedEstimator(const ClusterSpec& cluster,
                                         const SchedulerConfig& scheduler,
                                         EstimatorOptions options)
    : cluster_(cluster), scheduler_(scheduler), options_(std::move(options)) {
  init_ = ValidateClusterSpec(cluster_).ToStatus("cluster");
  if (init_.ok()) allocator_.emplace(cluster_, scheduler_);
}

Status StateBasedEstimator::EstimateInto(const DagWorkflow& flow,
                                         const TaskTimeSource& source,
                                         DagEstimate* out) const {
  if (!init_.ok()) return init_;

  WorkspaceLease lease;
  Workspace& ws = *lease.ws;

  // Prefix-resume: fingerprint the flow and look for the deepest checkpoint
  // whose structural prefix matches. This runs *before* the validation
  // firewall on purpose: fingerprinting only serializes the flow's own specs
  // (safe on any constructed DagWorkflow), and a complete-result hit proves a
  // byte-identical (flow, cluster, scheduler, options) tuple already passed
  // validation when its entry was stored — so the hot re-estimation path can
  // return the stored result without re-validating or preparing a workspace.
  PrefixCheckpointStore* const store = options_.checkpoints;
  std::shared_ptr<const EstimatorCheckpoint> resume;
  if (store != nullptr) {
    // Job fingerprints are precomputed on the immutable flow; the global
    // fingerprint (scope, cluster, scheduler, options) is either supplied by
    // the caller (the sweep computes it once per candidate for ordering) or
    // serialised into workspace scratch here.
    ws.fp_jobs = &flow.job_fingerprints();
    if (options_.checkpoint_global_fp != nullptr) {
      ws.fp_global = options_.checkpoint_global_fp;
    } else {
      ws.global_fp.clear();
      PrefixCheckpointStore::AppendGlobalFingerprint(
          options_.checkpoint_scope, cluster_, scheduler_, options_,
          &ws.global_fp);
      ws.fp_global = &ws.global_fp;
    }
    resume = store->Lookup(flow, *ws.fp_global, *ws.fp_jobs);
    if (resume != nullptr &&
        static_cast<int>(resume->done.size()) == flow.num_jobs()) {
      // Complete-result checkpoint: every job was done at the boundary, so
      // the stored partial output *is* the full estimate and `now` is the
      // makespan. Copying the SoA records is the whole cost.
      store->RecordResume(static_cast<int>(resume->states.size()));
      out->resumed_states = static_cast<int>(resume->states.size());
      out->states = resume->states;
      out->running_pool = resume->running_pool;
      out->stages = resume->stages;
      out->makespan = Duration(resume->now);
      Metrics().estimates.Add(1);
      return Status::Ok();
    }
  }

  // The validation firewall: reject malformed flows (non-finite demands,
  // out-of-range counts) with a full diagnostic before touching the state
  // machine, so nothing downstream needs to defend against them.
  if (Status valid = ValidateWorkflow(flow).ToStatus(flow.name()); !valid.ok()) {
    return valid;
  }
  const bool metrics_on = obs::MetricsEnabled();
  const double wall_start = metrics_on ? obs::MonotonicUs() : 0.0;
  obs::TraceRecorder& tracer = obs::TraceRecorder::Default();
  std::optional<obs::ScopedSpan> estimate_span;
  if (tracer.enabled()) {
    estimate_span.emplace(tracer, "estimate " + flow.name(), "estimator");
  }

  ws.Prepare(flow);
  const int n = ws.n;
  int unfinished = n;

  DagEstimate& estimate = *out;
  estimate.makespan = Duration(0);
  estimate.resumed_states = 0;
  estimate.states.clear();
  estimate.running_pool.clear();
  estimate.stages.clear();

  double now = 0.0;
  int state_index = 1;

  // Partial prefix-resume: continue from the deepest matching checkpoint
  // found above instead of replaying the shared prefix.
  if (resume != nullptr) {
    RestoreCheckpoint(*resume, flow, ws, estimate, &now, &state_index,
                      &unfinished);
    store->RecordResume(static_cast<int>(resume->states.size()));
    estimate.resumed_states = static_cast<int>(resume->states.size());
  }

  while (unfinished > 0) {
    if (state_index > options_.max_states) {
      return Status::Internal(flow.name() + ": state limit exceeded");
    }
    // Cooperative budget poll at the state boundary — the estimator's
    // natural step granularity. Inert token + never-deadline reduce this to
    // a pointer test and a constant compare.
    if (options_.budget.exhausted()) {
      const Status budget = options_.budget.Check("estimate " + flow.name());
      if (budget.code() == ErrorCode::kDeadlineExceeded) {
        Metrics().deadline_exceeded.Add(1);
      } else {
        Metrics().cancelled.Add(1);
      }
      return budget;
    }
    std::optional<obs::ScopedSpan> state_span;
    if (tracer.enabled()) {
      state_span.emplace(tracer, "state " + std::to_string(state_index),
                         "estimator");
    }

    // (1) The set of running stages in this state (slot order == the
    // original job-id-then-kind order).
    ws.running.clear();
    for (int slot = 0; slot < ws.slots; ++slot) {
      if (ws.profile[slot] == nullptr) continue;
      if (ws.ready[slot] && !ws.complete[slot] &&
          ws.TasksOutstanding(slot) > kEps) {
        ws.running.push_back(slot);
      }
    }
    const size_t num_running = ws.running.size();
    if (num_running == 0) {
      return Status::Internal(flow.name() + ": no runnable stage but jobs remain");
    }

    // (2) Degree of parallelism per running stage (DRF).
    ws.demands.clear();
    for (const int slot : ws.running) {
      StageDemand d;
      d.slot = ws.profile[slot]->slot;
      d.remaining_tasks =
          static_cast<int>(std::ceil(ws.TasksOutstanding(slot) - kEps));
      ws.demands.push_back(d);
    }
    allocator_->Allocate(ws.demands, &ws.delta);

    // (3) Task times under this state's contention (BOE or profile).
    ws.context.running.clear();
    ws.context_slot.assign(num_running, SIZE_MAX);
    for (size_t i = 0; i < num_running; ++i) {
      if (ws.delta[i] <= 0) continue;
      ParallelStage ps;
      ps.stage = ws.profile[ws.running[i]];
      ps.tasks_per_node = static_cast<double>(ws.delta[i]) / cluster_.num_nodes;
      ws.context_slot[i] = ws.context.running.size();
      ws.context.running.push_back(ps);
    }
    ws.dists.assign(num_running, NormalParams{});
    if (options_.attribute_bottlenecks) {
      ws.attributions.assign(num_running, std::nullopt);
    } else {
      ws.attributions.clear();
    }
    for (size_t i = 0; i < num_running; ++i) {
      if (ws.context_slot[i] == SIZE_MAX) continue;
      ws.context.query = ws.context_slot[i];
      const double query_start = metrics_on ? obs::MonotonicUs() : 0.0;
      ws.dists[i] = source.TaskTimeDist(ws.context);
      if (!options_.skew_aware) {
        // Point estimate drives the wave model when skew-unaware.
        ws.dists[i].mean = source.TaskTime(ws.context).seconds();
        ws.dists[i].stddev = 0.0;
      }
      if (metrics_on) {
        Metrics().task_time_query_us.Record(obs::MonotonicUs() - query_start);
      }
      if (options_.attribute_bottlenecks) {
        ws.attributions[i] = source.Attribution(ws.context);
      }
      if (options_.node_speed_cv > 0) {
        // A task's duration scales with 1/speed of its host. For log-normal
        // speed with mean 1 and coefficient of variation cv:
        //   E[1/speed] = 1 + cv^2 and CV[1/speed] = cv,
        // so the mean inflates and node variance joins the tail dispersion.
        const double cv = options_.node_speed_cv;
        const double slowdown = 1.0 + cv * cv;
        const double node_sd = ws.dists[i].mean * slowdown * cv;
        ws.dists[i].mean *= slowdown;
        ws.dists[i].stddev = std::sqrt(
            ws.dists[i].stddev * ws.dists[i].stddev * slowdown * slowdown +
            node_sd * node_sd);
      }
      // A NaN task time would silently corrupt the arg-min below (NaN fails
      // every comparison); a negative one would move time backwards. Either
      // means the task-time source misbehaved on inputs the firewall let
      // through — fail loudly instead of estimating garbage.
      if (std::isnan(ws.dists[i].mean) || ws.dists[i].mean < 0) {
        return Status::InvalidArgument(
            flow.name() + ": task-time source returned bad task time " +
            std::to_string(ws.dists[i].mean) + " for stage " +
            ws.profile[ws.running[i]]->name);
      }
      // Stage start is when it first receives containers.
      if (ws.start_time[ws.running[i]] < 0) ws.start_time[ws.running[i]] = now;
    }

    // (4) Earliest stage completion. The arg-min stage ends the state and
    // is therefore the state's critical-path segment.
    double dt = kInf;
    int critical = -1;
    for (size_t i = 0; i < num_running; ++i) {
      const double rest =
          ws.RestTime(ws.running[i], ws.delta[i], ws.dists[i], options_);
      if (rest < dt) {
        dt = rest;
        critical = static_cast<int>(i);
      }
    }
    if (dt == kInf) {
      return Status::Internal(flow.name() + ": no stage can make progress");
    }
    dt = std::max(dt, 0.0);

    // Record the state into the flat SoA output.
    StateEstimate state;
    state.index = state_index++;
    state.start = now;
    state.duration = dt;
    state.critical = critical;
    state.running_begin = static_cast<int>(estimate.running_pool.size());
    state.running_count = static_cast<int>(num_running);
    for (size_t i = 0; i < num_running; ++i) {
      RunningStageEstimate rse;
      rse.job = ws.running[i] >> 1;
      rse.kind = (ws.running[i] & 1) ? StageKind::kReduce : StageKind::kMap;
      rse.parallelism = ws.delta[i];
      rse.task_time_s = ws.dists[i].mean;
      if (options_.attribute_bottlenecks && ws.attributions[i].has_value()) {
        rse.has_attribution = true;
        rse.bottleneck = ws.attributions[i]->bottleneck;
        for (Resource r : kAllResources) {
          rse.utilization[r] = ws.attributions[i]->UtilizationShare(r);
        }
      }
      estimate.running_pool.push_back(rse);
    }
    estimate.states.push_back(state);
    Metrics().states.Add(1);

    // (5) Advance everyone and transition.
    now += dt;
    for (size_t i = 0; i < num_running; ++i) {
      const int slot = ws.running[i];
      StepStage(ws.not_started[slot], ws.waves[slot], ws.delta[i], ws.dists[i],
                options_, dt);
    }
    bool job_completed = false;
    for (size_t i = 0; i < num_running; ++i) {
      const int slot = ws.running[i];
      if (ws.complete[slot] || ws.TasksOutstanding(slot) > kEps) continue;
      ws.complete[slot] = 1;
      ws.end_time[slot] = now;
      const JobId job = slot >> 1;
      const StageKind kind = (slot & 1) ? StageKind::kReduce : StageKind::kMap;
      estimate.stages.push_back({job, kind, ws.start_time[slot], ws.end_time[slot]});
      if (kind == StageKind::kMap && ws.profile[2 * job + 1] != nullptr) {
        ws.ready[2 * job + 1] = 1;
      } else {
        ws.done[job] = 1;
        job_completed = true;
        --unfinished;
        for (JobId child : flow.children(job)) {
          if (--ws.unfinished_parents[child] == 0) {
            ws.ready[2 * child] = 1;
          }
        }
      }
    }
    // A job-completion boundary: checkpoint for later candidates sharing
    // this prefix (skipped cheaply when the boundary is already stored).
    if (store != nullptr && job_completed) {
      MaybeStoreCheckpoint(*store, flow, ws, estimate, now, state_index);
    }
  }

  estimate.makespan = Duration(now);
  Metrics().estimates.Add(1);
  if (metrics_on) {
    const double elapsed_s = (obs::MonotonicUs() - wall_start) * 1e-6;
    if (elapsed_s > 0) {
      Metrics().states_per_sec.Set(
          static_cast<double>(estimate.states.size()) / elapsed_s);
    }
  }
  return Status::Ok();
}

Result<DagEstimate> StateBasedEstimator::Estimate(const DagWorkflow& flow,
                                                  const TaskTimeSource& source) const {
  DagEstimate estimate;
  if (Status status = EstimateInto(flow, source, &estimate); !status.ok()) {
    return status;
  }
  return estimate;
}

Status StateBasedEstimator::Estimate(const DagWorkflow& flow,
                                     const TaskTimeSource& source,
                                     DagEstimate* out) const {
  Result<DagEstimate> estimate = Estimate(flow, source);
  if (!estimate.ok()) return estimate.status();
  *out = std::move(estimate).value();
  return Status::Ok();
}

}  // namespace dagperf
