#include "model/state_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "cluster/validate.h"
#include "common/check.h"
#include "common/stats.h"
#include "dag/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dagperf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

/// Estimator metric handles (obs/metrics.h); recording is gated on the
/// process-wide metrics flag, so holding them costs nothing when disabled.
struct EstimatorMetrics {
  obs::Counter& estimates;
  obs::Counter& states;
  obs::Histogram& task_time_query_us;
  obs::Gauge& states_per_sec;
  obs::Counter& deadline_exceeded;
  obs::Counter& cancelled;

  EstimatorMetrics()
      : estimates(obs::MetricsRegistry::Default().GetCounter(
            "estimator.estimates")),
        states(obs::MetricsRegistry::Default().GetCounter("estimator.states")),
        task_time_query_us(obs::MetricsRegistry::Default().GetHistogram(
            "estimator.task_time_query_us")),
        states_per_sec(obs::MetricsRegistry::Default().GetGauge(
            "estimator.states_per_sec")),
        deadline_exceeded(obs::MetricsRegistry::Default().GetCounter(
            "estimator.deadline_exceeded")),
        cancelled(obs::MetricsRegistry::Default().GetCounter(
            "estimator.cancelled")) {}
};

EstimatorMetrics& Metrics() {
  static EstimatorMetrics* metrics = new EstimatorMetrics();
  return *metrics;
}

/// One in-flight wave of tasks: `size` tasks that started together and have
/// completed `frac` of their duration.
struct Wave {
  double size = 0.0;
  double frac = 0.0;
  /// Whether this wave contains the stage's final tasks (it pays the
  /// straggler tail under Alg2).
  bool is_last = false;
};

/// Per-stage progress bookkeeping inside the estimator's state machine.
struct StageEst {
  const StageProfile* profile = nullptr;
  bool ready = false;
  bool complete = false;
  /// Tasks not yet granted a container.
  double not_started = 0.0;
  /// Concurrently running waves (discrete model only; empty under kFluid,
  /// which treats progress as a continuous pool in `not_started`).
  std::vector<Wave> waves;
  double start_time = -1.0;
  double end_time = 0.0;

  double TasksOutstanding() const {
    double total = not_started;
    for (const auto& w : waves) total += w.size;
    return total;
  }
};

struct JobEst {
  int unfinished_parents = 0;
  StageEst map;
  StageEst reduce;
  bool has_reduce = false;
  bool done = false;
};

/// Expected duration of a wave. Only the stage's FINAL wave pays the
/// straggler tail (expected max of the draws): mid-stage stragglers overlap
/// the next wave, so slots stay busy and the stage drains at the mean task
/// rate — the classic makespan approximation
///   S ~= (N - Delta)/Delta * mu + E[max of Delta].
double WaveTime(const NormalParams& dist, double wave_tasks, bool skew_aware,
                bool is_last_wave) {
  if (!skew_aware || !is_last_wave || dist.stddev <= 0 || wave_tasks <= 1.0) {
    return dist.mean;
  }
  const int n = static_cast<int>(std::lround(std::ceil(wave_tasks)));
  return ExpectedMaxOfNormal(dist.mean, dist.stddev, n);
}

/// Advances the stage through its wave schedule at parallelism `delta` for
/// at most `dt_limit` seconds (infinity = run to completion). Returns the
/// simulated time consumed. Mutates `st`.
double StepStage(StageEst& st, int delta, const NormalParams& dist,
                 const EstimatorOptions& options, double dt_limit) {
  if (delta <= 0) return dt_limit;
  const bool skew = options.skew_aware;

  if (options.wave_model == EstimatorOptions::WaveModel::kFluid) {
    // Continuous pool at the mean rate, plus the terminal tail once.
    const double rate = delta / std::max(dist.mean, 1e-12);
    double tail = 0.0;
    if (skew) {
      tail = WaveTime(dist, std::min<double>(delta, st.not_started), skew, true) -
             dist.mean;
    }
    const double to_finish = st.not_started / rate + tail;
    if (to_finish <= dt_limit + kEps) {
      st.not_started = 0.0;
      return to_finish;
    }
    st.not_started = std::max(0.0, st.not_started - dt_limit * rate);
    return dt_limit;
  }

  // Discrete waves. A parallelism drop (competitor arrival + preemption)
  // re-queues the newest waves' excess tasks.
  double active = 0.0;
  for (const auto& w : st.waves) active += w.size;
  while (active > delta + kEps && !st.waves.empty()) {
    Wave& newest = st.waves.back();
    const double excess = std::min(newest.size, active - delta);
    newest.size -= excess;
    st.not_started += excess;
    active -= excess;
    if (newest.size <= kEps) st.waves.pop_back();
  }

  double elapsed = 0.0;
  int guard = 0;
  while (elapsed < dt_limit - kEps &&
         (st.not_started > kEps || !st.waves.empty())) {
    DAGPERF_CHECK_MSG(++guard < 1000000, "wave stepping did not terminate");
    // Fill idle slots with new waves.
    active = 0.0;
    for (const auto& w : st.waves) active += w.size;
    if (st.not_started > kEps && active < delta - kEps) {
      Wave wave;
      wave.size = std::min(st.not_started, delta - active);
      st.not_started -= wave.size;
      wave.is_last = st.not_started <= kEps;
      st.waves.push_back(wave);
      continue;
    }
    // Next wave completion.
    double next = kInf;
    for (const auto& w : st.waves) {
      const double t = WaveTime(dist, w.size, skew, w.is_last);
      next = std::min(next, t * (1.0 - w.frac));
    }
    if (next == kInf) break;  // No waves and nothing startable.
    const double step = std::min(next, dt_limit - elapsed);
    for (auto& w : st.waves) {
      const double t = WaveTime(dist, w.size, skew, w.is_last);
      w.frac += step / std::max(t, 1e-12);
    }
    elapsed += step;
    st.waves.erase(std::remove_if(st.waves.begin(), st.waves.end(),
                                  [](const Wave& w) { return w.frac >= 1.0 - kEps; }),
                   st.waves.end());
  }
  return elapsed;
}

/// Remaining time of a stage at parallelism `delta` (does not mutate).
double RestTime(const StageEst& st, int delta, const NormalParams& dist,
                const EstimatorOptions& options) {
  if (st.TasksOutstanding() <= kEps) return 0.0;
  if (delta <= 0) return kInf;
  StageEst copy = st;
  return StepStage(copy, delta, dist, options, kInf);
}

}  // namespace

Result<StageSpanEstimate> DagEstimate::FindStage(JobId job, StageKind kind) const {
  for (const auto& s : stages) {
    if (s.job == job && s.kind == kind) return s;
  }
  return Status::NotFound("stage not found in estimate");
}

StateBasedEstimator::StateBasedEstimator(const ClusterSpec& cluster,
                                         const SchedulerConfig& scheduler,
                                         EstimatorOptions options)
    : cluster_(cluster), options_(options) {
  init_ = ValidateClusterSpec(cluster_).ToStatus("cluster");
  if (init_.ok()) allocator_.emplace(cluster_, scheduler);
}

Result<DagEstimate> StateBasedEstimator::Estimate(const DagWorkflow& flow,
                                                  const TaskTimeSource& source) const {
  if (!init_.ok()) return init_;
  // The validation firewall: reject malformed flows (non-finite demands,
  // out-of-range counts) with a full diagnostic before touching the state
  // machine, so nothing downstream needs to defend against them.
  if (Status valid = ValidateWorkflow(flow).ToStatus(flow.name()); !valid.ok()) {
    return valid;
  }
  const bool metrics_on = obs::MetricsEnabled();
  const double wall_start = metrics_on ? obs::MonotonicUs() : 0.0;
  obs::TraceRecorder& tracer = obs::TraceRecorder::Default();
  std::optional<obs::ScopedSpan> estimate_span;
  if (tracer.enabled()) {
    estimate_span.emplace(tracer, "estimate " + flow.name(), "estimator");
  }

  const int n = flow.num_jobs();
  std::vector<JobEst> jobs(n);
  int unfinished = n;
  for (JobId id = 0; id < n; ++id) {
    const JobProfile& profile = flow.job(id);
    jobs[id].unfinished_parents = static_cast<int>(flow.parents(id).size());
    jobs[id].has_reduce = profile.has_reduce();
    jobs[id].map.profile = &profile.map;
    jobs[id].map.not_started = profile.map.num_tasks;
    if (profile.has_reduce()) {
      jobs[id].reduce.profile = &*profile.reduce;
      jobs[id].reduce.not_started = profile.reduce->num_tasks;
    }
  }
  for (JobId id : flow.Sources()) jobs[id].map.ready = true;

  DagEstimate estimate;
  double now = 0.0;
  int state_index = 1;

  const auto stage_of = [&](JobId id, StageKind kind) -> StageEst& {
    return kind == StageKind::kMap ? jobs[id].map : jobs[id].reduce;
  };

  while (unfinished > 0) {
    if (state_index > options_.max_states) {
      return Status::Internal(flow.name() + ": state limit exceeded");
    }
    // Cooperative budget poll at the state boundary — the estimator's
    // natural step granularity. Inert token + never-deadline reduce this to
    // a pointer test and a constant compare.
    if (options_.budget.exhausted()) {
      const Status budget = options_.budget.Check("estimate " + flow.name());
      if (budget.code() == ErrorCode::kDeadlineExceeded) {
        Metrics().deadline_exceeded.Add(1);
      } else {
        Metrics().cancelled.Add(1);
      }
      return budget;
    }
    std::optional<obs::ScopedSpan> state_span;
    if (tracer.enabled()) {
      state_span.emplace(tracer, "state " + std::to_string(state_index),
                         "estimator");
    }

    // (1) The set of running stages in this state.
    struct Running {
      JobId job;
      StageKind kind;
    };
    std::vector<Running> running;
    for (JobId id = 0; id < n; ++id) {
      for (StageKind kind : {StageKind::kMap, StageKind::kReduce}) {
        if (kind == StageKind::kReduce && !jobs[id].has_reduce) continue;
        StageEst& st = stage_of(id, kind);
        if (st.ready && !st.complete && st.TasksOutstanding() > kEps) {
          running.push_back({id, kind});
        }
      }
    }
    if (running.empty()) {
      return Status::Internal(flow.name() + ": no runnable stage but jobs remain");
    }

    // (2) Degree of parallelism per running stage (DRF).
    std::vector<StageDemand> demands;
    demands.reserve(running.size());
    for (const auto& r : running) {
      StageDemand d;
      d.slot = stage_of(r.job, r.kind).profile->slot;
      d.remaining_tasks = static_cast<int>(
          std::ceil(stage_of(r.job, r.kind).TasksOutstanding() - kEps));
      demands.push_back(d);
    }
    const std::vector<int> delta = allocator_->Allocate(demands);

    // (3) Task times under this state's contention (BOE or profile).
    EstimationContext context;
    std::vector<size_t> context_slot(running.size(), SIZE_MAX);
    for (size_t i = 0; i < running.size(); ++i) {
      if (delta[i] <= 0) continue;
      ParallelStage ps;
      ps.stage = stage_of(running[i].job, running[i].kind).profile;
      ps.tasks_per_node = static_cast<double>(delta[i]) / cluster_.num_nodes;
      context_slot[i] = context.running.size();
      context.running.push_back(ps);
    }
    std::vector<NormalParams> dists(running.size());
    std::vector<std::optional<TaskAttribution>> attributions(
        options_.attribute_bottlenecks ? running.size() : 0);
    for (size_t i = 0; i < running.size(); ++i) {
      if (context_slot[i] == SIZE_MAX) continue;
      context.query = context_slot[i];
      const double query_start = metrics_on ? obs::MonotonicUs() : 0.0;
      dists[i] = source.TaskTimeDist(context);
      if (!options_.skew_aware) {
        // Point estimate drives the wave model when skew-unaware.
        dists[i].mean = source.TaskTime(context).seconds();
        dists[i].stddev = 0.0;
      }
      if (metrics_on) {
        Metrics().task_time_query_us.Record(obs::MonotonicUs() - query_start);
      }
      if (options_.attribute_bottlenecks) {
        attributions[i] = source.Attribution(context);
      }
      if (options_.node_speed_cv > 0) {
        // A task's duration scales with 1/speed of its host. For log-normal
        // speed with mean 1 and coefficient of variation cv:
        //   E[1/speed] = 1 + cv^2 and CV[1/speed] = cv,
        // so the mean inflates and node variance joins the tail dispersion.
        const double cv = options_.node_speed_cv;
        const double slowdown = 1.0 + cv * cv;
        const double node_sd = dists[i].mean * slowdown * cv;
        dists[i].mean *= slowdown;
        dists[i].stddev =
            std::sqrt(dists[i].stddev * dists[i].stddev * slowdown * slowdown +
                      node_sd * node_sd);
      }
      // A NaN task time would silently corrupt the arg-min below (NaN fails
      // every comparison); a negative one would move time backwards. Either
      // means the task-time source misbehaved on inputs the firewall let
      // through — fail loudly instead of estimating garbage.
      if (std::isnan(dists[i].mean) || dists[i].mean < 0) {
        return Status::InvalidArgument(
            flow.name() + ": task-time source returned bad task time " +
            std::to_string(dists[i].mean) + " for stage " +
            stage_of(running[i].job, running[i].kind).profile->name);
      }
      // Stage start is when it first receives containers.
      StageEst& st = stage_of(running[i].job, running[i].kind);
      if (st.start_time < 0) st.start_time = now;
    }

    // (4) Earliest stage completion. The arg-min stage ends the state and
    // is therefore the state's critical-path segment.
    double dt = kInf;
    int critical = -1;
    for (size_t i = 0; i < running.size(); ++i) {
      StageEst& st = stage_of(running[i].job, running[i].kind);
      const double rest = RestTime(st, delta[i], dists[i], options_);
      if (rest < dt) {
        dt = rest;
        critical = static_cast<int>(i);
      }
    }
    if (dt == kInf) {
      return Status::Internal(flow.name() + ": no stage can make progress");
    }
    dt = std::max(dt, 0.0);

    // Record the state.
    StateEstimate state;
    state.index = state_index++;
    state.start = now;
    state.duration = dt;
    state.critical = critical;
    for (size_t i = 0; i < running.size(); ++i) {
      RunningStageEstimate rse;
      rse.job = running[i].job;
      rse.kind = running[i].kind;
      rse.parallelism = delta[i];
      rse.task_time_s = dists[i].mean;
      if (options_.attribute_bottlenecks && attributions[i].has_value()) {
        rse.has_attribution = true;
        rse.bottleneck = attributions[i]->bottleneck;
        for (Resource r : kAllResources) {
          rse.utilization[r] = attributions[i]->UtilizationShare(r);
        }
      }
      state.running.push_back(rse);
    }
    estimate.states.push_back(std::move(state));
    Metrics().states.Add(1);

    // (5) Advance everyone and transition.
    now += dt;
    for (size_t i = 0; i < running.size(); ++i) {
      StageEst& st = stage_of(running[i].job, running[i].kind);
      StepStage(st, delta[i], dists[i], options_, dt);
    }
    for (size_t i = 0; i < running.size(); ++i) {
      StageEst& st = stage_of(running[i].job, running[i].kind);
      if (st.complete || st.TasksOutstanding() > kEps) continue;
      st.complete = true;
      st.end_time = now;
      estimate.stages.push_back(
          {running[i].job, running[i].kind, st.start_time, st.end_time});
      if (running[i].kind == StageKind::kMap && jobs[running[i].job].has_reduce) {
        jobs[running[i].job].reduce.ready = true;
      } else {
        jobs[running[i].job].done = true;
        --unfinished;
        for (JobId child : flow.children(running[i].job)) {
          if (--jobs[child].unfinished_parents == 0) {
            jobs[child].map.ready = true;
          }
        }
      }
    }
  }

  estimate.makespan = Duration(now);
  Metrics().estimates.Add(1);
  if (metrics_on) {
    const double elapsed_s = (obs::MonotonicUs() - wall_start) * 1e-6;
    if (elapsed_s > 0) {
      Metrics().states_per_sec.Set(
          static_cast<double>(estimate.states.size()) / elapsed_s);
    }
  }
  return estimate;
}

Status StateBasedEstimator::Estimate(const DagWorkflow& flow,
                                     const TaskTimeSource& source,
                                     DagEstimate* out) const {
  Result<DagEstimate> estimate = Estimate(flow, source);
  if (!estimate.ok()) return estimate.status();
  *out = std::move(estimate).value();
  return Status::Ok();
}

}  // namespace dagperf
