#ifndef DAGPERF_MODEL_EXPLAIN_H_
#define DAGPERF_MODEL_EXPLAIN_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "obs/chrome_trace.h"
#include "model/state_estimator.h"

namespace dagperf {

/// One segment of the critical path through an estimated state timeline:
/// a maximal run of adjacent states whose completion was paced by the same
/// stage. Segments are contiguous and their durations sum exactly to the
/// makespan (states partition the timeline and every state contributes its
/// full duration to exactly one segment).
struct CriticalSegment {
  JobId job = 0;
  StageKind kind = StageKind::kMap;
  double start = 0.0;
  double duration = 0.0;
};

/// Bottleneck-attribution report: the estimate plus the critical path
/// through its state timeline. Produced by Explain(), rendered by
/// ExplainToText()/ExplainToJson() and `dagperf explain`.
struct ExplainReport {
  DagEstimate estimate;
  std::vector<CriticalSegment> critical_path;
  /// Sum of segment durations; equals estimate.makespan to within exact
  /// floating-point identity (the segments are the state durations).
  double critical_total_s = 0.0;
};

/// Runs the state-based estimator with bottleneck attribution forced on and
/// derives the critical path. Other EstimatorOptions fields are honoured.
Result<ExplainReport> Explain(const DagWorkflow& flow, const ClusterSpec& cluster,
                              const SchedulerConfig& scheduler,
                              const TaskTimeSource& source,
                              EstimatorOptions options = {});

/// Critical path of an existing estimate: per state, the stage Algorithm 1's
/// arg-min advanced time to (StateEstimate::critical), merged across
/// adjacent states. Zero-duration states never open a segment.
std::vector<CriticalSegment> CriticalPath(const DagEstimate& estimate);

/// Human-readable report: per-state table (parallelism, task time,
/// bottleneck resource, utilisation shares) plus the critical path summary.
std::string ExplainToText(const DagWorkflow& flow, const ExplainReport& report);

/// Machine-readable report. Top-level keys: workflow, makespan_s,
/// critical_total_s, critical_path[], states[].
Json ExplainToJson(const DagWorkflow& flow, const ExplainReport& report);

/// Renders the estimated state timeline as Chrome-trace events: one lane
/// per job (pid 1 "estimate", tid = job id) carrying its stage spans, a
/// state lane with each state's critical stage, and a per-resource counter
/// track of modeled load (sum over running stages of parallelism x
/// utilisation share) when the estimate carries attribution.
void AppendEstimateTraceEvents(const DagWorkflow& flow, const DagEstimate& estimate,
                               std::vector<obs::ChromeTraceEvent>& events);

/// Writes the estimate timeline as a complete Chrome-trace JSON document
/// (open with Perfetto / chrome://tracing).
void WriteEstimateChromeTrace(const DagWorkflow& flow, const DagEstimate& estimate,
                              std::ostream& out);

}  // namespace dagperf

#endif  // DAGPERF_MODEL_EXPLAIN_H_
