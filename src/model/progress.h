#ifndef DAGPERF_MODEL_PROGRESS_H_
#define DAGPERF_MODEL_PROGRESS_H_

#include <vector>

#include "common/status.h"
#include "model/state_estimator.h"

namespace dagperf {

/// Online progress indication for a running DAG workflow — the ParaTimer
/// use-case the paper cites (§I: "progress estimation"), driven by the
/// state-based execution-plan estimate instead of a critical-path heuristic.
///
/// Given the estimated plan of a workflow, the indicator answers, at any
/// elapsed wall-clock time: how complete is the workflow, what is running,
/// and how long until it finishes. It can also re-anchor the estimate on an
/// observed stage completion, linearly rescaling the remaining plan — the
/// cheap online correction a progress bar needs between full re-estimates.
class ProgressIndicator {
 public:
  /// The plan must come from StateBasedEstimator::Estimate for the same
  /// workflow whose progress is being tracked.
  explicit ProgressIndicator(DagEstimate plan);

  /// Fraction of the predicted makespan already elapsed, in [0, 1].
  double CompletionAt(Duration elapsed) const;

  /// Predicted time remaining at `elapsed` (zero once past the makespan).
  Duration RemainingAt(Duration elapsed) const;

  /// The workflow state predicted to be active at `elapsed`; NotFound once
  /// the workflow is predicted complete.
  Result<StateEstimate> StateAt(Duration elapsed) const;

  /// Stages predicted to be running at `elapsed` (empty once complete).
  std::vector<RunningStageEstimate> RunningAt(Duration elapsed) const;

  /// Re-anchors the plan on an observation: stage (job, kind) actually
  /// completed at `observed_end`. The remaining plan is shifted and scaled
  /// by observed_end / predicted_end so downstream predictions absorb the
  /// drift. Returns FailedPrecondition if the stage is not in the plan or
  /// the observation is non-positive.
  Status ObserveStageCompletion(JobId job, StageKind kind, Duration observed_end);

  const DagEstimate& plan() const { return plan_; }

 private:
  DagEstimate plan_;
};

}  // namespace dagperf

#endif  // DAGPERF_MODEL_PROGRESS_H_
