#ifndef DAGPERF_MODEL_SWEEP_H_
#define DAGPERF_MODEL_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_spec.h"
#include "common/parallel.h"
#include "common/status.h"
#include "dag/dag_workflow.h"
#include "model/incremental.h"
#include "model/state_estimator.h"
#include "model/task_time_cache.h"
#include "model/task_time_source.h"
#include "scheduler/drf.h"

namespace dagperf {

/// Batch what-if estimation — the sweep engine.
///
/// The paper's headline applications (job self-tuning, cloud capacity
/// planning, §I) are sweeps: many Estimate() calls over candidate knob
/// settings. EstimateBatch evaluates the candidates across a worker pool and
/// answers recurring task-time queries from a shared memo cache, turning the
/// estimator from "one prediction at a time" into a throughput-oriented
/// service core. Results are bit-identical to running the serial uncached
/// loop (see the determinism contract on TaskTimeMemo).

/// One candidate of a sweep: a workflow on a cluster. The workflow (and any
/// TaskTimeSource passed to EstimateBatch) must outlive the call.
struct SweepCandidate {
  const DagWorkflow* flow = nullptr;
  ClusterSpec cluster;
  /// Optional display name carried through to reports (CLI/bench output).
  std::string label;
};

/// Straggler hedging for pooled sweeps (tail-latency control).
///
/// A candidate that runs past a quantile of recently observed candidate
/// latencies gets a *hedge*: a second evaluation of the same candidate
/// launched on the pool. The first result wins; the loser is cancelled via
/// its CancelToken and discarded. Because sources are deterministic and the
/// memo is bit-exact, the hedge computes the identical bits, so hedging
/// changes only latency, never results. The delay quantile comes from a
/// process-wide windowed latency histogram fed by every completed candidate
/// (obs::WindowedHistogram::RecordAlways — it fills with metrics disabled
/// too). Hedging needs a pool and is ignored on the serial path.
struct SweepHedgeOptions {
  bool enabled = false;
  /// Hedge a candidate once it runs past this quantile of the recent
  /// candidate-latency window.
  double quantile = 0.95;
  /// No hedging until the window holds at least this many completions —
  /// an empty or thin window has no meaningful tail.
  int min_samples = 8;
  /// Clamp on the computed delay: never hedge sooner than this (spawn cost
  /// would dominate) nor later (bounds worst-case straggler exposure).
  double min_delay_ms = 0.05;
  double max_delay_ms = 1000.0;
  /// Lookback into the latency window when computing the quantile.
  double window_seconds = 120.0;
};

struct SweepOptions {
  /// Worker threads: 1 evaluates serially on the calling thread (the
  /// baseline loop), 0 uses the process-wide default pool, > 1 runs on a
  /// dedicated pool of that size. Ignored when `pool` is set.
  int threads = 0;

  /// Answer repeated task-time queries from a memo cache.
  bool memoize = true;

  /// Share one cache across all candidates of the batch (most stages are
  /// unchanged between candidates of a knob sweep, so cross-candidate
  /// sharing is where the big hit rates come from). With memoize on but
  /// share_cache off, each candidate gets a private per-estimate cache.
  bool share_cache = true;

  /// External memo reused across EstimateBatch calls (e.g. the rounds of an
  /// adaptive search). Implies share_cache; the caller owns the memo.
  TaskTimeMemo* memo = nullptr;

  /// Key prefix distinguishing entries in an external memo when the batches
  /// sharing it differ in ways the estimation context does not capture
  /// (different node hardware, sources, or fixed overheads).
  std::string cache_scope;

  /// Incremental re-estimation (model/incremental.h): candidates sharing a
  /// workflow prefix resume from checkpointed estimator state instead of
  /// replaying it. Results stay bit-identical — resume restores the exact
  /// recorded state — so this only trades memory for throughput.
  bool incremental = true;

  /// External checkpoint store reused across EstimateBatch calls (the
  /// service wires its cross-request store here; the caller owns it). When
  /// null and `share_cache` is on, an incremental batch uses a batch-local
  /// store so candidates still share prefixes within the batch. Entries are
  /// scoped by `cache_scope` — reuse the store across differing sources only
  /// with distinct scopes, exactly like the task-time memo.
  PrefixCheckpointStore* checkpoints = nullptr;

  /// Pool override; when set, `threads` is ignored.
  ThreadPool* pool = nullptr;

  /// Cooperative budget for the whole batch: candidates not yet started are
  /// skipped (their slot carries Status::Cancelled / DeadlineExceeded),
  /// candidates mid-estimate unwind at their next state boundary. Completed
  /// estimates are kept — EstimateBatch always returns the partial results.
  Budget budget;

  /// Re-attempt candidates that fail with a *retryable* error (see
  /// IsRetryable: transient resource-bound failures, not invalid input) up
  /// to this many extra times each. Attempts stop early once the batch
  /// budget fires. 0 = no retries.
  int max_retries = 0;

  /// Per-candidate estimator options. The batch-level cancel/deadline are
  /// propagated into these (unless the caller set estimator-level ones), so
  /// a firing budget also unwinds the candidate currently estimating.
  EstimatorOptions estimator;

  /// Straggler hedging (see SweepHedgeOptions). Off by default: it spends
  /// duplicate work for tail latency, a trade only serving paths want.
  SweepHedgeOptions hedge;
};

struct SweepStats {
  int candidates = 0;
  /// Candidates with a successful estimate.
  int completed = 0;
  /// Candidates that failed with a real error (invalid input, internal) —
  /// budget-related outcomes are counted separately below.
  int failures = 0;
  /// Candidates skipped or unwound by cancellation / the batch deadline.
  int cancelled = 0;
  int deadline_exceeded = 0;
  /// Total retry attempts performed across all candidates.
  int retries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// hits / (hits + misses); 0 when the cache was off or unused.
  double cache_hit_rate = 0.0;
  /// Incremental re-estimation over this batch: candidates that resumed
  /// from a shared-prefix checkpoint / started from scratch, the total
  /// workflow states skipped by resuming, and checkpoints newly recorded.
  std::uint64_t prefix_hits = 0;
  std::uint64_t prefix_misses = 0;
  std::uint64_t resumed_states = 0;
  std::uint64_t checkpoints_stored = 0;
  /// Straggler hedging over this batch (SweepHedgeOptions): hedges actually
  /// submitted to the pool, hedges whose result won the race, and hedges
  /// that executed but lost (duplicate work spent). launched - won - wasted
  /// hedges were cancelled before they started.
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t hedges_wasted = 0;
  /// Index of the smallest-makespan successful estimate (first on ties),
  /// -1 when every candidate failed.
  int best_index = -1;
  Duration best_makespan = Duration::Infinite();
};

struct SweepResult {
  /// Per-candidate estimates, in request order.
  std::vector<Result<DagEstimate>> estimates;
  /// Wall-clock per candidate in milliseconds (retries and hedge races
  /// included), -1 for slots that never ran. For a hedge-won race this is
  /// the time until the winning copy settled — the result existed from that
  /// moment; the straggling primary unwinding afterwards is duplicated-work
  /// cost, visible in hedges_wasted/hedges_won, not latency. Benches read
  /// this to report candidate tail latency; it is measured unconditionally
  /// because timing two clock reads is noise next to an estimator call.
  std::vector<double> candidate_latency_ms;
  SweepStats stats;
};

/// Estimates every request, fanning candidates across the pool and sharing
/// task-time work through the memo cache per `options`. When no budget
/// fires, the per-candidate results (order, values, errors) are
/// bit-identical to calling StateBasedEstimator::Estimate serially per
/// request without a cache. When cancellation or the deadline fires
/// mid-batch, already-finished candidates keep their results and every
/// unfinished slot carries the budget status — callers always get the
/// partial results plus per-outcome counts in SweepStats.
SweepResult EstimateBatch(const std::vector<SweepCandidate>& requests,
                          const SchedulerConfig& scheduler,
                          const TaskTimeSource& source,
                          const SweepOptions& options = {});

/// Pre-Result transition shim: `*out` receives the full SweepResult and the
/// returned Status is the first per-candidate error (Ok when every candidate
/// completed). Will be removed next release — call EstimateBatch directly.
[[deprecated("use EstimateBatch returning SweepResult")]]
Status EstimateBatch(const std::vector<SweepCandidate>& requests,
                     const SchedulerConfig& scheduler,
                     const TaskTimeSource& source, const SweepOptions& options,
                     SweepResult* out);

/// Compiles one single-job workflow per reducer count — the candidate set of
/// a reducer sweep. Fails on invalid counts (< 1) or uncompilable specs.
/// The returned flows back the EstimateRequests pointing at them.
Result<std::vector<DagWorkflow>> BuildReducerCandidates(
    const JobSpec& job, const std::vector<int>& reducer_counts);

}  // namespace dagperf

#endif  // DAGPERF_MODEL_SWEEP_H_
