#include "model/task_time_cache.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "obs/metrics.h"
#include "resilience/fault.h"

namespace dagperf {

namespace {

/// Chaos seams (latency-only: TaskTime has no error channel, so injected
/// error plans surface at service.execute instead — see docs/robustness.md).
/// model.task_time delays the underlying source's computation on a memo
/// miss; memo.insert delays between compute and store, widening the
/// insert-race window the memo's last-write-wins path must tolerate.
resilience::FaultPoint& TaskTimeFault() {
  static resilience::FaultPoint& point =
      resilience::FaultInjector::Default().GetPoint("model.task_time");
  return point;
}

resilience::FaultPoint& MemoInsertFault() {
  static resilience::FaultPoint& point =
      resilience::FaultInjector::Default().GetPoint("memo.insert");
  return point;
}

/// Registry mirrors of the memo's internal stats, so `dagperf
/// --metrics-json` and the sweep thread pool's dashboards see cache
/// behaviour without plumbing a memo pointer around. Aggregated across all
/// memo instances in the process.
struct MemoMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& insert_races;

  MemoMetrics()
      : hits(obs::MetricsRegistry::Default().GetCounter("memo.hits")),
        misses(obs::MetricsRegistry::Default().GetCounter("memo.misses")),
        insert_races(
            obs::MetricsRegistry::Default().GetCounter("memo.insert_races")) {}
};

MemoMetrics& Metrics() {
  static MemoMetrics* metrics = new MemoMetrics();
  return *metrics;
}

/// Appends the raw bit pattern of a double — exact, no formatting loss.
void AppendBits(std::string& out, double value) {
  char bits[sizeof(double)];
  std::memcpy(bits, &value, sizeof(double));
  out.append(bits, sizeof(double));
}

void AppendStage(std::string& out, const ParallelStage& ps) {
  const StageProfile& stage = *ps.stage;
  out += stage.name;
  out += '\0';
  out += static_cast<char>(stage.kind);
  AppendBits(out, static_cast<double>(stage.num_tasks));
  AppendBits(out, stage.task_size_cv);
  AppendBits(out, stage.slot.vcores);
  AppendBits(out, stage.slot.memory.value());
  for (const SubStageProfile& sub : stage.substages) {
    for (double demand : sub.demand.values) AppendBits(out, demand);
    out += ';';
  }
  AppendBits(out, ps.tasks_per_node);
  out += '|';
}

}  // namespace

std::string TaskTimeMemo::Fingerprint(const std::string& scope,
                                      const EstimationContext& context) {
  std::string key;
  FingerprintTo(scope, context, &key);
  return key;
}

void TaskTimeMemo::FingerprintTo(const std::string& scope,
                                 const EstimationContext& context,
                                 std::string* out) {
  std::string& key = *out;
  key.clear();
  key.reserve(scope.size() + 1 + context.running.size() * 96);
  key += scope;
  key += '#';
  for (const ParallelStage& ps : context.running) AppendStage(key, ps);
  AppendBits(key, static_cast<double>(context.query));
}

TaskTimeMemo::Stats TaskTimeMemo::stats() const {
  Stats s;
  for (const Shard& shard : shards_) {
    s.hits += shard.hits.load(std::memory_order_relaxed);
    s.misses += shard.misses.load(std::memory_order_relaxed);
    s.insert_races += shard.insert_races.load(std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    s.entries += shard.entries.size();
  }
  return s;
}

void TaskTimeMemo::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.insert_races.store(0, std::memory_order_relaxed);
  }
}

std::vector<TaskTimeMemo::ExportedEntry> TaskTimeMemo::Export() const {
  std::vector<ExportedEntry> out;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    out.reserve(out.size() + shard.entries.size());
    for (const auto& [key, entry] : shard.entries) {
      ExportedEntry exported;
      exported.key = key;
      exported.time = entry.time;
      exported.dist = entry.dist;
      exported.has_time = entry.has_time;
      exported.has_dist = entry.has_dist;
      out.push_back(std::move(exported));
    }
  }
  // Keys are unique across shards, so sorting by key alone yields one total
  // order regardless of shard hash or map iteration order — snapshot bytes
  // for a given entry set are identical run to run.
  std::sort(out.begin(), out.end(),
            [](const ExportedEntry& a, const ExportedEntry& b) {
              return a.key < b.key;
            });
  return out;
}

void TaskTimeMemo::Import(const std::vector<ExportedEntry>& entries) {
  // Bucket by shard first so each stripe is locked once, not per entry.
  std::array<std::vector<const ExportedEntry*>, kShardCount> buckets;
  for (const ExportedEntry& exported : entries) {
    buckets[ShardIndex(exported.key)].push_back(&exported);
  }
  for (std::size_t i = 0; i < kShardCount; ++i) {
    if (buckets[i].empty()) continue;
    Shard& shard = shards_[i];
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    for (const ExportedEntry* exported : buckets[i]) {
      Entry& entry = shard.entries[exported->key];
      if (exported->has_time && !entry.has_time) {
        entry.time = exported->time;
        entry.has_time = true;
      }
      if (exported->has_dist && !entry.has_dist) {
        entry.dist = exported->dist;
        entry.has_dist = true;
      }
    }
  }
}

MemoizedTaskTimeSource::MemoizedTaskTimeSource(const TaskTimeSource& base,
                                               TaskTimeMemo* memo, std::string scope)
    : base_(base), memo_(memo), scope_(std::move(scope)) {}

Duration MemoizedTaskTimeSource::TaskTime(const EstimationContext& context) const {
  static thread_local std::string key;
  TaskTimeMemo::FingerprintTo(scope_, context, &key);
  // The shard is resolved once per query; both the probe and the insert
  // below touch only this stripe's lock.
  TaskTimeMemo::Shard& shard = memo_->ShardFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end() && it->second.has_time) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      Metrics().hits.Add(1);
      if (obs::internal::Enabled()) {
        local_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second.time;
    }
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  Metrics().misses.Add(1);
  if (obs::internal::Enabled()) {
    local_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  (void)TaskTimeFault().Evaluate();
  const Duration time = base_.TaskTime(context);
  (void)MemoInsertFault().Evaluate();
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    TaskTimeMemo::Entry& entry = shard.entries[key];
    // A racing thread may have stored first; the source is deterministic, so
    // both computed the same bits and either store is correct.
    if (entry.has_time) {
      shard.insert_races.fetch_add(1, std::memory_order_relaxed);
      Metrics().insert_races.Add(1);
    }
    entry.time = time;
    entry.has_time = true;
  }
  return time;
}

NormalParams MemoizedTaskTimeSource::TaskTimeDist(
    const EstimationContext& context) const {
  static thread_local std::string key;
  TaskTimeMemo::FingerprintTo(scope_, context, &key);
  TaskTimeMemo::Shard& shard = memo_->ShardFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end() && it->second.has_dist) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      Metrics().hits.Add(1);
      if (obs::internal::Enabled()) {
        local_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second.dist;
    }
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  Metrics().misses.Add(1);
  if (obs::internal::Enabled()) {
    local_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  (void)TaskTimeFault().Evaluate();
  const NormalParams dist = base_.TaskTimeDist(context);
  (void)MemoInsertFault().Evaluate();
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    TaskTimeMemo::Entry& entry = shard.entries[key];
    if (entry.has_dist) {
      shard.insert_races.fetch_add(1, std::memory_order_relaxed);
      Metrics().insert_races.Add(1);
    }
    entry.dist = dist;
    entry.has_dist = true;
  }
  return dist;
}

std::optional<TaskAttribution> MemoizedTaskTimeSource::Attribution(
    const EstimationContext& context) const {
  return base_.Attribution(context);
}

}  // namespace dagperf
