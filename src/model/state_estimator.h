#ifndef DAGPERF_MODEL_STATE_ESTIMATOR_H_
#define DAGPERF_MODEL_STATE_ESTIMATOR_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_spec.h"
#include "common/cancel.h"
#include "common/status.h"
#include "dag/dag_workflow.h"
#include "model/task_time_source.h"
#include "scheduler/drf.h"

namespace dagperf {

class PrefixCheckpointStore;  // model/incremental.h

/// Options of the state-based workflow estimator.
struct EstimatorOptions {
  /// How a stage's remaining time is derived from its task time.
  enum class WaveModel {
    /// Continuous approximation: completion rate Delta / t_task.
    kFluid,
    /// Wave-quantised: ceil(remaining / Delta) waves, each lasting one task
    /// time (the execution pattern of a real slot-scheduled stage).
    kDiscrete,
  };

  WaveModel wave_model = WaveModel::kDiscrete;

  /// Alg2-Normal: model task times as a normal distribution and estimate
  /// each wave's makespan as the expected maximum of Delta draws
  /// (skew-aware estimation, §V-C's "Normal" rows).
  bool skew_aware = false;

  /// Heterogeneity correction (beyond the paper, see bench_ablation A5):
  /// when the fleet's per-node speed has this coefficient of variation
  /// (log-normal, mean 1), a task's expected duration inflates by
  /// E[1/speed] = 1 + cv^2 and node variance adds to the straggler-tail
  /// dispersion. 0 = the paper's homogeneous assumption.
  double node_speed_cv = 0.0;

  /// Safety bound on state iterations.
  int max_states = 1000000;

  /// Cooperative budget for one Estimate() call, polled once per state
  /// transition: a fired token unwinds with Status::Cancelled, an expired
  /// deadline with Status::DeadlineExceeded. The default budget is inert
  /// (one pointer test + one constant compare per state).
  Budget budget;

  /// Ask the TaskTimeSource for per-stage resource attribution (BOE
  /// bottleneck arg-max + utilisation shares) and record it on every
  /// RunningStageEstimate. Off by default: attribution re-prices each
  /// running stage once per state, which would roughly double BOE cost on
  /// the sweep hot path. Explain reports (model/explain.h) turn it on.
  bool attribute_bottlenecks = false;

  /// Prefix-resume checkpointing (model/incremental.h). When set, Estimate()
  /// resumes from the deepest stored checkpoint whose structural prefix
  /// matches the flow, and records new checkpoints at job-completion
  /// boundaries. Resumed estimates are bit-identical to full replay. The
  /// caller owns the store, which must outlive every Estimate() call.
  PrefixCheckpointStore* checkpoints = nullptr;

  /// Scope prefix for checkpoint keys, mirroring TaskTimeMemo scoping: the
  /// TaskTimeSource identity is not captured by the checkpoint key, so set a
  /// distinct scope per source (hardware model, fixed overheads, profile
  /// data) when several share one store. The service uses its per-cluster
  /// cache scope for both the memo and the checkpoint store.
  std::string checkpoint_scope;

  /// Advanced: the precomputed global checkpoint fingerprint — exactly the
  /// bytes AppendGlobalFingerprint would produce for (checkpoint_scope, the
  /// cluster, the scheduler, these options). The sweep engine computes it
  /// once per candidate for evaluation ordering and passes it here so the
  /// estimator skips re-serialising it on every call. (Per-job fingerprints
  /// are precomputed on the immutable DagWorkflow itself.) A mismatched
  /// fingerprint breaks resume correctness; leave null to have the
  /// estimator compute its own. Must outlive the call.
  const std::string* checkpoint_global_fp = nullptr;
};

/// One running stage inside an estimated workflow state.
struct RunningStageEstimate {
  JobId job = 0;
  StageKind kind = StageKind::kMap;
  /// Cluster-wide degree of parallelism granted by the scheduler model.
  int parallelism = 0;
  /// Estimated per-task execution time under this state's contention.
  double task_time_s = 0.0;
  /// Resource attribution, filled when EstimatorOptions::
  /// attribute_bottlenecks is set and the source models resources (BOE).
  bool has_attribution = false;
  /// The BOE model's arg-max: the resource pacing the task's longest
  /// sub-stage under this state's contention.
  Resource bottleneck = Resource::kCpu;
  /// Per-resource utilisation share of the task's work time, in [0, 1];
  /// exactly 1.0 for a resource that paces every sub-stage.
  ResourceVector utilization;
};

/// One estimated workflow state (paper Fig. 5 / Algorithm 1 iteration).
/// Trivially copyable: the running-stage records live in the flat
/// DagEstimate::running_pool (SoA layout), so copying a state vector — the
/// core of a checkpoint resume — is a memcpy.
struct StateEstimate {
  int index = 0;
  double start = 0.0;
  double duration = 0.0;
  /// This state's running stages are DagEstimate::running_pool
  /// [running_begin, running_begin + running_count); read them through
  /// DagEstimate::running().
  int running_begin = 0;
  int running_count = 0;
  /// Index (within this state's running span) of the stage whose completion
  /// ends this state — the stage Algorithm 1's arg-min advanced time to.
  /// Concatenating each state's critical stage yields the critical path
  /// through the timeline (segments sum exactly to the makespan; see
  /// model/explain.h).
  int critical = -1;
};

/// Borrowed view of one state's running stages inside a DagEstimate.
class RunningSpan {
 public:
  RunningSpan(const RunningStageEstimate* data, std::size_t size)
      : data_(data), size_(size) {}

  const RunningStageEstimate* begin() const { return data_; }
  const RunningStageEstimate* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const RunningStageEstimate& operator[](std::size_t i) const {
    return data_[i];
  }

 private:
  const RunningStageEstimate* data_;
  std::size_t size_;
};

/// Estimated wall-clock span of one job stage.
struct StageSpanEstimate {
  JobId job = 0;
  StageKind kind = StageKind::kMap;
  double start = 0.0;
  double end = 0.0;
};

/// The estimator's output: the predicted execution plan of the workflow.
struct DagEstimate {
  Duration makespan;
  /// States restored from a prefix checkpoint instead of replayed (0 on a
  /// full replay; == states.size() on a complete-result hit). Lets serving
  /// observability classify each request's cost class without guessing.
  int resumed_states = 0;
  std::vector<StateEstimate> states;
  /// Flat pool of per-state running-stage records; index it through
  /// running(state) rather than directly.
  std::vector<RunningStageEstimate> running_pool;
  std::vector<StageSpanEstimate> stages;

  /// The running stages of `state`, which must belong to this estimate. The
  /// view borrows from running_pool: it is invalidated by mutating the
  /// estimate.
  RunningSpan running(const StateEstimate& state) const {
    return RunningSpan(running_pool.data() + state.running_begin,
                       static_cast<std::size_t>(state.running_count));
  }

  Result<StageSpanEstimate> FindStage(JobId job, StageKind kind) const;
};

/// State-based cost estimation for a DAG workflow (paper §IV, Algorithm 1).
///
/// Iteratively: (1) determine the set of running stages, (2) estimate each
/// stage's degree of parallelism with the DRF scheduler model, (3) estimate
/// task times under the state's contention via the supplied TaskTimeSource,
/// (4) advance to the earliest stage completion, (5) transition the workflow
/// state. The workflow estimate is the sum of state durations.
///
/// Thread safety: Estimate() is const and touches no shared mutable state —
/// one estimator instance may serve concurrent Estimate() calls from many
/// threads (the sweep engine in model/sweep.h relies on this), provided the
/// supplied TaskTimeSource is itself safe for concurrent queries (all
/// library sources are; see task_time_source.h).
class StateBasedEstimator {
 public:
  /// An invalid cluster does not abort: construction records the validation
  /// failure and every Estimate() call returns it (so a CLI-supplied
  /// `--nodes -1` surfaces as InvalidArgument, not a CHECK crash).
  StateBasedEstimator(const ClusterSpec& cluster, const SchedulerConfig& scheduler,
                      EstimatorOptions options = {});

  /// Runs the validation firewall over `flow` (dag/validate.h) before
  /// estimating; malformed flows return InvalidArgument listing every
  /// violation. Honours EstimatorOptions::budget per state.
  Result<DagEstimate> Estimate(const DagWorkflow& flow,
                               const TaskTimeSource& source) const;

  /// Allocation-free variant for hot loops: estimates into `*out`, reusing
  /// its vector capacity. After a priming call at the same workflow size, a
  /// warm estimate performs no heap allocation (the per-estimate state lives
  /// in a thread-local arena; see docs/performance.md). `*out` is cleared
  /// and rewritten; on error its contents are unspecified.
  Status EstimateInto(const DagWorkflow& flow, const TaskTimeSource& source,
                      DagEstimate* out) const;

  /// Pre-Result transition shim: `*out` is written only on success. Will be
  /// removed next release — call the Result<DagEstimate> overload.
  [[deprecated("use Estimate(flow, source) returning Result<DagEstimate>")]]
  Status Estimate(const DagWorkflow& flow, const TaskTimeSource& source,
                  DagEstimate* out) const;

 private:
  ClusterSpec cluster_;
  SchedulerConfig scheduler_;
  /// Engaged iff init_ is Ok (DrfAllocator requires a valid cluster).
  std::optional<DrfAllocator> allocator_;
  EstimatorOptions options_;
  Status init_ = Status::Ok();
};

}  // namespace dagperf

#endif  // DAGPERF_MODEL_STATE_ESTIMATOR_H_
