#ifndef DAGPERF_RESILIENCE_OVERLOAD_H_
#define DAGPERF_RESILIENCE_OVERLOAD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

namespace dagperf {
namespace resilience {

/// CoDel-style overload control with a brownout degradation ladder.
///
/// The controller watches queue sojourn time (submit -> execute-start) the
/// way CoDel watches packet delay: within each observation interval it keeps
/// the *minimum* sojourn seen — the minimum, not the mean, because a queue
/// that fully drains at least once per interval is merely bursty, while a
/// queue whose best case still exceeds the target is genuinely standing.
/// Consecutive bad intervals step a degradation level up (0..max_level);
/// consecutive good intervals step it back down. The levels gate what the
/// serving layer sheds and how much work it still does per answer:
///
///   level 0  healthy    full-fidelity answers, admit everything
///   level 1  pressure   shed expensive (cold, large) work; disable
///                       bottleneck attribution on served answers
///   level 2  overload   additionally cap the estimator's max_states
///   level 3  brownout   serve memo-warm / incremental answers only;
///                       everything cold is shed
///
/// Answers served at level >= 1 are tagged degraded (wire field
/// `degraded: true`); shed responses carry RESOURCE_EXHAUSTED with a
/// `retry_after_ms` hint from RetryAfterMs(). The ladder (not a binary
/// on/off switch) is what makes recovery stable: each step down restores a
/// little work per request, so the service ramps back to full fidelity
/// instead of oscillating between "healthy" and "drowning".
///
/// All time flows in through explicit `now_us` parameters (the service
/// passes obs::MonotonicUs()), which keeps tests deterministic.
struct OverloadOptions {
  /// Sojourn target: intervals whose *minimum* sojourn exceeds this are
  /// counted against the service (CoDel's target). Must be > 0 for the
  /// controller to act; the service leaves the controller out entirely when
  /// its own overload knob is unset.
  double target_sojourn_ms = 50.0;

  /// Observation interval (CoDel's initial interval). Longer intervals react
  /// slower but see through burstier arrival patterns.
  double interval_ms = 100.0;

  /// Consecutive above-target intervals per step *up* the ladder.
  int escalate_after = 3;

  /// Consecutive below-target intervals per step *down*. Larger than
  /// escalate_after by default: entering brownout fast and leaving it slowly
  /// damps oscillation under saw-toothed load.
  int recover_after = 5;

  /// Deepest ladder level (1..3). 3 enables the full ladder above.
  int max_level = 3;

  /// Floor of the retry hint attached to shed responses; the hint doubles
  /// per ladder level so retries thin out as pressure deepens.
  double retry_after_floor_ms = 25.0;
};

class OverloadController {
 public:
  explicit OverloadController(OverloadOptions options = {});

  /// Feeds one request's queue sojourn, observed at `now_us`. Closes the
  /// current observation interval (and possibly transitions the level) when
  /// `now_us` has passed its end. Thread-safe.
  void ObserveSojourn(double sojourn_ms, double now_us);

  /// Current ladder level, 0 (healthy) .. max_level. Lock-free.
  int level() const { return level_.load(std::memory_order_acquire); }

  /// Admission decision for an arriving request. `warm` = the serving layer
  /// expects to answer from warm state (memo / prefix checkpoints);
  /// `expensive` = a cold request whose pre-estimate crosses the cost
  /// threshold. Levels 1-2 shed expensive work; level 3 sheds everything
  /// cold. Never sheds warm work — warm answers are what brownout exists to
  /// keep serving.
  bool ShouldShed(bool warm, bool expensive) const;

  /// Suggested earliest-retry hint for a shed response:
  /// retry_after_floor_ms * 2^level, so backed-off clients thin out as the
  /// ladder deepens.
  double RetryAfterMs() const;

  /// Called by the serving layer when it sheds a request on this
  /// controller's advice (feeds Stats and the overload.shed counter).
  void RecordShed();

  /// Observes level transitions (from, to) — the service pins them into the
  /// flight recorder. Invoked under the controller's mutex; the callback
  /// must only take leaf locks. Set before serving traffic.
  void SetTransitionCallback(std::function<void(int, int)> callback);

  /// Pins the ladder to a level and suspends interval-driven transitions —
  /// tests exercise the shedding/degradation policy without replaying a
  /// realistic load pattern. Passing -1 returns control to the sojourn
  /// signal.
  void ForceLevelForTest(int level);

  struct Stats {
    int level = 0;
    std::uint64_t shed = 0;
    std::uint64_t escalations = 0;
    std::uint64_t recoveries = 0;
    /// Minimum sojourn of the last *closed* interval, ms (-1 before any
    /// interval closed).
    double last_interval_min_ms = -1.0;
  };
  Stats stats() const;

  const OverloadOptions& options() const { return options_; }

 private:
  void CloseInterval(double now_us);  // mutex_ held
  void SetLevel(int next);            // mutex_ held

  OverloadOptions options_;
  mutable std::mutex mutex_;
  std::atomic<int> level_{0};
  bool forced_ = false;
  double window_end_us_ = 0.0;
  double window_min_ms_ = -1.0;
  double last_interval_min_ms_ = -1.0;
  int bad_intervals_ = 0;
  int good_intervals_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t recoveries_ = 0;
  std::atomic<std::uint64_t> shed_{0};
  std::function<void(int, int)> on_transition_;
};

}  // namespace resilience
}  // namespace dagperf

#endif  // DAGPERF_RESILIENCE_OVERLOAD_H_
