#ifndef DAGPERF_RESILIENCE_CIRCUIT_BREAKER_H_
#define DAGPERF_RESILIENCE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/cancel.h"
#include "common/status.h"

namespace dagperf {
namespace obs {
class Gauge;
}  // namespace obs

namespace resilience {

/// Circuit breaker guarding a failure-prone execution path (the estimation
/// service wraps one around each registered cluster's estimate path).
///
/// States:
///   kClosed   — traffic flows; `failure_threshold` *consecutive* failures
///               trip the breaker.
///   kOpen     — Allow() fails fast with UNAVAILABLE{retryable} for
///               `open_seconds`, shedding work from a path that is only
///               producing failures.
///   kHalfOpen — after the cooldown, up to `half_open_probes` concurrent
///               calls are admitted as probes; `half_open_successes`
///               successes close the breaker, any failure re-opens it.
///
/// Only failures that indicate path trouble should be recorded — the service
/// feeds it through CountsAsFailure, which ignores client errors (invalid
/// input, unknown names) and deliberate cancellation.
enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Consecutive failures that open the breaker. <= 0 disables it entirely
  /// (Allow always Ok, Record* are no-ops) so call sites need no branch.
  int failure_threshold = 5;
  /// How long an open breaker rejects before probing.
  double open_seconds = 1.0;
  /// Probes admitted concurrently while half-open.
  int half_open_probes = 1;
  /// Probe successes required to close.
  int half_open_successes = 1;
  /// Name of the obs gauge mirroring the state (0 closed / 1 open /
  /// 2 half-open). Empty = no gauge. The service registers
  /// "resilience.breaker_state" for the default cluster and
  /// "resilience.breaker_state.<cluster>" for the rest.
  std::string gauge_name;

  /// Invoked on every state transition, after the state (and gauge) have
  /// moved. The gauge only shows the last write; this hook is how transition
  /// *history* escapes — the service feeds it into the flight recorder and
  /// the "resilience.breaker_transitions" counter. Called with the breaker
  /// mutex held: must be cheap and must not call back into this breaker.
  std::function<void(BreakerState from, BreakerState to)> on_transition;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Gate before the guarded call: Ok to proceed (and, half-open, claims a
  /// probe slot), or Unavailable{retryable} naming the remaining cooldown.
  /// Every Ok *must* be matched by exactly one RecordSuccess/RecordFailure.
  Status Allow();

  void RecordSuccess();
  void RecordFailure();

  /// Record* from a Status: success on Ok, failure only when
  /// CountsAsFailure; other codes release the in-flight probe slot without
  /// moving the state (a NOT_FOUND on a half-open probe proves nothing
  /// about the path's health).
  void Record(const Status& status);

  /// Whether a failed estimate indicts the serving path rather than the
  /// request: internal errors, expired deadlines (stuck path), and
  /// upstream unavailability count; invalid input, unknown names, load
  /// shedding, and cancellation do not.
  static bool CountsAsFailure(ErrorCode code);

  BreakerState state() const;

  struct Stats {
    std::uint64_t allowed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t failures = 0;
    std::uint64_t successes = 0;
    std::uint64_t opens = 0;
    /// Every state change (open + half-open + close), not just opens.
    std::uint64_t transitions = 0;
  };
  Stats stats() const;

 private:
  void TransitionLocked(BreakerState next);

  CircuitBreakerOptions options_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_inflight_ = 0;
  int half_open_successes_ = 0;
  Deadline reopen_;
  Stats stats_;
  obs::Gauge* gauge_ = nullptr;
};

}  // namespace resilience
}  // namespace dagperf

#endif  // DAGPERF_RESILIENCE_CIRCUIT_BREAKER_H_
