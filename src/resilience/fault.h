#ifndef DAGPERF_RESILIENCE_FAULT_H_
#define DAGPERF_RESILIENCE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace dagperf {
namespace resilience {

/// Deterministic, seeded fault injection for chaos testing (docs/
/// robustness.md has the fault-point catalog). Named fault points are
/// compiled into the layer seams the library owns — task-time queries, memo
/// inserts, thread-pool submits, the service's admission and execute paths,
/// the TCP server's accept/read/write calls — and are *off by default*:
/// a disarmed point costs one relaxed atomic-bool load, the same discipline
/// as the obs layer's disabled metrics (guarded by bench_resilience's
/// BENCH_resilience.json measurement).
///
/// Determinism: whether evaluation number n of a point fires is a pure
/// function of (injector seed, point name, n) — a splitmix64 hash, no shared
/// RNG stream — so a fixed seed yields the same per-point fire pattern
/// run-to-run regardless of how threads interleave their claims of n.

/// What one fault point does when it fires. A plan with error == kOk injects
/// latency only; probability 0 never fires.
struct FaultPlan {
  /// Chance in [0, 1] that an evaluation fires.
  double probability = 0.0;
  /// Delay injected (in the caller's thread) on every fired evaluation.
  double latency_ms = 0.0;
  /// Status code returned to the seam on a fired evaluation; kOk means the
  /// plan is latency-only and the seam proceeds normally after the delay.
  ErrorCode error = ErrorCode::kOk;
  /// Fire at most this many times (0 = unlimited).
  int max_fires = 0;
  /// Let the first N evaluations pass untouched before the probability
  /// applies — "fail the warm path, not the handshake" schedules.
  int skip_first = 0;
};

/// The outcome of one FaultPoint::Evaluate call, already slept: when
/// `status` is non-Ok the seam should fail with it; otherwise proceed.
struct FaultDecision {
  bool fired = false;
  Status status;
};

/// One named injection seam. Call sites resolve the point once (static local
/// or member, like obs metric handles) and Evaluate() per pass; the handle
/// stays valid for the process lifetime.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  /// The hot-path probe: one relaxed load and out when the point is not
  /// armed. When armed, decides deterministically from (seed, name, call
  /// index), sleeps any injected latency in the calling thread, and returns
  /// the plan's status on fire.
  FaultDecision Evaluate();

  const std::string& name() const { return name_; }
  std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  std::uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  friend class FaultInjector;

  const std::string name_;
  std::atomic<bool> armed_{false};
  /// Guards plan_/seed_ against Configure/Arm racing Evaluate. Only taken
  /// on the armed path — chaos runs, never production — so a mutex is fine.
  std::mutex mutex_;
  FaultPlan plan_;
  std::uint64_t seed_ = 0;
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> fires_{0};
};

/// Process-wide directory of fault points plus the arm/disarm switch.
/// Workflow: Configure() plans for the points under test, Arm(seed), run the
/// scenario, Disarm() (and usually ResetAll() between scenarios).
class FaultInjector {
 public:
  /// The singleton every compiled-in seam resolves its point from. Leaked,
  /// like the metrics registry, so handles outlive static teardown.
  static FaultInjector& Default();

  /// Resolves (registering on first use) the point named `name`. The
  /// returned reference is valid forever.
  FaultPoint& GetPoint(const std::string& name);

  /// Sets the plan for `name` (registering the point if needed). Takes
  /// effect immediately when the injector is armed. Rejects probabilities
  /// outside [0, 1] and negative latencies/counts.
  Status Configure(const std::string& name, const FaultPlan& plan);

  /// Arms every point that has a plan with probability > 0, under `seed`.
  /// Re-arming with a new seed restarts every point's deterministic
  /// schedule (call indices reset).
  void Arm(std::uint64_t seed);

  /// Disarms every point; plans are kept for a later re-Arm.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }
  std::uint64_t seed() const;

  /// Drops all plans and zeroes every point's counters (disarms first).
  void ResetAll();

  struct PointStats {
    std::string name;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
  };
  /// Snapshot of every registered point, name-sorted.
  std::vector<PointStats> Stats() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
  std::map<std::string, FaultPlan> plans_;
  std::atomic<bool> armed_{false};
  std::uint64_t seed_ = 0;
};

/// Evaluates `point` and returns the injected status (Ok when the point did
/// not fire or the plan is latency-only) — the one-liner most seams want.
inline Status InjectAt(FaultPoint& point) { return point.Evaluate().status; }

}  // namespace resilience
}  // namespace dagperf

#endif  // DAGPERF_RESILIENCE_FAULT_H_
