#ifndef DAGPERF_RESILIENCE_RETRY_H_
#define DAGPERF_RESILIENCE_RETRY_H_

#include <cstdint>
#include <functional>
#include <mutex>

#include "common/cancel.h"
#include "common/rng.h"
#include "common/status.h"

namespace dagperf {
namespace resilience {

/// Client-side retry with exponential backoff and full jitter — the policy
/// the wire protocol's `retryable` flag asks clients to apply mechanically.

struct RetryOptions {
  /// Total tries including the first (>= 1). 4 = one call + three retries.
  int max_attempts = 4;
  /// Backoff cap grows initial * multiplier^retry, clamped to max; the
  /// actual sleep is Uniform(0, cap) — "full jitter", which de-synchronises
  /// a thundering herd of shed clients better than equal or decorrelated
  /// jitter for this service's bursty admission queue.
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 2000.0;
  double multiplier = 2.0;
  /// Seed of the jitter stream (common/rng): a fixed seed makes every sleep
  /// of a policy instance reproducible.
  std::uint64_t seed = 1;
};

/// Executes operations until success, a non-retryable failure, attempt
/// exhaustion, or budget expiry. Thread-safe: concurrent Run calls share the
/// jitter stream under a mutex (sleeps happen outside it). Each retry
/// increments the obs counter `resilience.retries`.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = {});

  /// Runs `op` under the policy. Retries only statuses with
  /// IsRetryable(code); sleeps the jittered backoff between attempts —
  /// floored at the status's server-provided retry_after_ms hint when one is
  /// set — capped by the budget's remaining time. Returns the first success,
  /// the first non-retryable failure, or — once attempts or budget run out —
  /// the last retryable failure.
  template <typename T>
  Result<T> Run(const std::function<Result<T>()>& op,
                const Budget& budget = {}) {
    Result<T> result = op();
    int attempt = 1;
    while (!result.ok() && KeepTrying(result.status(), attempt, budget)) {
      result = op();
      ++attempt;
    }
    return result;
  }

  /// Status-only convenience for operations with no value.
  Status RunStatus(const std::function<Status()>& op, const Budget& budget = {});

  /// The jittered sleep before retry number `retry` (0-based), in
  /// milliseconds — exposed for tests; Run uses exactly this.
  double NextBackoffMs(int retry);

  struct Stats {
    /// Attempts that returned a failure (successes are not counted).
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    /// Runs that returned a retryable failure after exhausting attempts or
    /// budget.
    std::uint64_t gave_up = 0;
  };
  Stats stats() const;

 private:
  /// Decides whether to retry after `status` on 1-based attempt `attempt`,
  /// and performs the backoff sleep when it says yes.
  bool KeepTrying(const Status& status, int attempt, const Budget& budget);

  RetryOptions options_;
  mutable std::mutex mutex_;
  Rng rng_;
  Stats stats_;
};

}  // namespace resilience
}  // namespace dagperf

#endif  // DAGPERF_RESILIENCE_RETRY_H_
