#include "resilience/overload.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace dagperf {
namespace resilience {

namespace {

/// overload.* metric handles; recording is gated on the process-wide obs
/// flag like every other namespace.
struct OverloadMetrics {
  obs::Gauge& level;
  obs::Counter& shed;
  obs::Counter& escalations;
  obs::Counter& recoveries;
  obs::Histogram& sojourn_ms;

  OverloadMetrics()
      : level(obs::MetricsRegistry::Default().GetGauge("overload.level")),
        shed(obs::MetricsRegistry::Default().GetCounter("overload.shed")),
        escalations(obs::MetricsRegistry::Default().GetCounter(
            "overload.escalations")),
        recoveries(
            obs::MetricsRegistry::Default().GetCounter("overload.recoveries")),
        sojourn_ms(
            obs::MetricsRegistry::Default().GetHistogram("overload.sojourn_ms")) {
  }
};

OverloadMetrics& Metrics() {
  static OverloadMetrics* metrics = new OverloadMetrics();
  return *metrics;
}

}  // namespace

OverloadController::OverloadController(OverloadOptions options)
    : options_(options) {
  options_.target_sojourn_ms = std::max(0.0, options_.target_sojourn_ms);
  options_.interval_ms = std::max(1.0, options_.interval_ms);
  options_.escalate_after = std::max(1, options_.escalate_after);
  options_.recover_after = std::max(1, options_.recover_after);
  options_.max_level = std::min(3, std::max(1, options_.max_level));
  options_.retry_after_floor_ms = std::max(1.0, options_.retry_after_floor_ms);
}

void OverloadController::ObserveSojourn(double sojourn_ms, double now_us) {
  Metrics().sojourn_ms.Record(std::max(0.0, sojourn_ms));
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_end_us_ == 0.0) {
    window_end_us_ = now_us + options_.interval_ms * 1e3;
  }
  if (now_us >= window_end_us_) {
    CloseInterval(now_us);
  }
  if (window_min_ms_ < 0.0 || sojourn_ms < window_min_ms_) {
    window_min_ms_ = sojourn_ms;
  }
}

void OverloadController::CloseInterval(double now_us) {
  // A window with no observations carries no signal either way: an idle
  // service is not "below target", it is unmeasured — skip such windows so a
  // quiet period neither escalates nor recovers the ladder.
  if (window_min_ms_ >= 0.0) {
    last_interval_min_ms_ = window_min_ms_;
    if (window_min_ms_ > options_.target_sojourn_ms) {
      ++bad_intervals_;
      good_intervals_ = 0;
      if (!forced_ && bad_intervals_ >= options_.escalate_after) {
        bad_intervals_ = 0;
        const int current = level_.load(std::memory_order_relaxed);
        if (current < options_.max_level) {
          ++escalations_;
          Metrics().escalations.Add(1);
          SetLevel(current + 1);
        }
      }
    } else {
      ++good_intervals_;
      bad_intervals_ = 0;
      if (!forced_ && good_intervals_ >= options_.recover_after) {
        good_intervals_ = 0;
        const int current = level_.load(std::memory_order_relaxed);
        if (current > 0) {
          ++recoveries_;
          Metrics().recoveries.Add(1);
          SetLevel(current - 1);
        }
      }
    }
  }
  window_min_ms_ = -1.0;
  window_end_us_ = now_us + options_.interval_ms * 1e3;
}

void OverloadController::SetLevel(int next) {
  const int from = level_.load(std::memory_order_relaxed);
  if (from == next) return;
  level_.store(next, std::memory_order_release);
  Metrics().level.Set(next);
  if (on_transition_) on_transition_(from, next);
}

bool OverloadController::ShouldShed(bool warm, bool expensive) const {
  const int level = level_.load(std::memory_order_acquire);
  if (level <= 0 || warm) return false;
  if (level >= options_.max_level) return true;  // Brownout: warm-only.
  return expensive;
}

double OverloadController::RetryAfterMs() const {
  const int level =
      std::max(1, std::min(3, level_.load(std::memory_order_acquire)));
  return options_.retry_after_floor_ms * static_cast<double>(1 << level);
}

void OverloadController::RecordShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
  Metrics().shed.Add(1);
}

void OverloadController::SetTransitionCallback(
    std::function<void(int, int)> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_transition_ = std::move(callback);
}

void OverloadController::ForceLevelForTest(int level) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (level < 0) {
    forced_ = false;
    return;
  }
  forced_ = true;
  bad_intervals_ = good_intervals_ = 0;
  SetLevel(std::min(options_.max_level, level));
}

OverloadController::Stats OverloadController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.level = level_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.escalations = escalations_;
  s.recoveries = recoveries_;
  s.last_interval_min_ms = last_interval_min_ms_;
  return s;
}

}  // namespace resilience
}  // namespace dagperf
