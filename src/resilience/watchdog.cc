#include "resilience/watchdog.h"

#include <chrono>
#include <vector>

#include "obs/metrics.h"

namespace dagperf {
namespace resilience {

Watchdog::Watchdog(WatchdogOptions options) : options_(std::move(options)) {}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t Watchdog::Watch(CancelToken token, double fire_after_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  watches_[id] = {std::move(token), Deadline::AfterSeconds(
                                        fire_after_seconds > 0
                                            ? fire_after_seconds
                                            : 0.0)};
  ++stats_.watched;
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  cv_.notify_all();
  return id;
}

void Watchdog::Unwatch(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  watches_.erase(id);
}

void Watchdog::Loop() {
  obs::Counter* counter = nullptr;
  if (!options_.counter_name.empty()) {
    counter = &obs::MetricsRegistry::Default().GetCounter(options_.counter_name);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           options_.poll_interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    std::vector<CancelToken> to_fire;
    for (auto it = watches_.begin(); it != watches_.end();) {
      if (it->second.fire_at.expired()) {
        to_fire.push_back(std::move(it->second.token));
        it = watches_.erase(it);
        ++stats_.fired;
      } else {
        ++it;
      }
    }
    if (!to_fire.empty()) {
      // Fire outside the lock: Cancel() is lock-free, but keeping the
      // critical section minimal keeps Watch/Unwatch latency flat.
      lock.unlock();
      for (const CancelToken& token : to_fire) token.Cancel();
      if (counter != nullptr) counter->Add(to_fire.size());
      lock.lock();
    }
  }
}

Watchdog::Stats Watchdog::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Watchdog::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watches_.size();
}

}  // namespace resilience
}  // namespace dagperf
