#include "resilience/circuit_breaker.h"

#include <algorithm>

#include "obs/metrics.h"

namespace dagperf {
namespace resilience {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)) {
  options_.open_seconds = std::max(0.0, options_.open_seconds);
  options_.half_open_probes = std::max(1, options_.half_open_probes);
  options_.half_open_successes = std::max(1, options_.half_open_successes);
  if (!options_.gauge_name.empty()) {
    gauge_ = &obs::MetricsRegistry::Default().GetGauge(options_.gauge_name);
    gauge_->Set(static_cast<double>(BreakerState::kClosed));
  }
}

void CircuitBreaker::TransitionLocked(BreakerState next) {
  if (state_ == next) return;
  const BreakerState from = state_;
  state_ = next;
  ++stats_.transitions;
  if (next == BreakerState::kOpen) {
    ++stats_.opens;
    reopen_ = Deadline::AfterSeconds(options_.open_seconds);
  }
  if (next == BreakerState::kHalfOpen || next == BreakerState::kClosed) {
    half_open_inflight_ = 0;
    half_open_successes_ = 0;
  }
  if (next == BreakerState::kClosed) consecutive_failures_ = 0;
  if (gauge_ != nullptr) gauge_->Set(static_cast<double>(next));
  // Transition history: the gauge above is last-write-only, so every change
  // also bumps the process-wide counter and notifies the owner's hook.
  static obs::Counter* transitions =
      &obs::MetricsRegistry::Default().GetCounter(
          "resilience.breaker_transitions");
  transitions->Add(1);
  if (options_.on_transition) options_.on_transition(from, next);
}

Status CircuitBreaker::Allow() {
  if (options_.failure_threshold <= 0) return Status::Ok();
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kOpen) {
    if (!reopen_.expired()) {
      ++stats_.rejected;
      return Status::Unavailable("circuit breaker open");
    }
    TransitionLocked(BreakerState::kHalfOpen);
  }
  if (state_ == BreakerState::kHalfOpen) {
    if (half_open_inflight_ >= options_.half_open_probes) {
      ++stats_.rejected;
      return Status::Unavailable("circuit breaker half-open, probes in flight");
    }
    ++half_open_inflight_;
  }
  ++stats_.allowed;
  return Status::Ok();
}

void CircuitBreaker::RecordSuccess() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.successes;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    half_open_inflight_ = std::max(0, half_open_inflight_ - 1);
    if (++half_open_successes_ >= options_.half_open_successes) {
      TransitionLocked(BreakerState::kClosed);
    }
  }
}

void CircuitBreaker::RecordFailure() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.failures;
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe proves the path is still unhealthy: straight back to
    // open, fresh cooldown.
    TransitionLocked(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    TransitionLocked(BreakerState::kOpen);
  }
}

void CircuitBreaker::Record(const Status& status) {
  if (status.ok()) {
    RecordSuccess();
    return;
  }
  if (CountsAsFailure(status.code())) {
    RecordFailure();
    return;
  }
  if (options_.failure_threshold <= 0) return;
  // Neutral outcome (client error, cancellation): release the probe slot a
  // half-open Allow() claimed without judging the path either way.
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    half_open_inflight_ = std::max(0, half_open_inflight_ - 1);
  }
}

bool CircuitBreaker::CountsAsFailure(ErrorCode code) {
  return code == ErrorCode::kInternal || code == ErrorCode::kDeadlineExceeded ||
         code == ErrorCode::kUnavailable;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace resilience
}  // namespace dagperf
