#include "resilience/fault.h"

#include <chrono>
#include <thread>

#include "common/parallel.h"

namespace dagperf {
namespace resilience {

namespace {

/// splitmix64 — the same finalising mixer common/rng uses for seeding;
/// repeated here so a decision is a pure hash, not a stateful stream.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashName(const std::string& name) {
  // FNV-1a: stable across runs and platforms (std::hash is neither).
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

/// Uniform double in [0, 1) from a 64-bit hash (top 53 bits).
double ToUnit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Status MakeInjected(const std::string& name, ErrorCode code) {
  const std::string message = "injected fault at " + name;
  switch (code) {
    case ErrorCode::kInternal:
      return Status::Internal(message);
    case ErrorCode::kUnavailable:
      return Status::Unavailable(message);
    case ErrorCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case ErrorCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case ErrorCode::kCancelled:
      return Status::Cancelled(message);
    case ErrorCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case ErrorCode::kNotFound:
      return Status::NotFound(message);
    case ErrorCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case ErrorCode::kOk:
      break;
  }
  return Status::Ok();
}

/// The pool.submit seam: common/parallel.h cannot depend on this layer, so
/// the injector installs this function pointer while armed. Status results
/// are ignored — Submit has no error channel — making pool.submit a
/// latency-only point.
void PoolSubmitHook() {
  static FaultPoint& point = FaultInjector::Default().GetPoint("pool.submit");
  (void)point.Evaluate();
}

}  // namespace

FaultDecision FaultPoint::Evaluate() {
  if (!armed_.load(std::memory_order_relaxed)) return {};

  FaultPlan plan;
  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    plan = plan_;
    seed = seed_;
  }
  const std::uint64_t n = evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (n < static_cast<std::uint64_t>(plan.skip_first)) return {};
  if (plan.max_fires > 0 &&
      fires_.load(std::memory_order_relaxed) >=
          static_cast<std::uint64_t>(plan.max_fires)) {
    return {};
  }
  if (ToUnit(Mix64(seed ^ HashName(name_) ^ n)) >= plan.probability) return {};

  fires_.fetch_add(1, std::memory_order_relaxed);
  if (plan.latency_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(plan.latency_ms));
  }
  FaultDecision decision;
  decision.fired = true;
  decision.status = MakeInjected(name_, plan.error);
  return decision;
}

FaultInjector& FaultInjector::Default() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultPoint& FaultInjector::GetPoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<FaultPoint>& slot = points_[name];
  if (slot == nullptr) slot = std::make_unique<FaultPoint>(name);
  return *slot;
}

Status FaultInjector::Configure(const std::string& name, const FaultPlan& plan) {
  if (name.empty()) return Status::InvalidArgument("fault point name is empty");
  if (plan.probability < 0 || plan.probability > 1) {
    return Status::InvalidArgument("fault probability must be in [0, 1]");
  }
  if (plan.latency_ms < 0 || plan.max_fires < 0 || plan.skip_first < 0) {
    return Status::InvalidArgument(
        "fault latency/max_fires/skip_first must be >= 0");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  plans_[name] = plan;
  std::unique_ptr<FaultPoint>& slot = points_[name];
  if (slot == nullptr) slot = std::make_unique<FaultPoint>(name);
  if (armed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> point_lock(slot->mutex_);
    slot->plan_ = plan;
    slot->seed_ = seed_;
    slot->armed_.store(plan.probability > 0, std::memory_order_release);
  }
  return Status::Ok();
}

void FaultInjector::Arm(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
  for (auto& [name, point] : points_) {
    const auto plan = plans_.find(name);
    const bool live = plan != plans_.end() && plan->second.probability > 0;
    {
      std::lock_guard<std::mutex> point_lock(point->mutex_);
      if (live) point->plan_ = plan->second;
      point->seed_ = seed;
    }
    // Re-arming restarts every deterministic schedule.
    point->evaluations_.store(0, std::memory_order_relaxed);
    point->fires_.store(0, std::memory_order_relaxed);
    point->armed_.store(live, std::memory_order_release);
  }
  armed_.store(true, std::memory_order_release);
  // pool.submit lives below this layer; reach it through the hook seam.
  if (plans_.count("pool.submit") > 0 &&
      plans_["pool.submit"].probability > 0) {
    SetThreadPoolSubmitHook(&PoolSubmitHook);
  }
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_release);
  for (auto& [name, point] : points_) {
    point->armed_.store(false, std::memory_order_release);
  }
  SetThreadPoolSubmitHook(nullptr);
}

std::uint64_t FaultInjector::seed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seed_;
}

void FaultInjector::ResetAll() {
  Disarm();
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  for (auto& [name, point] : points_) {
    point->evaluations_.store(0, std::memory_order_relaxed);
    point->fires_.store(0, std::memory_order_relaxed);
  }
}

std::vector<FaultInjector::PointStats> FaultInjector::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PointStats> stats;
  stats.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    stats.push_back({name, point->evaluations(), point->fires()});
  }
  return stats;
}

}  // namespace resilience
}  // namespace dagperf
