#include "resilience/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/metrics.h"

namespace dagperf {
namespace resilience {

namespace {

obs::Counter& RetriesCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Default().GetCounter("resilience.retries");
  return counter;
}

}  // namespace

RetryPolicy::RetryPolicy(RetryOptions options)
    : options_(options), rng_(options.seed) {
  options_.max_attempts = std::max(1, options_.max_attempts);
  options_.initial_backoff_ms = std::max(0.0, options_.initial_backoff_ms);
  options_.max_backoff_ms =
      std::max(options_.initial_backoff_ms, options_.max_backoff_ms);
  options_.multiplier = std::max(1.0, options_.multiplier);
}

double RetryPolicy::NextBackoffMs(int retry) {
  const double cap =
      std::min(options_.max_backoff_ms,
               options_.initial_backoff_ms *
                   std::pow(options_.multiplier, std::max(0, retry)));
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.Uniform(0.0, std::max(cap, 1e-9));
}

bool RetryPolicy::KeepTrying(const Status& status, int attempt,
                             const Budget& budget) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.attempts;
  }
  if (!IsRetryable(status.code())) return false;
  if (attempt >= options_.max_attempts || budget.exhausted()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.gave_up;
    return false;
  }
  double sleep_ms = NextBackoffMs(attempt - 1);
  // A server-provided retry_after_ms hint (overload / fair-share sheds) is a
  // floor, not a replacement: jitter still spreads clients above it, and the
  // budget cap below still wins — a hint can never starve the final attempt.
  sleep_ms = std::max(sleep_ms, status.retry_after_ms());
  // Never sleep past the deadline: cap to the remaining budget so the final
  // attempt still has wall-clock to run in.
  const double remaining_ms = budget.deadline.remaining_seconds() * 1e3;
  if (std::isfinite(remaining_ms)) {
    sleep_ms = std::min(sleep_ms, std::max(0.0, remaining_ms * 0.5));
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  if (budget.exhausted()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.gave_up;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.retries;
  }
  RetriesCounter().Add(1);
  return true;
}

Status RetryPolicy::RunStatus(const std::function<Status()>& op,
                              const Budget& budget) {
  Status status = op();
  int attempt = 1;
  while (!status.ok() && KeepTrying(status, attempt, budget)) {
    status = op();
    ++attempt;
  }
  return status;
}

RetryPolicy::Stats RetryPolicy::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace resilience
}  // namespace dagperf
