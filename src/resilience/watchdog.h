#ifndef DAGPERF_RESILIENCE_WATCHDOG_H_
#define DAGPERF_RESILIENCE_WATCHDOG_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/cancel.h"

namespace dagperf {
namespace resilience {

struct WatchdogOptions {
  /// How often the watchdog thread scans its watch list. Scans are O(watched)
  /// map walks under a mutex — cheap at service concurrency (hundreds).
  double poll_interval_ms = 20.0;
  /// Obs counter incremented per cancelled watch; empty = none. The service
  /// passes "service.watchdog_cancels".
  std::string counter_name;
};

/// Cancels registered CancelTokens that outlive their hard wall-clock bound.
/// The estimation service registers each request's *linked* token with a
/// fire time of `watchdog_multiple x deadline`: cooperative deadline checks
/// normally end the request long before, so the watchdog firing means the
/// request is stuck somewhere that is not polling its budget — the watchdog
/// is the backstop that turns a hang into a DEADLINE_EXCEEDED.
///
/// The poll thread starts lazily on the first Watch() and exits on
/// destruction. Tokens are fired, never waited on: cancellation stays
/// cooperative, so a truly wedged (non-polling) task is not reaped — the
/// watchdog bounds *well-behaved-but-slow* work.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts watching `token`; it is Cancel()ed if still registered after
  /// `fire_after_seconds` (<= 0 fires on the next scan). Returns an id for
  /// Unwatch. Inert tokens are accepted and counted but cancel nothing.
  std::uint64_t Watch(CancelToken token, double fire_after_seconds);

  /// Stops watching (normal completion path). Safe on unknown/fired ids.
  void Unwatch(std::uint64_t id);

  struct Stats {
    std::uint64_t watched = 0;
    std::uint64_t fired = 0;
  };
  Stats stats() const;

  /// Currently registered watches (test hook).
  std::size_t pending() const;

 private:
  struct Watched {
    CancelToken token;
    Deadline fire_at;
  };

  void Loop();

  const WatchdogOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Watched> watches_;
  std::uint64_t next_id_ = 1;
  Stats stats_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace resilience
}  // namespace dagperf

#endif  // DAGPERF_RESILIENCE_WATCHDOG_H_
