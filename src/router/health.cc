#include "router/health.h"

namespace dagperf {
namespace router {

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kUp:
      return "up";
    case ShardState::kDraining:
      return "draining";
    case ShardState::kDown:
      return "down";
  }
  return "unknown";
}

namespace {
resilience::CircuitBreakerOptions BreakerOptionsFrom(
    const ShardHealthOptions& options) {
  resilience::CircuitBreakerOptions breaker;
  breaker.failure_threshold = options.breaker_failure_threshold;
  breaker.open_seconds = options.breaker_open_seconds;
  breaker.gauge_name = options.breaker_gauge_name;
  return breaker;
}
}  // namespace

ShardHealth::ShardHealth(const ShardHealthOptions& options)
    : options_(options), breaker_(BreakerOptionsFrom(options)) {
  if (options_.readmit_quorum < 1) options_.readmit_quorum = 1;
}

void ShardHealth::MarkDown() {
  state_ = ShardState::kDown;
  probe_streak_ = 0;
}

void ShardHealth::MarkDraining() {
  state_ = ShardState::kDraining;
  probe_streak_ = 0;
}

bool ShardHealth::FeedBreaker(bool success) {
  // Allow() is the breaker's bookkeeping entry point; a rejection while the
  // cooldown runs means "still considered failing" and records nothing (the
  // contract pairs every Ok Allow with exactly one Record).
  if (!breaker_.Allow().ok()) return false;
  if (success) {
    breaker_.RecordSuccess();
  } else {
    breaker_.RecordFailure();
  }
  return true;
}

bool ShardHealth::RecordProbe(bool ok) {
  FeedBreaker(ok);
  if (!ok) {
    probe_streak_ = 0;
    if (state_ == ShardState::kUp &&
        breaker_.state() == resilience::BreakerState::kOpen) {
      MarkDown();
    }
    return false;
  }
  ++probe_streak_;
  if (state_ == ShardState::kDown &&
      probe_streak_ >= options_.readmit_quorum) {
    state_ = ShardState::kUp;
    return true;
  }
  return false;
}

bool ShardHealth::RecordDataPath(const Status& status) {
  FeedBreaker(status.ok());
  if (!status.ok() && state_ == ShardState::kUp &&
      breaker_.state() == resilience::BreakerState::kOpen) {
    MarkDown();
    return true;
  }
  return false;
}

}  // namespace router
}  // namespace dagperf
