#ifndef DAGPERF_ROUTER_RING_H_
#define DAGPERF_ROUTER_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dagperf {
namespace router {

/// A consistent-hash ring with virtual nodes. Shards are identified by
/// stable string ids ("shard-0", ...) and keys are routed by hashing them
/// onto the same 64-bit ring; each shard owns the arc between its virtual
/// nodes and their predecessors. Ownership depends only on the hashed
/// strings, so it is deterministic across process restarts — a restarted
/// router routes every key to the same shard as its predecessor did, which
/// is what lets each shard's memo / PrefixCheckpointStore stay hot for its
/// key range.
///
/// Removing one of N shards moves only that shard's arcs (≈ 1/N of the key
/// space) to ring successors; re-adding it moves exactly those arcs back.
/// Virtual nodes smooth the per-shard share: with the default 128 vnodes
/// the share is within ~20% of uniform for small N (tested at N ∈ {2,4,8}).
///
/// Not thread-safe; the router guards its ring with the same mutex that
/// guards shard state.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int vnodes_per_shard = 128);

  /// FNV-1a 64-bit — the same deterministic hash family the snapshot
  /// checksum uses. Exposed so tests can reason about placement.
  static std::uint64_t Hash(const std::string& s);

  /// Adding an already-present shard is a no-op (readmission after a
  /// restart does not reshuffle anything beyond the shard's own arcs).
  void AddShard(const std::string& shard_id);
  void RemoveShard(const std::string& shard_id);
  bool HasShard(const std::string& shard_id) const;

  /// The shard owning `key`, or "" when the ring is empty.
  std::string OwnerOf(const std::string& key) const;

  /// The next distinct shard after `key`'s owner, skipping ids in
  /// `excluding` — the failover target when the owner is down. Returns ""
  /// when no eligible shard remains.
  std::string SuccessorOf(const std::string& key,
                          const std::vector<std::string>& excluding) const;

  std::vector<std::string> shard_ids() const;
  int size() const { return static_cast<int>(shard_ids_.size()); }
  int vnodes_per_shard() const { return vnodes_; }

 private:
  int vnodes_;
  std::map<std::uint64_t, std::string> ring_;  // vnode position -> shard id
  std::vector<std::string> shard_ids_;
};

}  // namespace router
}  // namespace dagperf

#endif  // DAGPERF_ROUTER_RING_H_
