#include "router/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <utility>

namespace dagperf {
namespace router {

ShardProcess::ShardProcess(ShardProcessOptions options)
    : options_(std::move(options)) {}

ShardProcess::~ShardProcess() {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    (void)WaitExit(5.0);
  }
}

Status ShardProcess::Start() {
  if (pid_ > 0 && Alive()) {
    return Status::FailedPrecondition("shard " + options_.shard_id +
                                      " already running");
  }
  if (options_.command.empty()) {
    return Status::InvalidArgument("shard " + options_.shard_id +
                                   " has an empty command");
  }
  if (!options_.port_file.empty()) ::unlink(options_.port_file.c_str());
  port_ = 0;

  std::vector<char*> argv;
  argv.reserve(options_.command.size() + 1);
  for (const std::string& arg : options_.command) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t child = ::fork();
  if (child < 0) {
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (child == 0) {
    // Child. Detach stdin; optionally redirect stderr to the shard log so
    // N children do not interleave on the router's terminal.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::close(devnull);
    }
    if (!options_.stderr_file.empty()) {
      const int log = ::open(options_.stderr_file.c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log >= 0) {
        ::dup2(log, STDERR_FILENO);
        ::close(log);
      }
    }
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
    _exit(127);
  }

  pid_ = child;
  ++launches_;
  Status ready = WaitForPortFile();
  if (!ready.ok()) {
    Kill();
    (void)WaitExit(5.0);
    return ready;
  }
  return Status::Ok();
}

Status ShardProcess::Restart() {
  if (pid_ > 0) {
    if (Alive()) {
      ::kill(pid_, SIGKILL);
    }
    (void)WaitExit(5.0);
  }
  pid_ = -1;
  return Start();
}

bool ShardProcess::Alive() {
  if (pid_ <= 0) return false;
  int wstatus = 0;
  const pid_t reaped = ::waitpid(pid_, &wstatus, WNOHANG);
  if (reaped == pid_) {
    pid_ = -1;
    return false;
  }
  return reaped == 0;
}

void ShardProcess::Terminate() {
  if (pid_ > 0) ::kill(pid_, SIGTERM);
}

void ShardProcess::Kill() {
  if (pid_ > 0) ::kill(pid_, SIGKILL);
}

bool ShardProcess::WaitExit(double timeout_seconds) {
  if (pid_ <= 0) return true;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    int wstatus = 0;
    const pid_t reaped = ::waitpid(pid_, &wstatus, WNOHANG);
    if (reaped == pid_) {
      pid_ = -1;
      return true;
    }
    if (reaped < 0 && errno == ECHILD) {
      pid_ = -1;
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

Status ShardProcess::WaitForPortFile() {
  if (options_.port_file.empty()) {
    return Status::InvalidArgument("shard " + options_.shard_id +
                                   " has no port_file configured");
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options_.start_timeout_seconds);
  for (;;) {
    {
      std::ifstream in(options_.port_file);
      int port = 0;
      if (in && (in >> port) && port > 0) {
        port_ = port;
        return Status::Ok();
      }
    }
    if (!Alive()) {
      return Status::Unavailable("shard " + options_.shard_id +
                                 " exited before publishing its port");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("shard " + options_.shard_id +
                                      " did not publish " +
                                      options_.port_file + " in time");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace router
}  // namespace dagperf
