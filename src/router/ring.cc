#include "router/ring.h"

#include <algorithm>

namespace dagperf {
namespace router {

ConsistentHashRing::ConsistentHashRing(int vnodes_per_shard)
    : vnodes_(vnodes_per_shard < 1 ? 1 : vnodes_per_shard) {}

std::uint64_t ConsistentHashRing::Hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  // Raw FNV-1a has weak avalanche on the trailing bytes: route keys that
  // differ only in a final digit ("...#TS-Q1", "...#TS-Q2", ...) land within
  // ~prime of each other — a microscopic band on a 64-bit ring, so one shard
  // would swallow whole key families. The murmur3 fmix64 finalizer restores
  // full-width dispersion while staying deterministic.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

void ConsistentHashRing::AddShard(const std::string& shard_id) {
  if (HasShard(shard_id)) return;
  for (int v = 0; v < vnodes_; ++v) {
    const std::uint64_t pos = Hash(shard_id + "#" + std::to_string(v));
    // Collisions across shards are astronomically unlikely but must stay
    // deterministic: first writer keeps the slot.
    ring_.emplace(pos, shard_id);
  }
  shard_ids_.push_back(shard_id);
  std::sort(shard_ids_.begin(), shard_ids_.end());
}

void ConsistentHashRing::RemoveShard(const std::string& shard_id) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == shard_id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  shard_ids_.erase(
      std::remove(shard_ids_.begin(), shard_ids_.end(), shard_id),
      shard_ids_.end());
}

bool ConsistentHashRing::HasShard(const std::string& shard_id) const {
  return std::find(shard_ids_.begin(), shard_ids_.end(), shard_id) !=
         shard_ids_.end();
}

std::string ConsistentHashRing::OwnerOf(const std::string& key) const {
  if (ring_.empty()) return "";
  auto it = ring_.upper_bound(Hash(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::string ConsistentHashRing::SuccessorOf(
    const std::string& key, const std::vector<std::string>& excluding) const {
  if (ring_.empty()) return "";
  const std::string owner = OwnerOf(key);
  auto excluded = [&](const std::string& id) {
    return id == owner || std::find(excluding.begin(), excluding.end(), id) !=
                              excluding.end();
  };
  auto it = ring_.upper_bound(Hash(key));
  if (it == ring_.end()) it = ring_.begin();
  // Walk clockwise past the owner's arc to the next distinct, non-excluded
  // shard. Bounded by one full revolution.
  for (std::size_t steps = 0; steps < ring_.size(); ++steps) {
    if (!excluded(it->second)) return it->second;
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return "";
}

std::vector<std::string> ConsistentHashRing::shard_ids() const {
  return shard_ids_;
}

}  // namespace router
}  // namespace dagperf
