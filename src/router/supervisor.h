#ifndef DAGPERF_ROUTER_SUPERVISOR_H_
#define DAGPERF_ROUTER_SUPERVISOR_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dagperf {
namespace router {

/// How one shard child is launched. The command is a full argv — typically
///   {<dagperf binary>, "serve", "--port", "0", "--port-file", <port_file>,
///    "--shard-id", <shard_id>, "--snapshot-dir", <dir>, ...}
/// so a restart rejoins warm: `--snapshot-dir` makes the child restore its
/// DPWARM01 snapshot at boot and keep saving periodically, and `--port-file`
/// is how the supervisor learns the ephemeral port the child bound.
struct ShardProcessOptions {
  std::string shard_id;
  std::vector<std::string> command;
  /// File the child writes its bound port to; unlinked before every launch
  /// so a stale file from the previous incarnation cannot be mistaken for
  /// the new port.
  std::string port_file;
  /// How long Start() waits for the port file before declaring the launch
  /// failed (covers snapshot restore time on warm restarts).
  double start_timeout_seconds = 30.0;
  /// Child stderr is redirected here when non-empty (appended, so restarts
  /// share one log); "" inherits the router's stderr.
  std::string stderr_file;
};

/// Owns one shard child process: fork/exec, port discovery, liveness via
/// waitpid(WNOHANG), and kill/terminate for failover tests and graceful
/// drain. Restart() relaunches the same command — the snapshot dir baked
/// into the argv is what makes the restart warm. Not thread-safe; the
/// router's monitor thread is the only caller after startup.
class ShardProcess {
 public:
  explicit ShardProcess(ShardProcessOptions options);
  ~ShardProcess();

  ShardProcess(const ShardProcess&) = delete;
  ShardProcess& operator=(const ShardProcess&) = delete;

  /// Launches the child and waits for its port file. On failure the child
  /// (if it was forked) is killed and reaped.
  Status Start();

  /// Reaps the dead child if needed and launches a fresh one.
  Status Restart();

  /// False once the child has exited (reaps it as a side effect).
  bool Alive();

  /// SIGTERM — the serve process drains, saves its final snapshot, and
  /// exits; pair with WaitExit.
  void Terminate();

  /// SIGKILL — no snapshot save, no goodbye; what the chaos test does.
  void Kill();

  /// Waits up to `timeout_seconds` for the child to exit; returns true when
  /// it did (or was never running).
  bool WaitExit(double timeout_seconds);

  pid_t pid() const { return pid_; }
  int port() const { return port_; }
  const std::string& shard_id() const { return options_.shard_id; }
  std::uint64_t launches() const { return launches_; }

 private:
  Status WaitForPortFile();

  ShardProcessOptions options_;
  pid_t pid_ = -1;
  int port_ = 0;
  std::uint64_t launches_ = 0;
};

}  // namespace router
}  // namespace dagperf

#endif  // DAGPERF_ROUTER_SUPERVISOR_H_
