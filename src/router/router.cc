#include "router/router.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.h"
#include "dagperf/error_codes.h"
#include "obs/metrics.h"
#include "resilience/retry.h"
#include "service/line_client.h"

namespace dagperf {
namespace router {

namespace {

constexpr int kPollIntervalMs = 20;
constexpr int kMaxWriteStalls = 64;
/// Pooled idle connections kept per shard; beyond this, finished
/// connections are simply closed.
constexpr int kMaxIdlePerShard = 8;

struct RouterMetrics {
  obs::Counter& requests;
  obs::Counter& reroutes;
  obs::Counter& restarts;
  obs::Counter& sheds;
  obs::Counter& upstream_errors;
  obs::Histogram& failover_latency_us;
};

RouterMetrics& Metrics() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  static RouterMetrics metrics{
      registry.GetCounter("router.requests"),
      registry.GetCounter("router.reroutes"),
      registry.GetCounter("router.restarts"),
      registry.GetCounter("router.sheds"),
      registry.GetCounter("router.upstream_errors"),
      registry.GetHistogram("router.failover_latency_us"),
  };
  return metrics;
}

/// Same MSG_NOSIGNAL bounded-retry send as the serve transport.
bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  int stalls = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR && ++stalls < kMaxWriteStalls) continue;
      return false;
    }
    if (n == 0) {
      if (++stalls >= kMaxWriteStalls) return false;
      continue;
    }
    stalls = 0;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Error line in the wire-protocol shape (protocol.h): code/retryable/
/// message, retry_after_ms only when the server has a real hint. `id_json`
/// is the request's id token re-serialised verbatim ("null" when absent).
std::string ErrorLine(const std::string& id_json, const std::string& code,
                      bool retryable, const std::string& message,
                      double retry_after_ms) {
  Json error = Json::MakeObject();
  error.Set("code", Json::MakeString(code));
  error.Set("retryable", Json::MakeBool(retryable));
  error.Set("message", Json::MakeString(message));
  if (retry_after_ms > 0) {
    error.Set("retry_after_ms", Json::MakeNumber(retry_after_ms));
  }
  return "{\"id\":" + id_json + ",\"ok\":false,\"error\":" +
         error.DumpCompact() + "}";
}

std::string ErrorLine(const std::string& id_json, const Status& status) {
  return ErrorLine(id_json, ErrorCodeName(status.code()),
                   IsRetryable(status.code()), status.message(),
                   status.retry_after_ms());
}

std::string OkLine(const std::string& id_json, const std::string& result_json) {
  return "{\"id\":" + id_json + ",\"ok\":true,\"result\":" + result_json + "}";
}

ShardProcessOptions ProcessOptionsFrom(const ShardSpec& spec) {
  ShardProcessOptions options;
  options.shard_id = spec.shard_id;
  options.command = spec.command;
  options.port_file = spec.port_file;
  options.start_timeout_seconds = spec.start_timeout_seconds;
  options.stderr_file = spec.stderr_file;
  return options;
}

}  // namespace

struct Router::ShardRuntime {
  ShardRuntime(const ShardSpec& spec, const ShardHealthOptions& health_options)
      : process(ProcessOptionsFrom(spec)),
        health(health_options),
        shard_id(spec.shard_id) {}

  /// Owned by the monitor thread after Serve() starts it; the data path
  /// only reads the mirrored port/pid/launches fields under the router
  /// mutex.
  ShardProcess process;
  ShardHealth health;  // guarded by Router::mutex_
  std::string shard_id;

  // Guarded by Router::mutex_.
  int port = 0;
  pid_t pid = -1;
  std::uint64_t launches = 0;
  /// Bumped whenever the shard goes down: pooled connections from an older
  /// epoch belong to a dead process and are discarded instead of reused.
  std::uint64_t epoch = 0;
  std::vector<std::unique_ptr<protocol::LineClient>> idle;
  int in_flight = 0;
  double down_since_us = 0.0;

  // Monitor-thread private.
  double backoff_seconds = 0.0;
  double next_restart_us = 0.0;
  protocol::LineClient probe;
  int probe_port = 0;

  obs::Gauge* state_gauge = nullptr;
};

Router::Router(std::vector<ShardSpec> shards, RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.vnodes),
      halt_(CancelToken::LinkedTo({options_.stop})) {
  ShardHealthOptions health_options;
  health_options.readmit_quorum = options_.readmit_quorum;
  health_options.breaker_failure_threshold = options_.breaker_failure_threshold;
  health_options.breaker_open_seconds = options_.breaker_open_seconds;
  for (const ShardSpec& spec : shards) {
    shards_.push_back(std::make_unique<ShardRuntime>(spec, health_options));
    ShardRuntime& rt = *shards_.back();
    rt.state_gauge = &obs::MetricsRegistry::Default().GetGauge(
        "router.shard_state." + spec.shard_id);
    rt.state_gauge->Set(static_cast<double>(ShardState::kDown));
  }
}

Router::~Router() {
  halt_.Cancel();
  if (monitor_.joinable()) monitor_.join();
  // ShardProcess destructors SIGKILL any still-running children.
}

std::string Router::RouteKey(const std::string& cluster,
                             const std::string& workflow) {
  // Mirrors the warm stores' key layout: both the memo fingerprint and the
  // checkpoint global fingerprint start with `scope + '#'` (scope defaults
  // to the cluster name), so everything a shard computes for one
  // (cluster, workflow) pair shares one ring position.
  return (cluster.empty() ? "default" : cluster) + "#" + workflow;
}

std::string Router::OwnerOf(const std::string& route_key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.OwnerOf(route_key);
}

std::vector<ShardInfo> Router::Shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ShardInfo> out;
  out.reserve(shards_.size());
  for (const auto& rt : shards_) {
    ShardInfo info;
    info.shard_id = rt->shard_id;
    info.state = rt->health.state();
    info.port = rt->port;
    info.pid = rt->pid;
    info.launches = rt->launches;
    out.push_back(std::move(info));
  }
  return out;
}

Router::ShardRuntime* Router::FindShard(const std::string& shard_id) const {
  for (const auto& rt : shards_) {
    if (rt->shard_id == shard_id) return rt.get();
  }
  return nullptr;
}

void Router::MarkShardDownLocked(ShardRuntime& shard, double now_us,
                                 const std::string& why) {
  const bool was_down = shard.health.state() == ShardState::kDown &&
                        !ring_.HasShard(shard.shard_id);
  shard.health.MarkDown();
  ring_.RemoveShard(shard.shard_id);
  ++shard.epoch;
  shard.idle.clear();
  shard.state_gauge->Set(static_cast<double>(ShardState::kDown));
  if (!was_down) {
    shard.down_since_us = now_us;
    flight_.AddEvent("shard_down", shard.shard_id + ": " + why);
  }
}

void Router::ReadmitShardLocked(ShardRuntime& shard, double now_us) {
  ring_.AddShard(shard.shard_id);
  shard.state_gauge->Set(static_cast<double>(ShardState::kUp));
  if (shard.down_since_us > 0) {
    // Failover latency: death (or demotion) to readmission, covering the
    // supervisor restart, snapshot restore, and the probe quorum.
    Metrics().failover_latency_us.Record(now_us - shard.down_since_us);
    shard.down_since_us = 0.0;
  }
  flight_.AddEvent("shard_up", shard.shard_id + " readmitted on port " +
                                   std::to_string(shard.port));
}

void Router::RestartShard(ShardRuntime& shard, double now_us) {
  if (now_us < shard.next_restart_us || halt_.cancelled()) return;
  // Blocking (bounded by the spec's start timeout): a fleet rarely loses
  // two shards in one window, and probes resume as soon as the child has
  // published its port.
  const Status restarted = shard.process.Restart();
  if (restarted.ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shard.port = shard.process.port();
      shard.pid = shard.process.pid();
      shard.launches = shard.process.launches();
    }
    shard.backoff_seconds = 0.0;
    shard.next_restart_us = 0.0;
    Metrics().restarts.Add(1);
    {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      ++summary_.restarts;
    }
    flight_.AddEvent("shard_restart",
                     shard.shard_id + " relaunched on port " +
                         std::to_string(shard.process.port()) +
                         " (launch " + std::to_string(shard.process.launches()) +
                         ")");
  } else {
    shard.backoff_seconds =
        shard.backoff_seconds <= 0
            ? options_.restart_backoff_initial_seconds
            : std::min(shard.backoff_seconds * 2,
                       options_.restart_backoff_max_seconds);
    shard.next_restart_us = now_us + shard.backoff_seconds * 1e6;
    flight_.AddEvent("shard_restart_failed",
                     shard.shard_id + ": " + restarted.message());
  }
}

void Router::ProbeShard(ShardRuntime& shard, double now_us) {
  int port;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    port = shard.port;
  }
  bool ok = false;
  if (port > 0) {
    if (shard.probe_port != port || !shard.probe.connected()) {
      shard.probe.Close();
      if (shard.probe.Connect(port).ok()) shard.probe_port = port;
    }
    if (shard.probe.connected()) {
      Result<std::string> response = shard.probe.Call(
          R"({"op":"stats","id":"probe"})", options_.probe_timeout_seconds);
      if (response.ok()) {
        Result<Json> parsed = Json::Parse(response.value());
        if (parsed.ok() && parsed.value().GetBool("ok", false)) {
          const Json* result = parsed.value().Get("result");
          // A shard that reports itself draining is alive but must not be
          // readmitted — it is on its way out.
          ok = result == nullptr || result->GetBool("ready", true);
        }
      } else {
        shard.probe.Close();
      }
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const ShardState before = shard.health.state();
  const bool readmitted = shard.health.RecordProbe(ok);
  if (readmitted) {
    ReadmitShardLocked(shard, now_us);
  } else if (before == ShardState::kUp &&
             shard.health.state() == ShardState::kDown) {
    MarkShardDownLocked(shard, now_us, "probe failures opened the breaker");
  }
}

void Router::MonitorLoop() {
  double next_probe_us = 0.0;
  while (!halt_.cancelled()) {
    const double now_us = obs::MonotonicUs();
    const bool probing = now_us >= next_probe_us;
    if (probing) {
      next_probe_us = now_us + options_.probe_interval_seconds * 1e6;
    }
    for (auto& rt : shards_) {
      ShardState state;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        state = rt->health.state();
      }
      if (state == ShardState::kDraining) continue;
      if (!rt->process.Alive()) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          MarkShardDownLocked(*rt, now_us, "process exited");
        }
        RestartShard(*rt, now_us);
        continue;
      }
      if (probing) ProbeShard(*rt, now_us);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::string Router::RouteAndForward(const std::string& line,
                                    const std::string& key,
                                    const std::string& id_json) {
  std::vector<std::string> failed;
  bool rerouted = false;

  auto attempt = [&]() -> Result<std::string> {
    std::string target;
    ShardRuntime* rt = nullptr;
    int port = 0;
    std::uint64_t epoch = 0;
    std::unique_ptr<protocol::LineClient> conn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      target = ring_.OwnerOf(key);
      if (!target.empty() &&
          std::find(failed.begin(), failed.end(), target) != failed.end()) {
        target = ring_.SuccessorOf(key, failed);
      }
      if (target.empty()) {
        return Status::Unavailable("no shard up for this key range")
            .WithRetryAfterMs(options_.retry_after_ms);
      }
      rt = FindShard(target);
      if (rt == nullptr) {
        return Status::Internal("ring referenced unknown shard " + target);
      }
      if (!failed.empty()) rerouted = true;
      if (rt->in_flight >= options_.max_in_flight_per_shard) {
        Metrics().sheds.Add(1);
        {
          // Shed, not failover: the shard is healthy, just saturated —
          // rerouting would scatter its warm key range across the fleet.
          std::lock_guard<std::mutex> summary_lock(summary_mutex_);
          ++summary_.sheds;
        }
        return Status::Unavailable("shard " + target +
                                   " at in-flight capacity")
            .WithRetryAfterMs(options_.retry_after_ms);
      }
      ++rt->in_flight;
      port = rt->port;
      epoch = rt->epoch;
      if (!rt->idle.empty()) {
        conn = std::move(rt->idle.back());
        rt->idle.pop_back();
      }
    }

    auto finish = [&](std::unique_ptr<protocol::LineClient> reusable,
                      const Status& outcome) {
      std::lock_guard<std::mutex> lock(mutex_);
      --rt->in_flight;
      if (reusable && rt->epoch == epoch &&
          static_cast<int>(rt->idle.size()) < kMaxIdlePerShard) {
        rt->idle.push_back(std::move(reusable));
      }
      const bool demoted = rt->health.RecordDataPath(outcome);
      if (demoted) {
        MarkShardDownLocked(*rt, obs::MonotonicUs(),
                            "data-path failures opened the breaker");
      }
    };

    if (!conn) {
      conn = std::make_unique<protocol::LineClient>();
      const Status connected = conn->Connect(port);
      if (!connected.ok()) {
        finish(nullptr, connected);
        Metrics().upstream_errors.Add(1);
        failed.push_back(target);
        return Status::Unavailable("shard " + target + " unreachable: " +
                                   connected.message());
      }
    }

    Result<std::string> response =
        conn->Call(line, options_.upstream_timeout_seconds);
    if (!response.ok()) {
      // Shard died (or hung) with this request in flight. The estimate is
      // idempotent, so the retry policy reroutes it to the ring successor;
      // when attempts run out the client sees retryable UNAVAILABLE.
      finish(nullptr, response.status());
      Metrics().upstream_errors.Add(1);
      failed.push_back(target);
      return Status::Unavailable("shard " + target + " failed mid-request: " +
                                 response.status().message());
    }
    finish(std::move(conn), Status::Ok());
    return std::move(response.value());
  };

  resilience::RetryOptions retry_options;
  retry_options.max_attempts = options_.max_attempts;
  retry_options.initial_backoff_ms = 2.0;
  retry_options.max_backoff_ms = 50.0;
  resilience::RetryPolicy policy(retry_options);
  Result<std::string> result = policy.Run<std::string>(attempt);

  if (rerouted) {
    Metrics().reroutes.Add(1);
    {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      ++summary_.reroutes;
    }
    flight_.AddEvent("reroute", "key " + key + " rerouted off " +
                                    (failed.empty() ? "?" : failed.front()));
  }
  if (!result.ok()) {
    Status final_status =
        Status::Unavailable(result.status().message());
    final_status.set_retry_after_ms(result.status().retry_after_ms() > 0
                                        ? result.status().retry_after_ms()
                                        : options_.retry_after_ms);
    return ErrorLine(id_json, final_status);
  }
  return result.value();
}

std::string Router::StatsFanout(const std::string& id_json) {
  struct Row {
    std::string shard_id;
    ShardState state = ShardState::kDown;
    int port = 0;
    std::uint64_t launches = 0;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& rt : shards_) {
      rows.push_back(
          {rt->shard_id, rt->health.state(), rt->port, rt->launches});
    }
  }

  Json shards = Json::MakeArray();
  double submitted = 0, completed = 0, failed = 0, shed = 0;
  double expired = 0, queue_depth = 0;
  int up = 0;
  for (const Row& row : rows) {
    Json entry = Json::MakeObject();
    entry.Set("shard_id", Json::MakeString(row.shard_id));
    entry.Set("state", Json::MakeString(ShardStateName(row.state)));
    entry.Set("port", Json::MakeNumber(row.port));
    entry.Set("launches", Json::MakeNumber(static_cast<double>(row.launches)));
    bool reachable = false;
    if (row.state != ShardState::kDown && row.port > 0) {
      protocol::LineClient client;
      if (client.Connect(row.port).ok()) {
        Result<std::string> response = client.Call(
            R"({"op":"stats","id":"fanout"})", options_.probe_timeout_seconds);
        if (response.ok()) {
          Result<Json> parsed = Json::Parse(response.value());
          if (parsed.ok() && parsed.value().GetBool("ok", false)) {
            const Json* result = parsed.value().Get("result");
            if (result != nullptr) {
              reachable = true;
              submitted += result->GetNumber("submitted", 0);
              completed += result->GetNumber("completed", 0);
              failed += result->GetNumber("failed", 0);
              shed += result->GetNumber("shed", 0);
              expired += result->GetNumber("expired_in_queue", 0);
              queue_depth += result->GetNumber("queue_depth", 0);
              entry.Set("stats", *result);
            }
          }
        }
      }
    }
    if (row.state == ShardState::kUp) ++up;
    entry.Set("reachable", Json::MakeBool(reachable));
    shards.Append(std::move(entry));
  }

  Json fleet = Json::MakeObject();
  fleet.Set("submitted", Json::MakeNumber(submitted));
  fleet.Set("completed", Json::MakeNumber(completed));
  fleet.Set("failed", Json::MakeNumber(failed));
  fleet.Set("shed", Json::MakeNumber(shed));
  fleet.Set("expired_in_queue", Json::MakeNumber(expired));
  fleet.Set("queue_depth", Json::MakeNumber(queue_depth));

  Json router_stats = Json::MakeObject();
  {
    std::lock_guard<std::mutex> lock(summary_mutex_);
    router_stats.Set("requests",
                     Json::MakeNumber(static_cast<double>(summary_.requests)));
    router_stats.Set("reroutes",
                     Json::MakeNumber(static_cast<double>(summary_.reroutes)));
    router_stats.Set("restarts",
                     Json::MakeNumber(static_cast<double>(summary_.restarts)));
    router_stats.Set("sheds",
                     Json::MakeNumber(static_cast<double>(summary_.sheds)));
  }
  router_stats.Set("shards_up", Json::MakeNumber(up));
  router_stats.Set("shards_total",
                   Json::MakeNumber(static_cast<double>(rows.size())));

  Json result = Json::MakeObject();
  result.Set("fleet", std::move(fleet));
  result.Set("shards", std::move(shards));
  result.Set("router", std::move(router_stats));
  return OkLine(id_json, result.DumpCompact());
}

std::string Router::HandleRequest(const std::string& line,
                                  bool* drain_requested) {
  Metrics().requests.Add(1);
  {
    std::lock_guard<std::mutex> lock(summary_mutex_);
    ++summary_.requests;
  }
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) {
    return ErrorLine("null", "PARSE_ERROR", false,
                     "request is not valid JSON: " + parsed.status().message(),
                     0);
  }
  const Json& request = parsed.value();
  const Json* id = request.Get("id");
  const std::string id_json = id == nullptr ? "null" : id->DumpCompact();
  const std::string op = request.GetString("op", "");

  if (op == "estimate" || op == "explain" || op == "sweep") {
    const std::string key = RouteKey(request.GetString("cluster", "default"),
                                     request.GetString("workflow", ""));
    return RouteAndForward(line, key, id_json);
  }
  if (op == "stats") return StatsFanout(id_json);
  if (op == "metrics") {
    return OkLine(id_json, obs::MetricsRegistry::Default().ToJson());
  }
  if (op == "flightrecorder") return OkLine(id_json, flight_.ToJson());
  if (op == "drain") {
    *drain_requested = true;
    Json result = Json::MakeObject();
    result.Set("draining", Json::MakeBool(true));
    result.Set("shards", Json::MakeNumber(static_cast<double>(shards_.size())));
    return OkLine(id_json, result.DumpCompact());
  }
  return ErrorLine(
      id_json, "INVALID_ARGUMENT", false,
      "unknown router op '" + op +
          "' (router ops: estimate, explain, sweep, stats, metrics, "
          "flightrecorder, drain)",
      0);
}

void Router::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool discarding = false;
  while (!halt_.cancelled()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t newline;
    bool closing = false;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (discarding) {
        discarding = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options_.max_line_bytes) {
        if (!SendAll(fd, ErrorLine("null", "INVALID_ARGUMENT", false,
                                   "request line exceeds " +
                                       std::to_string(options_.max_line_bytes) +
                                       " bytes",
                                   0) +
                             "\n")) {
          closing = true;
          break;
        }
        continue;
      }
      bool drain_requested = false;
      const std::string response = HandleRequest(line, &drain_requested);
      if (!SendAll(fd, response + "\n")) {
        closing = true;
        break;
      }
      if (drain_requested) {
        {
          std::lock_guard<std::mutex> lock(summary_mutex_);
          summary_.drained = true;
        }
        halt_.Cancel();
        closing = true;
        break;
      }
    }
    if (closing) break;
    if (buffer.size() > options_.max_line_bytes) {
      if (!discarding &&
          !SendAll(fd, ErrorLine("null", "INVALID_ARGUMENT", false,
                                 "request line exceeds " +
                                     std::to_string(options_.max_line_bytes) +
                                     " bytes",
                                 0) +
                           "\n")) {
        break;
      }
      buffer.clear();
      discarding = true;
    }
  }
  ::close(fd);
}

void Router::DrainFleet() {
  for (auto& rt : shards_) {
    int port;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (rt->health.state() == ShardState::kDraining) continue;
      rt->health.MarkDraining();
      ring_.RemoveShard(rt->shard_id);
      rt->state_gauge->Set(static_cast<double>(ShardState::kDraining));
      port = rt->port;
    }
    flight_.AddEvent("shard_drain", rt->shard_id + " draining");
    // Snapshot handoff: the drain verb makes the shard save its final
    // DPWARM01 snapshot and exit its serve loop; SIGTERM is the backstop
    // for a shard that is not serving its protocol (crashed mid-restart).
    if (port > 0) {
      protocol::LineClient client;
      if (client.Connect(port).ok()) {
        (void)client.Call(R"({"op":"drain","id":"drain"})",
                          options_.drain_grace_seconds);
      }
    }
    rt->process.Terminate();
    if (!rt->process.WaitExit(options_.drain_grace_seconds)) {
      rt->process.Kill();
      (void)rt->process.WaitExit(5.0);
    }
  }
}

Result<RouterSummary> Router::Serve() {
  // Launch every shard; boot is fail-fast (chaos starts after the fleet is
  // up, not during provisioning).
  for (auto& rt : shards_) {
    const Status started = rt->process.Start();
    if (!started.ok()) {
      halt_.Cancel();
      return started;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    rt->port = rt->process.port();
    rt->pid = rt->process.pid();
    rt->launches = rt->process.launches();
  }

  monitor_ = std::thread([this] { MonitorLoop(); });

  // Wait for the initial probe quorum so the first client request does not
  // race shard warm-up; stragglers join late through normal readmission.
  const auto startup_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options_.startup_wait_seconds);
  for (;;) {
    int ready = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& rt : shards_) {
        if (rt->health.state() == ShardState::kUp) ++ready;
      }
    }
    if (ready == static_cast<int>(shards_.size()) || halt_.cancelled()) break;
    if (std::chrono::steady_clock::now() >= startup_deadline) {
      if (ready == 0) {
        halt_.Cancel();
        if (monitor_.joinable()) monitor_.join();
        DrainFleet();
        return Status::Unavailable("no shard became healthy within " +
                                   std::to_string(options_.startup_wait_seconds) +
                                   "s");
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    halt_.Cancel();
    if (monitor_.joinable()) monitor_.join();
    DrainFleet();
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    const Status status =
        Status::Internal(std::string("bind/listen: ") + std::strerror(errno));
    ::close(listen_fd);
    halt_.Cancel();
    if (monitor_.joinable()) monitor_.join();
    DrainFleet();
    return status;
  }
  if (options_.on_listen) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      options_.on_listen(ntohs(bound.sin_port));
    }
  }
  flight_.AddEvent("router", "listening; fleet of " +
                                 std::to_string(shards_.size()) + " shards");

  std::vector<std::thread> connections;
  std::uint64_t accepted = 0;
  while (!halt_.cancelled()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Relayed responses are one small write; Nagle would add a hop's worth
    // of batching delay on top of the shard round trip.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    ++accepted;
    connections.emplace_back([this, fd] { ServeConnection(fd); });
  }

  // Listener first, then monitor (it must not resurrect shards we are about
  // to drain), then the fleet, then client connections.
  ::close(listen_fd);
  const bool stopped = options_.stop.cancelled();
  halt_.Cancel();
  if (monitor_.joinable()) monitor_.join();
  DrainFleet();
  for (std::thread& connection : connections) connection.join();

  std::lock_guard<std::mutex> lock(summary_mutex_);
  summary_.connections = accepted;
  summary_.stopped = stopped;
  return summary_;
}

}  // namespace router
}  // namespace dagperf
