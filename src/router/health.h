#ifndef DAGPERF_ROUTER_HEALTH_H_
#define DAGPERF_ROUTER_HEALTH_H_

#include <string>

#include "resilience/circuit_breaker.h"

namespace dagperf {
namespace router {

/// Shard lifecycle as the router sees it.
///
///            probe quorum                    drain verb / SIGTERM
///   kDown ────────────────▶ kUp ────────────────────────▶ kDraining
///     ▲                      │                                │
///     │   process exit /     │                                │ child
///     └── breaker open ──────┘◀── (no path back: a draining ──┘ exits
///                                  shard leaves the fleet)
///
/// kUp shards are in the ring and serve traffic. kDraining shards are out
/// of the ring but still finishing in-flight work (and saving their final
/// snapshot). kDown shards are out of the ring; the supervisor restarts
/// them and the health loop readmits only after `readmit_quorum`
/// *consecutive* successful probes — one lucky probe against a process
/// that is still restoring its snapshot must not pull traffic early.
enum class ShardState { kUp = 0, kDraining = 1, kDown = 2 };

const char* ShardStateName(ShardState state);

struct ShardHealthOptions {
  /// Consecutive successful `stats` probes required to readmit a kDown
  /// shard to the ring.
  int readmit_quorum = 2;
  /// Passive scoring: transport failures (error/timeout/closed) before the
  /// breaker opens and the shard is marked down. <= 0 disables passive
  /// demotion (probes and process exits still drive the state machine).
  int breaker_failure_threshold = 3;
  /// Cooldown before the breaker lets a probe through again.
  double breaker_open_seconds = 0.25;
  /// Gauge name for the underlying breaker ("" = unpublished); the router
  /// passes "router.shard_state.<id>"-adjacent names per shard.
  std::string breaker_gauge_name;
};

/// Per-shard health: a passive error-scoring circuit breaker fused with the
/// active-probe state machine above. Not thread-safe; the router guards all
/// shard state with one mutex.
class ShardHealth {
 public:
  explicit ShardHealth(const ShardHealthOptions& options = {});

  ShardState state() const { return state_; }

  /// Process exit, SIGKILL observed by the supervisor, or passive breaker
  /// trip. Resets the probe quorum counter.
  void MarkDown();

  /// Graceful drain has been requested; the shard will not come back.
  void MarkDraining();

  /// Feeds one active health-check outcome. While kDown, `readmit_quorum`
  /// consecutive successes flip the shard to kUp and return true (exactly
  /// once per readmission). A failed probe in any state resets the streak;
  /// while kUp it also counts against the passive breaker and can demote
  /// the shard.
  bool RecordProbe(bool ok);

  /// Passive scoring for data-path outcomes: Ok responses close the
  /// breaker, transport failures (any non-Ok status) count toward the
  /// demotion threshold. Returns true when this failure tripped the breaker
  /// and demoted the shard to kDown.
  bool RecordDataPath(const Status& status);

  int consecutive_probe_successes() const { return probe_streak_; }
  const resilience::CircuitBreaker& breaker() const { return breaker_; }

 private:
  /// The breaker expects Allow/Record pairs; health scoring only needs its
  /// failure-counting and cooldown bookkeeping, so every Record is preceded
  /// by an Allow whose verdict is folded into "is the shard down".
  bool FeedBreaker(bool success);

  ShardHealthOptions options_;
  resilience::CircuitBreaker breaker_;
  ShardState state_ = ShardState::kDown;  // starts down until first quorum
  int probe_streak_ = 0;
};

}  // namespace router
}  // namespace dagperf

#endif  // DAGPERF_ROUTER_HEALTH_H_
