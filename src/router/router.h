#ifndef DAGPERF_ROUTER_ROUTER_H_
#define DAGPERF_ROUTER_ROUTER_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "obs/request_record.h"
#include "router/health.h"
#include "router/ring.h"
#include "router/supervisor.h"

namespace dagperf {
namespace router {

/// One shard's launch recipe — see ShardProcessOptions for field meaning.
/// The command must start a `dagperf serve` that writes `port_file` and,
/// for warm restarts, points --snapshot-dir at the shard's own directory.
struct ShardSpec {
  std::string shard_id;
  std::vector<std::string> command;
  std::string port_file;
  std::string stderr_file;
  double start_timeout_seconds = 30.0;
};

struct RouterOptions {
  /// Router listen port; 0 binds an ephemeral port (reported via on_listen).
  int port = 0;
  std::function<void(int port)> on_listen;
  /// External stop signal (the `dagperf route` SIGTERM path). Firing it
  /// gracefully drains the fleet: every shard gets a drain verb (final
  /// snapshot save) then SIGTERM.
  CancelToken stop;

  /// Ring geometry. 128 vnodes keeps per-shard share within ~20% of
  /// uniform for small fleets.
  int vnodes = 128;
  /// Bounded in-flight per shard; excess requests are shed at the router
  /// with UNAVAILABLE{retryable, retry_after_ms}.
  int max_in_flight_per_shard = 64;

  /// Active health checks: every interval each live shard gets a `stats`
  /// probe over a dedicated connection.
  double probe_interval_seconds = 0.05;
  double probe_timeout_seconds = 2.0;
  /// Consecutive probe successes before a restarted shard rejoins the ring.
  int readmit_quorum = 2;
  /// Passive scoring (transport errors on the data path) — failures before
  /// a shard is demoted without waiting for a probe.
  int breaker_failure_threshold = 3;
  double breaker_open_seconds = 0.25;

  /// Per-attempt upstream response deadline on the data path.
  double upstream_timeout_seconds = 30.0;
  /// Attempts per routed request (1 + failovers to ring successors).
  /// Estimates are idempotent, so rerouting a request whose shard died
  /// mid-flight is safe.
  int max_attempts = 3;
  /// retry_after_ms attached to router-generated UNAVAILABLE responses
  /// (shed, no shards up, failover exhausted).
  double retry_after_ms = 25.0;

  /// Supervisor restart backoff for crashed shards.
  double restart_backoff_initial_seconds = 0.05;
  double restart_backoff_max_seconds = 2.0;

  /// How long a draining shard gets between SIGTERM and SIGKILL.
  double drain_grace_seconds = 5.0;
  /// How long Serve() waits at boot for every shard to pass its initial
  /// probe quorum before opening the listener (shards that miss it join
  /// late through the normal readmission path).
  double startup_wait_seconds = 30.0;

  std::size_t max_line_bytes = 1 << 20;
};

struct RouterSummary {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t sheds = 0;
  bool stopped = false;  ///< options.stop fired (vs. a drain verb).
  bool drained = false;
};

/// Point-in-time view of one shard, for tests and the stats fan-out.
struct ShardInfo {
  std::string shard_id;
  ShardState state = ShardState::kDown;
  int port = 0;
  pid_t pid = -1;
  std::uint64_t launches = 0;
};

/// The `dagperf route` process: fronts N child `dagperf serve` shards over
/// the NDJSON/TCP protocol. Requests are routed on a consistent-hash ring
/// keyed by cluster-scope fingerprint (cluster + workflow), so repeats of a
/// key always land on the shard whose memo / PrefixCheckpointStore is warm
/// for it. Each shard is health-checked (active stats probes + passive
/// error scoring through CircuitBreaker), supervised (crashed children are
/// restarted with their --snapshot-dir so they rejoin warm from their
/// DPWARM01 snapshot), and readmitted to the ring only after a probe
/// quorum. While a shard is down its arc reroutes to the ring successor;
/// in-flight requests on a dying shard fail over transparently (estimates
/// are idempotent) or resolve as retryable UNAVAILABLE with retry_after_ms.
///
/// Router-handled verbs: estimate / explain / sweep (routed), stats
/// (fan-out + fleet aggregate + per-shard health), flightrecorder (the
/// router's own event ring), drain (fleet-wide graceful drain). Everything
/// else is INVALID_ARGUMENT naming the supported set.
class Router {
 public:
  Router(std::vector<ShardSpec> shards, RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Starts the shards, waits for their initial health quorum, opens the
  /// listener, and serves until a drain verb or options.stop. Returns after
  /// the fleet has been drained (snapshot handoff: drain verb, then
  /// SIGTERM) and every child has exited.
  Result<RouterSummary> Serve();

  /// The ring key for a request: cluster-scope fingerprint. Matches the
  /// scope prefix both warm stores key by, so one shard accumulates all
  /// warm state for a given (cluster, workflow) pair.
  static std::string RouteKey(const std::string& cluster,
                              const std::string& workflow);

  /// Current owner of a route key ("" while no shard is up). Test/bench
  /// hook for picking a victim shard.
  std::string OwnerOf(const std::string& route_key) const;

  std::vector<ShardInfo> Shards() const;

  obs::FlightRecorder& flight_recorder() { return flight_; }

 private:
  struct ShardRuntime;

  ShardRuntime* FindShard(const std::string& shard_id) const;
  void MarkShardDownLocked(ShardRuntime& shard, double now_us,
                           const std::string& why);
  void ReadmitShardLocked(ShardRuntime& shard, double now_us);
  void MonitorLoop();
  void ProbeShard(ShardRuntime& shard, double now_us);
  void RestartShard(ShardRuntime& shard, double now_us);
  void ServeConnection(int fd);
  std::string HandleRequest(const std::string& line, bool* drain_requested);
  std::string RouteAndForward(const std::string& line, const std::string& key,
                              const std::string& id_json);
  std::string StatsFanout(const std::string& id_json);
  void DrainFleet();

  std::vector<std::unique_ptr<ShardRuntime>> shards_;
  RouterOptions options_;

  mutable std::mutex mutex_;  // ring + shard health/port/pool state
  ConsistentHashRing ring_;

  CancelToken halt_;  // linked to options_.stop; also fired by drain verb
  std::thread monitor_;
  obs::FlightRecorder flight_;

  std::mutex summary_mutex_;
  RouterSummary summary_;
};

}  // namespace router
}  // namespace dagperf

#endif  // DAGPERF_ROUTER_ROUTER_H_
