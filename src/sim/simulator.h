#ifndef DAGPERF_SIM_SIMULATOR_H_
#define DAGPERF_SIM_SIMULATOR_H_

#include <cstdint>

#include "cluster/cluster_spec.h"
#include "common/status.h"
#include "dag/dag_workflow.h"
#include "scheduler/drf.h"
#include "sim/sim_result.h"

namespace dagperf {

/// Simulator knobs beyond cluster hardware and scheduler policy.
struct SimOptions {
  /// Seed for task-size skew draws. Same seed + same workflow = identical run.
  uint64_t seed = 42;

  /// Fixed per-task startup latency (container launch, JVM spin-up). Burned
  /// before the first sub-stage without consuming modelled resources; one of
  /// the real-world effects the analytical models do not capture.
  double task_startup_seconds = 1.0;

  /// Abort the run if simulated time exceeds this bound (guards against
  /// pathological configurations).
  double max_sim_seconds = 1e7;

  /// Coefficient of variation of per-node speed (all four resources scaled
  /// by a log-normal factor drawn per node). Real fleets are never
  /// perfectly uniform — ageing disks, thermal throttling, noisy
  /// neighbours — and node-speed variance is what gives speculative
  /// execution its purpose. 0 = the paper's idealised homogeneous cluster.
  double node_speed_cv = 0.0;

  /// Speculative execution (Hadoop's straggler mitigation): once a stage
  /// has dispatched all of its tasks, any attempt that has been running
  /// longer than `speculation_threshold` times the stage's median completed
  /// task duration gets a backup attempt on a free slot; the first attempt
  /// to finish wins and the other is killed. Interacts with reduce-key skew
  /// (the paper's future-work topic): it truncates the straggler tail that
  /// Alg2-Normal models.
  bool enable_speculation = false;
  double speculation_threshold = 1.5;

  /// Probability that a task attempt fails at completion of one of its
  /// sub-stages and is re-executed from scratch (MapReduce's task-level
  /// fault tolerance: the attempt's work is lost, the task re-queues). The
  /// analytical models do not represent failures; this knob quantifies how
  /// gracefully their accuracy degrades (see failure-injection tests).
  double task_failure_prob = 0.0;

  /// Fair-share container preemption (YARN fair scheduler semantics): when
  /// a runnable stage is starved below its DRF share while another job runs
  /// above its share, the over-share job's newest container is killed and
  /// its task re-queued (losing its progress). Without preemption a running
  /// job monopolises the cluster until its tasks drain — a transient the
  /// analytical models do not represent (see bench_ablation A5).
  bool enable_preemption = true;
};

/// Fluid-flow discrete-event simulator of a YARN-like cluster executing a
/// DAG of MapReduce jobs. This is the reproduction's ground-truth substrate
/// standing in for the paper's physical Hadoop deployment (DESIGN.md §2).
///
/// Between events every running task progresses at a constant rate obtained
/// from the exact max-min fair-share solver applied to its node's resources
/// (nodes are independent: remote shuffle reads and replica writes are
/// charged symmetrically to the task's own node, see CompileJob). Events are
/// sub-stage completions and scheduling actions; containers are granted by a
/// DRF queue without preemption, so a newly started stage acquires its fair
/// share gradually as competitors' tasks finish — exactly the transient the
/// analytical models approximate away.
class Simulator {
 public:
  /// An invalid cluster or configuration does not abort: the validation
  /// failure is recorded and returned by every Run() call, so user-supplied
  /// specs surface as InvalidArgument instead of a CHECK crash.
  Simulator(const ClusterSpec& cluster, const SchedulerConfig& scheduler,
            const SimOptions& options = {});

  /// Runs the validation firewall over `flow` (dag/validate.h), then
  /// executes the workflow to completion and returns the observed task,
  /// stage, and state timeline. Fails if any task can never be placed (slot
  /// demand exceeds node capacity) or the time bound is hit.
  Result<SimResult> Run(const DagWorkflow& flow) const;

  /// Pre-Result transition shim: `*out` is written only on success. Will be
  /// removed next release — call the Result<SimResult> overload.
  [[deprecated("use Run(flow) returning Result<SimResult>")]]
  Status Run(const DagWorkflow& flow, SimResult* out) const;

 private:
  ClusterSpec cluster_;
  SchedulerConfig scheduler_;
  SimOptions options_;
  Status init_ = Status::Ok();
};

}  // namespace dagperf

#endif  // DAGPERF_SIM_SIMULATOR_H_
