#include "sim/sim_result.h"

#include <algorithm>
#include <set>

namespace dagperf {

SimResult::SimResult(std::vector<TaskRecord> tasks, std::vector<StageRecord> stages,
                     double makespan, std::vector<UsageSegment> usage,
                     ResourceVector cluster_capacity)
    : tasks_(std::move(tasks)),
      stages_(std::move(stages)),
      usage_(std::move(usage)),
      cluster_capacity_(cluster_capacity),
      makespan_(makespan) {
  // Derive the state timeline from stage boundaries.
  std::set<double> boundaries;
  for (const auto& s : stages_) {
    boundaries.insert(s.start);
    boundaries.insert(s.end);
  }
  std::vector<double> times(boundaries.begin(), boundaries.end());
  int index = 1;
  for (size_t i = 0; i + 1 < times.size(); ++i) {
    const double lo = times[i];
    const double hi = times[i + 1];
    if (hi - lo < 1e-12) continue;
    StateRecord state;
    state.index = index++;
    state.start = lo;
    state.end = hi;
    const double mid = 0.5 * (lo + hi);
    for (const auto& s : stages_) {
      if (s.start <= mid && mid < s.end) state.running.emplace_back(s.job, s.stage);
    }
    std::sort(state.running.begin(), state.running.end());
    states_.push_back(std::move(state));
  }
}

std::vector<double> SimResult::TaskDurations(JobId job, StageKind stage) const {
  std::vector<double> out;
  for (const auto& t : tasks_) {
    if (t.job == job && t.stage == stage) out.push_back(t.duration());
  }
  return out;
}

std::vector<double> SimResult::TaskDurationsInState(JobId job, StageKind stage,
                                                    int state_index) const {
  std::vector<double> contained;
  std::vector<double> by_start;
  for (const auto& st : states_) {
    if (st.index != state_index) continue;
    for (const auto& t : tasks_) {
      if (t.job != job || t.stage != stage) continue;
      if (t.start >= st.start - 1e-9 && t.end <= st.end + 1e-9) {
        contained.push_back(t.duration());
      }
      if (t.start >= st.start - 1e-9 && t.start < st.end - 1e-9) {
        by_start.push_back(t.duration());
      }
    }
  }
  // Contained tasks are the cleanest sample, but when the state is shorter
  // than a typical task only unrepresentatively quick tasks fit inside it.
  // The fallback attributes tasks to the state they LAUNCHED in — the
  // contention regime a per-state task-time estimate describes.
  if (contained.size() >= 3 && contained.size() * 3 >= by_start.size()) {
    return contained;
  }
  return by_start.empty() ? contained : by_start;
}

Result<StageRecord> SimResult::FindStage(JobId job, StageKind stage) const {
  for (const auto& s : stages_) {
    if (s.job == job && s.stage == stage) return s;
  }
  return Status::NotFound("stage not found in simulation result");
}

ResourceVector SimResult::TotalConsumed() const {
  ResourceVector total;
  for (const auto& seg : usage_) total = total + seg.consumed;
  return total;
}

ResourceVector SimResult::UtilizationBetween(double t0, double t1) const {
  ResourceVector util;
  const double window = t1 - t0;
  if (window <= 0) return util;
  ResourceVector consumed;
  for (const auto& seg : usage_) {
    const double lo = std::max(seg.start, t0);
    const double hi = std::min(seg.end, t1);
    if (hi <= lo) continue;
    const double seg_len = seg.end - seg.start;
    if (seg_len <= 0) continue;
    consumed = consumed + seg.consumed * ((hi - lo) / seg_len);
  }
  for (Resource r : kAllResources) {
    const double cap = cluster_capacity_[r];
    util[r] = cap > 0 ? consumed[r] / (cap * window) : 0.0;
  }
  return util;
}

ResourceVector SimResult::UtilizationInState(int state_index) const {
  for (const auto& st : states_) {
    if (st.index == state_index) return UtilizationBetween(st.start, st.end);
  }
  return ResourceVector{};
}

}  // namespace dagperf
