#ifndef DAGPERF_SIM_TRACE_WRITER_H_
#define DAGPERF_SIM_TRACE_WRITER_H_

#include <ostream>
#include <vector>

#include "dag/dag_workflow.h"
#include "obs/chrome_trace.h"
#include "sim/sim_result.h"

namespace dagperf {

/// Exports simulated executions for external analysis and plotting.
///
/// Three formats:
///  * JSON — the full result (tasks with per-phase breakdowns, stage spans,
///    the workflow-state timeline) as one self-describing document;
///  * CSV — one row per task, flat columns, for spreadsheets and pandas;
///  * Chrome trace format — load in chrome://tracing or Perfetto to browse
///    the execution plan visually: one lane per (node, slot), one span per
///    task, counter tracks for per-stage concurrency.

/// Writes the full result as JSON.
void WriteJson(const DagWorkflow& flow, const SimResult& result, std::ostream& out);

/// Writes one CSV row per task:
///   job,stage,task,node,start_s,end_s,duration_s,startup_s
void WriteTaskCsv(const DagWorkflow& flow, const SimResult& result,
                  std::ostream& out);

/// Appends the simulated execution as Chrome-trace events: one span per
/// task, packed into per-node lanes (pid = node, tid = lowest lane whose
/// previous task has finished — tasks in one lane never overlap), plus state
/// markers on a dedicated pid-10000 track. Compose with other producers
/// (e.g. model/explain.h's estimate timeline) before serialising via
/// obs::WriteChromeTraceEvents.
void AppendSimTraceEvents(const DagWorkflow& flow, const SimResult& result,
                          std::vector<obs::ChromeTraceEvent>& events);

/// Writes a Chrome trace-event JSON array ("traceEvents" format). Thin
/// wrapper over AppendSimTraceEvents + obs::WriteChromeTraceEvents.
void WriteChromeTrace(const DagWorkflow& flow, const SimResult& result,
                      std::ostream& out);

}  // namespace dagperf

#endif  // DAGPERF_SIM_TRACE_WRITER_H_
