#include "sim/trace_writer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace dagperf {

namespace {

std::string StageName(const DagWorkflow& flow, JobId job, StageKind kind) {
  return flow.job(job).name + "/" + StageKindName(kind);
}

/// Minimal JSON string escaping (names are library-generated but may hold
/// user-supplied job names).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void WriteJson(const DagWorkflow& flow, const SimResult& result, std::ostream& out) {
  out << "{\n";
  out << "  \"workflow\": \"" << JsonEscape(flow.name()) << "\",\n";
  out << "  \"makespan_s\": " << result.makespan().seconds() << ",\n";

  out << "  \"stages\": [\n";
  for (size_t i = 0; i < result.stages().size(); ++i) {
    const auto& s = result.stages()[i];
    out << "    {\"name\": \"" << JsonEscape(StageName(flow, s.job, s.stage))
        << "\", \"start_s\": " << s.start << ", \"end_s\": " << s.end << "}"
        << (i + 1 < result.stages().size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"states\": [\n";
  for (size_t i = 0; i < result.states().size(); ++i) {
    const auto& st = result.states()[i];
    out << "    {\"index\": " << st.index << ", \"start_s\": " << st.start
        << ", \"end_s\": " << st.end << ", \"running\": [";
    for (size_t r = 0; r < st.running.size(); ++r) {
      out << "\"" << JsonEscape(StageName(flow, st.running[r].first, st.running[r].second))
          << "\"" << (r + 1 < st.running.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < result.states().size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"tasks\": [\n";
  for (size_t i = 0; i < result.tasks().size(); ++i) {
    const auto& t = result.tasks()[i];
    out << "    {\"stage\": \"" << JsonEscape(StageName(flow, t.job, t.stage))
        << "\", \"task\": " << t.index << ", \"node\": " << t.node
        << ", \"start_s\": " << t.start << ", \"end_s\": " << t.end
        << ", \"startup_s\": " << t.startup_s << ", \"substages_s\": [";
    for (size_t s = 0; s < t.substage_s.size(); ++s) {
      out << t.substage_s[s] << (s + 1 < t.substage_s.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < result.tasks().size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void WriteTaskCsv(const DagWorkflow& flow, const SimResult& result,
                  std::ostream& out) {
  out << "job,stage,task,node,start_s,end_s,duration_s,startup_s\n";
  for (const auto& t : result.tasks()) {
    out << flow.job(t.job).name << ',' << StageKindName(t.stage) << ',' << t.index
        << ',' << t.node << ',' << t.start << ',' << t.end << ',' << t.duration()
        << ',' << t.startup_s << "\n";
  }
}

void AppendSimTraceEvents(const DagWorkflow& flow, const SimResult& result,
                          std::vector<obs::ChromeTraceEvent>& events) {
  // Assign each task a lane ("tid") within its node ("pid") by packing
  // overlapping tasks into the lowest free lane — tasks in one lane never
  // overlap, which is what the trace viewer expects.
  struct Lane {
    double busy_until = -1.0;
  };
  std::map<int, std::vector<Lane>> lanes_per_node;
  std::vector<const TaskRecord*> tasks;
  tasks.reserve(result.tasks().size());
  for (const auto& t : result.tasks()) tasks.push_back(&t);
  std::sort(tasks.begin(), tasks.end(),
            [](const TaskRecord* a, const TaskRecord* b) {
              return a->start < b->start;
            });

  for (const TaskRecord* t : tasks) {
    auto& lanes = lanes_per_node[t->node];
    size_t lane = 0;
    for (; lane < lanes.size(); ++lane) {
      if (lanes[lane].busy_until <= t->start + 1e-12) break;
    }
    if (lane == lanes.size()) lanes.push_back(Lane{});
    lanes[lane].busy_until = t->end;

    obs::ChromeTraceEvent event;
    event.name = StageName(flow, t->job, t->stage) + " #" + std::to_string(t->index);
    event.cat = "task";
    event.ph = 'X';
    // Times in microseconds per the trace-event spec.
    event.ts_us = t->start * 1e6;
    event.dur_us = (t->end - t->start) * 1e6;
    event.pid = t->node;
    event.tid = static_cast<int>(lane);
    events.push_back(std::move(event));
  }
  // State markers on a dedicated track.
  for (const auto& st : result.states()) {
    obs::ChromeTraceEvent event;
    event.name = "state " + std::to_string(st.index);
    event.cat = "state";
    event.ph = 'X';
    event.ts_us = st.start * 1e6;
    event.dur_us = st.duration() * 1e6;
    event.pid = 10000;
    event.tid = 0;
    events.push_back(std::move(event));
  }
}

void WriteChromeTrace(const DagWorkflow& flow, const SimResult& result,
                      std::ostream& out) {
  std::vector<obs::ChromeTraceEvent> events;
  AppendSimTraceEvents(flow, result, events);
  obs::WriteChromeTraceEvents(events, out);
}

}  // namespace dagperf
