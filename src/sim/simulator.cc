#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "cluster/rate_solver.h"
#include "cluster/validate.h"
#include "common/check.h"
#include "common/rng.h"
#include "dag/validate.h"

namespace dagperf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

struct SimTask {
  int uid = 0;
  JobId job = 0;
  StageKind stage = StageKind::kMap;
  int index = 0;
  /// 1 for the original attempt, 2 for a speculative backup.
  int attempt = 1;
  int node = -1;
  double scale = 1.0;
  /// -1 while in the fixed startup phase, then the sub-stage index.
  int substage = -1;
  double startup_remaining = 0.0;
  /// Fraction of the current sub-stage left, in (0, 1].
  double remaining = 1.0;
  /// Sub-stage fractions per second (startup phase: wall-clock countdown).
  double rate = 0.0;
  double start = 0.0;
  bool done = false;
  /// Wall-clock bookkeeping for per-phase ground truth.
  double phase_entry = 0.0;
  double startup_s = 0.0;
  std::vector<double> substage_s;
};

struct StageRt {
  const StageProfile* profile = nullptr;
  bool schedulable = false;
  bool started = false;
  bool complete = false;
  int completed = 0;
  /// Attempts currently holding a container.
  int running_attempts = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  std::vector<double> scales;
  /// Logical task indexes awaiting (re-)dispatch, FIFO.
  std::deque<int> pending_indexes;
  /// Logical tasks already completed (speculation: first attempt wins).
  std::vector<char> task_done;
  /// Logical tasks that already have a backup attempt.
  std::vector<char> speculated;
  /// Durations of completed tasks (for the speculation median).
  std::vector<double> completed_durations;

  int pending() const { return static_cast<int>(pending_indexes.size()); }
};

struct JobRt {
  const JobProfile* profile = nullptr;
  int unfinished_parents = 0;
  StageRt map;
  StageRt reduce;
  bool done = false;
  // Container usage for DRF dominant-share bookkeeping.
  double used_vcores = 0.0;
  double used_memory = 0.0;
};

struct NodeRt {
  /// Per-node speed multiplier applied to all resource capacities.
  double speed = 1.0;
  double last_update = 0.0;
  std::vector<int> tasks;  // uids
  double used_vcores = 0.0;
  double used_memory = 0.0;
  int used_slots = 0;
  double next_finish = kInf;
  bool dirty = false;
};

class SimRun {
 public:
  SimRun(const ClusterSpec& cluster, const SchedulerConfig& scheduler,
         const SimOptions& options, const DagWorkflow& flow)
      : cluster_(cluster),
        scheduler_(scheduler),
        options_(options),
        flow_(flow),
        rng_(options.seed),
        capacities_(cluster.node.Capacities()) {
    node_vcores_ = cluster_.node.cores * scheduler_.vcores_per_core;
    node_memory_ = cluster_.node.memory.value();
    total_vcores_ = node_vcores_ * cluster_.num_nodes;
    total_memory_ = node_memory_ * cluster_.num_nodes;
    per_task_caps_[Resource::kCpu] = 1.0;
  }

  Result<SimResult> Run();

 private:
  StageRt& stage_rt(JobId job, StageKind kind) {
    return kind == StageKind::kMap ? jobs_[job].map : jobs_[job].reduce;
  }

  void InitJobs();
  void MakeSchedulable(JobId job, StageKind kind);
  Status Dispatch();
  bool TryPreempt();
  int PickNode(const SlotDemand& demand) const;
  bool NodeFits(const NodeRt& node, const SlotDemand& demand) const;
  void Settle(int node_idx);
  void Recompute(int node_idx);
  void FinishSubStage(SimTask& task);
  void FailTask(SimTask& task);
  void CompleteTask(SimTask& task);
  /// Grants a container on `node_idx` to attempt `attempt` of the logical
  /// task `index` of (job_id, kind).
  void PlaceAttempt(JobId job_id, StageKind kind, int index, int attempt,
                    int node_idx);
  /// Releases an attempt's slot and marks it discarded (no record).
  void DiscardAttempt(SimTask& task);
  /// Puts the attempt's logical task back in the pending queue unless a
  /// sibling attempt still runs or the task already completed.
  void RequeueIfNoLiveAttempt(const SimTask& task);
  /// Kills still-running sibling attempts of (job, kind, index) except
  /// `winner_uid`.
  void KillSiblings(JobId job, StageKind kind, int index, int winner_uid);
  /// Launches backup attempts for stragglers (SimOptions::enable_speculation).
  void MaybeSpeculate();
  void CompleteStage(JobId job, StageKind kind);

  const ClusterSpec& cluster_;
  const SchedulerConfig& scheduler_;
  const SimOptions& options_;
  const DagWorkflow& flow_;
  Rng rng_;
  ResourceVector capacities_;
  ResourceVector per_task_caps_;

  double node_vcores_ = 0.0;
  double node_memory_ = 0.0;
  double total_vcores_ = 0.0;
  double total_memory_ = 0.0;

  double now_ = 0.0;
  std::vector<JobRt> jobs_;
  std::vector<NodeRt> nodes_;
  std::vector<SimTask> tasks_;
  int running_tasks_ = 0;
  int unfinished_jobs_ = 0;

  std::vector<TaskRecord> task_records_;
  std::vector<StageRecord> stage_records_;
  std::vector<UsageSegment> usage_segments_;
};

void SimRun::InitJobs() {
  const int n = flow_.num_jobs();
  jobs_.resize(n);
  unfinished_jobs_ = n;
  for (JobId id = 0; id < n; ++id) {
    JobRt& job = jobs_[id];
    job.profile = &flow_.job(id);
    job.unfinished_parents = static_cast<int>(flow_.parents(id).size());
    job.map.profile = &job.profile->map;
    if (job.profile->has_reduce()) job.reduce.profile = &*job.profile->reduce;
  }
  for (JobId id : flow_.Sources()) MakeSchedulable(id, StageKind::kMap);
}

void SimRun::MakeSchedulable(JobId job, StageKind kind) {
  StageRt& st = stage_rt(job, kind);
  DAGPERF_CHECK(st.profile != nullptr);
  st.schedulable = true;
  // Draw per-task demand scales. Map splits are uniform; reduce partitions
  // follow a log-normal with the profiled coefficient of variation,
  // normalised to preserve the stage's total volume.
  const int n = st.profile->num_tasks;
  st.scales.assign(n, 1.0);
  st.task_done.assign(n, 0);
  st.speculated.assign(n, 0);
  st.pending_indexes.clear();
  for (int i = 0; i < n; ++i) st.pending_indexes.push_back(i);
  const double cv = st.profile->task_size_cv;
  if (cv > 1e-9 && n > 1) {
    // Log-normal parameters for mean 1, coefficient of variation cv.
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = -0.5 * sigma2;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      st.scales[i] = rng_.LogNormal(mu, std::sqrt(sigma2));
      sum += st.scales[i];
    }
    const double norm = static_cast<double>(n) / sum;
    for (double& s : st.scales) s *= norm;
  }
}

bool SimRun::NodeFits(const NodeRt& node, const SlotDemand& demand) const {
  if (scheduler_.max_tasks_per_node > 0 &&
      node.used_slots + 1 > scheduler_.max_tasks_per_node) {
    return false;
  }
  return node.used_vcores + demand.vcores <= node_vcores_ + kEps &&
         node.used_memory + demand.memory.value() <= node_memory_ + kEps;
}

int SimRun::PickNode(const SlotDemand& demand) const {
  // Least-loaded placement: fewest running tasks, then most free vcores.
  int best = -1;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (!NodeFits(nodes_[i], demand)) continue;
    if (best < 0 || nodes_[i].used_slots < nodes_[best].used_slots ||
        (nodes_[i].used_slots == nodes_[best].used_slots &&
         nodes_[i].used_vcores < nodes_[best].used_vcores)) {
      best = i;
    }
  }
  return best;
}

Status SimRun::Dispatch() {
  while (true) {
    // Candidate stages with pending tasks, ordered by the owning job's
    // dominant share (DRF): grant to the least-served job first.
    JobId best_job = -1;
    StageKind best_kind = StageKind::kMap;
    double best_share = kInf;
    for (JobId id = 0; id < flow_.num_jobs(); ++id) {
      for (StageKind kind : {StageKind::kMap, StageKind::kReduce}) {
        if (kind == StageKind::kReduce && !jobs_[id].profile->has_reduce()) continue;
        const StageRt& st =
            kind == StageKind::kMap ? jobs_[id].map : jobs_[id].reduce;
        if (!st.schedulable || st.complete) continue;
        if (st.pending_indexes.empty()) continue;
        const double share = std::max(jobs_[id].used_vcores / total_vcores_,
                                      jobs_[id].used_memory / total_memory_);
        if (share < best_share) {
          best_share = share;
          best_job = id;
          best_kind = kind;
        }
      }
    }
    if (best_job < 0) return Status::Ok();

    StageRt& st = stage_rt(best_job, best_kind);
    const SlotDemand& demand = st.profile->slot;
    if (demand.vcores > node_vcores_ + kEps ||
        demand.memory.value() > node_memory_ + kEps) {
      return Status::FailedPrecondition(
          st.profile->name + ": container demand exceeds node capacity");
    }
    const int node_idx = PickNode(demand);
    if (node_idx < 0) {
      // Cluster full. Other candidates share the same fate only if their
      // shape also fails everywhere; try the next-best candidate by simply
      // stopping — with homogeneous shapes (the common case) nothing fits.
      // A finer policy would skip just this stage; the approximation only
      // delays dispatch to the next event.
      return Status::Ok();
    }

    const int index = st.pending_indexes.front();
    st.pending_indexes.pop_front();
    PlaceAttempt(best_job, best_kind, index, /*attempt=*/1, node_idx);
  }
}

void SimRun::PlaceAttempt(JobId job_id, StageKind kind, int index, int attempt,
                          int node_idx) {
  StageRt& st = stage_rt(job_id, kind);
  const SlotDemand& demand = st.profile->slot;

  SimTask task;
  task.uid = static_cast<int>(tasks_.size());
  task.job = job_id;
  task.stage = kind;
  task.index = index;
  task.attempt = attempt;
  task.node = node_idx;
  task.scale = st.scales[index];
  task.startup_remaining = options_.task_startup_seconds;
  task.substage = task.startup_remaining > 0 ? -1 : 0;
  task.remaining = 1.0;
  task.start = now_;
  task.phase_entry = now_;

  Settle(node_idx);
  NodeRt& node = nodes_[node_idx];
  node.tasks.push_back(task.uid);
  node.used_slots += 1;
  node.used_vcores += demand.vcores;
  node.used_memory += demand.memory.value();
  node.dirty = true;
  jobs_[job_id].used_vcores += demand.vcores;
  jobs_[job_id].used_memory += demand.memory.value();

  st.running_attempts += 1;
  if (!st.started) {
    st.started = true;
    st.start_time = now_;
  }
  tasks_.push_back(task);
  ++running_tasks_;
}

bool SimRun::TryPreempt() {
  // Fair-share targets over every incomplete schedulable stage.
  struct Key {
    JobId job;
    StageKind kind;
  };
  std::vector<StageDemand> demands;
  std::vector<Key> keys;
  for (JobId id = 0; id < flow_.num_jobs(); ++id) {
    for (StageKind kind : {StageKind::kMap, StageKind::kReduce}) {
      if (kind == StageKind::kReduce && !jobs_[id].profile->has_reduce()) continue;
      const StageRt& st = kind == StageKind::kMap ? jobs_[id].map : jobs_[id].reduce;
      if (!st.schedulable || st.complete) continue;
      StageDemand d;
      d.slot = st.profile->slot;
      d.remaining_tasks = st.profile->num_tasks - st.completed;
      if (d.remaining_tasks <= 0) continue;
      demands.push_back(d);
      keys.push_back({id, kind});
    }
  }
  if (demands.size() < 2) return false;

  DrfAllocator allocator(cluster_, scheduler_);
  const std::vector<int> targets = allocator.Allocate(demands);

  bool starved = false;
  for (size_t i = 0; i < keys.size(); ++i) {
    const StageRt& st = stage_rt(keys[i].job, keys[i].kind);
    if (st.pending() > 0 && st.running_attempts < targets[i]) starved = true;
  }
  if (!starved) return false;

  // Victim: the stage most above its fair share.
  int victim = -1;
  int worst_overage = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const StageRt& st = stage_rt(keys[i].job, keys[i].kind);
    const int overage = st.running_attempts - targets[i];
    if (overage > worst_overage) {
      worst_overage = overage;
      victim = static_cast<int>(i);
    }
  }
  if (victim < 0) return false;

  // Kill the victim stage's newest container (least work lost).
  int victim_uid = -1;
  double newest_start = -1.0;
  for (const auto& task : tasks_) {
    if (task.done || task.job != keys[victim].job || task.stage != keys[victim].kind) {
      continue;
    }
    if (task.start > newest_start) {
      newest_start = task.start;
      victim_uid = task.uid;
    }
  }
  if (victim_uid < 0) return false;

  SimTask& task = tasks_[victim_uid];
  now_ = std::max(now_, nodes_[task.node].last_update);
  Settle(task.node);
  DiscardAttempt(task);
  RequeueIfNoLiveAttempt(task);
  return true;
}

void SimRun::DiscardAttempt(SimTask& task) {
  task.done = true;  // No TaskRecord is written for a discarded attempt.
  --running_tasks_;
  NodeRt& node = nodes_[task.node];
  node.tasks.erase(std::find(node.tasks.begin(), node.tasks.end(), task.uid));
  const SlotDemand& demand = stage_rt(task.job, task.stage).profile->slot;
  node.used_slots -= 1;
  node.used_vcores -= demand.vcores;
  node.used_memory -= demand.memory.value();
  node.dirty = true;
  jobs_[task.job].used_vcores -= demand.vcores;
  jobs_[task.job].used_memory -= demand.memory.value();
  stage_rt(task.job, task.stage).running_attempts -= 1;
}

void SimRun::RequeueIfNoLiveAttempt(const SimTask& task) {
  StageRt& st = stage_rt(task.job, task.stage);
  if (st.task_done[task.index]) return;  // Another attempt already won.
  for (const auto& other : tasks_) {
    if (!other.done && other.job == task.job && other.stage == task.stage &&
        other.index == task.index) {
      return;  // A sibling attempt is still running.
    }
  }
  st.pending_indexes.push_back(task.index);
  st.speculated[task.index] = 0;  // A fresh attempt may speculate again.
}

void SimRun::KillSiblings(JobId job, StageKind kind, int index, int winner_uid) {
  for (auto& other : tasks_) {
    if (other.done || other.uid == winner_uid) continue;
    if (other.job == job && other.stage == kind && other.index == index) {
      now_ = std::max(now_, nodes_[other.node].last_update);
      Settle(other.node);
      DiscardAttempt(other);
    }
  }
}

void SimRun::MaybeSpeculate() {
  for (JobId id = 0; id < flow_.num_jobs(); ++id) {
    for (StageKind kind : {StageKind::kMap, StageKind::kReduce}) {
      if (kind == StageKind::kReduce && !jobs_[id].profile->has_reduce()) continue;
      StageRt& st = stage_rt(id, kind);
      if (!st.schedulable || st.complete || !st.pending_indexes.empty()) continue;
      // Need a meaningful median to judge stragglers against.
      if (static_cast<int>(st.completed_durations.size()) * 4 <
          st.profile->num_tasks) {
        continue;
      }
      std::vector<double> durations = st.completed_durations;
      std::nth_element(durations.begin(), durations.begin() + durations.size() / 2,
                       durations.end());
      const double median = durations[durations.size() / 2];
      const double cutoff = options_.speculation_threshold * median;
      for (const auto& task : tasks_) {
        if (task.done || task.job != id || task.stage != kind) continue;
        if (task.attempt > 1 || st.speculated[task.index]) continue;
        if (st.task_done[task.index]) continue;
        if (now_ - task.start <= cutoff) continue;
        const int node_idx = PickNode(st.profile->slot);
        if (node_idx < 0) return;  // No free slot anywhere; stop trying.
        st.speculated[task.index] = 1;
        PlaceAttempt(id, kind, task.index, /*attempt=*/2, node_idx);
      }
    }
  }
}

void SimRun::Settle(int node_idx) {
  NodeRt& node = nodes_[node_idx];
  const double dt = now_ - node.last_update;
  if (dt > 0) {
    UsageSegment segment;
    segment.start = node.last_update;
    segment.end = now_;
    bool any_usage = false;
    for (int uid : node.tasks) {
      SimTask& task = tasks_[uid];
      if (task.substage < 0) {
        task.startup_remaining = std::max(0.0, task.startup_remaining - dt);
      } else if (task.rate == kInf) {
        task.remaining = 0.0;
      } else {
        const double progressed = std::min(task.remaining, task.rate * dt);
        task.remaining = std::max(0.0, task.remaining - task.rate * dt);
        const ResourceVector& demand =
            stage_rt(task.job, task.stage).profile->substages[task.substage].demand;
        for (Resource r : kAllResources) {
          if (demand[r] > 0) {
            segment.consumed[r] += demand[r] * task.scale * progressed;
            any_usage = true;
          }
        }
      }
    }
    if (any_usage) usage_segments_.push_back(std::move(segment));
  }
  node.last_update = now_;
}

void SimRun::Recompute(int node_idx) {
  NodeRt& node = nodes_[node_idx];
  std::vector<Flow> flows;
  std::vector<int> flow_uids;
  for (int uid : node.tasks) {
    const SimTask& task = tasks_[uid];
    if (task.substage < 0) continue;  // Startup phase: no resource demand.
    const StageProfile& profile = *stage_rt(task.job, task.stage).profile;
    Flow flow;
    flow.population = 1.0;
    flow.demand = profile.substages[task.substage].demand * task.scale;
    flow.per_task_cap = per_task_caps_;
    flows.push_back(flow);
    flow_uids.push_back(uid);
  }
  const std::vector<FlowRate> rates =
      SolveRates(capacities_ * node.speed, flows);
  for (size_t i = 0; i < flow_uids.size(); ++i) {
    tasks_[flow_uids[i]].rate = rates[i].progress_rate;
  }
  node.next_finish = kInf;
  for (int uid : node.tasks) {
    const SimTask& task = tasks_[uid];
    double finish;
    if (task.substage < 0) {
      finish = node.last_update + task.startup_remaining;
    } else if (task.rate == kInf) {
      finish = node.last_update;
    } else if (task.rate <= 0) {
      finish = kInf;
    } else {
      finish = node.last_update + task.remaining / task.rate;
    }
    node.next_finish = std::min(node.next_finish, finish);
  }
  node.dirty = false;
}

void SimRun::FinishSubStage(SimTask& task) {
  if (task.substage < 0) {
    task.startup_s = now_ - task.phase_entry;
    task.phase_entry = now_;
    task.substage = 0;
    task.remaining = 1.0;
    return;
  }
  // Fault injection: the attempt dies at a sub-stage boundary and the task
  // re-queues with all progress lost (MapReduce re-execution semantics).
  if (options_.task_failure_prob > 0 &&
      rng_.NextDouble() < options_.task_failure_prob) {
    FailTask(task);
    return;
  }
  task.substage_s.push_back(now_ - task.phase_entry);
  task.phase_entry = now_;
  const StageProfile& profile = *stage_rt(task.job, task.stage).profile;
  if (task.substage + 1 < static_cast<int>(profile.substages.size())) {
    task.substage += 1;
    task.remaining = 1.0;
    return;
  }
  CompleteTask(task);
}

void SimRun::FailTask(SimTask& task) {
  DiscardAttempt(task);
  RequeueIfNoLiveAttempt(task);
}

void SimRun::CompleteTask(SimTask& task) {
  StageRt& st = stage_rt(task.job, task.stage);
  if (st.task_done[task.index]) {
    // A sibling attempt won a same-instant race; this one is discarded.
    DiscardAttempt(task);
    return;
  }
  st.task_done[task.index] = 1;
  st.completed_durations.push_back(now_ - task.start);

  task.done = true;
  --running_tasks_;

  TaskRecord record;
  record.job = task.job;
  record.stage = task.stage;
  record.index = task.index;
  record.node = task.node;
  record.start = task.start;
  record.end = now_;
  record.startup_s = task.startup_s;
  record.substage_s = task.substage_s;
  task_records_.push_back(record);

  NodeRt& node = nodes_[task.node];
  node.tasks.erase(std::find(node.tasks.begin(), node.tasks.end(), task.uid));
  const SlotDemand& demand = stage_rt(task.job, task.stage).profile->slot;
  node.used_slots -= 1;
  node.used_vcores -= demand.vcores;
  node.used_memory -= demand.memory.value();
  node.dirty = true;
  jobs_[task.job].used_vcores -= demand.vcores;
  jobs_[task.job].used_memory -= demand.memory.value();
  st.running_attempts -= 1;

  if (options_.enable_speculation) {
    KillSiblings(task.job, task.stage, task.index, task.uid);
  }
  st.completed += 1;
  if (st.completed == st.profile->num_tasks) CompleteStage(task.job, task.stage);
}

void SimRun::CompleteStage(JobId job_id, StageKind kind) {
  StageRt& st = stage_rt(job_id, kind);
  st.complete = true;
  st.end_time = now_;

  StageRecord record;
  record.job = job_id;
  record.stage = kind;
  record.start = st.start_time;
  record.end = st.end_time;
  stage_records_.push_back(record);

  JobRt& job = jobs_[job_id];
  if (kind == StageKind::kMap && job.profile->has_reduce()) {
    MakeSchedulable(job_id, StageKind::kReduce);
    return;
  }
  job.done = true;
  --unfinished_jobs_;
  for (JobId child : flow_.children(job_id)) {
    if (--jobs_[child].unfinished_parents == 0) {
      MakeSchedulable(child, StageKind::kMap);
    }
  }
}

Result<SimResult> SimRun::Run() {
  nodes_.resize(cluster_.num_nodes);
  if (options_.node_speed_cv > 0) {
    // Log-normal with mean 1 and the configured coefficient of variation.
    const double sigma2 = std::log(1.0 + options_.node_speed_cv * options_.node_speed_cv);
    for (auto& node : nodes_) {
      node.speed = rng_.LogNormal(-0.5 * sigma2, std::sqrt(sigma2));
    }
  }
  InitJobs();
  Status st = Dispatch();
  if (!st.ok()) return st;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (nodes_[i].dirty) Recompute(i);
  }
  if (running_tasks_ == 0) {
    return Status::FailedPrecondition(flow_.name() +
                                      ": no task could be scheduled at start");
  }

  while (running_tasks_ > 0) {
    // Next event: the earliest sub-stage/startup completion on any node.
    int node_idx = -1;
    double t_next = kInf;
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      if (nodes_[i].next_finish < t_next) {
        t_next = nodes_[i].next_finish;
        node_idx = i;
      }
    }
    DAGPERF_CHECK_MSG(node_idx >= 0, "running tasks but no pending event");
    if (t_next > options_.max_sim_seconds) {
      return Status::Internal(flow_.name() + ": simulated time bound exceeded");
    }
    now_ = std::max(now_, t_next);
    Settle(node_idx);

    // Process every completion on this node at this instant; sub-stage
    // completions may cascade (e.g. zero-demand sub-stages finish at once).
    bool progressed = true;
    while (progressed) {
      progressed = false;
      // Iterate over a copy: CompleteTask mutates node.tasks.
      const std::vector<int> uids = nodes_[node_idx].tasks;
      for (int uid : uids) {
        SimTask& task = tasks_[uid];
        if (task.done) continue;
        if (task.substage < 0 && task.startup_remaining <= kEps) {
          FinishSubStage(task);
          nodes_[node_idx].dirty = true;
          progressed = true;
        } else if (task.substage >= 0 &&
                   (task.remaining <= kEps || task.rate == kInf)) {
          FinishSubStage(task);
          nodes_[node_idx].dirty = true;
          progressed = true;
        }
      }
      if (progressed) {
        // New sub-stages change the demand mix; re-solve before checking for
        // further instant completions (infinite-rate sub-stages).
        Settle(node_idx);
        Recompute(node_idx);
        // Instant follow-ups only when some rate is infinite.
        bool instant = false;
        for (int uid : nodes_[node_idx].tasks) {
          const SimTask& t = tasks_[uid];
          if (!t.done && t.substage >= 0 && t.rate == kInf) instant = true;
        }
        if (!instant) break;
      }
    }

    st = Dispatch();
    if (!st.ok()) return st;
    if (options_.enable_preemption) {
      int guard = cluster_.num_nodes * 64;
      while (TryPreempt()) {
        st = Dispatch();
        if (!st.ok()) return st;
        if (--guard <= 0) break;
      }
    }
    if (options_.enable_speculation) MaybeSpeculate();
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      if (nodes_[i].dirty) Recompute(i);
    }

    if (running_tasks_ == 0 && unfinished_jobs_ > 0) {
      return Status::FailedPrecondition(flow_.name() +
                                        ": deadlock — jobs remain but no task runs");
    }
  }

  DAGPERF_CHECK(unfinished_jobs_ == 0);
  return SimResult(std::move(task_records_), std::move(stage_records_), now_,
                   std::move(usage_segments_),
                   capacities_ * static_cast<double>(cluster_.num_nodes));
}

}  // namespace

Simulator::Simulator(const ClusterSpec& cluster, const SchedulerConfig& scheduler,
                     const SimOptions& options)
    : cluster_(cluster), scheduler_(scheduler), options_(options) {
  ValidationReport report = ValidateClusterSpec(cluster_);
  if (!(scheduler_.vcores_per_core > 0)) {  // NaN-safe.
    report.Add("/scheduler/vcores_per_core",
               "must be positive, got " +
                   std::to_string(scheduler_.vcores_per_core));
  }
  if (!(options_.task_startup_seconds >= 0) ||
      !std::isfinite(options_.task_startup_seconds)) {
    report.Add("/options/task_startup_seconds",
               "must be finite and >= 0, got " +
                   std::to_string(options_.task_startup_seconds));
  }
  init_ = report.ToStatus("simulator config");
}

Result<SimResult> Simulator::Run(const DagWorkflow& flow) const {
  if (!init_.ok()) return init_;
  if (Status valid = ValidateWorkflow(flow).ToStatus(flow.name()); !valid.ok()) {
    return valid;
  }
  SimRun run(cluster_, scheduler_, options_, flow);
  return run.Run();
}

Status Simulator::Run(const DagWorkflow& flow, SimResult* out) const {
  Result<SimResult> result = Run(flow);
  if (!result.ok()) return result.status();
  *out = std::move(result).value();
  return Status::Ok();
}

}  // namespace dagperf
