#ifndef DAGPERF_SIM_SIM_RESULT_H_
#define DAGPERF_SIM_SIM_RESULT_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "dag/dag_workflow.h"
#include "workload/job_profile.h"

namespace dagperf {

/// One completed task as observed by the simulator.
struct TaskRecord {
  JobId job = 0;
  StageKind stage = StageKind::kMap;
  int index = 0;
  int node = 0;
  double start = 0.0;  // Seconds since workflow start.
  double end = 0.0;
  /// Wall-clock time spent in the fixed startup phase.
  double startup_s = 0.0;
  /// Wall-clock time spent in each sub-stage of the stage profile, in
  /// profile order. Sums with startup_s to duration().
  std::vector<double> substage_s;

  double duration() const { return end - start; }
};

/// The wall-clock span of one schedulable stage (map or reduce) of one job.
struct StageRecord {
  JobId job = 0;
  StageKind stage = StageKind::kMap;
  double start = 0.0;
  double end = 0.0;
};

/// One workflow state (paper §IV-A1): a maximal interval during which the
/// set of running (job, stage) pairs is constant. States are delimited by
/// stage start/completion events of any job.
struct StateRecord {
  int index = 0;  // 1-based, matching the paper's s1, s2, ...
  double start = 0.0;
  double end = 0.0;
  /// The (job, stage) pairs running during this state.
  std::vector<std::pair<JobId, StageKind>> running;

  double duration() const { return end - start; }
};

/// Cluster-wide resource consumption over one interval of simulated time
/// (units: bytes for I/O resources, core-seconds for CPU).
struct UsageSegment {
  double start = 0.0;
  double end = 0.0;
  ResourceVector consumed;
};

/// Ground-truth observables of one simulated workflow execution.
class SimResult {
 public:
  SimResult(std::vector<TaskRecord> tasks, std::vector<StageRecord> stages,
            double makespan, std::vector<UsageSegment> usage = {},
            ResourceVector cluster_capacity = {});

  Duration makespan() const { return Duration(makespan_); }
  const std::vector<TaskRecord>& tasks() const { return tasks_; }
  const std::vector<StageRecord>& stages() const { return stages_; }

  /// The workflow state timeline derived from stage boundaries. Zero-length
  /// states (coinciding boundaries) are dropped.
  const std::vector<StateRecord>& states() const { return states_; }

  /// Durations of all tasks of the given job stage, in completion order.
  std::vector<double> TaskDurations(JobId job, StageKind stage) const;

  /// Durations of tasks of the given job stage attributed to state
  /// `state_index` (1-based): tasks that ran entirely within the state, or —
  /// when the state is shorter than a task — tasks whose midpoint falls in
  /// it. Boundary stragglers carry the previous state's contention, so
  /// contained tasks are the cleaner per-state ground truth (Table II).
  std::vector<double> TaskDurationsInState(JobId job, StageKind stage,
                                           int state_index) const;

  /// The wall-clock record of a stage; NotFound if the job/stage never ran.
  Result<StageRecord> FindStage(JobId job, StageKind stage) const;

  /// Raw consumption segments (one per node-settle interval).
  const std::vector<UsageSegment>& usage() const { return usage_; }

  /// Total resource units consumed over the whole run.
  ResourceVector TotalConsumed() const;

  /// Mean cluster utilisation of each resource over [t0, t1): consumed
  /// units divided by capacity * duration. Zero when no usage was recorded
  /// or the window is empty.
  ResourceVector UtilizationBetween(double t0, double t1) const;

  /// Mean utilisation during a workflow state (1-based index).
  ResourceVector UtilizationInState(int state_index) const;

 private:
  std::vector<TaskRecord> tasks_;
  std::vector<StageRecord> stages_;
  std::vector<StateRecord> states_;
  std::vector<UsageSegment> usage_;
  ResourceVector cluster_capacity_;
  double makespan_;
};

}  // namespace dagperf

#endif  // DAGPERF_SIM_SIM_RESULT_H_
