#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace dagperf {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  DAGPERF_CHECK(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out += "  ";
    }
    out += '\n';
  };
  append_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace dagperf
