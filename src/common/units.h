#ifndef DAGPERF_COMMON_UNITS_H_
#define DAGPERF_COMMON_UNITS_H_

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace dagperf {

/// Strongly-typed quantities used throughout the library.
///
/// The fluid-flow simulator and the analytical models both manipulate data
/// volumes, durations and throughputs; mixing them up silently is the single
/// easiest way to produce a plausible-but-wrong cost model, so each quantity
/// gets its own type with only the physically meaningful operators defined
/// (e.g. Bytes / Rate -> Duration, Rate * Duration -> Bytes).
///
/// All quantities use double precision: the simulator advances in fractional
/// seconds and tasks process fractional byte amounts between events.

class Duration;
class Rate;

/// A data volume. Negative values are permitted transiently (e.g. subtracting
/// progress) but every public API documents its own sign requirements.
class Bytes {
 public:
  constexpr Bytes() : value_(0) {}
  constexpr explicit Bytes(double bytes) : value_(bytes) {}

  static constexpr Bytes FromKB(double kb) { return Bytes(kb * 1e3); }
  static constexpr Bytes FromMB(double mb) { return Bytes(mb * 1e6); }
  static constexpr Bytes FromGB(double gb) { return Bytes(gb * 1e9); }

  constexpr double value() const { return value_; }
  constexpr double ToKB() const { return value_ / 1e3; }
  constexpr double ToMB() const { return value_ / 1e6; }
  constexpr double ToGB() const { return value_ / 1e9; }

  constexpr Bytes operator+(Bytes other) const { return Bytes(value_ + other.value_); }
  constexpr Bytes operator-(Bytes other) const { return Bytes(value_ - other.value_); }
  constexpr Bytes operator*(double scale) const { return Bytes(value_ * scale); }
  constexpr Bytes operator/(double scale) const { return Bytes(value_ / scale); }
  constexpr double operator/(Bytes other) const { return value_ / other.value_; }
  constexpr Bytes& operator+=(Bytes other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr auto operator<=>(const Bytes&) const = default;

  std::string ToString() const;

 private:
  double value_;
};

constexpr Bytes operator*(double scale, Bytes b) { return b * scale; }

/// A span of time in seconds.
class Duration {
 public:
  constexpr Duration() : seconds_(0) {}
  constexpr explicit Duration(double seconds) : seconds_(seconds) {}

  static constexpr Duration Seconds(double s) { return Duration(s); }
  static constexpr Duration Millis(double ms) { return Duration(ms / 1e3); }
  static constexpr Duration Infinite() {
    return Duration(std::numeric_limits<double>::infinity());
  }

  constexpr double seconds() const { return seconds_; }
  constexpr bool is_infinite() const {
    return seconds_ == std::numeric_limits<double>::infinity();
  }

  constexpr Duration operator+(Duration other) const {
    return Duration(seconds_ + other.seconds_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(seconds_ - other.seconds_);
  }
  constexpr Duration operator*(double scale) const { return Duration(seconds_ * scale); }
  constexpr Duration operator/(double scale) const { return Duration(seconds_ / scale); }
  constexpr double operator/(Duration other) const { return seconds_ / other.seconds_; }
  constexpr Duration& operator+=(Duration other) {
    seconds_ += other.seconds_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;

 private:
  double seconds_;
};

constexpr Duration operator*(double scale, Duration d) { return d * scale; }

/// A data throughput (bytes per second).
class Rate {
 public:
  constexpr Rate() : bytes_per_sec_(0) {}
  constexpr explicit Rate(double bytes_per_sec) : bytes_per_sec_(bytes_per_sec) {}

  static constexpr Rate MBps(double mbps) { return Rate(mbps * 1e6); }
  static constexpr Rate GBps(double gbps) { return Rate(gbps * 1e9); }
  /// Gigabits per second (network links are specified this way).
  static constexpr Rate Gbps(double gbps) { return Rate(gbps * 1e9 / 8.0); }

  constexpr double bytes_per_sec() const { return bytes_per_sec_; }
  constexpr double ToMBps() const { return bytes_per_sec_ / 1e6; }

  constexpr Rate operator+(Rate other) const {
    return Rate(bytes_per_sec_ + other.bytes_per_sec_);
  }
  constexpr Rate operator-(Rate other) const {
    return Rate(bytes_per_sec_ - other.bytes_per_sec_);
  }
  constexpr Rate operator*(double scale) const { return Rate(bytes_per_sec_ * scale); }
  constexpr Rate operator/(double scale) const { return Rate(bytes_per_sec_ / scale); }
  constexpr double operator/(Rate other) const {
    return bytes_per_sec_ / other.bytes_per_sec_;
  }
  constexpr Rate& operator+=(Rate other) {
    bytes_per_sec_ += other.bytes_per_sec_;
    return *this;
  }
  constexpr auto operator<=>(const Rate&) const = default;

  std::string ToString() const;

 private:
  double bytes_per_sec_;
};

constexpr Rate operator*(double scale, Rate r) { return r * scale; }

/// Cross-type physics. Division by a zero rate yields an infinite duration,
/// which the models interpret as "this operation can never complete" and the
/// simulator treats as "no progress until allocation changes".
constexpr Duration operator/(Bytes b, Rate r) {
  if (r.bytes_per_sec() <= 0) return Duration::Infinite();
  return Duration(b.value() / r.bytes_per_sec());
}

constexpr Bytes operator*(Rate r, Duration d) {
  return Bytes(r.bytes_per_sec() * d.seconds());
}

constexpr Bytes operator*(Duration d, Rate r) { return r * d; }

constexpr Rate operator/(Bytes b, Duration d) {
  if (d.seconds() <= 0) return Rate(std::numeric_limits<double>::infinity());
  return Rate(b.value() / d.seconds());
}

}  // namespace dagperf

#endif  // DAGPERF_COMMON_UNITS_H_
