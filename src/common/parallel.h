#ifndef DAGPERF_COMMON_PARALLEL_H_
#define DAGPERF_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"

namespace dagperf {

/// Fixed-size worker pool executing closures FIFO. Two roles in the library:
///
///  * The execution engine's "task slots": the pool size caps how many map
///    or reduce tasks run concurrently, mirroring a node's container limit.
///  * The sweep engine's compute fleet: ParallelFor/ParallelMap fan
///    independent estimator invocations across the pool (model/sweep.h).
///
/// Promoted out of src/engine/ so model-layer code can use it without
/// depending on the engine.
///
/// Observability (obs/metrics.h, active only while metrics/tracing are
/// enabled): counter `pool.tasks_executed`, gauge `pool.queue_depth`,
/// histograms `pool.task_wait_us` (submit -> dequeue latency) and
/// `pool.worker_wait_us` (worker idle time), plus one `pool.task` trace
/// span per executed task on the worker's lane.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() started from another
  /// thread; tasks may enqueue further tasks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by other
  /// tasks) has finished. Reusable; multiple threads may wait concurrently.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  /// A queued task plus its submit timestamp (0 while metrics are off).
  struct Job {
    std::function<void()> fn;
    double submit_us = 0.0;
  };

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::queue<Job> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

/// Process-wide default pool, created on first use and sized to the
/// hardware's concurrency (at least 1). Shared by every ParallelFor caller
/// that does not supply its own pool.
ThreadPool& DefaultPool();

namespace internal {
/// Hook invoked at the top of every ThreadPool::Submit, null by default (the
/// cost of an uninstalled hook is one relaxed atomic load). Installed by the
/// resilience layer's fault injector — which sits *above* common in the
/// dependency stack and therefore cannot be called from here directly — to
/// inject deterministic submit delays (fault point `pool.submit`). Not a
/// general extension point: keep it to fault injection and tests.
using SubmitHook = void (*)();
extern std::atomic<SubmitHook> g_submit_hook;
}  // namespace internal

/// Installs (or, with nullptr, removes) the process-wide submit hook. The
/// caller must guarantee the hook outlives every Submit call — in practice
/// both users (fault injector, tests) install function pointers to static
/// code, never unloaded.
void SetThreadPoolSubmitHook(internal::SubmitHook hook);

/// Runs fn(i) for every i in [begin, end) across `pool` (the default pool
/// when null), with the calling thread participating in the work.
///
/// Properties:
///  * Every index is executed exactly once; the call returns only after all
///    iterations finished.
///  * Exception-safe: the first exception thrown by fn is captured and
///    rethrown in the caller after the remaining in-flight iterations
///    drained; iterations not yet claimed when the exception was recorded
///    are skipped.
///  * Deadlock-free under nesting: because the caller claims indices itself,
///    the loop completes even if every pool worker is busy elsewhere.
///  * Load-balanced: indices are claimed one at a time from a shared atomic
///    counter, suiting coarse iterations (an estimator call per index);
///    for micro-iterations prefer batching work inside fn.
void ParallelFor(std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn,
                 ThreadPool* pool = nullptr);

/// Cancellable/deadlined variant. Before claiming each iteration, the
/// drainer polls `cancel` and `deadline`; once either fires, unclaimed
/// iterations are skipped while in-flight ones run to completion (fn is
/// never interrupted mid-iteration). Returns Ok when the full range
/// executed, otherwise the Cancelled/DeadlineExceeded status that stopped
/// the loop — the caller knows exactly why its range is partial. Exceptions
/// from fn still propagate as in the plain overload and take precedence
/// over a budget status.
Status ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn,
                   const CancelToken& cancel, const Deadline& deadline,
                   ThreadPool* pool = nullptr);

/// Budget-carrying convenience over the cancellable overload.
inline Status ParallelFor(std::int64_t begin, std::int64_t end,
                          const std::function<void(std::int64_t)>& fn,
                          const Budget& budget, ThreadPool* pool = nullptr) {
  return ParallelFor(begin, end, fn, budget.cancel, budget.deadline, pool);
}

/// Maps fn over `items` in parallel, preserving input order in the result.
/// The result type must be default-constructible and movable.
template <typename T, typename Fn>
auto ParallelMap(const std::vector<T>& items, const Fn& fn,
                 ThreadPool* pool = nullptr)
    -> std::vector<decltype(fn(items.front()))> {
  std::vector<decltype(fn(items.front()))> out(items.size());
  ParallelFor(
      0, static_cast<std::int64_t>(items.size()),
      [&](std::int64_t i) { out[static_cast<size_t>(i)] = fn(items[static_cast<size_t>(i)]); },
      pool);
  return out;
}

}  // namespace dagperf

#endif  // DAGPERF_COMMON_PARALLEL_H_
