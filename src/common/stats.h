#ifndef DAGPERF_COMMON_STATS_H_
#define DAGPERF_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace dagperf {

/// Summary statistics over a sample of doubles.
///
/// The workflow-level estimators reduce a profile of task execution times to
/// a single statistic (mean for Alg1-Mean, median for Alg1-Mid) or to a fitted
/// normal distribution (Alg2-Normal); this header holds those reductions plus
/// the order-statistic machinery Alg2 needs to reason about wave makespans.
struct SampleStats {
  size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // Population standard deviation.
  double min = 0.0;
  double max = 0.0;
  double p95 = 0.0;
};

/// Computes summary statistics. An empty sample yields all-zero stats.
SampleStats ComputeStats(const std::vector<double>& values);

/// Linear-interpolated percentile, q in [0, 1]. Requires a non-empty sample.
double Percentile(std::vector<double> values, double q);

/// Expected value of the maximum of n i.i.d. N(mean, stddev) draws.
///
/// Uses the asymptotic extreme-value (Gumbel) approximation for n >= 2 and
/// exact values for n = 1. Alg2-Normal uses this to estimate the makespan of
/// a wave of n parallel tasks whose durations are normally distributed: the
/// wave completes when its slowest task does.
double ExpectedMaxOfNormal(double mean, double stddev, int n);

/// Mean relative accuracy: 1 - |estimate - actual| / actual, clamped to
/// [0, 1]. Requires actual > 0. This is the accuracy metric used in every
/// paper table ("estimation accuracy").
double RelativeAccuracy(double estimate, double actual);

/// Simple ordinary-least-squares fit y ~= X * beta solved via normal
/// equations with ridge damping (used by the Ernest-style baseline).
/// Returns the coefficient vector; X is row-major with `cols` features.
std::vector<double> LeastSquares(const std::vector<double>& x_rowmajor,
                                 const std::vector<double>& y, size_t cols,
                                 double ridge = 1e-9);

}  // namespace dagperf

#endif  // DAGPERF_COMMON_STATS_H_
