#include "common/units.h"

#include <cstdio>

namespace dagperf {

namespace {

std::string FormatDouble(double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", v, suffix);
  return std::string(buf);
}

}  // namespace

std::string Bytes::ToString() const {
  const double v = value_;
  if (std::fabs(v) >= 1e9) return FormatDouble(v / 1e9, " GB");
  if (std::fabs(v) >= 1e6) return FormatDouble(v / 1e6, " MB");
  if (std::fabs(v) >= 1e3) return FormatDouble(v / 1e3, " KB");
  return FormatDouble(v, " B");
}

std::string Duration::ToString() const {
  if (is_infinite()) return "inf";
  if (seconds_ >= 1.0 || seconds_ == 0.0) return FormatDouble(seconds_, " s");
  return FormatDouble(seconds_ * 1e3, " ms");
}

std::string Rate::ToString() const {
  return FormatDouble(bytes_per_sec_ / 1e6, " MB/s");
}

}  // namespace dagperf
