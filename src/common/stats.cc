#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dagperf {

SampleStats ComputeStats(const std::vector<double>& values) {
  SampleStats s;
  if (values.empty()) return s;
  s.count = values.size();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.median = at(0.5);
  s.p95 = at(0.95);
  return s;
}

double Percentile(std::vector<double> values, double q) {
  DAGPERF_CHECK(!values.empty());
  DAGPERF_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ExpectedMaxOfNormal(double mean, double stddev, int n) {
  DAGPERF_CHECK(n >= 1);
  if (n == 1 || stddev <= 0.0) return mean;
  if (n == 2) {
    // Exact: E[max of 2] = mean + stddev / sqrt(pi).
    return mean + stddev / std::sqrt(M_PI);
  }
  // Gumbel asymptotic approximation with the standard normalising constants:
  //   a_n = sqrt(2 ln n) - (ln ln n + ln 4pi) / (2 sqrt(2 ln n))
  //   E[max] ~= mean + stddev * (a_n + gamma / sqrt(2 ln n))
  const double ln_n = std::log(static_cast<double>(n));
  const double sq = std::sqrt(2.0 * ln_n);
  const double a_n = sq - (std::log(ln_n) + std::log(4.0 * M_PI)) / (2.0 * sq);
  constexpr double kEulerGamma = 0.5772156649015329;
  return mean + stddev * (a_n + kEulerGamma / sq);
}

double RelativeAccuracy(double estimate, double actual) {
  DAGPERF_CHECK(actual > 0.0);
  const double acc = 1.0 - std::fabs(estimate - actual) / actual;
  return std::clamp(acc, 0.0, 1.0);
}

std::vector<double> LeastSquares(const std::vector<double>& x_rowmajor,
                                 const std::vector<double>& y, size_t cols,
                                 double ridge) {
  DAGPERF_CHECK(cols > 0);
  DAGPERF_CHECK(x_rowmajor.size() == y.size() * cols);
  const size_t rows = y.size();
  // Normal equations: (X^T X + ridge I) beta = X^T y.
  std::vector<double> xtx(cols * cols, 0.0);
  std::vector<double> xty(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const double* row = &x_rowmajor[r * cols];
    for (size_t i = 0; i < cols; ++i) {
      xty[i] += row[i] * y[r];
      for (size_t j = 0; j < cols; ++j) xtx[i * cols + j] += row[i] * row[j];
    }
  }
  for (size_t i = 0; i < cols; ++i) xtx[i * cols + i] += ridge;
  // Gaussian elimination with partial pivoting.
  std::vector<double> beta = xty;
  for (size_t col = 0; col < cols; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < cols; ++r) {
      if (std::fabs(xtx[r * cols + col]) > std::fabs(xtx[pivot * cols + col])) {
        pivot = r;
      }
    }
    if (pivot != col) {
      for (size_t c = 0; c < cols; ++c) {
        std::swap(xtx[col * cols + c], xtx[pivot * cols + c]);
      }
      std::swap(beta[col], beta[pivot]);
    }
    const double diag = xtx[col * cols + col];
    if (std::fabs(diag) < 1e-300) continue;  // Singular column: leave zero.
    for (size_t r = 0; r < cols; ++r) {
      if (r == col) continue;
      const double factor = xtx[r * cols + col] / diag;
      for (size_t c = col; c < cols; ++c) {
        xtx[r * cols + c] -= factor * xtx[col * cols + c];
      }
      beta[r] -= factor * beta[col];
    }
  }
  for (size_t i = 0; i < cols; ++i) {
    const double diag = xtx[i * cols + i];
    beta[i] = std::fabs(diag) < 1e-300 ? 0.0 : beta[i] / diag;
  }
  return beta;
}

}  // namespace dagperf
