#ifndef DAGPERF_COMMON_STATUS_H_
#define DAGPERF_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

// The ErrorCode enum plus ErrorCodeName/IsRetryable live in the public
// facade header so the wire protocol and C++ API share one declaration.
#include "dagperf/error_codes.h"

namespace dagperf {

/// A success-or-error value carrying a human-readable message on failure.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(ErrorCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(ErrorCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(ErrorCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(ErrorCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(ErrorCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(ErrorCode::kCancelled, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(ErrorCode::kResourceExhausted, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(ErrorCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Server-suggested earliest retry time for retryable failures, in
  /// milliseconds; 0 means "no hint" (clients fall back to their own
  /// backoff). The estimation service attaches this to every shed response
  /// so a CoDel-paced admission queue can spread the retry wave; the wire
  /// protocol carries it as error.retry_after_ms and RetryPolicy honours it
  /// as a backoff floor.
  double retry_after_ms() const { return retry_after_ms_; }
  void set_retry_after_ms(double ms) { retry_after_ms_ = ms < 0 ? 0.0 : ms; }

  /// Chainable form for the construction helpers above:
  ///   return Status::ResourceExhausted("...").WithRetryAfterMs(40);
  Status&& WithRetryAfterMs(double ms) && {
    set_retry_after_ms(ms);
    return std::move(*this);
  }

  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
  double retry_after_ms_ = 0.0;
};

/// Either a value of type T or an error Status. Accessing value() when
/// !ok() aborts the process (see DAGPERF_CHECK in check.h for rationale).
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    if (ok()) return kOk;
    return std::get<Status>(storage_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(storage_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(storage_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> storage_;
};

namespace internal_status {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal_status::DieOnBadResultAccess(std::get<Status>(storage_));
}

}  // namespace dagperf

#endif  // DAGPERF_COMMON_STATUS_H_
