#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dagperf {

namespace {

/// Pool/ParallelFor metric handles, resolved once (registry references stay
/// valid forever; recording is lock-free and gated on the enabled flag).
struct PoolMetrics {
  obs::Counter& tasks_executed;
  obs::Gauge& queue_depth;
  obs::Histogram& task_wait_us;
  obs::Histogram& worker_wait_us;
  obs::Counter& for_calls;
  obs::Counter& for_iterations;

  PoolMetrics()
      : tasks_executed(obs::MetricsRegistry::Default().GetCounter(
            "pool.tasks_executed")),
        queue_depth(obs::MetricsRegistry::Default().GetGauge("pool.queue_depth")),
        task_wait_us(obs::MetricsRegistry::Default().GetHistogram(
            "pool.task_wait_us")),
        worker_wait_us(obs::MetricsRegistry::Default().GetHistogram(
            "pool.worker_wait_us")),
        for_calls(obs::MetricsRegistry::Default().GetCounter(
            "parallel_for.calls")),
        for_iterations(obs::MetricsRegistry::Default().GetCounter(
            "parallel_for.iterations")) {}
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics();
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  DAGPERF_CHECK(threads > 0);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace internal {
std::atomic<SubmitHook> g_submit_hook{nullptr};
}  // namespace internal

void SetThreadPoolSubmitHook(internal::SubmitHook hook) {
  internal::g_submit_hook.store(hook, std::memory_order_release);
}

void ThreadPool::Submit(std::function<void()> task) {
  if (internal::SubmitHook hook =
          internal::g_submit_hook.load(std::memory_order_relaxed);
      hook != nullptr) {
    hook();
  }
  const bool metrics_on = obs::MetricsEnabled();
  Job job{std::move(task), metrics_on ? obs::MonotonicUs() : 0.0};
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DAGPERF_CHECK_MSG(!shutdown_, "submit after shutdown");
    queue_.push(std::move(job));
    ++in_flight_;
    if (metrics_on) {
      Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Job job;
    {
      const bool metrics_on = obs::MetricsEnabled();
      const double wait_start = metrics_on ? obs::MonotonicUs() : 0.0;
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      job = std::move(queue_.front());
      queue_.pop();
      if (metrics_on) {
        const double now = obs::MonotonicUs();
        Metrics().worker_wait_us.Record(now - wait_start);
        if (job.submit_us > 0) Metrics().task_wait_us.Record(now - job.submit_us);
        Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
      }
    }
    {
      obs::ScopedSpan span("pool.task", "pool");
      job.fn();
    }
    Metrics().tasks_executed.Add(1);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

ThreadPool& DefaultPool() {
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(static_cast<int>(std::max(1u, hw)));
  }();
  return *pool;
}

namespace {

/// Shared bookkeeping of one ParallelFor call. Helpers hold it via
/// shared_ptr so a helper scheduled after the caller already drained the
/// range (and returned) still touches valid memory.
struct ForState {
  std::atomic<std::int64_t> next;
  std::int64_t end = 0;
  /// Iterations not yet finished (executed or skipped). The caller may only
  /// return once this reaches zero.
  std::atomic<std::int64_t> remaining;
  std::atomic<bool> stop{false};
  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr error;
  /// Budget observed before each claimed iteration (inert/never by
  /// default, so the plain overload pays only the pointer tests).
  CancelToken cancel;
  Deadline deadline;
  /// First budget breach, if any (under mutex).
  Status budget_status;

  explicit ForState(std::int64_t begin, std::int64_t limit)
      : next(begin), end(limit), remaining(limit - begin) {}
};

/// Claims and runs iterations until the range is exhausted, an exception is
/// recorded, or the budget fires.
void DrainRange(ForState& state, const std::function<void(std::int64_t)>& fn) {
  while (true) {
    const std::int64_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.end) return;
    if (!state.stop.load(std::memory_order_acquire) &&
        (state.cancel.cancelled() || state.deadline.expired())) {
      const Status budget =
          CheckBudget(state.cancel, state.deadline, "parallel_for");
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.budget_status.ok() && !budget.ok()) state.budget_status = budget;
      state.stop.store(true, std::memory_order_release);
    }
    if (!state.stop.load(std::memory_order_acquire)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
        state.stop.store(true, std::memory_order_release);
      }
    }
    if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.done.notify_all();
    }
  }
}

/// Shared body of both overloads; returns the budget status (Ok for the
/// plain overload's inert budget).
Status ParallelForImpl(std::int64_t begin, std::int64_t end,
                       const std::function<void(std::int64_t)>& fn,
                       const CancelToken& cancel, const Deadline& deadline,
                       ThreadPool* pool) {
  if (end <= begin) return Status::Ok();
  const std::int64_t n = end - begin;
  if (pool == nullptr) pool = &DefaultPool();
  Metrics().for_calls.Add(1);
  Metrics().for_iterations.Add(static_cast<std::uint64_t>(n));

  auto state = std::make_shared<ForState>(begin, end);
  state->cancel = cancel;
  state->deadline = deadline;
  // One helper per pool thread (capped by the iteration count minus the
  // caller's own share). Helpers that start late find the range drained and
  // return immediately.
  const int helpers =
      static_cast<int>(std::min<std::int64_t>(pool->size(), n - 1));
  for (int h = 0; h < helpers; ++h) {
    pool->Submit([state, fn] { DrainRange(*state, fn); });
  }
  DrainRange(*state, fn);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] {
    return state->remaining.load(std::memory_order_acquire) == 0;
  });
  if (state->error) std::rethrow_exception(state->error);
  return state->budget_status;
}

}  // namespace

void ParallelFor(std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn, ThreadPool* pool) {
  ParallelForImpl(begin, end, fn, CancelToken(), Deadline::Never(), pool);
}

Status ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn,
                   const CancelToken& cancel, const Deadline& deadline,
                   ThreadPool* pool) {
  return ParallelForImpl(begin, end, fn, cancel, deadline, pool);
}

}  // namespace dagperf
