#ifndef DAGPERF_COMMON_CANCEL_H_
#define DAGPERF_COMMON_CANCEL_H_

#include <atomic>
#include <initializer_list>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dagperf {

/// Cooperative cancellation signal. A token is a cheap, copyable handle to a
/// shared flag: every copy observes the same Cancel() call, so one token can
/// be embedded in the options of an estimator, a sweep, and a ParallelFor
/// while the caller keeps a copy to fire from another thread.
///
/// Cancellation is *cooperative*: long-running loops poll cancelled() at
/// their natural step boundaries (estimator states, sweep candidates,
/// ParallelFor iterations) and unwind with Status::Cancelled. Nothing is
/// interrupted mid-step, so partial results stay consistent.
///
/// A default-constructed token is inert — cancelled() is always false and
/// costs one pointer test — so APIs can take a CancelToken by value without
/// forcing every caller to allocate one.
class CancelToken {
 public:
  /// Inert token: never cancellable, Cancel() is a no-op.
  CancelToken() = default;

  /// A live token whose copies all share one flag.
  static CancelToken Cancellable() {
    CancelToken token;
    token.state_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// A live token that additionally observes every parent: cancelled() is
  /// true once Cancel() was called on this token *or* on any parent.
  /// Cancelling the linked token does not propagate upward — parents stay
  /// untouched — which is how one request-scoped token can be fired by a
  /// watchdog while the caller's token and a service-wide shutdown token
  /// remain independent signals feeding the same request. Inert parents are
  /// skipped, so linking against a default-constructed token costs nothing.
  static CancelToken LinkedTo(std::initializer_list<CancelToken> parents) {
    CancelToken token = Cancellable();
    auto observed = std::make_shared<
        std::vector<std::shared_ptr<std::atomic<bool>>>>();
    for (const CancelToken& parent : parents) {
      if (parent.state_ != nullptr) observed->push_back(parent.state_);
      if (parent.parents_ != nullptr) {
        observed->insert(observed->end(), parent.parents_->begin(),
                         parent.parents_->end());
      }
    }
    if (!observed->empty()) token.parents_ = std::move(observed);
    return token;
  }

  /// Signals cancellation to every copy of this token. Safe to call from any
  /// thread, any number of times. No-op on an inert token. Parents of a
  /// linked token are not signalled.
  void Cancel() const {
    if (state_ != nullptr) state_->store(true, std::memory_order_release);
  }

  bool cancelled() const {
    if (state_ != nullptr && state_->load(std::memory_order_acquire)) return true;
    if (parents_ != nullptr) {
      for (const auto& parent : *parents_) {
        if (parent->load(std::memory_order_acquire)) return true;
      }
    }
    return false;
  }

  /// Whether this token can ever fire (i.e. was created via Cancellable()
  /// or LinkedTo() with at least one live parent).
  bool can_cancel() const { return state_ != nullptr || parents_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
  /// Parent flags observed by cancelled(); shared so copying a linked token
  /// copies two pointers, never the vector.
  std::shared_ptr<const std::vector<std::shared_ptr<std::atomic<bool>>>> parents_;
};

/// An absolute wall-clock budget on the monotonic clock. Default-constructed
/// deadlines never expire (expired() is a constant-false test, no clock
/// read), so embedding one in options is free for callers that do not set
/// it.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  static Deadline Never() { return Deadline(); }

  /// Expires `seconds` from now (0 = already expired: useful for "fail fast
  /// if any budget is needed" probes and deterministic tests).
  static Deadline AfterSeconds(double seconds);

  bool never() const {
    return deadline_us_ == std::numeric_limits<double>::infinity();
  }

  /// One clock read; always false for a never-deadline.
  bool expired() const;

  /// Seconds until expiry (negative once expired, +inf for never).
  double remaining_seconds() const;

 private:
  explicit Deadline(double deadline_us) : deadline_us_(deadline_us) {}

  /// Absolute expiry in microseconds on the monotonic clock, +inf = never.
  double deadline_us_ = std::numeric_limits<double>::infinity();
};

/// The per-step budget poll shared by the estimator, sweep, and parallel
/// loops: Ok while neither signal fired, otherwise Cancelled or
/// DeadlineExceeded naming `what` (cancellation wins ties — it is the more
/// deliberate signal). Checks the token first: that is one atomic load,
/// cheaper than the deadline's clock read.
Status CheckBudget(const CancelToken& cancel, const Deadline& deadline,
                   const std::string& what);

/// The pair every cancellable operation carries: a cooperative cancel signal
/// plus a wall-clock bound. Factored so EstimatorOptions, SweepOptions, and
/// the estimation service's request type share one vocabulary (and so a
/// budget can be handed through layers as a single value). Default = inert
/// token + never-deadline: embedding a Budget costs callers nothing.
struct Budget {
  CancelToken cancel;
  Deadline deadline;

  /// A budget that only expires (the common "serve this within D seconds"
  /// case; seconds <= 0 means no bound).
  static Budget Within(double seconds) {
    Budget budget;
    if (seconds > 0) budget.deadline = Deadline::AfterSeconds(seconds);
    return budget;
  }

  /// Cheap poll: has either signal fired? One atomic load when the deadline
  /// is never, plus one clock read otherwise.
  bool exhausted() const { return cancel.cancelled() || deadline.expired(); }

  /// Whether either signal can ever fire — used to decide if a caller's
  /// budget should override a default one.
  bool limited() const { return cancel.can_cancel() || !deadline.never(); }

  /// CheckBudget over this pair.
  Status Check(const std::string& what) const {
    return CheckBudget(cancel, deadline, what);
  }

  /// This budget, with unset signals (inert token / never-deadline) filled
  /// from `fallback` — how a batch-level budget propagates into each
  /// candidate without clobbering caller-set per-candidate signals.
  Budget MergedWith(const Budget& fallback) const {
    Budget merged = *this;
    if (!merged.cancel.can_cancel()) merged.cancel = fallback.cancel;
    if (merged.deadline.never()) merged.deadline = fallback.deadline;
    return merged;
  }
};

}  // namespace dagperf

#endif  // DAGPERF_COMMON_CANCEL_H_
