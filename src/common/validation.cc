#include "common/validation.h"

#include "obs/metrics.h"

namespace dagperf {

void ValidationReport::Merge(const ValidationReport& other,
                             const std::string& prefix) {
  for (const Violation& v : other.violations_) {
    violations_.push_back({prefix + v.pointer, v.message});
  }
}

std::string ValidationReport::ToString(const std::string& subject) const {
  std::string out = subject + ": " + std::to_string(violations_.size()) +
                    (violations_.size() == 1 ? " violation:" : " violations:");
  for (const Violation& v : violations_) {
    out += " ";
    out += v.pointer.empty() ? "(root)" : v.pointer;
    out += ": ";
    out += v.message;
    out += ";";
  }
  if (!violations_.empty()) out.pop_back();
  return out;
}

Status ValidationReport::ToStatus(const std::string& subject) const {
  if (ok()) return Status::Ok();
  // Every firewall rejection funnels through here, so this is the one place
  // the validation-failure counter needs to live.
  static obs::Counter* failures =
      &obs::MetricsRegistry::Default().GetCounter("validation.failures");
  failures->Add(1);
  return Status::InvalidArgument(ToString(subject));
}

}  // namespace dagperf
