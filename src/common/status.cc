#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace dagperf {

namespace {

const char* CodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ErrorCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

}  // namespace

bool IsRetryable(ErrorCode code) { return code == ErrorCode::kInternal; }

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal_status {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status

}  // namespace dagperf
