#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace dagperf {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ErrorCode::kCancelled:
      return "CANCELLED";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

bool IsRetryable(ErrorCode code) {
  // Load shedding and unavailability are transient by definition: the same
  // request succeeds once the admission queue drains, the circuit breaker
  // half-opens, or a replacement server comes up — so clients should back
  // off and retry.
  return code == ErrorCode::kInternal || code == ErrorCode::kResourceExhausted ||
         code == ErrorCode::kUnavailable;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = ErrorCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal_status {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status

}  // namespace dagperf
