#ifndef DAGPERF_COMMON_RNG_H_
#define DAGPERF_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace dagperf {

/// Deterministic pseudo-random number generator (xoshiro256** core seeded via
/// splitmix64). Every stochastic component of the library (skew generators,
/// Alg2-Normal sampling, simulator placement jitter) draws from an explicitly
/// seeded Rng so that experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0.0, 1.0).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)) of the underlying normal.
  double LogNormal(double mu, double sigma);

  /// Samples an index in [0, n) from a Zipf distribution with exponent s
  /// (s = 0 is uniform; larger s is more skewed). Uses the precomputed
  /// harmonic weights, O(log n) per sample.
  uint64_t Zipf(uint64_t n, double s);

  /// Returns a child generator with an independent stream; used to give each
  /// job / task family its own stream so adding tasks to one job does not
  /// perturb the draws of another.
  Rng Fork();

 private:
  uint64_t state_[4];

  // Cached CDF for Zipf(n, s); rebuilt when (n, s) changes.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;

  // Cached second Box-Muller deviate.
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace dagperf

#endif  // DAGPERF_COMMON_RNG_H_
