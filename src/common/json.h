#ifndef DAGPERF_COMMON_JSON_H_
#define DAGPERF_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dagperf {

/// Minimal JSON document model with a strict recursive-descent parser and a
/// writer — enough for the library's workload/workflow files, with no
/// third-party dependency. Numbers are doubles; object keys keep insertion
/// order on write (std::map order, i.e. sorted, which makes output stable).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json MakeBool(bool value);
  static Json MakeNumber(double value);
  static Json MakeString(std::string value);
  static Json MakeArray();
  static Json MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Typed accessors abort on type mismatch (programming error); use the
  /// Get* helpers for fallible reads of parsed input.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<Json>& AsArray() const;
  std::vector<Json>& MutableArray();
  const std::map<std::string, Json>& AsObject() const;

  /// Object field access. Set replaces; Get returns nullptr when absent or
  /// when this value is not an object.
  void Set(const std::string& key, Json value);
  const Json* Get(const std::string& key) const;

  /// Fallible typed field reads with defaults, for consuming user files.
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;

  /// Appends to an array value.
  void Append(Json value);

  /// Serialises with 2-space indentation and escaped strings.
  std::string Dump() const;

  /// Serialises to a single line with no whitespace — the newline-delimited
  /// framing of the service wire protocol (one document per line).
  std::string DumpCompact() const;

  /// Strict parse of a complete JSON document (trailing garbage rejected).
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string& out, int indent) const;
  void DumpCompactTo(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace dagperf

#endif  // DAGPERF_COMMON_JSON_H_
