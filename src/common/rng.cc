#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dagperf {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::UniformInt(uint64_t n) {
  DAGPERF_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return v % n;
}

double Rng::NextGaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  DAGPERF_CHECK(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
  }
  const double u = NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace dagperf
