#include "common/cancel.h"

#include <chrono>

namespace dagperf {

namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Deadline Deadline::AfterSeconds(double seconds) {
  if (seconds == std::numeric_limits<double>::infinity()) return Never();
  return Deadline(NowUs() + seconds * 1e6);
}

bool Deadline::expired() const {
  if (never()) return false;
  return NowUs() >= deadline_us_;
}

double Deadline::remaining_seconds() const {
  if (never()) return std::numeric_limits<double>::infinity();
  return (deadline_us_ - NowUs()) * 1e-6;
}

Status CheckBudget(const CancelToken& cancel, const Deadline& deadline,
                   const std::string& what) {
  if (cancel.cancelled()) return Status::Cancelled(what + ": cancelled");
  if (deadline.expired()) {
    return Status::DeadlineExceeded(what + ": deadline exceeded");
  }
  return Status::Ok();
}

}  // namespace dagperf
