#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace dagperf {

Json Json::MakeBool(bool value) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = value;
  return j;
}

Json Json::MakeNumber(double value) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = value;
  return j;
}

Json Json::MakeString(std::string value) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  DAGPERF_CHECK(type_ == Type::kBool);
  return bool_;
}

double Json::AsNumber() const {
  DAGPERF_CHECK(type_ == Type::kNumber);
  return number_;
}

const std::string& Json::AsString() const {
  DAGPERF_CHECK(type_ == Type::kString);
  return string_;
}

const std::vector<Json>& Json::AsArray() const {
  DAGPERF_CHECK(type_ == Type::kArray);
  return array_;
}

std::vector<Json>& Json::MutableArray() {
  DAGPERF_CHECK(type_ == Type::kArray);
  return array_;
}

const std::map<std::string, Json>& Json::AsObject() const {
  DAGPERF_CHECK(type_ == Type::kObject);
  return object_;
}

void Json::Set(const std::string& key, Json value) {
  DAGPERF_CHECK(type_ == Type::kObject);
  object_[key] = std::move(value);
}

const Json* Json::Get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json* v = Get(key);
  return v != nullptr && v->type_ == Type::kNumber ? v->number_ : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Get(key);
  return v != nullptr && v->type_ == Type::kBool ? v->bool_ : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Get(key);
  return v != nullptr && v->type_ == Type::kString ? v->string_ : fallback;
}

void Json::Append(Json value) {
  DAGPERF_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

namespace {

void EscapeTo(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void NumberTo(double v, std::string& out) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

void Json::DumpTo(std::string& out, int indent) const {
  const std::string pad(indent * 2, ' ');
  const std::string pad_in((indent + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      NumberTo(number_, out);
      break;
    case Type::kString:
      EscapeTo(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        out += pad_in;
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      size_t i = 0;
      for (const auto& [key, value] : object_) {
        out += pad_in;
        EscapeTo(key, out);
        out += ": ";
        value.DumpTo(out, indent + 1);
        if (++i < object_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0);
  out += '\n';
  return out;
}

void Json::DumpCompactTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      NumberTo(number_, out);
      break;
    case Type::kString:
      EscapeTo(string_, out);
      break;
    case Type::kArray: {
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        array_[i].DumpCompactTo(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      size_t i = 0;
      for (const auto& [key, value] : object_) {
        if (i++ > 0) out += ',';
        EscapeTo(key, out);
        out += ':';
        value.DumpCompactTo(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::DumpCompact() const {
  std::string out;
  DumpCompactTo(out);
  return out;
}

namespace {

/// Recursion bound of the parser. Spec documents are a few levels deep;
/// anything deeper is adversarial input trying to overflow the stack, and is
/// rejected with a parse error instead.
constexpr int kMaxParseDepth = 128;

/// Recursive-descent parser over a string view with position tracking.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    Result<Json> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    if (depth_ >= kMaxParseDepth) return Error("nesting too deep");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return Json::MakeString(std::move(s).value());
    }
    if (c == 't' || c == 'f') return ParseKeyword();
    if (c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  Result<Json> ParseKeyword() {
    const auto match = [&](const char* word) {
      const size_t len = std::strlen(word);
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) return Json::MakeBool(true);
    if (match("false")) return Json::MakeBool(false);
    if (match("null")) return Json();
    return Error("invalid keyword");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return Error("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    return Json::MakeNumber(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // ASCII only; everything else degrades to '?' (the library never
            // generates non-ASCII escapes).
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Error("bad escape");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseArray() {
    if (!Consume('[')) return Error("expected array");
    ++depth_;
    Json array = Json::MakeArray();
    SkipSpace();
    if (Consume(']')) {
      --depth_;
      return array;
    }
    while (true) {
      Result<Json> value = ParseValue();
      if (!value.ok()) return value;
      array.Append(std::move(value).value());
      if (Consume(']')) {
        --depth_;
        return array;
      }
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    if (!Consume('{')) return Error("expected object");
    ++depth_;
    Json object = Json::MakeObject();
    SkipSpace();
    if (Consume('}')) {
      --depth_;
      return object;
    }
    while (true) {
      SkipSpace();
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':'");
      Result<Json> value = ParseValue();
      if (!value.ok()) return value;
      object.Set(*key, std::move(value).value());
      if (Consume('}')) {
        --depth_;
        return object;
      }
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace dagperf
