#ifndef DAGPERF_COMMON_VALIDATION_H_
#define DAGPERF_COMMON_VALIDATION_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dagperf {

/// One rule violation found by a validator, located by a JSON pointer
/// (RFC 6901) into the offending document — "/jobs/3/input_gb",
/// "/edges/0", "/node/disk_read_bw_mbps" — so tooling can highlight the
/// exact field and users of hand-authored spec files can fix every problem
/// in one pass.
struct Violation {
  std::string pointer;
  std::string message;
};

/// Accumulates *all* violations of a validation pass instead of stopping at
/// the first — the front door of the validation firewall. Downstream code
/// (profile compiler, estimator, simulator) keeps cheap single-condition
/// checks for true invariants; everything user-reachable funnels through a
/// report first, so a malformed-but-parseable spec produces one structured
/// InvalidArgument naming every offending field rather than an abort (or a
/// fix-one-rerun-find-the-next loop).
class ValidationReport {
 public:
  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  void Add(std::string pointer, std::string message) {
    violations_.push_back({std::move(pointer), std::move(message)});
  }

  /// Appends another report's violations under an additional pointer prefix
  /// ("" keeps them as-is).
  void Merge(const ValidationReport& other, const std::string& prefix = "");

  /// "<subject>: 2 violations: /jobs/0/input_gb: must be positive; ..."
  std::string ToString(const std::string& subject) const;

  /// Ok when empty, otherwise one InvalidArgument carrying every violation.
  Status ToStatus(const std::string& subject) const;

 private:
  std::vector<Violation> violations_;
};

}  // namespace dagperf

#endif  // DAGPERF_COMMON_VALIDATION_H_
