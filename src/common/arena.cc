#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace dagperf {

Arena::Arena(std::size_t initial_block_bytes)
    : next_block_bytes_(std::max<std::size_t>(initial_block_bytes, 64)) {}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  DAGPERF_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  if (current_ < blocks_.size()) {
    Block& block = blocks_[current_];
    const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
    if (aligned + bytes <= block.size) {
      used_ = aligned + bytes;
      return block.data.get() + aligned;
    }
  }
  // Over-reserve by the alignment so the aligned start always fits.
  NextBlock(bytes + align);
  Block& block = blocks_[current_];
  const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
  used_ = aligned + bytes;
  return block.data.get() + aligned;
}

void Arena::NextBlock(std::size_t bytes) {
  // First try the retained blocks after the current one (Reset keeps them).
  const std::size_t next = blocks_.empty() ? 0 : current_ + 1;
  for (std::size_t i = next; i < blocks_.size(); ++i) {
    if (blocks_[i].size >= bytes) {
      std::swap(blocks_[next], blocks_[i]);
      current_ = next;
      used_ = 0;
      return;
    }
  }
  Block block;
  block.size = std::max(bytes, next_block_bytes_);
  block.data = std::make_unique<char[]>(block.size);
  next_block_bytes_ = std::max(next_block_bytes_ * 2, block.size);
  blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(next),
                 std::move(block));
  current_ = next;
  used_ = 0;
}

void Arena::Reset() {
  current_ = 0;
  used_ = 0;
}

std::size_t Arena::reserved_bytes() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

}  // namespace dagperf
