#ifndef DAGPERF_COMMON_TABLE_H_
#define DAGPERF_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dagperf {

/// Plain-text table renderer used by the benchmark harnesses to print the
/// paper's tables and figure series in a stable, diff-friendly layout.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; it may be shorter than the header (trailing cells
  /// render empty) but must not be longer.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Cell(double value, int precision = 4);

  /// Renders the table with aligned columns and a header separator.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dagperf

#endif  // DAGPERF_COMMON_TABLE_H_
