#ifndef DAGPERF_COMMON_CHECK_H_
#define DAGPERF_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checking for conditions that indicate a programming error (not a
/// recoverable input error — those use Status/Result). A failed check prints
/// the condition and location and aborts, so broken invariants surface at the
/// point of violation instead of as corrupted estimates downstream.
#define DAGPERF_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DAGPERF_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define DAGPERF_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DAGPERF_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // DAGPERF_COMMON_CHECK_H_
