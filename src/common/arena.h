#ifndef DAGPERF_COMMON_ARENA_H_
#define DAGPERF_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace dagperf {

/// A bump-pointer arena for per-estimate scratch storage.
///
/// The estimator's hot path (model/state_estimator.cc) carves all of its
/// per-job/per-stage SoA arrays out of one arena per estimate. Reset()
/// rewinds the bump pointer but KEEPS the allocated blocks, so a warm
/// estimate of the same (or smaller) workflow performs zero heap
/// allocations — the steady state of a dense sweep neighborhood.
///
/// Blocks grow geometrically; a request larger than the default block gets a
/// dedicated block of exactly its size. Allocations are never individually
/// freed and no destructors run: the arena is for trivially-destructible
/// data only (the SoA arrays are plain scalars and pointers).
///
/// Not thread-safe: one arena serves one estimate on one thread (the
/// estimator keeps one per worker thread).
class Arena {
 public:
  explicit Arena(std::size_t initial_block_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* Allocate(std::size_t bytes, std::size_t align);

  /// Typed array of `n` value-initialised (zeroed) Ts. T must be trivially
  /// copyable and trivially destructible — nothing ever runs destructors.
  template <typename T>
  T* AllocateArray(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena stores trivial data only");
    T* data = static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) data[i] = T{};
    return data;
  }

  /// Rewinds to empty while keeping every block for reuse. After enough
  /// Resets at a stable working-set size, Allocate never touches the heap.
  void Reset();

  /// Total bytes currently reserved across all blocks (capacity, not use).
  std::size_t reserved_bytes() const;

 private:
  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;

  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  /// Moves `current_` to a block with at least `bytes` free (reusing a
  /// retained block when large enough, else appending a new one).
  void NextBlock(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // Block being bumped.
  std::size_t used_ = 0;     // Bytes used inside blocks_[current_].
  std::size_t next_block_bytes_;
};

}  // namespace dagperf

#endif  // DAGPERF_COMMON_ARENA_H_
