#ifndef DAGPERF_CLUSTER_CLUSTER_SPEC_H_
#define DAGPERF_CLUSTER_CLUSTER_SPEC_H_

#include <string>

#include "cluster/resources.h"
#include "common/status.h"
#include "common/units.h"

namespace dagperf {

/// Hardware description of one worker node.
struct NodeSpec {
  int cores = 6;
  /// Aggregate sequential read bandwidth across all local drives.
  Rate disk_read_bw = Rate::MBps(200);
  /// Aggregate sequential write bandwidth across all local drives.
  Rate disk_write_bw = Rate::MBps(180);
  /// NIC bandwidth (the paper models one shared network resource per node;
  /// the link is the bottleneck in either direction on 1 GbE).
  Rate network_bw = Rate::Gbps(1);
  Bytes memory = Bytes::FromGB(32);

  /// Capacity of each preemptable resource in resource units per second
  /// (bytes/s for I/O, cores for CPU).
  ResourceVector Capacities() const;

  bool operator==(const NodeSpec&) const = default;
};

/// A homogeneous cluster (the paper's testbed is 11 identical servers).
/// Heterogeneous clusters can be modelled by running per-node estimates, but
/// every experiment in the paper — and thus in this reproduction — uses a
/// homogeneous fleet, which is what the analytical models assume.
struct ClusterSpec {
  NodeSpec node;
  int num_nodes = 11;

  /// The paper's evaluation cluster: eleven servers, 6 physical cores at
  /// 2.4 GHz, 2 x 7.2k-RPM disks (≈100 MB/s each), 32 GB RAM, 1 GbE.
  static ClusterSpec PaperCluster();

  int TotalCores() const { return node.cores * num_nodes; }
  Bytes TotalMemory() const { return node.memory * num_nodes; }

  /// Validates physical plausibility (positive bandwidths, cores, nodes).
  Status Validate() const;

  bool operator==(const ClusterSpec&) const = default;
};

}  // namespace dagperf

#endif  // DAGPERF_CLUSTER_CLUSTER_SPEC_H_
