#ifndef DAGPERF_CLUSTER_VALIDATE_H_
#define DAGPERF_CLUSTER_VALIDATE_H_

#include <string>

#include "cluster/cluster_spec.h"
#include "common/validation.h"

namespace dagperf {

/// Sanity caps on cluster shape. Far above anything physical today, but low
/// enough that derived quantities (total cores, slot counts, per-node
/// shares) stay in safely representable integer/double range.
inline constexpr int kMaxClusterNodes = 10'000'000;
inline constexpr int kMaxCoresPerNode = 100'000;

/// Validation-firewall entry point for cluster hardware descriptions.
/// Collects every violation — non-finite (NaN/Inf), non-positive, or
/// implausibly large values on any of the four modelled resource axes (CPU
/// cores, disk read, disk write, network) plus memory and node count — under
/// JSON pointers rooted at `prefix` ("" for a standalone cluster document).
/// ClusterSpec::Validate() remains the cheap single-error check used by
/// invariant guards; this is the exhaustive front-door diagnostic.
ValidationReport ValidateClusterSpec(const ClusterSpec& cluster,
                                     const std::string& prefix = "");

}  // namespace dagperf

#endif  // DAGPERF_CLUSTER_VALIDATE_H_
