#include "cluster/resources.h"

#include <cstdio>

namespace dagperf {

const char* ResourceName(Resource r) {
  switch (r) {
    case Resource::kDiskRead:
      return "disk-read";
    case Resource::kDiskWrite:
      return "disk-write";
    case Resource::kNetwork:
      return "network";
    case Resource::kCpu:
      return "cpu";
  }
  return "unknown";
}

ResourceVector ResourceVector::operator+(const ResourceVector& o) const {
  ResourceVector out;
  for (int i = 0; i < kNumResources; ++i) out.values[i] = values[i] + o.values[i];
  return out;
}

ResourceVector ResourceVector::operator*(double s) const {
  ResourceVector out;
  for (int i = 0; i < kNumResources; ++i) out.values[i] = values[i] * s;
  return out;
}

std::string ResourceVector::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{disk-read: %.3g, disk-write: %.3g, network: %.3g, cpu: %.3g}",
                values[0], values[1], values[2], values[3]);
  return std::string(buf);
}

}  // namespace dagperf
