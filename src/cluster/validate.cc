#include "cluster/validate.h"

#include <cmath>

namespace dagperf {

namespace {

/// Adds a violation unless `value` is finite and strictly positive — the
/// NaN-safe form of the "must be positive" rule (NaN fails every comparison,
/// so `!(value > 0)` catches it where `value <= 0` would not).
void RequirePositiveFinite(double value, const std::string& pointer,
                           ValidationReport& report) {
  if (!std::isfinite(value)) {
    report.Add(pointer, "must be finite, got " + std::to_string(value));
  } else if (!(value > 0)) {
    report.Add(pointer, "must be positive, got " + std::to_string(value));
  }
}

}  // namespace

ValidationReport ValidateClusterSpec(const ClusterSpec& cluster,
                                     const std::string& prefix) {
  ValidationReport report;
  if (cluster.num_nodes <= 0) {
    report.Add(prefix + "/num_nodes", "must be positive, got " +
                                          std::to_string(cluster.num_nodes));
  } else if (cluster.num_nodes > kMaxClusterNodes) {
    report.Add(prefix + "/num_nodes",
               "exceeds the " + std::to_string(kMaxClusterNodes) + " node cap");
  }
  if (cluster.node.cores <= 0) {
    report.Add(prefix + "/node/cores", "must be positive, got " +
                                           std::to_string(cluster.node.cores));
  } else if (cluster.node.cores > kMaxCoresPerNode) {
    report.Add(prefix + "/node/cores", "exceeds the " +
                                           std::to_string(kMaxCoresPerNode) +
                                           " cores-per-node cap");
  }
  RequirePositiveFinite(cluster.node.disk_read_bw.ToMBps(),
                        prefix + "/node/disk_read_bw_mbps", report);
  RequirePositiveFinite(cluster.node.disk_write_bw.ToMBps(),
                        prefix + "/node/disk_write_bw_mbps", report);
  RequirePositiveFinite(cluster.node.network_bw.ToMBps(),
                        prefix + "/node/network_bw_mbps", report);
  RequirePositiveFinite(cluster.node.memory.ToGB(), prefix + "/node/memory_gb",
                        report);
  return report;
}

}  // namespace dagperf
